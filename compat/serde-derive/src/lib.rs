//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The companion offline `serde` facade blanket-implements its marker
//! traits, so these derives only need to accept the syntax (including
//! `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
