//! Offline micro-benchmark harness with a criterion-compatible API.
//!
//! Implements the subset of criterion this workspace's benches use:
//! `Criterion`, `benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each sample times a batch of iterations (batch size
//! auto-calibrated so one batch takes ≳1 ms), the configured number of
//! samples is collected after a short warm-up, and the *median* ns/iter is
//! reported. Results also accumulate in [`Criterion::results`] so callers
//! (e.g. the expansion bench) can serialize them after running.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hierarchical benchmark name: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id: `group/function/parameter`.
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Group throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Throughput in elements (or bytes) per second, if annotated.
    pub fn per_second(&self) -> Option<f64> {
        let n = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
        };
        Some(n * 1e9 / self.ns_per_iter)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Fresh driver with no recorded results.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    /// All measurements recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named collection of benchmarks sharing sample count and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_id = if self.name.is_empty() {
            id.id
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let ns = bencher.median_ns();
        eprintln!("bench {full_id:<56} {ns:>14.1} ns/iter");
        self.criterion.results.push(BenchResult {
            id: full_id,
            ns_per_iter: ns,
            throughput: self.throughput,
        });
        self
    }

    /// Run one benchmark that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, called in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate a batch size so one batch takes roughly >= 1 ms,
        // keeping per-sample timer overhead negligible.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 4).min(1 << 20);
        }
        // Warm-up.
        for _ in 0..batch.div_ceil(2).min(1 << 10) {
            std_black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        let mut s = self.samples.clone();
        assert!(!s.is_empty(), "Bencher::iter was never called");
        s.sort_unstable_by(f64::total_cmp);
        s[s.len() / 2]
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a ^ b.wrapping_mul(0x9E37_79B9))
    }

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.throughput(Throughput::Elements(1000));
            g.bench_function(BenchmarkId::new("sum", 1000), |b| {
                b.iter(|| sum_to(black_box(1000)))
            });
            g.finish();
        }
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, "demo/sum/1000");
        assert!(results[0].ns_per_iter > 0.0);
        assert!(results[0].per_second().unwrap() > 0.0);
    }

    #[test]
    fn group_macros_compose() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| b.iter(|| black_box(1u32 + 1)));
        }
        criterion_group!(benches, bench_a);
        let mut c = Criterion::new();
        benches(&mut c);
        assert_eq!(c.results().len(), 1);
    }
}
