//! Collection strategies (`proptest::collection`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: a fixed length or a range of lengths.
pub trait SizeRange {
    /// Pick a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing a `Vec` of values from `element`, sized by `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Result of [`vec`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_len_vec() {
        let mut rng = TestRng::deterministic("collection::fixed");
        let s = vec(0u32..7, 5usize);
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&x| x < 7));
    }

    #[test]
    fn ranged_len_vec() {
        let mut rng = TestRng::deterministic("collection::ranged");
        let s = vec(0u32..7, 2usize..6);
        for _ in 0..32 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
