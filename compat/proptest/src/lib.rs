//! Offline mini property-testing harness.
//!
//! Exposes the subset of the `proptest` API this workspace uses —
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, `any`, range and tuple strategies, and
//! `collection::vec` — backed by the workspace's offline `rand`.
//!
//! Differences from upstream proptest, deliberately accepted:
//! * no shrinking — a failing case reports its values via the assertion
//!   message instead of a minimized counterexample;
//! * generation is purely random (deterministic per test name), without
//!   bias toward edge cases;
//! * `prop_assume` rejections simply retry with a bounded attempt budget.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}: both {:?}",
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// Discard the current case (retried with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::boxed($strategy)),+])
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).saturating_add(100);
            while __accepted < __cfg.cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest: too many rejected cases in {} ({} attempts for {} accepted)",
                    stringify!($name), __attempts, __accepted
                );
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut __rng);)*
                // The immediately-called closure is deliberate: it scopes the
                // `return Err(..)` that `prop_assert!` emits to this case, not
                // to the whole test fn.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{}", msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..10, 0u32..10), e in small_even()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_strategy_has_requested_len(v in crate::collection::vec(0i32..5, 13)) {
            prop_assert_eq!(v.len(), 13);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_picks_all_variants(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            // Not a tautology: exercises the Arbitrary path end-to-end.
            let _ = seed.wrapping_mul(2);
        }
    }

    #[test]
    #[should_panic(expected = "prop_assert")]
    // The nested `#[test]` the macro generates here is intentionally
    // unnameable — it is called directly below, not harvested by the runner.
    #[allow(unnameable_test_items)]
    fn failures_panic_with_location() {
        proptest! {
            #[test]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        inner();
    }
}
