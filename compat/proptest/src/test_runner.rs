//! Case scheduling: config, outcome type, and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it is retried.
    Reject(String),
    /// The property failed; the whole test fails with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failing outcome with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (discarded) outcome with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

/// Deterministic per-test RNG: the seed is a hash of the test's full path,
/// so every run of a given test replays the same case sequence.
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG seeded from `name` (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::z");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
