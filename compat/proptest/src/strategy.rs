//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::distributions::uniform::SampleUniform;
use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: `generate` takes the concrete [`TestRng`], so strategies can
/// be boxed into `Box<dyn Strategy<Value = T>>` (used by `prop_oneof!`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty variant list.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Self { variants }
    }

    /// Helper for `prop_oneof!`: box a variant strategy.
    pub fn boxed<S>(strategy: S) -> BoxedStrategy<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite and sign-symmetric; ±1e6 covers the magnitudes the
        // workspace's numeric properties exercise.
        rng.gen::<f64>() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy over the full domain of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Result of [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = TestRng::deterministic("strategy::range");
        let s = 5u32..9;
        for _ in 0..256 {
            let v = s.generate(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn union_covers_every_variant() {
        let mut rng = TestRng::deterministic("strategy::union");
        let u = Union::new(vec![
            Union::boxed(Just(0u8)),
            Union::boxed(Just(1u8)),
            Union::boxed(Just(2u8)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..128 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::deterministic("strategy::map");
        let s = (1u32..4).prop_map(|x| x * 10);
        for _ in 0..64 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }
}
