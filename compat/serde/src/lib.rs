//! Offline no-op subset of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! stats types for downstream consumers, but nothing in-tree links a
//! serializer (reports are written as hand-rolled JSON). With no registry
//! access, this local crate supplies the trait names and the derive
//! macros so those annotations stay source-compatible; the derives
//! expand to nothing and the traits are blanket-implemented.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// `serde::de` module stub.
pub mod de {
    pub use crate::DeserializeOwned;
}
