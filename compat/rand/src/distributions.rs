//! Distributions: the [`Standard`] uniform distribution and range
//! sampling, mirroring the `rand::distributions` module paths the
//! workspace imports.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution: floats in `[0, 1)`, integers over
/// their full range, fair booleans.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 uniform bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform range sampling (`rand::distributions::uniform` subset).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from a bounded range.
    pub trait SampleUniform: Sized {
        /// Uniform draw from `[lo, hi)` (`inclusive = false`) or
        /// `[lo, hi]` (`inclusive = true`).
        fn sample_bounds<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_bounds<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let lo_w = lo as i128;
                    let hi_w = hi as i128;
                    let span = (hi_w - lo_w + i128::from(inclusive)) as u128;
                    assert!(span > 0, "cannot sample from an empty range");
                    // Modulo bias is < span/2^64 — immaterial for the spans
                    // (constellation orders, matrix dims) this repo draws.
                    (lo_w + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        #[inline]
        fn sample_bounds<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _: bool) -> Self {
            assert!(lo <= hi, "cannot sample from an empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }
    }

    impl SampleUniform for f32 {
        #[inline]
        fn sample_bounds<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _: bool) -> Self {
            assert!(lo <= hi, "cannot sample from an empty range");
            let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            lo + (hi - lo) * unit
        }
    }

    /// Range forms accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_bounds(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_bounds(rng, *self.start(), *self.end(), true)
        }
    }
}
