//! Named generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256** (Blackman/Vigna),
/// seeded via SplitMix64. Fast, 256-bit state, passes BigCrush; not
/// stream-compatible with upstream `rand::rngs::StdRng`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            // xoshiro's sole forbidden state; unreachable in practice.
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias kept for callers that ask for a cheap generator.
pub type SmallRng = StdRng;
