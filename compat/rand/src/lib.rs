//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace pins this local implementation under the `rand` name.
//! It provides exactly the surface the simulators use — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], uniform range sampling, and the
//! [`distributions::Distribution`] trait — backed by a xoshiro256**
//! generator seeded through SplitMix64.
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! upstream `rand`'s ChaCha12-based `StdRng`; every test in this
//! repository derives its expectations from the stream itself (decoder
//! cross-checks, statistical bounds), so only determinism and statistical
//! quality matter.

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Core source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand`'s design so `R: Rng + ?Sized` bounds and
/// auto-ref method calls both work).
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from one `u64` (SplitMix64 expansion,
    /// the same scheme upstream `rand` documents for `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0..=1u8);
            assert!(j <= 1);
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn generic_unsized_rng_callable() {
        // Mirrors the `R: Rng + ?Sized` call pattern used across the repo.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
