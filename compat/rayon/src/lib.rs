//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no registry access, so the workspace pins
//! this local implementation under the `rayon` name. It covers exactly
//! the combinators the repo uses — `par_iter().map().collect()/reduce()`
//! over slices and `par_chunks_mut().enumerate().for_each()` — with real
//! data parallelism on `std::thread::scope`: contiguous chunks of the
//! input are fanned over `available_parallelism()` OS threads. There is
//! no work stealing; for the coarse-grained frame/GEMM-slab workloads
//! here, static chunking is within noise of a real work-stealing pool.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;

pub mod prelude {
    //! One-stop import mirroring `rayon::prelude`.
    pub use crate::{ParallelSliceMutExt, ParallelSliceRefExt};
}

/// Worker count: one thread per logical CPU.
pub fn max_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a persistent [`ThreadPool`] (subset of
/// `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`]; kept for API
/// parity with rayon (this implementation cannot actually fail short of
/// the OS refusing to spawn threads, which panics instead).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Fresh builder; defaults to one thread per logical CPU.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the worker count (`0` = `available_parallelism()`).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Spawn the workers and return the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            max_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool::with_threads(n))
    }
}

/// Per-invocation context handed to every worker of a
/// [`ThreadPool::broadcast`].
#[derive(Debug, Clone, Copy)]
pub struct BroadcastContext {
    index: usize,
    num_threads: usize,
}

impl BroadcastContext {
    /// This worker's index in `0..num_threads`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers in the pool.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Type-erased pointer to the caller's broadcast closure. The pointee
/// lives on the broadcaster's stack; `broadcast` blocks until every
/// worker has finished with it, which is what makes the erased lifetime
/// sound.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(BroadcastContext) + Sync));

// SAFETY: the pointee is `Sync` (shared by all workers) and outlives the
// job (broadcast joins before returning), so sending the pointer to the
// worker threads is sound.
unsafe impl Send for Job {}

struct PoolState {
    /// Monotone job counter; workers run each epoch exactly once.
    epoch: u64,
    /// Highest epoch every worker has finished.
    completed: u64,
    job: Option<Job>,
    /// Workers still running the current job.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a new job (or shutdown) is published.
    work: Condvar,
    /// Signalled when a job completes.
    done: Condvar,
}

/// A persistent worker pool supporting blocking broadcasts — the subset
/// of `rayon::ThreadPool` the sphere-decoder's subtree-parallel engine
/// needs. Unlike the scoped-thread combinators above, the workers are
/// spawned once and parked on a condvar between jobs, so a steady-state
/// `broadcast` performs no heap allocation and no thread spawn.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
    n_threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("n_threads", &self.n_threads)
            .finish()
    }
}

impl ThreadPool {
    fn with_threads(n: usize) -> Self {
        let n = n.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                completed: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..n)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("sd-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index, n))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            n_threads: n,
        }
    }

    /// Number of worker threads in the pool.
    pub fn current_num_threads(&self) -> usize {
        self.n_threads
    }

    /// Run `op` once on every worker, blocking until all have finished.
    ///
    /// `op` receives a [`BroadcastContext`] carrying the worker index.
    /// Concurrent `broadcast` calls from different threads serialize on
    /// the single job slot.
    pub fn broadcast<OP>(&self, op: OP)
    where
        OP: Fn(BroadcastContext) + Sync,
    {
        let op_ref: &(dyn Fn(BroadcastContext) + Sync) = &op;
        // SAFETY: erases the stack lifetime of `op`; we block below until
        // `completed` covers this job's epoch, so no worker touches the
        // pointer after this function returns.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(BroadcastContext) + Sync),
                *const (dyn Fn(BroadcastContext) + Sync),
            >(op_ref as *const _)
        });
        let mut st = self.shared.state.lock().unwrap();
        // Wait for the slot (only relevant when multiple threads share
        // the pool): the job is cleared when its last worker finishes.
        while st.job.is_some() {
            st = self.shared.done.wait(st).unwrap();
        }
        st.epoch += 1;
        let my_epoch = st.epoch;
        st.job = Some(job);
        st.active = self.n_threads;
        self.shared.work.notify_all();
        while st.completed < my_epoch {
            st = self.shared.done.wait(st).unwrap();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize, n_threads: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, epoch) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen_epoch {
                    seen_epoch = st.epoch;
                    break (st.job.expect("job published with epoch"), st.epoch);
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // SAFETY: the broadcaster keeps the closure alive until
        // `completed` reaches this epoch, which happens strictly after
        // this call returns.
        let f: &(dyn Fn(BroadcastContext) + Sync) = unsafe { &*job.0 };
        f(BroadcastContext {
            index,
            num_threads: n_threads,
        });
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            st.job = None;
            st.completed = epoch;
            shared.done.notify_all();
        }
    }
}

/// Split `data` into `workers` contiguous chunks, map each on its own
/// scoped thread, and return the per-chunk outputs in input order.
fn map_chunks<'a, T, U, F>(data: &'a [T], f: &F) -> Vec<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    let n = data.len();
    let workers = max_threads().min(n).max(1);
    if workers <= 1 {
        return vec![data.iter().map(f).collect()];
    }
    let chunk = n.div_ceil(workers);
    thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// `.par_iter()` on slices (and, via deref, `Vec`).
pub trait ParallelSliceRefExt<T: Sync> {
    /// Parallel shared-reference iterator.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSliceRefExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap { data: self.data, f }
    }
}

/// Mapped parallel iterator; terminal operations run the fan-out.
pub struct ParMap<'a, T, F> {
    data: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Collect mapped values, preserving input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        map_chunks(self.data, &self.f)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Fold mapped values with `op`, starting from `identity()`.
    ///
    /// `op` must be associative with `identity()` as neutral element
    /// (rayon's own contract); this implementation folds the per-thread
    /// partials left-to-right in input order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        map_chunks(self.data, &self.f)
            .into_iter()
            .flatten()
            .fold(identity(), op)
    }

    /// Run `f` for its effect on every element.
    pub fn for_each(self)
    where
        U: Send,
    {
        let _: Vec<U> = self.collect();
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMutExt<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { data: self, size }
    }
}

/// Parallel mutable-chunk iterator.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            data: self.data,
            size: self.size,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated parallel mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> = self.data.chunks_mut(self.size).enumerate().collect();
        let workers = max_threads().min(chunks.len()).max(1);
        if workers <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        // Round-robin static assignment of chunks to workers.
        let mut bins: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, c) in chunks.into_iter().enumerate() {
            bins[i % workers].push(c);
        }
        let f = &f;
        thread::scope(|s| {
            for bin in bins {
                s.spawn(move || {
                    for item in bin {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| u64::from(x) * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == i as u64 * 2));
    }

    #[test]
    fn map_reduce_sums() {
        let v: Vec<u64> = (1..=1000).collect();
        let s = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 500_500);
    }

    #[test]
    fn reduce_with_identity_factory() {
        let v: Vec<u64> = (0..97).collect();
        let (a, b) = v
            .par_iter()
            .map(|&x| (x, 1u64))
            .reduce(|| (0, 0), |l, r| (l.0 + r.0, l.1 + r.1));
        assert_eq!(b, 97);
        assert_eq!(a, 96 * 97 / 2);
    }

    #[test]
    fn chunks_mut_disjoint_writes() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(idx, chunk)| {
            for x in chunk.iter_mut() {
                *x = idx as u64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 64) as u64);
        }
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut e: Vec<u32> = Vec::new();
        e.par_chunks_mut(8).enumerate().for_each(|(_, _)| panic!());
    }

    mod pool {
        use crate::{ThreadPool, ThreadPoolBuilder};
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

        #[test]
        fn broadcast_runs_once_per_worker() {
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            assert_eq!(pool.current_num_threads(), 4);
            let hits: [AtomicUsize; 4] = std::array::from_fn(|_| AtomicUsize::new(0));
            pool.broadcast(|ctx| {
                assert_eq!(ctx.num_threads(), 4);
                hits[ctx.index()].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }

        #[test]
        fn repeated_broadcasts_reuse_the_workers() {
            let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
            let total = AtomicU64::new(0);
            for round in 0..100u64 {
                pool.broadcast(|ctx| {
                    total.fetch_add(round * 10 + ctx.index() as u64, Ordering::Relaxed);
                });
            }
            // Sum over rounds of (30·round + 0+1+2).
            let expected: u64 = (0..100).map(|r| 30 * r + 3).sum();
            assert_eq!(total.load(Ordering::Relaxed), expected);
        }

        #[test]
        fn broadcast_observes_results_after_return() {
            // The blocking contract: worker writes are visible to the
            // broadcaster once broadcast() returns.
            let pool = ThreadPool::with_threads(8);
            let mut slots = vec![0u64; 8];
            let cells: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
            pool.broadcast(|ctx| {
                cells[ctx.index()].store(ctx.index() as u64 + 1, Ordering::Release);
            });
            for (s, c) in slots.iter_mut().zip(cells.iter()) {
                *s = c.load(Ordering::Acquire);
            }
            assert_eq!(slots, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        }

        #[test]
        fn zero_threads_means_available_parallelism() {
            let pool = ThreadPoolBuilder::new().build().unwrap();
            assert_eq!(pool.current_num_threads(), crate::max_threads());
        }

        #[test]
        fn drop_joins_cleanly() {
            for _ in 0..10 {
                let pool = ThreadPool::with_threads(2);
                pool.broadcast(|_| {});
                drop(pool);
            }
        }
    }
}
