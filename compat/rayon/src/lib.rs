//! Offline drop-in subset of the `rayon` API.
//!
//! The build environment has no registry access, so the workspace pins
//! this local implementation under the `rayon` name. It covers exactly
//! the combinators the repo uses — `par_iter().map().collect()/reduce()`
//! over slices and `par_chunks_mut().enumerate().for_each()` — with real
//! data parallelism on `std::thread::scope`: contiguous chunks of the
//! input are fanned over `available_parallelism()` OS threads. There is
//! no work stealing; for the coarse-grained frame/GEMM-slab workloads
//! here, static chunking is within noise of a real work-stealing pool.

use std::thread;

pub mod prelude {
    //! One-stop import mirroring `rayon::prelude`.
    pub use crate::{ParallelSliceMutExt, ParallelSliceRefExt};
}

/// Worker count: one thread per logical CPU.
fn max_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `data` into `workers` contiguous chunks, map each on its own
/// scoped thread, and return the per-chunk outputs in input order.
fn map_chunks<'a, T, U, F>(data: &'a [T], f: &F) -> Vec<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    let n = data.len();
    let workers = max_threads().min(n).max(1);
    if workers <= 1 {
        return vec![data.iter().map(f).collect()];
    }
    let chunk = n.div_ceil(workers);
    thread::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// `.par_iter()` on slices (and, via deref, `Vec`).
pub trait ParallelSliceRefExt<T: Sync> {
    /// Parallel shared-reference iterator.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSliceRefExt<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { data: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    data: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap { data: self.data, f }
    }
}

/// Mapped parallel iterator; terminal operations run the fan-out.
pub struct ParMap<'a, T, F> {
    data: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Collect mapped values, preserving input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        map_chunks(self.data, &self.f)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Fold mapped values with `op`, starting from `identity()`.
    ///
    /// `op` must be associative with `identity()` as neutral element
    /// (rayon's own contract); this implementation folds the per-thread
    /// partials left-to-right in input order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        map_chunks(self.data, &self.f)
            .into_iter()
            .flatten()
            .fold(identity(), op)
    }

    /// Run `f` for its effect on every element.
    pub fn for_each(self)
    where
        U: Send,
    {
        let _: Vec<U> = self.collect();
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMutExt<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { data: self, size }
    }
}

/// Parallel mutable-chunk iterator.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            data: self.data,
            size: self.size,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// Enumerated parallel mutable-chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    data: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> = self.data.chunks_mut(self.size).enumerate().collect();
        let workers = max_threads().min(chunks.len()).max(1);
        if workers <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        // Round-robin static assignment of chunks to workers.
        let mut bins: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, c) in chunks.into_iter().enumerate() {
            bins[i % workers].push(c);
        }
        let f = &f;
        thread::scope(|s| {
            for bin in bins {
                s.spawn(move || {
                    for item in bin {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| u64::from(x) * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &d)| d == i as u64 * 2));
    }

    #[test]
    fn map_reduce_sums() {
        let v: Vec<u64> = (1..=1000).collect();
        let s = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 500_500);
    }

    #[test]
    fn reduce_with_identity_factory() {
        let v: Vec<u64> = (0..97).collect();
        let (a, b) = v
            .par_iter()
            .map(|&x| (x, 1u64))
            .reduce(|| (0, 0), |l, r| (l.0 + r.0, l.1 + r.1));
        assert_eq!(b, 97);
        assert_eq!(a, 96 * 97 / 2);
    }

    #[test]
    fn chunks_mut_disjoint_writes() {
        let mut v = vec![0u64; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(idx, chunk)| {
            for x in chunk.iter_mut() {
                *x = idx as u64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 64) as u64);
        }
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut e: Vec<u32> = Vec::new();
        e.par_chunks_mut(8).enumerate().for_each(|(_, _)| panic!());
    }
}
