//! Antenna-count scaling study (the Sec. IV-D experiment): decode time of
//! the native CPU decoder vs the modeled FPGA accelerator from 4×4 up to
//! 20×20, against the 10 ms real-time budget.
//!
//! ```text
//! cargo run --release --example scaling_antennas [snr_db] [frames]
//! ```

use mimo_sd::prelude::*;
use sd_wireless::montecarlo::generate_frames;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let snr_db: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8.0);
    let frames_n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);

    let modulation = Modulation::Qam4;
    println!(
        "decode time vs antennas — 4-QAM, SNR {snr_db} dB, {frames_n} frames/point, budget {} ms\n",
        REAL_TIME_BUDGET.as_millis()
    );
    println!(
        "{:>6} {:>16} {:>16} {:>10} {:>12}",
        "MIMO", "CPU native (ms)", "FPGA model (ms)", "speedup", "real-time?"
    );

    for n in [4usize, 8, 10, 12, 15, 20] {
        let cfg = LinkConfig::square(n, modulation, snr_db).with_frames(frames_n);
        let constellation = Constellation::new(modulation);
        let (_, frames) = generate_frames(&cfg);

        // Native CPU wall-clock (the paper's "optimized CPU" role).
        let cpu: SphereDecoder<f32> = SphereDecoder::new(constellation.clone());
        let t0 = Instant::now();
        for f in &frames {
            std::hint::black_box(cpu.detect(f));
        }
        let cpu_ms = t0.elapsed().as_secs_f64() * 1e3 / frames_n as f64;

        // FPGA model time.
        let accel = FpgaSphereDecoder::new(FpgaConfig::optimized(modulation, n), constellation);
        let fpga_ms = frames
            .iter()
            .map(|f| accel.decode_with_report(f).decode_seconds)
            .sum::<f64>()
            * 1e3
            / frames_n as f64;

        println!(
            "{:>4}x{:<2} {:>16.3} {:>16.3} {:>9.1}x {:>12}",
            n,
            n,
            cpu_ms,
            fpga_ms,
            cpu_ms / fpga_ms,
            if fpga_ms <= 10.0 { "FPGA yes" } else { "no" }
        );
    }

    println!("\nThe complexity is exponential in the antenna count (Sec. IV-D):");
    println!("every added antenna multiplies the search tree by the modulation order.");
}
