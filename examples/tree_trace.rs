//! Walk the sphere-decoding search tree of a small system, step by step —
//! the worked example of the paper's Fig. 2/3 (three transmitters, BPSK,
//! fixed initial radius r = 10).
//!
//! ```text
//! cargo run --release --example tree_trace
//! ```

use mimo_sd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::pd::{eval_children, sorted_children, EvalStrategy, PdScratch};
use sd_core::preprocess::preprocess;

fn main() {
    let constellation = Constellation::new(Modulation::Bpsk);
    let mut rng = StdRng::seed_from_u64(20);
    let sigma2 = noise_variance(6.0, 3);
    let frame = FrameData::generate(3, 3, &constellation, sigma2, &mut rng);
    let prep = preprocess::<f64>(&frame, &constellation);

    println!("== Sphere decoder tree walk: 3 Tx, BPSK, r = 10 (Fig. 2/3) ==\n");
    println!(
        "transmitted symbols (antenna order): {:?}",
        frame.tx.indices
    );
    println!("initial squared radius r^2 = 100\n");

    let mut scratch = PdScratch::new(2, 3);
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut radius_sqr = 100.0f64;
    let mut visited = 0usize;
    let mut pruned = 0usize;

    // Explicit sorted-DFS with narration.
    let mut stack: Vec<(f64, Vec<usize>)> = vec![(0.0, vec![])];
    while let Some((pd, path)) = stack.pop() {
        let indent = "  ".repeat(path.len());
        if pd >= radius_sqr {
            println!("{indent}prune  node s={path:?} (PD {pd:.2} >= r^2 {radius_sqr:.2})");
            pruned += 1;
            continue;
        }
        visited += 1;
        if path.len() == 3 {
            println!("{indent}LEAF   s={path:?}  PD {pd:.2}  -> radius update {radius_sqr:.2} -> {pd:.2}");
            radius_sqr = pd;
            best = Some((pd, path));
            continue;
        }
        eval_children(&prep, &path, EvalStrategy::Gemm, &mut scratch);
        let children = sorted_children(&scratch.increments);
        println!(
            "{indent}expand s={path:?}  PD {pd:.2}  children PDs: {:?}",
            children
                .iter()
                .map(|&(inc, c)| format!("s{}={}:{:.2}", 2 - path.len(), c, pd + inc))
                .collect::<Vec<_>>()
        );
        // Push worst-first so the best child pops first (LIFO, Fig. 3).
        for &(inc, c) in children.iter().rev() {
            let mut child = path.clone();
            child.push(c);
            stack.push((pd + inc, child));
        }
    }

    let (best_pd, best_path) = best.expect("radius 10 always captures a leaf here");
    let mut indices = vec![0usize; 3];
    for (d, &c) in best_path.iter().enumerate() {
        indices[2 - d] = c;
    }
    println!("\nvisited {visited} nodes, pruned {pruned} list entries");
    println!("decoded (antenna order): {indices:?}  metric {best_pd:.3}");
    println!("ground truth:            {:?}", frame.tx.indices);

    // Cross-check against the library decoder with the same fixed radius.
    let reference: SphereDecoder<f64> =
        SphereDecoder::new(constellation.clone()).with_initial_radius(InitialRadius::Fixed(100.0));
    let d = reference.detect(&frame);
    assert_eq!(d.indices, indices, "trace must match the library decoder");
    println!("\nlibrary decoder agrees ✓");
}
