//! Drive the FPGA pipeline simulator: decode one frame per design
//! variant, print the Fig. 4 per-stage cycle breakdown, Table I resources
//! and Table II power/energy.
//!
//! ```text
//! cargo run --release --example fpga_pipeline_demo [n_antennas] [snr_db]
//! ```

use mimo_sd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let snr_db: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8.0);

    let modulation = Modulation::Qam4;
    let constellation = Constellation::new(modulation);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(280);
    let frame = FrameData::generate(n, n, &constellation, sigma2, &mut rng);

    println!("== Alveo U280 pipeline simulation: {n}x{n} {modulation}, {snr_db} dB ==\n");

    for config in [
        FpgaConfig::baseline(modulation, n),
        FpgaConfig::optimized(modulation, n),
    ] {
        let accel = FpgaSphereDecoder::new(config.clone(), constellation.clone());
        let report = accel.decode_with_report(&frame);
        let c = report.cycles;
        let total = c.total();

        println!(
            "---- {:?} design @ {} MHz ----",
            config.variant,
            config.freq_mhz()
        );
        println!(
            "decoded {:?} ({} expansions, {} leaves)",
            report.detection.indices,
            report.detection.stats.nodes_expanded,
            report.detection.stats.leaves_reached
        );
        println!("cycle breakdown:");
        for (stage, cycles) in [
            ("host transfer", c.host_transfer),
            ("prefetch", c.prefetch),
            ("GEMM engine", c.gemm),
            ("NORM unit", c.norm),
            ("sort network", c.sort),
            ("control/list", c.control),
        ] {
            let bar = "#".repeat((60 * cycles / total.max(1)) as usize);
            println!(
                "  {stage:<14} {cycles:>10} cyc {:>5.1}%  {bar}",
                100.0 * cycles as f64 / total as f64
            );
        }
        println!(
            "  total          {total:>10} cyc  -> decode time {:.3} ms",
            report.decode_seconds * 1e3
        );
        println!(
            "MST: peak {} live nodes, {} bits provisioned, fits on-chip: {}",
            report.mst_peak_nodes, report.mst_bits, report.mst_fits_onchip
        );

        let usage = estimate_resources(&config);
        println!(
            "resources: LUT {:.0}%  FF {:.0}%  DSP {:.0}%  BRAM {:.0}%  URAM {:.0}%  (2nd pipeline fits: {})",
            usage.luts * 100.0,
            usage.ffs * 100.0,
            usage.dsps * 100.0,
            usage.brams * 100.0,
            usage.urams * 100.0,
            usage.fits_second_pipeline()
        );
        let power = FpgaPowerModel::u280_kernel().power_watts(&usage, n);
        println!(
            "power: {power:.1} W  -> energy {:.3} mJ/decode\n",
            power * report.decode_seconds * 1e3
        );
    }

    let cpu_power = CpuPowerModel::ryzen_64core().power_watts(n, modulation.order());
    println!("reference CPU package power at this workload: {cpu_power:.0} W (Table II model)");
}
