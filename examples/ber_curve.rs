//! BER-vs-SNR curve for the sphere decoder (the Fig. 7 experiment).
//!
//! ```text
//! cargo run --release --example ber_curve [n_antennas] [frames_per_point]
//! ```
//!
//! Defaults to the paper's 10×10 4-QAM configuration over its
//! {4, 8, 12, 16, 20} dB grid and prints an ASCII log-scale chart.

use mimo_sd::prelude::*;
use sd_wireless::snr::PAPER_SNR_GRID_DB;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let frames: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3_000);

    let constellation = Constellation::new(Modulation::Qam4);
    let decoder: SphereDecoder<f32> = SphereDecoder::new(constellation.clone());

    println!("BER vs SNR — {n}x{n} MIMO, 4-QAM, {frames} frames/point\n");
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "SNR(dB)", "BER", "SER", "95% CI"
    );

    let mut curve = BerCurve::new("SD (sorted DFS)");
    for &snr_db in &PAPER_SNR_GRID_DB {
        let cfg = LinkConfig::square(n, Modulation::Qam4, snr_db).with_frames(frames);
        let stats = run_link_parallel(&cfg, |f| decoder.detect(f).indices);
        let point = BerPoint::from_counter(snr_db, &stats.errors);
        println!(
            "{:>8} {:>12.3e} {:>12.3e} [{:.1e}, {:.1e}]",
            snr_db, point.ber, point.ser, point.ber_lo, point.ber_hi
        );
        curve.push(point);
    }

    // ASCII rendering, one decade per row down to 1e-6.
    println!("\n  BER (log scale)");
    for decade in 0..6 {
        let hi = 10f64.powi(-decade);
        let lo = 10f64.powi(-(decade + 1));
        print!("  1e-{} |", decade + 1);
        for p in &curve.points {
            print!(
                "{}",
                if p.ber <= hi && p.ber > lo {
                    "  *  "
                } else {
                    "     "
                }
            );
        }
        println!();
    }
    print!("        ");
    for p in &curve.points {
        print!("{:^5}", p.snr_db);
    }
    println!(" dB");

    let below_paper_threshold = curve.points.iter().all(|p| p.ber < 1e-2);
    println!(
        "\npaper's claim (Fig. 7): BER < 1e-2 at every tested SNR — {}",
        if below_paper_threshold {
            "REPRODUCED"
        } else {
            "NOT reproduced under the per-receive-antenna SNR convention"
        }
    );
    if !below_paper_threshold {
        println!(
            "(the claim holds under the per-symbol convention of the paper's reference [1];\n\
             run `repro fig7` or see EXPERIMENTS.md for the side-by-side comparison)"
        );
    }
}
