//! Compare every detector on identical frames: accuracy, search effort,
//! and arithmetic cost (the trade-off the paper's introduction motivates:
//! linear = cheap/poor BER, non-linear = exact/expensive).
//!
//! ```text
//! cargo run --release --example detector_comparison [snr_db] [frames]
//! ```

use mimo_sd::prelude::*;
use sd_wireless::montecarlo::generate_frames;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let snr_db: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8.0);
    let frames_n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);

    let n = 6; // small enough for exhaustive ML as ground truth
    let cfg = LinkConfig::square(n, Modulation::Qam4, snr_db).with_frames(frames_n);
    let constellation = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);

    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(MrcDetector::new(constellation.clone())),
        Box::new(ZfDetector::new(constellation.clone())),
        Box::new(MmseDetector::new(constellation.clone())),
        Box::new(FixedComplexitySd::<f32>::new(constellation.clone())),
        Box::new(BfsGemmSd::<f32>::new(constellation.clone())),
        Box::new(SphereDecoder::<f32>::new(constellation.clone())),
        Box::new(BestFirstSd::<f32>::new(constellation.clone())),
        Box::new(SubtreeParallelSd::<f32>::new(constellation.clone())),
        Box::new(MlDetector::new(constellation.clone())),
    ];

    println!(
        "{n}x{n} MIMO, 4-QAM, SNR {snr_db} dB, {frames_n} frames (identical for all detectors)\n"
    );
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>14} {:>12}",
        "detector", "BER", "SER", "nodes/frame", "flops/frame", "vs ML bits"
    );

    // ML reference decisions for the "distance to optimal" column.
    let ml = MlDetector::new(constellation.clone());
    let ml_decisions: Vec<Vec<usize>> = frames.iter().map(|f| ml.detect(f).indices).collect();

    for det in &detectors {
        let mut errors = ErrorCounter::new();
        let mut nodes = 0u64;
        let mut flops = 0u64;
        let mut diff_from_ml = 0u64;
        for (frame, ml_dec) in frames.iter().zip(ml_decisions.iter()) {
            let d = det.detect(frame);
            errors.record(
                cfg.bits_per_frame() as u64,
                frame.bit_errors(&d.indices, &constellation),
                n as u64,
                frame.symbol_errors(&d.indices),
            );
            nodes += d.stats.nodes_generated;
            flops += d.stats.flops;
            diff_from_ml += d
                .indices
                .iter()
                .zip(ml_dec.iter())
                .map(|(&a, &b)| u64::from(constellation.bit_distance(a, b)))
                .sum::<u64>();
        }
        println!(
            "{:<28} {:>10.2e} {:>10.2e} {:>12.1} {:>14.0} {:>12}",
            det.name(),
            errors.ber(),
            errors.ser(),
            nodes as f64 / frames_n as f64,
            flops as f64 / frames_n as f64,
            diff_from_ml
        );
    }
    println!("\n'vs ML bits' = total bit disagreement with the exhaustive ML decisions");
    println!("(0 for every exact sphere decoder; >0 for linear detectors and FSD).");
}
