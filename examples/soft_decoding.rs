//! Soft-output decoding for coded systems: per-bit LLRs from the list
//! sphere decoder, compared across SNR and channel conditions.
//!
//! ```text
//! cargo run --release --example soft_decoding [n_antennas]
//! ```

use mimo_sd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);

    let constellation = Constellation::new(Modulation::Qam4);
    let soft: SoftSphereDecoder<f32> = SoftSphereDecoder::new(constellation.clone());

    println!("== soft-output (list) sphere decoding, {n}x{n} 4-QAM ==\n");

    for snr_db in [4.0, 10.0, 16.0] {
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(99);
        let frame = FrameData::generate(n, n, &constellation, sigma2, &mut rng);
        let s = soft.detect_soft(&frame);
        let tx_bits: Vec<u8> = frame.tx.bits.clone();
        println!("SNR {snr_db} dB — list of {} candidates", s.list_len);
        println!("  tx bits:   {:?}", tx_bits);
        println!("  hard bits: {:?}", s.hard_bits());
        let llr_str: Vec<String> = s.llrs.iter().map(|l| format!("{l:+.1}")).collect();
        println!("  LLRs:      [{}]", llr_str.join(", "));
        let weakest = s
            .llrs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(i, l)| (i, *l))
            .unwrap();
        println!(
            "  least-confident bit: #{} (LLR {:+.2}) — a channel decoder would focus there\n",
            weakest.0, weakest.1
        );
    }

    // Robustness: the same decoder under correlated fading.
    println!("-- correlated fading (Kronecker rho = 0.7) --");
    let model = ChannelModel::KroneckerExponential {
        rho_tx: 0.7,
        rho_rx: 0.7,
    };
    let mut rng = StdRng::seed_from_u64(100);
    let sigma2 = noise_variance(12.0, n);
    let channel = model.realize(n, n, &mut rng);
    let tx = TxFrame::random(n, &constellation, &mut rng);
    let y = channel.transmit(&tx.symbols, sigma2, &mut rng);
    let frame = FrameData {
        h: channel.matrix().clone(),
        y,
        noise_variance: sigma2,
        tx,
    };
    let s = soft.detect_soft(&frame);
    let errors = frame.bit_errors(&s.detection.indices, &constellation);
    let mean_conf = s.llrs.iter().map(|l| l.abs()).sum::<f64>() / s.llrs.len() as f64;
    println!(
        "decoded with {errors} bit errors; mean |LLR| {mean_conf:.2} (lower than iid: correlation \
         eats confidence); search used {} nodes",
        s.detection.stats.nodes_generated
    );
}
