//! Quickstart: decode one 4×4 16-QAM frame and a short burst, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mimo_sd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- 1. System model: 4×4 MIMO, 16-QAM, 12 dB SNR.
    let n = 4;
    let snr_db = 12.0;
    let constellation = Constellation::new(Modulation::Qam16);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(2023);

    println!("== mimo-sd quickstart ==");
    println!(
        "{n}x{n} MIMO, {}, SNR {snr_db} dB (sigma^2 = {sigma2:.3})\n",
        constellation.modulation()
    );

    // ---- 2. One channel use: random bits -> symbols -> y = Hs + n.
    let frame = FrameData::generate(n, n, &constellation, sigma2, &mut rng);
    println!("transmitted bits:    {:?}", frame.tx.bits);
    println!("transmitted indices: {:?}", frame.tx.indices);

    // ---- 3. Decode with the paper's sphere decoder (sorted DFS + GEMM).
    let decoder: SphereDecoder<f32> = SphereDecoder::new(constellation.clone());
    let detection = decoder.detect(&frame);
    println!("decoded indices:     {:?}", detection.indices);
    println!(
        "search: {} nodes expanded, {} generated, {} leaves, {:.1}% of the full tree",
        detection.stats.nodes_expanded,
        detection.stats.nodes_generated,
        detection.stats.leaves_reached,
        100.0 * detection.stats.explored_fraction(constellation.order(), n),
    );
    let errors = frame.bit_errors(&detection.indices, &constellation);
    println!(
        "bit errors this frame: {errors} / {}\n",
        frame.tx.bits.len()
    );

    // ---- 4. A short Monte-Carlo burst for a BER estimate.
    let cfg = LinkConfig::square(n, Modulation::Qam16, snr_db).with_frames(2_000);
    let stats = run_link(&cfg, |f| decoder.detect(f).indices);
    println!(
        "burst of {} frames: BER = {:.2e} ({} bit errors / {} bits)",
        cfg.frames,
        stats.ber(),
        stats.errors.bit_errors,
        stats.errors.bits
    );
    println!(
        "mean decode time {:.1} us/frame (real-time budget: {} ms)",
        stats.mean_decode_time().as_secs_f64() * 1e6,
        REAL_TIME_BUDGET.as_millis()
    );
}
