//! Serve demo: run the deadline-aware detection runtime under a paced
//! closed-loop load and watch the degradation ladder defend the paper's
//! 10 ms real-time line.
//!
//! ```text
//! cargo run --release --example serve_demo            # full demo
//! cargo run --release --example serve_demo -- --smoke # tiny CI smoke run
//! ```
//!
//! Both modes finish by rendering the final [`sd_serve::MetricsSnapshot`]
//! through the export surfaces — Prometheus text exposition and a JSON
//! line — and the smoke mode self-checks the JSON with
//! [`sd_serve::validate_json`], exiting non-zero on any violation.

use sd_core::SphereDecoder;
use sd_serve::{
    build_requests, json_line, prometheus_text, run_frame_load, run_load, validate_json,
    ExportFormat, FrameLoadConfig, FrameLoadReport, LadderConfig, LoadConfig, LoadReport,
    MetricsSnapshot, RejectReason, ServeConfig, ServeRuntime, Tier, TierCostClass,
};
use sd_wireless::{Constellation, GridConfig, Modulation, REAL_TIME_BUDGET};
use std::time::Duration;

fn show(label: &str, r: &LoadReport) {
    println!("-- {label} --");
    println!(
        "  offered {} | served {} | shed {} | throughput {:.0}/s",
        r.offered, r.served, r.shed, r.throughput_hz
    );
    println!(
        "  latency p50 {:.0} us, p99 {:.0} us | deadline misses {:.1}%",
        r.p50_latency_us,
        r.p99_latency_us,
        100.0 * r.deadline_miss_rate
    );
    let tiers: Vec<String> = r
        .tiers
        .iter()
        .map(|(label, n)| format!("{label}={n}"))
        .collect();
    println!(
        "  tiers {} | BER {:.2e} | mean batch {:.1}",
        tiers.join(" "),
        r.ber(),
        r.snapshot.mean_batch_size
    );
    // Cost-model validation: how far the EWMA prediction the ladder acted
    // on was from the decode time actually measured, per tier.
    for t in &r.snapshot.tiers {
        if t.served > 0 {
            println!(
                "  cost model [{}]: |predicted - actual| p50 {:.0} us, p99 {:.0} us over {} decodes",
                t.label, t.p50_predict_err_us, t.p99_predict_err_us, t.served
            );
        }
    }
    println!(
        "  search: {} nodes generated across served requests\n",
        r.stats.nodes_generated
    );
}

fn show_frames(label: &str, r: &FrameLoadReport) {
    println!("-- {label} --");
    println!(
        "  frames offered {} | served {} | shed {} | {:.0} subcarriers/s",
        r.offered_frames, r.served_frames, r.shed_frames, r.throughput_hz
    );
    println!(
        "  frame latency p50 {:.0} us, p99 {:.0} us | {} QRs for {} subcarriers \
         ({:.1}x amortization) | BER {:.2e}\n",
        r.p50_latency_us,
        r.p99_latency_us,
        r.prep_factors,
        r.subcarriers,
        r.prep_amortization(),
        r.ber()
    );
}

fn show_exports(snapshot: &MetricsSnapshot) {
    println!("-- metrics export: Prometheus text exposition --");
    print!("{}", prometheus_text(snapshot));
    println!("\n-- metrics export: JSON line --");
    println!("{}", json_line(snapshot));
}

/// Tiny deterministic run for CI: exercise the runtime end to end,
/// render both export formats, and machine-check the JSON line. Any
/// violated invariant panics, so the process exits non-zero on failure.
fn smoke() {
    let cfg = LoadConfig {
        n_tx: 4,
        n_rx: 4,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![8.0, 12.0],
        n_requests: 64,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0x5340CE,
    };
    let c = Constellation::new(cfg.modulation);
    // The periodic reporter emits JSON lines on stderr while the run is
    // live; stdout stays reserved for the validated final snapshot. Two
    // shards with stealing on, so the smoke exercises the sharded
    // topology and its per-shard export rows end to end.
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(2)
            .with_shards(2)
            .with_queue_capacity(2 * cfg.n_requests)
            .with_reporter(Duration::from_millis(20), ExportFormat::JsonLines),
        c.clone(),
    );
    let report = run_load(&rt, &cfg, &c);
    let (snapshot, _, _) = rt.shutdown();

    show("smoke run (4x4 QAM4, 64 requests, 2 shards)", &report);
    show_exports(&snapshot);

    assert_eq!(report.served, cfg.n_requests as u64, "smoke must serve all");
    let line = json_line(&snapshot);
    validate_json(&line).expect("JSON export must parse");
    assert!(
        snapshot.deadline_missed <= snapshot.served,
        "missed ({}) must never exceed served ({})",
        snapshot.deadline_missed,
        snapshot.served
    );
    // Shard topology invariants: the export must carry one row per shard
    // and the per-shard counters must partition the global ones.
    assert_eq!(snapshot.n_shards, 2, "smoke runs the sharded topology");
    assert_eq!(snapshot.shards.len(), 2);
    assert!(snapshot.host_cores >= 1, "host cores recorded");
    let routed: u64 = snapshot.shards.iter().map(|s| s.routed).sum();
    let shard_served: u64 = snapshot.shards.iter().map(|s| s.served).sum();
    assert_eq!(routed, snapshot.accepted, "routing partitions admission");
    assert_eq!(shard_served, snapshot.served, "shards partition serving");
    // Reactive serving never issues a decode budget, so the quality rows
    // must read all-exact here.
    assert_eq!(
        snapshot.quality_exact + snapshot.budget_exhausted,
        snapshot.served,
        "quality counters must close over served requests"
    );
    for needle in [
        "\"host_cores\":",
        "\"n_shards\":2",
        "\"shards\":[{",
        "\"quality_exact\":",
        "\"budget_exhausted\":0",
    ] {
        assert!(line.contains(needle), "JSON export missing {needle}");
    }
    let prom = prometheus_text(&snapshot);
    for needle in [
        "sd_serve_served_total",
        "sd_serve_deadline_miss_rate",
        "sd_serve_tier_served_total{tier=",
        "sd_serve_tier_predict_err_us{tier=",
        "sd_serve_host_cores",
        "sd_serve_n_shards 2",
        "sd_serve_shard_routed_total{shard=\"0\"}",
        "sd_serve_shard_routed_total{shard=\"1\"}",
        "sd_serve_shard_served_total{shard=\"0\"}",
        "sd_serve_shard_prep_hits_total{shard=\"0\"}",
        "sd_serve_shard_queue_depth{shard=\"1\"}",
        "sd_serve_quality_exact_total",
        "sd_serve_budget_exhausted_total 0",
    ] {
        assert!(prom.contains(needle), "Prometheus export missing {needle}");
    }
    println!(
        "smoke OK: {} served across {} shards, exports validated",
        snapshot.served, snapshot.n_shards
    );

    // Second pass: the frame path. A small resource grid served as
    // whole-frame requests, with the frame rows of both exports
    // machine-checked the same way.
    let fcfg = FrameLoadConfig {
        grid: GridConfig::new(16, 4, 4, 4)
            .with_coherence(8, 2)
            .with_snr(12.0, 2.0),
        modulation: Modulation::Qam4,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0x5340CF,
    };
    let c = Constellation::new(fcfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(8),
        c.clone(),
    );
    let report = run_frame_load(&rt, &fcfg, &c);
    let (snapshot, _, _) = rt.shutdown();

    show_frames("frame smoke run (16x4 grid, 4x4 QAM4)", &report);
    show_exports(&snapshot);

    assert_eq!(
        report.served_frames, report.offered_frames,
        "frame smoke must serve every frame"
    );
    assert_eq!(snapshot.frames_served, report.served_frames);
    assert_eq!(snapshot.frame_subcarriers, report.subcarriers);
    assert!(
        snapshot.prep_amortization >= 1.0,
        "coherence blocks must amortize preparation (got {})",
        snapshot.prep_amortization
    );
    assert_eq!(
        snapshot.prep_cache_hits + snapshot.prep_cache_misses + snapshot.prep_cache_bypass,
        snapshot.served,
        "prep accounting must close over frame traffic"
    );
    let line = json_line(&snapshot);
    validate_json(&line).expect("frame JSON export must parse");
    for needle in ["\"frames_served\":", "\"prep_amortization\":"] {
        assert!(line.contains(needle), "JSON export missing {needle}");
    }
    let prom = prometheus_text(&snapshot);
    for needle in [
        "sd_serve_frames_served_total",
        "sd_serve_frame_subcarriers_total",
        "sd_serve_prep_amortization",
        "sd_serve_frame_latency_us",
    ] {
        assert!(prom.contains(needle), "Prometheus export missing {needle}");
    }
    println!(
        "frame smoke OK: {} frames / {} subcarriers served, exports validated",
        snapshot.frames_served, snapshot.frame_subcarriers
    );

    // Third pass: the anytime ladder under already-expired deadlines.
    // Every decode trips its wall-clock backstop and returns a flagged
    // best-so-far answer, so this exercises the truncation path end to
    // end and machine-checks the quality rows of both export formats
    // while they are nonzero.
    let acfg = LoadConfig {
        deadline: Duration::ZERO,
        n_requests: 32,
        seed: 0x5340D0,
        ..cfg
    };
    let c = Constellation::new(acfg.modulation);
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(2 * acfg.n_requests)
            .with_ladder(LadderConfig {
                enabled: true,
                kbest_k: 16,
                anytime: true,
            }),
        vec![Tier::new(
            "exact",
            TierCostClass::Adaptive,
            Box::new(SphereDecoder::<f64>::new(c.clone())),
        )],
    );
    let report = run_load(&rt, &acfg, &c);
    let (snapshot, _, _) = rt.shutdown();

    show(
        "anytime smoke run (expired deadlines, budgets trip)",
        &report,
    );
    show_exports(&snapshot);

    assert_eq!(
        report.served, acfg.n_requests as u64,
        "anytime smoke must serve (not shed) every request"
    );
    assert_eq!(
        snapshot.quality_exact + snapshot.budget_exhausted,
        snapshot.served,
        "quality counters must close over served requests"
    );
    assert!(
        snapshot.budget_exhausted > 0,
        "expired deadlines must truncate under the anytime ladder"
    );
    assert!(
        report.truncated_rate() > 0.0,
        "load report must surface the truncated fraction"
    );
    let line = json_line(&snapshot);
    validate_json(&line).expect("anytime JSON export must parse");
    for needle in [
        format!("\"quality_exact\":{}", snapshot.quality_exact),
        format!("\"budget_exhausted\":{}", snapshot.budget_exhausted),
    ] {
        assert!(line.contains(&needle), "JSON export missing {needle}");
    }
    let prom = prometheus_text(&snapshot);
    for needle in [
        format!("sd_serve_quality_exact_total {}", snapshot.quality_exact),
        format!(
            "sd_serve_budget_exhausted_total {}",
            snapshot.budget_exhausted
        ),
    ] {
        assert!(prom.contains(&needle), "Prometheus export missing {needle}");
    }
    println!(
        "anytime smoke OK: {}/{} truncated at the budget, quality counters close",
        snapshot.budget_exhausted, snapshot.served
    );

    // Fourth pass: predictive admission control. Warm the drain-rate
    // estimate with generous deadlines, freeze the worker, and offer
    // doomed (nanosecond-deadline) requests: all but the first must shed
    // as PredictedLate, and both export formats must carry the nonzero
    // predictive-shed rows.
    let pcfg = LoadConfig {
        n_requests: 32,
        seed: 0x5340D1,
        deadline: REAL_TIME_BUDGET,
        ..acfg
    };
    let c = Constellation::new(pcfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(2 * pcfg.n_requests)
            .with_predictive_admission(true),
        c.clone(),
    );
    let report = run_load(&rt, &pcfg, &c);
    assert_eq!(
        report.served, pcfg.n_requests as u64,
        "generous deadlines must all be admitted and served"
    );
    rt.pause();
    let mut shed = 0u64;
    for req in build_requests(
        &LoadConfig {
            deadline: Duration::from_nanos(1),
            ..pcfg.clone()
        },
        &c,
    ) {
        if let Err(rej) = rt.submit(req) {
            assert!(
                matches!(rej.reason, RejectReason::PredictedLate { .. }),
                "doomed requests shed on prediction, got {:?}",
                rej.reason
            );
            shed += 1;
        }
    }
    assert!(shed > 0, "the frozen backlog must trip the admission gate");
    rt.resume();
    let (snapshot, _, _) = rt.shutdown();

    assert_eq!(snapshot.rejected_predicted, shed);
    let line = json_line(&snapshot);
    validate_json(&line).expect("predictive JSON export must parse");
    for needle in [
        format!("\"rejected_predicted_late\":{shed}"),
        "\"frames_rejected_predicted_late\":0".to_string(),
    ] {
        assert!(line.contains(&needle), "JSON export missing {needle}");
    }
    let prom = prometheus_text(&snapshot);
    for needle in [
        format!("sd_serve_rejected_predicted_late_total {shed}"),
        "sd_serve_frames_rejected_predicted_late_total 0".to_string(),
    ] {
        assert!(prom.contains(&needle), "Prometheus export missing {needle}");
    }
    println!("predictive smoke OK: {shed} doomed requests shed at admission, exports validated");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let base = LoadConfig {
        n_tx: 8,
        n_rx: 8,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![6.0, 10.0, 14.0],
        n_requests: 3000,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0xD3110,
    };
    let c = Constellation::new(base.modulation);
    println!(
        "== sd-serve demo: 8x8 QAM4, mixed SNR, {} ms deadline ==\n",
        REAL_TIME_BUDGET.as_millis()
    );

    // 1. Saturation probe: how fast can this host decode exactly?
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(4)
            .with_queue_capacity(base.n_requests)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
                anytime: false,
            }),
        c.clone(),
    );
    let probe = run_load(&rt, &base, &c);
    rt.shutdown();
    let cap_hz = probe.throughput_hz;
    show(
        &format!("saturation probe ({cap_hz:.0} exact decodes/s)"),
        &probe,
    );

    // 2. Overload at 2x capacity, bounded queue, ladder on: the runtime
    //    sheds what it must, degrades what it can, and keeps most served
    //    requests inside the deadline.
    let overload = LoadConfig {
        offered_rate_hz: 2.0 * cap_hz,
        ..base.clone()
    };
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(4)
            .with_queue_capacity(2048),
        c.clone(),
    );
    let report = run_load(&rt, &overload, &c);
    let (snapshot, _, _) = rt.shutdown();
    show("2x overload, degradation ladder on", &report);
    println!(
        "final runtime metrics: {} batches, p99 queue wait {:.0} us, rejected {} (full) / {} (shutdown)",
        snapshot.batches,
        snapshot.p99_queue_wait_us,
        snapshot.rejected_full,
        snapshot.rejected_shutdown
    );
    println!();
    show_exports(&snapshot);
}
