//! Serve demo: run the deadline-aware detection runtime under a paced
//! closed-loop load and watch the degradation ladder defend the paper's
//! 10 ms real-time line.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use sd_serve::{run_load, LadderConfig, LoadConfig, LoadReport, ServeConfig, ServeRuntime};
use sd_wireless::{Constellation, Modulation, REAL_TIME_BUDGET};

fn show(label: &str, r: &LoadReport) {
    println!("-- {label} --");
    println!(
        "  offered {} | served {} | shed {} | throughput {:.0}/s",
        r.offered, r.served, r.shed, r.throughput_hz
    );
    println!(
        "  latency p50 {:.0} us, p99 {:.0} us | deadline misses {:.1}%",
        r.p50_latency_us,
        r.p99_latency_us,
        100.0 * r.deadline_miss_rate
    );
    let tiers: Vec<String> = r
        .tiers
        .iter()
        .map(|(label, n)| format!("{label}={n}"))
        .collect();
    println!(
        "  tiers {} | BER {:.2e} | mean batch {:.1}",
        tiers.join(" "),
        r.ber(),
        r.snapshot.mean_batch_size
    );
    // Cost-model validation: how far the EWMA prediction the ladder acted
    // on was from the decode time actually measured, per tier.
    for t in &r.snapshot.tiers {
        if t.served > 0 {
            println!(
                "  cost model [{}]: |predicted - actual| p50 {:.0} us, p99 {:.0} us over {} decodes",
                t.label, t.p50_predict_err_us, t.p99_predict_err_us, t.served
            );
        }
    }
    println!(
        "  search: {} nodes generated across served requests\n",
        r.stats.nodes_generated
    );
}

fn main() {
    let base = LoadConfig {
        n_tx: 8,
        n_rx: 8,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![6.0, 10.0, 14.0],
        n_requests: 3000,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0xD3110,
    };
    let c = Constellation::new(base.modulation);
    println!(
        "== sd-serve demo: 8x8 QAM4, mixed SNR, {} ms deadline ==\n",
        REAL_TIME_BUDGET.as_millis()
    );

    // 1. Saturation probe: how fast can this host decode exactly?
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(4)
            .with_queue_capacity(base.n_requests)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
            }),
        c.clone(),
    );
    let probe = run_load(&rt, &base, &c);
    rt.shutdown();
    let cap_hz = probe.throughput_hz;
    show(
        &format!("saturation probe ({cap_hz:.0} exact decodes/s)"),
        &probe,
    );

    // 2. Overload at 2x capacity, bounded queue, ladder on: the runtime
    //    sheds what it must, degrades what it can, and keeps most served
    //    requests inside the deadline.
    let overload = LoadConfig {
        offered_rate_hz: 2.0 * cap_hz,
        ..base.clone()
    };
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(4)
            .with_queue_capacity(2048),
        c.clone(),
    );
    let report = run_load(&rt, &overload, &c);
    let (snapshot, _) = rt.shutdown();
    show("2x overload, degradation ladder on", &report);
    println!(
        "final runtime metrics: {} batches, p99 queue wait {:.0} us, rejected {} (full) / {} (shutdown)",
        snapshot.batches,
        snapshot.p99_queue_wait_us,
        snapshot.rejected_full,
        snapshot.rejected_shutdown
    );
}
