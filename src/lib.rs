//! # mimo-sd — sphere-decoding signal detection for large MIMO systems
//!
//! A from-scratch Rust reproduction of *"Signal Detection for Large MIMO
//! Systems Using Sphere Decoding on FPGAs"* (Hassan, Dabah, Ltaief, Fahmy —
//! IPPS 2023): the GEMM-based sphere decoder with Best-First tree
//! traversal, its CPU/GPU/linear baselines, and cycle-approximate
//! architectural models of the Alveo U280 accelerator and the A100 GPU
//! baseline.
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`sd_math`] | complex linear algebra: GEMM, QR, Cholesky, RNG, `f16` |
//! | [`sd_wireless`] | constellations, Rayleigh channel, AWGN, Monte-Carlo link |
//! | [`sd_core`] | the sphere decoder variants and linear detectors |
//! | [`sd_fpga`] | the U280 pipeline simulator, resource & power models |
//! | [`sd_gpu`] | the A100 GEMM-BFS execution model |
//!
//! ## Quickstart
//!
//! ```
//! use mimo_sd::prelude::*;
//! use rand::SeedableRng;
//!
//! // A 4×4 16-QAM link at 12 dB.
//! let constellation = Constellation::new(Modulation::Qam16);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let sigma2 = noise_variance(12.0, 4);
//! let frame = FrameData::generate(4, 4, &constellation, sigma2, &mut rng);
//!
//! // Decode with the paper's sorted-DFS GEMM sphere decoder.
//! let decoder: SphereDecoder<f32> = SphereDecoder::new(constellation.clone());
//! let detection = decoder.detect(&frame);
//! assert_eq!(detection.indices.len(), 4);
//! ```

#![warn(missing_docs)]

pub use sd_core;
pub use sd_fpga;
pub use sd_gpu;
pub use sd_math;
pub use sd_wireless;

/// One-stop imports for applications.
pub mod prelude {
    pub use sd_core::{
        batch::{batch_stats, decode_batch, decode_batch_reused, WorkspaceDetector},
        BestFirstSd, BfsGemmSd, ColumnOrdering, Detection, DetectionStats, Detector, EvalStrategy,
        FixedComplexitySd, InitialRadius, KBestSd, MetricKind, MlDetector, MmseDetector,
        MrcDetector, ParallelSphereDecoder, QuantizedFsd, QuantizedKBestSd, QuantizedSphereDecoder,
        RvdSphereDecoder, SearchWorkspace, SoftDetection, SoftSphereDecoder, SphereDecoder,
        StatPruningSd, SubtreeParallelSd, ZfDetector,
    };
    pub use sd_fpga::{
        estimate_resources, CpuPowerModel, FpgaConfig, FpgaPowerModel, FpgaSphereDecoder,
        MultiPipeline, ResourceUsage, Variant,
    };
    pub use sd_gpu::{A100Model, GpuSphereDecoder};
    pub use sd_math::{Complex, Float, Matrix, C32, C64, F16};
    pub use sd_wireless::{
        corrupt_csi, noise_variance, run_link, run_link_parallel, BerCurve, BerPoint, Channel,
        ChannelModel, Constellation, ErrorCounter, FrameData, LinkConfig, LinkStats, Modulation,
        SnrConvention, TxFrame, REAL_TIME_BUDGET,
    };
}
