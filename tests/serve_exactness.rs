//! The serving layer adds scheduling, not numerics: with degradation
//! disabled and a single seeded worker, every decision served by
//! `sd-serve` is **bit-identical** — indices *and* search statistics — to
//! driving the same engine directly through the
//! [`sd_core::PreparedDetector`] entry points on the same frames. The
//! check is parameterized over *every* tier of the registry (stock plus a
//! best-first rung), since each one rides the same unified decode path.

use sd_core::{
    BestFirstSd, Detection, Detector, PrepScratch, Prepared, PreparedDetector, SearchWorkspace,
    SphereDecoder,
};
use sd_serve::{
    build_requests, default_registry, LadderConfig, LoadConfig, ServeConfig, ServeRuntime, Tier,
    TierCostClass,
};
use sd_wireless::{Constellation, Modulation, REAL_TIME_BUDGET};
use std::collections::HashMap;
use std::time::Duration;

fn workload() -> LoadConfig {
    LoadConfig {
        n_tx: 6,
        n_rx: 6,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![4.0, 8.0, 16.0],
        n_requests: 45,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0xE1AC,
    }
}

/// Every tier under test: the stock registry plus a best-first rung, so
/// the parameterization spans adaptive, fixed, and linear cost classes.
fn tiers_under_test(c: &Constellation) -> Vec<Tier> {
    let mut tiers = default_registry(c, &LadderConfig::default());
    tiers.push(Tier::new(
        "best-first",
        TierCostClass::Adaptive,
        Box::new(BestFirstSd::<f64>::new(c.clone())),
    ));
    tiers
}

/// Ground truth for one tier: drive its engine directly (prepare →
/// initial radius → decode-into), exactly the calls the worker makes.
fn direct_decodes(
    detector: &dyn PreparedDetector<f64>,
    cfg: &LoadConfig,
    c: &Constellation,
) -> Vec<Detection> {
    let mut scratch = PrepScratch::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    build_requests(cfg, c)
        .iter()
        .map(|req| {
            let mut det = Detection::default();
            detector.prepare_frame_into(&req.frame, &mut scratch, &mut prep);
            let r2 = detector.initial_radius_sqr(req.frame.h.rows(), req.frame.noise_variance);
            detector.detect_prepared_into(&prep, r2, &mut ws, &mut det);
            det
        })
        .collect()
}

/// Serve the workload through a single-tier registry (1 worker, ladder
/// off) and compare each response bit-for-bit against `truth`.
fn assert_served_matches(tier: Tier, truth: &[Detection], cfg: &LoadConfig, c: &Constellation) {
    let label = tier.label.to_string();
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(cfg.n_requests)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
                anytime: false,
            }),
        vec![tier],
    );
    for req in build_requests(cfg, c) {
        rt.submit(req).expect("queue sized for the whole stream");
    }
    let mut served = HashMap::new();
    for _ in 0..cfg.n_requests {
        let resp = rt
            .collect_timeout(Duration::from_secs(10))
            .expect("runtime stalled");
        assert_eq!(resp.tier, 0, "ladder disabled: tier 0 only");
        assert_eq!(&*resp.tier_label, label, "tier label");
        served.insert(resp.request.id, resp);
    }
    let (snap, leftover, _) = rt.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(snap.served, cfg.n_requests as u64);
    assert_eq!(snap.tier_served(&label), cfg.n_requests as u64);

    for (i, truth) in truth.iter().enumerate() {
        let resp = &served[&(i as u64)];
        assert_eq!(
            resp.detection.indices, truth.indices,
            "{label} request {i}: decisions differ"
        );
        assert_eq!(
            resp.detection.stats, truth.stats,
            "{label} request {i}: search statistics differ"
        );
        assert_eq!(
            resp.detection.stats.final_radius_sqr.to_bits(),
            truth.stats.final_radius_sqr.to_bits(),
            "{label} request {i}: solution metric differs in bits"
        );
    }
}

#[test]
fn served_decisions_are_bit_identical_to_direct_decode_for_every_tier() {
    let cfg = workload();
    let c = Constellation::new(cfg.modulation);
    // Compute all ground truths first, then consume the tiers one
    // single-tier runtime at a time.
    let truths: Vec<Vec<Detection>> = tiers_under_test(&c)
        .iter()
        .map(|t| direct_decodes(&*t.detector, &cfg, &c))
        .collect();
    for (tier, truth) in tiers_under_test(&c).into_iter().zip(&truths) {
        assert_served_matches(tier, truth, &cfg, &c);
    }
}

#[test]
fn engine_direct_decode_matches_legacy_detector_api() {
    // Anchor the ground-truth helper itself: for the exact tier it must
    // reproduce the plain `Detector::detect` path bit-for-bit.
    let cfg = workload();
    let c = Constellation::new(cfg.modulation);
    let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
    let via_engine = direct_decodes(&sd, &cfg, &c);
    for (req, truth) in build_requests(&cfg, &c).iter().zip(&via_engine) {
        let legacy = sd.detect(&req.frame);
        assert_eq!(legacy.indices, truth.indices);
        assert_eq!(legacy.stats, truth.stats);
    }
}
