//! The serving layer adds scheduling, not numerics: with degradation
//! disabled and a single seeded worker, every decision served by
//! `sd-serve` is **bit-identical** — indices *and* search statistics — to
//! calling the sphere decoder directly on the same frame.

use sd_core::{Detector, SphereDecoder};
use sd_serve::{build_requests, DecodeTier, LadderConfig, LoadConfig, ServeConfig, ServeRuntime};
use sd_wireless::{Constellation, Modulation, REAL_TIME_BUDGET};
use std::collections::HashMap;
use std::time::Duration;

#[test]
fn served_decisions_are_bit_identical_to_direct_decode() {
    let cfg = LoadConfig {
        n_tx: 6,
        n_rx: 6,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![4.0, 8.0, 16.0],
        n_requests: 45,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0xE1AC,
    };
    let c = Constellation::new(cfg.modulation);

    // Ground truth: direct decode of the identical seeded request stream.
    let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
    let direct: Vec<_> = build_requests(&cfg, &c)
        .iter()
        .map(|req| sd.detect(&req.frame))
        .collect();

    // Served: one worker, ladder off, generous queue.
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(cfg.n_requests)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
            }),
        c.clone(),
    );
    for req in build_requests(&cfg, &c) {
        rt.submit(req).expect("queue sized for the whole stream");
    }
    let mut served = HashMap::new();
    for _ in 0..cfg.n_requests {
        let resp = rt
            .collect_timeout(Duration::from_secs(10))
            .expect("runtime stalled");
        assert_eq!(resp.tier, DecodeTier::Exact, "ladder disabled");
        served.insert(resp.request.id, resp);
    }
    let (snap, leftover) = rt.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(snap.served, cfg.n_requests as u64);

    for (i, truth) in direct.iter().enumerate() {
        let resp = &served[&(i as u64)];
        assert_eq!(
            resp.detection.indices, truth.indices,
            "request {i}: decisions differ"
        );
        assert_eq!(
            resp.detection.stats, truth.stats,
            "request {i}: search statistics differ"
        );
        assert_eq!(
            resp.detection.stats.final_radius_sqr.to_bits(),
            truth.stats.final_radius_sqr.to_bits(),
            "request {i}: solution metric differs in bits"
        );
    }
}
