//! Channel-coherent preparation caching in the serving layer.
//!
//! Requests within a coherence block share one channel matrix `H`; the
//! worker's [`sd_serve::PrepCache`] computes the QR/ordering half of
//! preparation once per block and replays it from cache for the rest.
//! The cache is an *optimization with a bit-identity contract*: served
//! decisions (indices and every statistic) must match the uncached
//! runtime exactly, and every served request must be counted as exactly
//! one of cache hit / miss / bypass.

use sd_core::{Detection, PrepScratch, Prepared, PreparedDetector, SearchWorkspace};
use sd_serve::{
    build_requests, default_registry, DetectionRequest, LadderConfig, LoadConfig, MetricsSnapshot,
    ServeConfig, ServeRuntime, Tier,
};
use sd_wireless::{Constellation, Modulation, REAL_TIME_BUDGET};
use std::collections::HashMap;

fn workload() -> LoadConfig {
    LoadConfig {
        n_tx: 6,
        n_rx: 6,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![4.0, 8.0, 16.0],
        n_requests: 45,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0xC0_4E7E,
    }
}

/// Requests grouped into coherence blocks: every block of `block` consecutive
/// requests shares the channel matrix of its first member (fresh `y` each).
fn coherent_requests(cfg: &LoadConfig, c: &Constellation, block: usize) -> Vec<DetectionRequest> {
    let mut reqs = build_requests(cfg, c);
    for i in 0..reqs.len() {
        if i % block != 0 {
            let leader_h = reqs[i - i % block].frame.h.clone();
            reqs[i].frame.h = leader_h;
        }
    }
    reqs
}

/// Serve `reqs` through a single exact-SD tier (1 worker, ladder off) with
/// the given prep-cache capacity; return detections by id plus the final
/// metrics snapshot.
fn serve_all(
    reqs: Vec<DetectionRequest>,
    c: &Constellation,
    cache_capacity: usize,
    registry: Option<Vec<Tier>>,
) -> (HashMap<u64, Detection>, MetricsSnapshot) {
    let n = reqs.len();
    let tiers = registry.unwrap_or_else(|| {
        let mut t = default_registry(c, &LadderConfig::default());
        t.truncate(1); // exact SD only
        t
    });
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(n)
            .with_prep_cache(cache_capacity)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
                anytime: false,
            }),
        tiers,
    );
    for req in reqs {
        rt.submit(req).expect("queue sized for the whole stream");
    }
    let mut served = HashMap::new();
    for _ in 0..n {
        let resp = rt
            .collect_timeout(std::time::Duration::from_secs(10))
            .expect("runtime stalled");
        served.insert(resp.request.id, resp.detection);
    }
    let (snap, leftover, _) = rt.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(snap.served, n as u64);
    (served, snap)
}

/// Ground truth: drive the tier's engine directly on the same requests.
fn direct_decodes(
    detector: &dyn PreparedDetector<f64>,
    reqs: &[DetectionRequest],
) -> HashMap<u64, Detection> {
    let mut scratch = PrepScratch::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    reqs.iter()
        .map(|req| {
            let mut det = Detection::default();
            detector.prepare_frame_into(&req.frame, &mut scratch, &mut prep);
            let r2 = detector.initial_radius_sqr(req.frame.h.rows(), req.frame.noise_variance);
            detector.detect_prepared_into(&prep, r2, &mut ws, &mut det);
            (req.id, det)
        })
        .collect()
}

fn assert_same_detections(a: &HashMap<u64, Detection>, b: &HashMap<u64, Detection>, what: &str) {
    assert_eq!(a.len(), b.len());
    for (id, da) in a {
        let db = &b[id];
        assert_eq!(
            da.indices, db.indices,
            "{what}: request {id} decisions differ"
        );
        assert_eq!(da.stats, db.stats, "{what}: request {id} statistics differ");
        assert_eq!(
            da.stats.final_radius_sqr.to_bits(),
            db.stats.final_radius_sqr.to_bits(),
            "{what}: request {id} metric differs in bits"
        );
    }
}

/// Cached and uncached serving are bit-identical on a coherent workload,
/// both match the direct-decode ground truth, and the hit/miss/bypass
/// counters reconcile exactly with the block structure.
#[test]
fn cached_serving_is_bit_identical_and_counters_reconcile() {
    let cfg = workload();
    let c = Constellation::new(cfg.modulation);
    const BLOCK: usize = 9;
    let reqs = coherent_requests(&cfg, &c, BLOCK);
    let n = reqs.len() as u64;
    let blocks = reqs.len().div_ceil(BLOCK) as u64;

    let tier = {
        let mut t = default_registry(&c, &LadderConfig::default());
        t.truncate(1);
        t.remove(0)
    };
    let truth = direct_decodes(&*tier.detector, &reqs);

    let (cached, snap_on) = serve_all(coherent_requests(&cfg, &c, BLOCK), &c, 8, None);
    let (uncached, snap_off) = serve_all(reqs, &c, 0, None);

    assert_same_detections(&cached, &truth, "cached vs direct");
    assert_same_detections(&uncached, &truth, "uncached vs direct");
    assert_same_detections(&cached, &uncached, "cached vs uncached");

    // Cache on: one miss per coherence block (capacity 8 ≥ blocks, so no
    // eviction churn), hits for every other request, no bypass.
    assert_eq!(snap_on.prep_cache_misses, blocks);
    assert_eq!(snap_on.prep_cache_hits, n - blocks);
    assert_eq!(snap_on.prep_cache_bypass, 0);
    assert_eq!(
        snap_on.prep_cache_hits + snap_on.prep_cache_misses + snap_on.prep_cache_bypass,
        snap_on.served,
        "every served request is exactly one of hit / miss / bypass"
    );

    // Cache off: every request bypasses.
    assert_eq!(snap_off.prep_cache_hits, 0);
    assert_eq!(snap_off.prep_cache_misses, 0);
    assert_eq!(snap_off.prep_cache_bypass, snap_off.served);
}

/// Independent channels (the stock random-H workload) never hit: every
/// request is a miss, eviction keeps the per-worker cache bounded, and the
/// decisions still match the uncached runtime bit-for-bit.
#[test]
fn independent_channels_miss_and_stay_exact_under_eviction() {
    let cfg = workload();
    let c = Constellation::new(cfg.modulation);
    // Capacity 2 with 45 distinct channels forces constant eviction.
    let (cached, snap) = serve_all(build_requests(&cfg, &c), &c, 2, None);
    let (uncached, _) = serve_all(build_requests(&cfg, &c), &c, 0, None);
    assert_same_detections(&cached, &uncached, "evicting cache vs uncached");
    assert_eq!(snap.prep_cache_hits, 0, "i.i.d. channels cannot hit");
    assert_eq!(snap.prep_cache_misses, snap.served);
    assert_eq!(snap.prep_cache_bypass, 0);
}

/// Tiers whose engines override preparation (here the linear MMSE rung)
/// are not channel-cacheable: the worker bypasses the cache for them even
/// when it is enabled, and counts every request as a bypass.
#[test]
fn non_cacheable_tier_bypasses_an_enabled_cache() {
    let cfg = workload();
    let c = Constellation::new(cfg.modulation);
    let linear_tier = || {
        let regs = default_registry(&c, &LadderConfig::default());
        let tier = regs
            .into_iter()
            .find(|t| !t.detector.channel_cacheable())
            .expect("stock registry has a linear (non-cacheable) rung");
        vec![tier]
    };
    let truth = direct_decodes(&*linear_tier()[0].detector, &build_requests(&cfg, &c));
    let (served, snap) = serve_all(build_requests(&cfg, &c), &c, 8, Some(linear_tier()));
    assert_same_detections(&served, &truth, "bypassed tier vs direct");
    assert_eq!(snap.prep_cache_hits, 0);
    assert_eq!(snap.prep_cache_misses, 0);
    assert_eq!(snap.prep_cache_bypass, snap.served);
}
