//! Cross-crate property-based tests: the decoder invariants the whole
//! reproduction rests on.

use mimo_sd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::preprocess::preprocess;

/// Generate a random frame from (size, snr, seed) parameters.
fn make_frame(n: usize, m: Modulation, snr_db: f64, seed: u64) -> (Constellation, FrameData) {
    let c = Constellation::new(m);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let f = FrameData::generate(n, n, &c, sigma2, &mut rng);
    (c, f)
}

fn modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qam4),
        Just(Modulation::Qam16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every exact decoder returns the global metric minimizer.
    #[test]
    fn sphere_decoders_are_ml_exact(
        n in 2usize..5,
        m in modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
    ) {
        // Keep the exhaustive oracle tractable: P^M ≤ 16^4.
        prop_assume!(m.order().pow(n as u32) <= 1 << 16);
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let truth = MlDetector::new(c.clone()).detect(&frame);
        let dfs = SphereDecoder::<f64>::new(c.clone()).detect(&frame);
        prop_assert_eq!(&dfs.indices, &truth.indices);
        let bf = BestFirstSd::<f64>::new(c.clone()).detect(&frame);
        prop_assert_eq!(&bf.indices, &truth.indices);
        let bfs = BfsGemmSd::<f64>::new(c.clone()).detect(&frame);
        prop_assert_eq!(&bfs.indices, &truth.indices);
        let mp = SubtreeParallelSd::<f64>::new(c).detect(&frame);
        prop_assert_eq!(&mp.indices, &truth.indices);
    }

    /// The reported radius equals the metric of the returned solution and
    /// lower-bounds every other hypothesis (spot-checked).
    #[test]
    fn final_radius_is_solution_metric(
        n in 2usize..7,
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        probes in proptest::collection::vec(0usize..4, 8),
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam4, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let d = SphereDecoder::<f64>::new(c).detect(&frame);
        let metric = prep.full_metric(&d.indices) - prep.tail_energy;
        prop_assert!((metric - d.stats.final_radius_sqr).abs() < 1e-8);
        // Random competitor hypotheses can't do better.
        let mut competitor = vec![0usize; n];
        for (i, &p) in probes.iter().take(n).enumerate() {
            competitor[i] = p;
        }
        let other = prep.full_metric(&competitor) - prep.tail_energy;
        prop_assert!(other >= d.stats.final_radius_sqr - 1e-9);
    }

    /// FPGA pipeline ≡ software at f32, for arbitrary operating points.
    #[test]
    fn fpga_model_equals_software(
        n in 2usize..8,
        snr_db in 2.0f64..24.0,
        seed in any::<u64>(),
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam4, snr_db, seed);
        let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, n), c.clone());
        let sw = SphereDecoder::<f32>::new(c);
        let a = hw.detect(&frame);
        let b = sw.detect(&frame);
        prop_assert_eq!(a.indices, b.indices);
        prop_assert_eq!(a.stats.nodes_expanded, b.stats.nodes_expanded);
    }

    /// Noiseless frames decode perfectly at any size/modulation.
    #[test]
    fn noiseless_decodes_are_perfect(
        n in 1usize..9,
        m in modulation(),
        seed in any::<u64>(),
    ) {
        let c = Constellation::new(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = FrameData::generate(n, n, &c, 1e-12, &mut rng);
        let d = SphereDecoder::<f32>::new(c).detect(&frame);
        prop_assert_eq!(d.indices, frame.tx.indices);
    }

    /// Bit counting is consistent: errors ≤ bits, and symbol errors bound
    /// bit errors from both sides.
    #[test]
    fn error_counting_invariants(
        n in 1usize..8,
        m in modulation(),
        snr_db in 0.0f64..20.0,
        seed in any::<u64>(),
        guess_seed in any::<u64>(),
    ) {
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let mut rng = StdRng::seed_from_u64(guess_seed);
        use rand::Rng;
        let guess: Vec<usize> = (0..n).map(|_| rng.gen_range(0..c.order())).collect();
        let be = frame.bit_errors(&guess, &c);
        let se = frame.symbol_errors(&guess);
        prop_assert!(se <= n as u64);
        prop_assert!(be <= (n * c.bits_per_symbol()) as u64);
        // Each wrong symbol contributes ≥1 and ≤bits_per_symbol bit errors.
        prop_assert!(be >= se);
        prop_assert!(be <= se * c.bits_per_symbol() as u64);
    }

    /// Every extension decoder that claims exactness is exact, and the
    /// approximate ones never beat ML.
    #[test]
    fn extension_decoders_respect_ml(
        n in 2usize..5,
        snr_db in 2.0f64..18.0,
        seed in any::<u64>(),
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam4, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let truth = MlDetector::new(c.clone()).detect(&frame);
        let opt_metric = prep.full_metric(&truth.indices);

        // Exact: soft decoder's hard decision, ordered DFS, full-width K-best.
        let soft = SoftSphereDecoder::<f64>::new(c.clone()).detect_soft(&frame);
        prop_assert_eq!(&soft.detection.indices, &truth.indices);
        let ordered = SphereDecoder::<f64>::new(c.clone())
            .with_ordering(ColumnOrdering::NormDescending)
            .detect(&frame);
        prop_assert_eq!(&ordered.indices, &truth.indices);
        let kb_full = KBestSd::<f64>::new(c.clone(), 4usize.pow(n as u32)).detect(&frame);
        prop_assert_eq!(&kb_full.indices, &truth.indices);

        // Approximate: K-best with small K can't find a better metric
        // than the optimum.
        let kb_small = KBestSd::<f64>::new(c, 2).detect(&frame);
        let small_metric = prep.full_metric(&kb_small.indices);
        prop_assert!(small_metric >= opt_metric - 1e-9);
    }

    /// LLR signs always agree with the hard ML bits.
    #[test]
    fn soft_llr_signs_consistent(
        n in 2usize..6,
        snr_db in 4.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam4, snr_db, seed);
        let soft = SoftSphereDecoder::<f64>::new(c.clone()).detect_soft(&frame);
        let bits: Vec<u8> = soft
            .detection
            .indices
            .iter()
            .flat_map(|&i| c.index_to_bits(i))
            .collect();
        prop_assert_eq!(soft.hard_bits(), bits);
    }

    /// The Eq. 4 metric identity wired through the full stack: for any
    /// hypothesis, preprocessing preserves the ML objective.
    #[test]
    fn metric_identity_via_preprocessing(
        n in 2usize..7,
        seed in any::<u64>(),
        hyp in proptest::collection::vec(0usize..16, 7),
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam16, 10.0, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let indices: Vec<usize> = hyp.into_iter().take(n).collect();
        prop_assume!(indices.len() == n);
        let s: Vec<C64> = indices.iter().map(|&i| c.point(i)).collect();
        let hs = frame.h.mul_vec(&s);
        let direct = sd_math::vector::dist_sqr(&frame.y, &hs);
        let reduced = prep.full_metric(&indices);
        prop_assert!((direct - reduced).abs() < 1e-8 * (1.0 + direct));
    }

    /// The serve cost model stays total under arbitrary observation
    /// streams — including hostile SNRs, zero node counts, and 0-ns
    /// timings: no prediction is ever NaN or negative, for any cost
    /// class, at any query point.
    #[test]
    fn cost_model_predictions_are_total(
        observations in proptest::collection::vec(
            ((0usize..3, 0usize..3, -50.0f64..80.0),
             (any::<bool>(), 0.0f64..80.0, 0u64..100_000, 0u64..10_000_000)),
            1..64,
        ),
        query_snr in -50.0f64..80.0,
    ) {
        use sd_serve::{CostModel, TierCostClass};
        let classes = [
            TierCostClass::Adaptive,
            TierCostClass::fixed_kbest(16),
            TierCostClass::Linear,
        ];
        let model = CostModel::new(3);
        for ((tier, class, snr), (has_cond, cond, nodes, ns)) in observations {
            let cond = has_cond.then_some(cond);
            model.observe_with(tier, &classes[class], snr, cond, nodes, ns);
        }
        for (i, class) in classes.iter().enumerate() {
            for cond in [None, Some(0.0), Some(3.0), Some(64.0)] {
                let p = model.predict_ns_with(i, class, query_snr, cond, 8, 4);
                prop_assert!(p.is_finite() && p >= 0.0,
                    "tier {i} predicted {p} at snr {query_snr}, cond {cond:?}");
            }
        }
        prop_assert!(model.ns_per_node().is_finite() && model.ns_per_node() >= 0.0);
    }

    /// Ladder monotonicity through arbitrary trained models: growing the
    /// remaining budget never selects a *less* accurate (higher-index)
    /// tier — the predictive admission contract.
    #[test]
    fn choose_tier_is_monotone_in_remaining_budget(
        observations in proptest::collection::vec(
            (-10.0f64..40.0, 1u64..200_000, 1u64..10_000_000),
            0..32,
        ),
        snr in -10.0f64..40.0,
        budgets_us in proptest::collection::vec(0u64..100_000, 2..12),
    ) {
        use sd_serve::{choose_tier, default_registry, CostModel, LadderConfig, TierCostClass};
        use std::time::Duration;
        let cfg = LadderConfig::default();
        let c = Constellation::new(Modulation::Qam4);
        let tiers = default_registry(&c, &cfg);
        let model = CostModel::new(tiers.len());
        for (obs_snr, nodes, ns) in observations {
            model.observe(0, &TierCostClass::Adaptive, obs_snr, nodes, ns);
        }
        let mut sorted = budgets_us;
        sorted.sort_unstable();
        let mut prev_tier = usize::MAX;
        for us in sorted {
            let t = choose_tier(&cfg, &model, &tiers, snr, 8, 4, Duration::from_micros(us));
            prop_assert!(
                prev_tier == usize::MAX || t <= prev_tier,
                "budget {us} µs picked tier {t} after a smaller budget picked {prev_tier}"
            );
            prev_tier = t;
        }
    }
}
