//! Differential property tests: the arena-based searches with batched GEMM
//! expansion must be *observationally indistinguishable* from the seed
//! path-cloning implementations preserved in [`sd_core::reference`] —
//! identical decoded indices and identical `DetectionStats` (node counts,
//! pruning counts, flops, radii) on random frames, for all four search
//! variants and both child-evaluation strategies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::preprocess::preprocess;
use sd_core::reference::{best_first_reference, bfs_reference, dfs_reference, kbest_reference};
use sd_core::{
    BestFirstSd, BfsGemmSd, EvalStrategy, InitialRadius, KBestSd, PreparedDetector, SphereDecoder,
};
use sd_math::GemmAlgo;
use sd_wireless::{noise_variance, Constellation, FrameData, Modulation};

fn make_frame(n: usize, m: Modulation, snr_db: f64, seed: u64) -> (Constellation, FrameData) {
    let c = Constellation::new(m);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let f = FrameData::generate(n, n, &c, sigma2, &mut rng);
    (c, f)
}

fn modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qam4),
        Just(Modulation::Qam16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Sorted and plain DFS, both eval strategies.
    #[test]
    fn dfs_matches_reference(
        n in 2usize..7,
        m in modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        sort in any::<bool>(),
    ) {
        prop_assume!(m.order().pow(n as u32) <= 1 << 14);
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        for eval in [EvalStrategy::Gemm, EvalStrategy::Incremental] {
            let arena = SphereDecoder::<f64>::new(c.clone())
                .with_sorted_children(sort)
                .with_eval(eval)
                .detect_prepared(&prep, f64::INFINITY);
            let seed_impl = dfs_reference(&prep, f64::INFINITY, eval, sort);
            prop_assert_eq!(&arena.indices, &seed_impl.indices);
            prop_assert_eq!(&arena.stats, &seed_impl.stats);
        }
    }

    /// Globally best-first, both eval strategies, with a finite radius
    /// sometimes forcing restarts.
    #[test]
    fn best_first_matches_reference(
        n in 2usize..7,
        m in modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        tight in any::<bool>(),
    ) {
        prop_assume!(m.order().pow(n as u32) <= 1 << 14);
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let r2 = if tight {
            InitialRadius::ScaledNoise(0.5).resolve(frame.h.rows(), frame.noise_variance)
        } else {
            f64::INFINITY
        };
        for eval in [EvalStrategy::Gemm, EvalStrategy::Incremental] {
            let arena = BestFirstSd::<f64>::new(c.clone())
                .with_eval(eval)
                .detect_prepared(&prep, r2);
            let seed_impl = best_first_reference(&prep, r2, eval);
            prop_assert_eq!(&arena.indices, &seed_impl.indices);
            prop_assert_eq!(&arena.stats, &seed_impl.stats);
        }
    }

    /// Level-synchronous BFS: the single batched GEMM per level (all three
    /// kernels) against the seed's per-node scalar evaluation, including
    /// frontier-cap truncation.
    #[test]
    fn bfs_matches_reference(
        n in 2usize..7,
        m in modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        cap in prop_oneof![Just(4usize), Just(32), Just(1 << 20)],
    ) {
        prop_assume!(m.order().pow(n as u32) <= 1 << 14);
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let r2 = InitialRadius::ScaledNoise(2.0).resolve(frame.h.rows(), frame.noise_variance);
        let seed_impl = bfs_reference(&prep, r2, cap);
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            let arena = BfsGemmSd::<f64>::new(c.clone())
                .with_max_frontier(cap)
                .with_batch_algo(algo)
                .detect_prepared_traced(&prep, r2)
                .0;
            prop_assert_eq!(&arena.indices, &seed_impl.indices);
            prop_assert_eq!(&arena.stats, &seed_impl.stats);
        }
    }

    /// K-best sweep, with K sometimes truncating and sometimes covering
    /// whole levels.
    #[test]
    fn kbest_matches_reference(
        n in 2usize..7,
        m in modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        k in prop_oneof![Just(2usize), Just(8), Just(64)],
    ) {
        prop_assume!(m.order().pow(n as u32) <= 1 << 14);
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let arena = KBestSd::<f64>::new(c.clone(), k).detect_prepared(&prep, f64::INFINITY);
        let seed_impl = kbest_reference(&prep, k);
        prop_assert_eq!(&arena.indices, &seed_impl.indices);
        prop_assert_eq!(&arena.stats, &seed_impl.stats);
    }
}
