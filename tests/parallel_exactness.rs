//! Exactness and determinism of the subtree-parallel sphere decoder.
//!
//! The parallel engine's contract is *metric bit-identity* with the
//! sequential [`SphereDecoder`]: both decoders accumulate the winning
//! leaf's metric as the same ordered `pd + increment` chain, so the
//! returned solution (indices and `final_radius_sqr` bits) must match no
//! matter how pruning interleaves across workers. Node counts are
//! timing-dependent and deliberately NOT asserted — only the answer is.
//!
//! The stress test re-decodes the same frames many times under full
//! hardware parallelism and fails on the first run-to-run divergence;
//! `ci.sh` runs it with `SD_STRESS_ITERS=200` as the multi-thread
//! determinism gate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::{Detector, InitialRadius, ParallelSphereDecoder, SphereDecoder};
use sd_wireless::{noise_variance, Constellation, FrameData, Modulation};

fn make_frame(n: usize, m: Modulation, snr_db: f64, seed: u64) -> (Constellation, FrameData) {
    let c = Constellation::new(m);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let f = FrameData::generate(n, n, &c, sigma2, &mut rng);
    (c, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Across random sizes / SNRs / seeds / worker counts, the parallel
    /// decoder's solution is bit-identical to the sequential one (f64).
    #[test]
    fn parallel_metric_is_bit_identical_to_sequential_f64(
        n in 2usize..7,
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        workers in 2usize..6,
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam4, snr_db, seed);
        let seq = SphereDecoder::<f64>::new(c.clone()).detect(&frame);
        let par = ParallelSphereDecoder::<f64>::new(c)
            .with_workers(workers)
            .detect(&frame);
        prop_assert_eq!(&par.indices, &seq.indices);
        prop_assert_eq!(
            par.stats.final_radius_sqr.to_bits(),
            seq.stats.final_radius_sqr.to_bits()
        );
    }

    /// Same contract at f32 working precision (the FPGA-native precision).
    #[test]
    fn parallel_metric_is_bit_identical_to_sequential_f32(
        n in 2usize..6,
        snr_db in 4.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam16, snr_db, seed);
        let seq = SphereDecoder::<f32>::new(c.clone()).detect(&frame);
        let par = ParallelSphereDecoder::<f32>::new(c).detect(&frame);
        prop_assert_eq!(&par.indices, &seq.indices);
        prop_assert_eq!(
            par.stats.final_radius_sqr.to_bits(),
            seq.stats.final_radius_sqr.to_bits()
        );
    }

    /// Finite initial radii (restart path) preserve the contract.
    #[test]
    fn parallel_restarts_are_bit_identical_to_sequential(
        n in 2usize..6,
        seed in any::<u64>(),
    ) {
        let (c, frame) = make_frame(n, Modulation::Qam4, 4.0, seed);
        let radius = InitialRadius::ScaledNoise(0.05);
        let seq = SphereDecoder::<f64>::new(c.clone())
            .with_initial_radius(radius)
            .detect(&frame);
        let par = ParallelSphereDecoder::<f64>::new(c)
            .with_initial_radius(radius)
            .detect(&frame);
        prop_assert_eq!(&par.indices, &seq.indices);
        prop_assert_eq!(
            par.stats.final_radius_sqr.to_bits(),
            seq.stats.final_radius_sqr.to_bits()
        );
    }
}

/// Fixed-seed anchor: a deterministic grid of shapes and SNRs, so a
/// regression reproduces identically everywhere.
#[test]
fn fixed_seed_grid_matches_sequential() {
    for (n, modulation, snr_db, seed) in [
        (4, Modulation::Qam4, 6.0, 1u64),
        (8, Modulation::Qam4, 10.0, 2),
        (6, Modulation::Qam16, 14.0, 3),
        (3, Modulation::Qam16, 8.0, 4),
        (5, Modulation::Bpsk, 4.0, 5),
    ] {
        let (c, frame) = make_frame(n, modulation, snr_db, seed);
        let seq = SphereDecoder::<f64>::new(c.clone()).detect(&frame);
        for workers in [2, 3, 4, 8] {
            let par = ParallelSphereDecoder::<f64>::new(c.clone())
                .with_workers(workers)
                .detect(&frame);
            assert_eq!(
                par.indices, seq.indices,
                "{n}x{n} {modulation:?} w={workers}"
            );
            assert_eq!(
                par.stats.final_radius_sqr.to_bits(),
                seq.stats.final_radius_sqr.to_bits(),
                "{n}x{n} {modulation:?} w={workers}: metric bits diverge"
            );
        }
    }
}

/// One worker short-circuits to the sequential code path: the whole
/// [`Detection`] — indices AND every statistic — is bit-identical.
#[test]
fn one_worker_detection_is_fully_bit_identical() {
    for seed in 10..20u64 {
        let (c, frame) = make_frame(6, Modulation::Qam16, 12.0, seed);
        let seq = SphereDecoder::<f64>::new(c.clone()).detect(&frame);
        let par = ParallelSphereDecoder::<f64>::new(c)
            .with_workers(1)
            .detect(&frame);
        assert_eq!(par, seq, "1-worker path must be the sequential decode");
    }
}

/// Split depths at and beyond the tree height are clamped, and subtree
/// counts below the worker count (idle workers) stay exact.
#[test]
fn degenerate_split_configurations_stay_exact() {
    let (c, frame) = make_frame(4, Modulation::Qam4, 8.0, 77);
    let seq = SphereDecoder::<f64>::new(c.clone()).detect(&frame);
    for split in [1, 2, 3, 4, 100] {
        for workers in [2, 16] {
            let par = ParallelSphereDecoder::<f64>::new(c.clone())
                .with_workers(workers)
                .with_split_levels(split)
                .detect(&frame);
            assert_eq!(par.indices, seq.indices, "split={split} workers={workers}");
            assert_eq!(
                par.stats.final_radius_sqr.to_bits(),
                seq.stats.final_radius_sqr.to_bits()
            );
        }
    }
}

/// Determinism under real hardware parallelism: decode the same frames
/// repeatedly at `available_parallelism()` workers; every repetition must
/// return the same indices and the same metric bits as the sequential
/// reference. `SD_STRESS_ITERS` scales the iteration count (ci.sh gates
/// at 200; the default keeps `cargo test` fast).
#[test]
fn repeated_parallel_decodes_are_deterministic() {
    let iters: usize = std::env::var("SD_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let frames: Vec<(Constellation, FrameData)> = (0..4)
        .map(|i| make_frame(8, Modulation::Qam4, 10.0 + i as f64, 0xD0_0D + i as u64))
        .collect();
    let references: Vec<_> = frames
        .iter()
        .map(|(c, f)| SphereDecoder::<f64>::new(c.clone()).detect(f))
        .collect();
    let decoders: Vec<_> = frames
        .iter()
        .map(|(c, _)| ParallelSphereDecoder::<f64>::new(c.clone()))
        .collect();
    for iter in 0..iters {
        for ((decoder, (_, frame)), reference) in decoders.iter().zip(&frames).zip(&references) {
            let d = decoder.detect(frame);
            assert_eq!(
                d.indices, reference.indices,
                "iteration {iter}: indices diverged from sequential"
            );
            assert_eq!(
                d.stats.final_radius_sqr.to_bits(),
                reference.stats.final_radius_sqr.to_bits(),
                "iteration {iter}: metric bits diverged"
            );
        }
    }
}
