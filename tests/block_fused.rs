//! Cross-subcarrier fused block decode: exactness pins.
//!
//! The fused path ([`decode_block_fused_into`]) runs ONE level-synchronous
//! tree search — one GEMM batch per level — for a whole coherence block.
//! Its entire contract is that fusion is a *scheduling* change, never a
//! numeric one: every subcarrier's detection (indices, statistics, metric
//! bit patterns) must be bit-identical to the per-subcarrier loop
//! ([`decode_block_budgeted_into`]) and to a standalone per-vector
//! prepare+detect of that subcarrier. This suite pins that identity for
//! every fusable engine (float K-best, quantized K-best, quantized FSD in
//! both metrics), under unlimited and tripped budgets, for degenerate
//! blocks (B = 1, K = 1), and property-tested over random grids. Engines
//! that cannot fuse must report `fused == false` and still produce the
//! loop path's exact results through the same entry point.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::preprocess::{BlockPrep, PrepScratch, Prepared};
use sd_core::{
    decode_block_budgeted_into, decode_block_fused_into, BfsGemmSd, DecodeBudget, Detection,
    FixedComplexitySd, KBestSd, MetricKind, MmseDetector, PreparedDetector, QuantizedFsd,
    QuantizedKBestSd, SearchQuality, SearchWorkspace, SphereDecoder,
};
use sd_wireless::{noise_variance, Constellation, FrameData, Modulation};

/// A coherence block: `b` subcarriers sharing one channel matrix, each
/// with an independently drawn transmit vector and noise realization.
fn coherent_block(
    b: usize,
    n: usize,
    c: &Constellation,
    sigma2: f64,
    rng: &mut StdRng,
) -> Vec<FrameData> {
    let base = FrameData::generate(n, n, c, sigma2, rng);
    (0..b)
        .map(|_| {
            let mut f = base.clone();
            let fresh = FrameData::generate(n, n, c, sigma2, rng);
            f.y = fresh.y;
            f.tx = fresh.tx;
            f
        })
        .collect()
}

/// Decode `frames` through the fused entry point. Returns the detections
/// and whether the engine actually fused.
fn run_fused(
    det: &dyn PreparedDetector<f64>,
    frames: &[FrameData],
    budget: &DecodeBudget,
) -> (Vec<Detection>, bool) {
    let mut scratch = PrepScratch::new();
    let mut block = BlockPrep::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    let mut out = vec![Detection::default(); frames.len()];
    let (_, fused) = decode_block_fused_into(
        det,
        frames,
        budget,
        &mut scratch,
        &mut block,
        &mut prep,
        &mut ws,
        &mut out,
    );
    (out, fused)
}

/// The per-subcarrier loop over the same shared preparation — the
/// reference the fused path must match bit for bit.
fn run_loop(
    det: &dyn PreparedDetector<f64>,
    frames: &[FrameData],
    budget: &DecodeBudget,
) -> Vec<Detection> {
    let mut scratch = PrepScratch::new();
    let mut block = BlockPrep::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    let mut out = vec![Detection::default(); frames.len()];
    decode_block_budgeted_into(
        det,
        frames,
        budget,
        &mut scratch,
        &mut block,
        &mut prep,
        &mut ws,
        &mut out,
    );
    out
}

/// Standalone per-vector decode: fresh `prepare_frame_into` per
/// subcarrier, no block sharing at all.
fn run_per_vector(
    det: &dyn PreparedDetector<f64>,
    frames: &[FrameData],
    budget: &DecodeBudget,
) -> Vec<Detection> {
    let mut scratch = PrepScratch::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    frames
        .iter()
        .map(|f| {
            let mut d = Detection::default();
            det.prepare_frame_into(f, &mut scratch, &mut prep);
            let r2 = det.initial_radius_sqr(f.h.rows(), f.noise_variance);
            det.detect_prepared_budgeted_into(&prep, r2, budget, &mut ws, &mut d);
            d
        })
        .collect()
}

fn assert_block_identical(got: &[Detection], want: &[Detection], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: block shape");
    for (k, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.indices, w.indices, "{what} subcarrier {k}: decisions");
        assert_eq!(g.stats, w.stats, "{what} subcarrier {k}: statistics");
        assert_eq!(
            g.stats.final_radius_sqr.to_bits(),
            w.stats.final_radius_sqr.to_bits(),
            "{what} subcarrier {k}: metric bits"
        );
    }
}

/// Every level-synchronous engine the fused path claims: label, builder.
fn fusable_engines(
    c: &Constellation,
    k: usize,
) -> Vec<(&'static str, Box<dyn PreparedDetector<f64>>)> {
    vec![
        ("k-best", Box::new(KBestSd::<f64>::new(c.clone(), k))),
        ("k-best-fx", Box::new(QuantizedKBestSd::new(c.clone(), k))),
        ("fsd-fx", Box::new(QuantizedFsd::new(c.clone()))),
        (
            "fsd-fx-linf",
            Box::new(QuantizedFsd::new(c.clone()).with_metric(MetricKind::LInf)),
        ),
    ]
}

#[test]
fn fused_is_bit_identical_to_loop_and_per_vector() {
    let c = Constellation::new(Modulation::Qam4);
    let sigma2 = noise_variance(10.0, 8);
    let mut rng = StdRng::seed_from_u64(0xF05ED);
    let frames = coherent_block(16, 8, &c, sigma2, &mut rng);
    for (label, det) in fusable_engines(&c, 16) {
        let (fused, did_fuse) = run_fused(&*det, &frames, &DecodeBudget::UNLIMITED);
        assert!(did_fuse, "{label}: level-synchronous engine must fuse");
        let looped = run_loop(&*det, &frames, &DecodeBudget::UNLIMITED);
        let solo = run_per_vector(&*det, &frames, &DecodeBudget::UNLIMITED);
        assert_block_identical(&fused, &looped, &format!("{label} fused-vs-loop"));
        assert_block_identical(&fused, &solo, &format!("{label} fused-vs-solo"));
        assert!(
            fused.iter().all(|d| !d.stats.quality.is_truncated()),
            "{label}: unlimited budget must stay exact"
        );
    }
}

#[test]
fn non_fusable_engines_fall_back_to_the_exact_loop() {
    let c = Constellation::new(Modulation::Qam4);
    let sigma2 = noise_variance(10.0, 4);
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let frames = coherent_block(6, 4, &c, sigma2, &mut rng);
    let dets: Vec<(&str, Box<dyn PreparedDetector<f64>>)> = vec![
        ("dfs", Box::new(SphereDecoder::<f64>::new(c.clone()))),
        ("bfs", Box::new(BfsGemmSd::<f64>::new(c.clone()))),
        ("fsd", Box::new(FixedComplexitySd::<f64>::new(c.clone()))),
        ("mmse", Box::new(MmseDetector::new(c.clone()))),
    ];
    for (label, det) in dets {
        let (fused, did_fuse) = run_fused(&*det, &frames, &DecodeBudget::UNLIMITED);
        assert!(!did_fuse, "{label}: data-dependent search must not fuse");
        let looped = run_loop(&*det, &frames, &DecodeBudget::UNLIMITED);
        assert_block_identical(&fused, &looped, &format!("{label} fallback"));
    }
}

/// A trace sink forces the loop path (per-decode event streams cannot be
/// interleaved), and the results must still be exact.
#[test]
fn installed_telemetry_forces_the_loop_without_changing_results() {
    let c = Constellation::new(Modulation::Qam4);
    let sigma2 = noise_variance(10.0, 4);
    let mut rng = StdRng::seed_from_u64(0x7E1E);
    let frames = coherent_block(4, 4, &c, sigma2, &mut rng);
    let det = KBestSd::<f64>::new(c.clone(), 8);

    let mut scratch = PrepScratch::new();
    let mut block = BlockPrep::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    ws.install_telemetry();
    let mut out = vec![Detection::default(); frames.len()];
    let (_, fused) = decode_block_fused_into(
        &det,
        &frames,
        &DecodeBudget::UNLIMITED,
        &mut scratch,
        &mut block,
        &mut prep,
        &mut ws,
        &mut out,
    );
    assert!(!fused, "a trace sink must force the per-subcarrier loop");
    let looped = run_loop(&det, &frames, &DecodeBudget::UNLIMITED);
    assert_block_identical(&out, &looped, "traced fallback");
}

#[test]
fn degenerate_blocks_fuse_exactly() {
    let c = Constellation::new(Modulation::Qam16);
    let sigma2 = noise_variance(14.0, 4);
    let mut rng = StdRng::seed_from_u64(0xB1);
    // B = 1: a single-subcarrier "block".
    let single = coherent_block(1, 4, &c, sigma2, &mut rng);
    // K = 1: the frontier never widens past one survivor.
    for (label, det) in fusable_engines(&c, 1) {
        let (fused, did_fuse) = run_fused(&*det, &single, &DecodeBudget::UNLIMITED);
        assert!(did_fuse, "{label}: B=1 must still take the fused path");
        let looped = run_loop(&*det, &single, &DecodeBudget::UNLIMITED);
        assert_block_identical(&fused, &looped, &format!("{label} B=1"));
    }
    let wide = coherent_block(5, 4, &c, sigma2, &mut rng);
    for (label, det) in fusable_engines(&c, 1) {
        let (fused, _) = run_fused(&*det, &wide, &DecodeBudget::UNLIMITED);
        let looped = run_loop(&*det, &wide, &DecodeBudget::UNLIMITED);
        assert_block_identical(&fused, &looped, &format!("{label} K=1"));
    }
}

/// Budgets thread through the fused search: an untripped node cap changes
/// nothing, a tripped one truncates *identically* to the per-subcarrier
/// loop — same flags, same best-so-far decisions, same node accounting.
#[test]
fn budgets_trip_identically_on_both_paths() {
    let c = Constellation::new(Modulation::Qam4);
    let sigma2 = noise_variance(10.0, 8);
    let mut rng = StdRng::seed_from_u64(0xB0D6E7);
    let frames = coherent_block(8, 8, &c, sigma2, &mut rng);
    for (label, det) in fusable_engines(&c, 16) {
        // Untripped: generous cap ≡ unlimited, bit for bit, flagged exact.
        let generous = DecodeBudget::nodes(u64::MAX / 2);
        let (fused, _) = run_fused(&*det, &frames, &generous);
        let unlimited = run_loop(&*det, &frames, &DecodeBudget::UNLIMITED);
        assert_block_identical(&fused, &unlimited, &format!("{label} untripped"));
        assert!(fused
            .iter()
            .all(|d| d.stats.quality == SearchQuality::Exact));

        // Tripped: a cap below the full sweep truncates both paths at the
        // same level with complete best-so-far decisions.
        let tight = DecodeBudget::nodes(32);
        let (fused_t, _) = run_fused(&*det, &frames, &tight);
        let looped_t = run_loop(&*det, &frames, &tight);
        assert_block_identical(&fused_t, &looped_t, &format!("{label} tripped"));
        for (k, d) in fused_t.iter().enumerate() {
            assert!(
                d.stats.quality.is_truncated(),
                "{label} subcarrier {k}: a 32-node cap must trip an 8x8 sweep"
            );
            assert_eq!(
                d.indices.len(),
                8,
                "{label} subcarrier {k}: truncation still returns a complete vector"
            );
        }
    }
}

fn fused_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![Just(Modulation::Qam4), Just(Modulation::Qam16)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fused ≡ loop over random grids: any antenna count, block size,
    /// modulation, K, SNR, and seed.
    #[test]
    fn fused_matches_loop_on_random_grids(
        n in 2usize..6,
        b in 1usize..9,
        k in 1usize..12,
        modu in fused_modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let c = Constellation::new(modu);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = coherent_block(b, n, &c, sigma2, &mut rng);
        for (label, det) in fusable_engines(&c, k) {
            let (fused, did_fuse) = run_fused(&*det, &frames, &DecodeBudget::UNLIMITED);
            prop_assert!(did_fuse, "{} must fuse", label);
            let looped = run_loop(&*det, &frames, &DecodeBudget::UNLIMITED);
            for (g, w) in fused.iter().zip(&looped) {
                prop_assert_eq!(&g.indices, &w.indices);
                prop_assert_eq!(&g.stats, &w.stats);
            }
        }
    }
}
