//! Telemetry reconciliation: the [`SearchTelemetry`] recorder installed on
//! a [`SearchWorkspace`] must agree *exactly* with the engine-maintained
//! [`DetectionStats`] for every decoder, and the per-level identity
//! `generated == accepted + pruned` must hold level by level.
//!
//! These tests pin the tentpole contract of the observability layer: one
//! uniform event stream across the whole engine zoo, reconciling with the
//! counters the decoders have always kept — no drift, no double counting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::{
    BestFirstSd, BfsGemmSd, FixedComplexitySd, InitialRadius, KBestSd, ParallelSphereDecoder,
    Phase, PreparedDetector, SearchWorkspace, SphereDecoder,
};
use sd_wireless::{noise_variance, Constellation, FrameData, Modulation};

fn frames(
    n: usize,
    m: Modulation,
    snr_db: f64,
    count: usize,
    seed: u64,
) -> (Constellation, Vec<FrameData>) {
    let c = Constellation::new(m);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let f = (0..count)
        .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
        .collect();
    (c, f)
}

/// Decode every frame with telemetry installed and assert the recorder
/// reconciles with `DetectionStats` exactly.
fn assert_reconciles(det: &dyn PreparedDetector<f64>, frames: &[FrameData], name: &str) {
    let mut ws = SearchWorkspace::new();
    ws.install_telemetry();
    for f in frames {
        let d = det.detect_frame_in(f, &mut ws);
        let t = ws.telemetry().expect("telemetry stays installed");
        assert_eq!(
            t.nodes_generated(),
            d.stats.nodes_generated,
            "{name}: telemetry generated != stats"
        );
        assert!(
            t.per_level_identity_holds(),
            "{name}: generated != accepted + pruned on some level"
        );
        for (lvl, l) in t.levels().iter().enumerate() {
            assert_eq!(
                l.generated, d.stats.per_level_generated[lvl],
                "{name}: level {lvl} generated mismatch"
            );
        }
        assert_eq!(
            t.nodes_accepted() + t.nodes_pruned(),
            d.stats.nodes_generated,
            "{name}: totals must split generated"
        );
    }
}

#[test]
fn exact_dfs_reconciles_with_stats() {
    let (c, frames) = frames(6, Modulation::Qam4, 8.0, 15, 900);
    assert_reconciles(&SphereDecoder::<f64>::new(c), &frames, "sorted-DFS");
}

#[test]
fn unsorted_dfs_reconciles_with_stats() {
    let (c, frames) = frames(5, Modulation::Qam4, 8.0, 10, 901);
    assert_reconciles(
        &SphereDecoder::<f64>::new(c).with_sorted_children(false),
        &frames,
        "plain DFS",
    );
}

#[test]
fn dfs_with_restarts_reconciles_with_stats() {
    // A tiny initial radius forces restarts; telemetry accumulates across
    // them exactly like DetectionStats does.
    let (c, frames) = frames(4, Modulation::Qam4, 4.0, 15, 902);
    assert_reconciles(
        &SphereDecoder::<f64>::new(c).with_initial_radius(InitialRadius::ScaledNoise(0.01)),
        &frames,
        "DFS restarts",
    );
}

#[test]
fn best_first_reconciles_with_stats() {
    let (c, frames) = frames(6, Modulation::Qam4, 8.0, 15, 903);
    assert_reconciles(&BestFirstSd::<f64>::new(c), &frames, "best-first");
}

#[test]
fn kbest_reconciles_with_stats() {
    let (c, frames) = frames(6, Modulation::Qam4, 8.0, 15, 904);
    assert_reconciles(&KBestSd::<f64>::new(c, 8), &frames, "K-best");
}

#[test]
fn bfs_reconciles_with_stats() {
    let (c, frames) = frames(6, Modulation::Qam4, 8.0, 10, 905);
    assert_reconciles(&BfsGemmSd::<f64>::new(c), &frames, "BFS-GEMM");
}

#[test]
fn bfs_with_clipping_reconciles_with_stats() {
    let (c, frames) = frames(6, Modulation::Qam4, 4.0, 10, 906);
    assert_reconciles(
        &BfsGemmSd::<f64>::new(c).with_max_frontier(3),
        &frames,
        "BFS clipped",
    );
}

#[test]
fn fsd_reconciles_with_stats() {
    let (c, frames) = frames(6, Modulation::Qam4, 8.0, 15, 907);
    assert_reconciles(
        &FixedComplexitySd::<f64>::new(c).with_full_expansion(2),
        &frames,
        "FSD",
    );
}

#[test]
fn parallel_dfs_reconciles_with_stats() {
    // Per-worker telemetry is recorded locally and replayed into the
    // caller's sink after the join; the merged stream must reconcile with
    // the merged DetectionStats exactly, level by level.
    let (c, frames) = frames(6, Modulation::Qam4, 8.0, 10, 912);
    assert_reconciles(
        &ParallelSphereDecoder::<f64>::new(c).with_workers(4),
        &frames,
        "subtree-parallel DFS",
    );
}

#[test]
fn parallel_dfs_with_restarts_reconciles_with_stats() {
    let (c, frames) = frames(4, Modulation::Qam4, 4.0, 10, 913);
    assert_reconciles(
        &ParallelSphereDecoder::<f64>::new(c)
            .with_workers(3)
            .with_initial_radius(InitialRadius::ScaledNoise(0.01)),
        &frames,
        "parallel restarts",
    );
}

#[test]
fn telemetry_resets_between_decodes() {
    let (c, frames) = frames(5, Modulation::Qam4, 8.0, 4, 908);
    let sd = SphereDecoder::<f64>::new(c);
    let mut ws = SearchWorkspace::new();
    ws.install_telemetry();
    for f in &frames {
        let d = sd.detect_frame_in(f, &mut ws);
        // Per decode, not accumulated across frames.
        assert_eq!(
            ws.telemetry().unwrap().nodes_generated(),
            d.stats.nodes_generated
        );
    }
}

#[test]
fn phase_profile_covers_the_decode() {
    let (c, frames) = frames(6, Modulation::Qam4, 8.0, 3, 909);
    let sd = SphereDecoder::<f64>::new(c);
    let mut ws = SearchWorkspace::new();
    ws.install_telemetry();
    for f in &frames {
        sd.detect_frame_in(f, &mut ws);
        let phases = ws.telemetry().unwrap().phases;
        assert!(phases.total() > 0, "spans must record time");
        assert!(
            phases.get(Phase::Expand) > 0,
            "child evaluation must be timed"
        );
        assert!(
            phases.get(Phase::Prepare) > 0,
            "frame preprocessing must be timed"
        );
        let frac: f64 = [Phase::Prepare, Phase::Expand, Phase::Sort, Phase::Leaf]
            .iter()
            .map(|&p| phases.fraction(p))
            .sum();
        assert!((frac - 1.0).abs() < 1e-9);
    }
}

#[test]
fn bfs_engine_telemetry_matches_legacy_trace() {
    // The per-level survivor counts reported through the generic sink must
    // agree with the legacy BfsLevelTrace the GPU model consumes.
    let (c, frames) = frames(6, Modulation::Qam4, 10.0, 8, 910);
    let bfs = BfsGemmSd::<f64>::new(c);
    let mut ws = SearchWorkspace::new();
    ws.install_telemetry();
    for f in &frames {
        let (_, legacy) = bfs.detect_traced(f);
        let d = bfs.detect_frame_in(f, &mut ws);
        let t = ws.telemetry().unwrap();
        assert_eq!(t.levels().len(), legacy.levels.len());
        for (lvl, (tele, leg)) in t.levels().iter().zip(legacy.levels.iter()).enumerate() {
            assert_eq!(
                tele.generated, leg.children as u64,
                "level {lvl} children disagree"
            );
            assert_eq!(
                tele.accepted, leg.survivors as u64,
                "level {lvl} survivors disagree"
            );
        }
        assert_eq!(t.nodes_generated(), d.stats.nodes_generated);
    }
}

#[test]
fn uninstalled_workspace_records_nothing() {
    let (c, frames) = frames(5, Modulation::Qam4, 8.0, 2, 911);
    let sd = SphereDecoder::<f64>::new(c);
    let mut ws = SearchWorkspace::new();
    assert!(!ws.trace_enabled());
    sd.detect_frame_in(&frames[0], &mut ws);
    assert!(ws.telemetry().is_none());
    // Install, decode, then take it back out: tracing is disabled again.
    ws.install_telemetry();
    sd.detect_frame_in(&frames[1], &mut ws);
    let sink = ws.take_trace().expect("sink comes back out");
    assert!(sink
        .as_any()
        .downcast_ref::<sd_core::SearchTelemetry>()
        .is_some());
    assert!(!ws.trace_enabled());
}
