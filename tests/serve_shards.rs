//! The sharded runtime adds *topology*, not numerics: serving any
//! workload through N affinity shards — with or without work stealing —
//! is **bit-identical** to the single-queue runtime and to driving the
//! engines directly, for every stock and quantized registry tier and for
//! both per-vector and whole-frame submission. On top of the identity,
//! the per-shard counters must close the global invariants
//! (`Σ routed == accepted`, `Σ shard.served == served`,
//! `hits + misses + bypass == served` and
//! `affinity_served + stolen_in == served` per shard), and the adaptive
//! core-budget controller must actually re-plan the [`WorkerBudget`]
//! between the latency and throughput splits as load crosses its
//! watermarks.
//!
//! `SD_SHARDS` sets the shard count under test (default 2; `ci.sh` runs
//! the matrix {1, 2, 4}); `SD_STRESS_ITERS` scales the determinism
//! stress repetitions.

use sd_core::{Detection, PrepScratch, Prepared, PreparedDetector, SearchWorkspace};
use sd_serve::{
    build_coherent_requests, build_frame_requests, default_registry, explode_frames,
    quantized_registry, CoreBudgetPolicy, DetectionRequest, FrameLoadConfig, FrameRequest,
    LadderConfig, LoadConfig, MetricsSnapshot, ServeConfig, ServeRuntime, Tier, WorkerBudget,
};
use sd_wireless::{Constellation, GridConfig, Modulation, REAL_TIME_BUDGET};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard count under test (`SD_SHARDS`, default 2).
fn shards_under_test() -> usize {
    std::env::var("SD_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn workload() -> LoadConfig {
    LoadConfig {
        n_tx: 4,
        n_rx: 4,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![6.0, 10.0, 16.0],
        n_requests: 48,
        offered_rate_hz: 0.0,
        deadline: REAL_TIME_BUDGET,
        seed: 0x54A8D,
    }
}

/// Every tier under test: the stock registry plus the quantized rungs it
/// doesn't already contain, so the identity spans f64 and fixed-point
/// engines. `mk` is called per invocation because tiers own boxed
/// engines and cannot be cloned.
fn tiers_under_test(c: &Constellation) -> Vec<Tier> {
    let ladder = LadderConfig::default();
    let mut tiers = default_registry(c, &ladder);
    let have: Vec<String> = tiers.iter().map(|t| t.label.to_string()).collect();
    for t in quantized_registry(c, &ladder) {
        if !have.iter().any(|l| **l == *t.label) {
            tiers.push(t);
        }
    }
    tiers
}

/// Ground truth: drive the engine directly through the same prepare →
/// radius → decode-into calls the worker makes.
fn direct_decodes(
    detector: &dyn PreparedDetector<f64>,
    requests: &[DetectionRequest],
) -> Vec<Detection> {
    let mut scratch = PrepScratch::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    requests
        .iter()
        .map(|req| {
            let mut det = Detection::default();
            detector.prepare_frame_into(&req.frame, &mut scratch, &mut prep);
            let r2 = detector.initial_radius_sqr(req.frame.h.rows(), req.frame.noise_variance);
            detector.detect_prepared_into(&prep, r2, &mut ws, &mut det);
            det
        })
        .collect()
}

/// Serve `requests` through a single-tier registry at the given shard
/// count and return the responses keyed by request id, plus the final
/// snapshot.
fn serve_sharded(
    tier: Tier,
    requests: Vec<DetectionRequest>,
    n_shards: usize,
    steal: bool,
) -> (HashMap<u64, Detection>, MetricsSnapshot) {
    let n = requests.len();
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(n_shards.max(2))
            .with_shards(n_shards)
            .with_stealing(steal)
            .with_queue_capacity(n * n_shards)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
                anytime: false,
            }),
        vec![tier],
    );
    for req in requests {
        rt.submit(req).expect("queue sized for the whole stream");
    }
    let mut served = HashMap::new();
    for _ in 0..n {
        let resp = rt
            .collect_timeout(Duration::from_secs(10))
            .expect("sharded runtime stalled");
        served.insert(resp.request.id, resp.detection);
    }
    let (snap, leftover, _) = rt.shutdown();
    assert!(leftover.is_empty());
    (served, snap)
}

fn assert_identical(label: &str, served: &HashMap<u64, Detection>, truth: &[Detection]) {
    assert_eq!(served.len(), truth.len(), "{label}: response count");
    for (i, truth) in truth.iter().enumerate() {
        let det = &served[&(i as u64)];
        assert_eq!(det.indices, truth.indices, "{label} req {i}: decisions");
        assert_eq!(det.stats, truth.stats, "{label} req {i}: statistics");
        assert_eq!(
            det.stats.final_radius_sqr.to_bits(),
            truth.stats.final_radius_sqr.to_bits(),
            "{label} req {i}: metric bits"
        );
    }
}

/// Core identity: N shards ≡ 1 shard ≡ direct decode, for every tier, on
/// a coherent-block workload (the shape affinity routing concentrates).
#[test]
fn sharded_serving_is_bit_identical_for_every_tier() {
    let cfg = workload();
    let c = Constellation::new(cfg.modulation);
    let n_shards = shards_under_test();
    let requests = build_coherent_requests(&cfg, 6, &c);
    let truths: Vec<Vec<Detection>> = tiers_under_test(&c)
        .iter()
        .map(|t| direct_decodes(&*t.detector, &requests))
        .collect();
    // N-shard with stealing (requests are not Clone — the seeded builder
    // reproduces the identical stream per arm).
    for (tier, truth) in tiers_under_test(&c).into_iter().zip(&truths) {
        let label = format!("{} @{n_shards} shards", tier.label);
        let stream = build_coherent_requests(&cfg, 6, &c);
        let (served, snap) = serve_sharded(tier, stream, n_shards, true);
        assert_identical(&label, &served, truth);
        assert_eq!(snap.n_shards, n_shards, "workers ≥ shards: no clamping");
    }
    // Single-queue control arm (the pre-shard runtime), stealing moot.
    for (tier, truth) in tiers_under_test(&c).into_iter().zip(&truths) {
        let stream = build_coherent_requests(&cfg, 6, &c);
        let (served, _) = serve_sharded(tier, stream, 1, false);
        assert_identical("control @1 shard", &served, truth);
    }
}

/// Frame submission through N shards ≡ exploded per-vector submission
/// through N shards ≡ exploded per-vector through one shard.
#[test]
fn sharded_frames_match_exploded_vectors() {
    let c = Constellation::new(Modulation::Qam4);
    let n_shards = shards_under_test();
    let fcfg = FrameLoadConfig {
        grid: GridConfig::new(24, 2, 4, 4).with_coherence(8, 2),
        deadline: Duration::from_secs(5),
        ..Default::default()
    };
    let frames = build_frame_requests(&fcfg, &c);
    let n_frames = frames.len();
    let n_vec = explode_frames(&frames).len();

    let mk_rt = |shards: usize| {
        ServeRuntime::start(
            ServeConfig::default()
                .with_workers(shards.max(2))
                .with_shards(shards)
                .with_queue_capacity(n_vec.max(n_frames) * shards.max(1))
                .with_ladder(LadderConfig {
                    enabled: false,
                    kbest_k: 16,
                    anytime: false,
                }),
            c.clone(),
        )
    };

    // Frame arm at N shards.
    let rt = mk_rt(n_shards);
    for f in frames {
        rt.submit_frame(f).expect("sized for the stream");
    }
    let mut by_frame: HashMap<u64, Vec<Detection>> = HashMap::new();
    for _ in 0..n_frames {
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(10))
            .expect("frame arm stalled");
        assert_eq!(resp.prep_factors, 1, "one QR per coherence block");
        by_frame.insert(resp.request.id, resp.detections);
    }
    let (snap, _, _) = rt.shutdown();
    let shard_routed: u64 = snap.shards.iter().map(|s| s.routed).sum();
    assert_eq!(shard_routed, snap.accepted, "frames weigh their block size");

    // Vector arms at N shards and at 1 shard (the stream is rebuilt from
    // the same seed, so both arms replay identical subcarriers).
    for shards in [n_shards, 1] {
        let rt = mk_rt(shards);
        for v in explode_frames(&build_frame_requests(&fcfg, &c)) {
            rt.submit(v).expect("sized for the stream");
        }
        let mut served = HashMap::new();
        for _ in 0..n_vec {
            let resp = rt
                .collect_timeout(Duration::from_secs(10))
                .expect("vector arm stalled");
            served.insert(resp.request.id, resp.detection);
        }
        rt.shutdown();
        let mut k = 0u64;
        for fid in 0..n_frames as u64 {
            for det in &by_frame[&fid] {
                let v = &served[&k];
                assert_eq!(v.indices, det.indices, "frame {fid} vs vector {k}");
                assert_eq!(v.stats, det.stats, "frame {fid} vs vector {k}");
                k += 1;
            }
        }
    }
}

/// Force stealing: every request shares ONE channel matrix, so affinity
/// routing lands the whole stream on a single shard; the other shards'
/// workers can only make progress by stealing. Stolen work must be
/// bit-identical and the attribution counters must close.
#[test]
fn stolen_work_is_bit_identical_and_attributed() {
    let n_shards = shards_under_test();
    if n_shards < 2 {
        return; // nothing to steal from a single shard
    }
    let cfg = LoadConfig {
        n_tx: 8,
        n_rx: 8,
        n_requests: 400,
        snr_grid_db: vec![10.0],
        deadline: Duration::from_secs(5),
        seed: 0x57EA1,
        ..workload()
    };
    let c = Constellation::new(cfg.modulation);
    // One coherence block spanning the whole stream = one H = one shard.
    let requests = build_coherent_requests(&cfg, cfg.n_requests, &c);
    let tier = |c: &Constellation| {
        let mut t = default_registry(c, &LadderConfig::default());
        t.truncate(1); // exact tier only
        t
    };
    let truth = direct_decodes(&*tier(&c)[0].detector, &requests);

    // The backlog drains far slower than the 500 µs steal poll, so a
    // zero-steal run is (astronomically) unlikely; retry a couple of
    // times anyway rather than flake on a pathological scheduler.
    let mut last_snap = None;
    for _attempt in 0..3 {
        let rt = ServeRuntime::start_with_registry(
            ServeConfig::default()
                .with_workers(n_shards.max(2))
                .with_shards(n_shards)
                .with_queue_capacity(cfg.n_requests * n_shards)
                .with_ladder(LadderConfig {
                    enabled: false,
                    kbest_k: 16,
                    anytime: false,
                })
                .paused(),
            tier(&c),
        );
        for req in build_coherent_requests(&cfg, cfg.n_requests, &c) {
            rt.submit(req).expect("sized for the stream");
        }
        let snap = rt.metrics();
        let loaded: Vec<_> = snap.shards.iter().filter(|s| s.routed > 0).collect();
        assert_eq!(loaded.len(), 1, "one H routes to exactly one shard");
        assert_eq!(loaded[0].routed, cfg.n_requests as u64);
        rt.resume();
        let mut served = HashMap::new();
        for _ in 0..cfg.n_requests {
            let resp = rt
                .collect_timeout(Duration::from_secs(10))
                .expect("steal runtime stalled");
            served.insert(resp.request.id, resp.detection);
        }
        let (snap, _, _) = rt.shutdown();
        assert_identical("steal", &served, &truth);
        let stolen_in: u64 = snap.shards.iter().map(|s| s.stolen_in).sum();
        let stolen_out: u64 = snap.shards.iter().map(|s| s.stolen_out).sum();
        assert_eq!(stolen_in, stolen_out, "every loot has a victim");
        for (i, s) in snap.shards.iter().enumerate() {
            assert_eq!(
                s.affinity_served + s.stolen_in,
                s.served,
                "shard {i}: served is affinity + loot"
            );
        }
        if stolen_in > 0 {
            last_snap = Some(snap);
            break;
        }
        last_snap = Some(snap);
    }
    let snap = last_snap.unwrap();
    let stolen: u64 = snap.shards.iter().map(|s| s.stolen_in).sum();
    assert!(stolen > 0, "idle shards never stole from the loaded one");
}

/// Frames are stolen whole: frame traffic concentrated on ONE shard (all
/// frames share one channel matrix) keeps block integrity — one
/// detection per subcarrier, one preparation — no matter which worker
/// ends up decoding each block.
#[test]
fn stolen_frames_stay_whole() {
    let n_shards = shards_under_test();
    if n_shards < 2 {
        return;
    }
    let c = Constellation::new(Modulation::Qam4);
    let fcfg = FrameLoadConfig {
        // One coherence block = one shared H for every frame below.
        grid: GridConfig::new(8, 2, 4, 4).with_coherence(8, 2),
        deadline: Duration::from_secs(5),
        ..Default::default()
    };
    let base = build_frame_requests(&fcfg, &c);
    assert_eq!(base.len(), 1, "one coherence block");
    // 40 frames, every one carrying the same H: they all route to one
    // shard, so any work the other shards' workers do is stolen.
    let frames: Vec<FrameRequest> = (0..40)
        .map(|id| {
            FrameRequest::new(
                id,
                base[0].subcarriers.clone(),
                base[0].snr_db,
                fcfg.deadline,
            )
        })
        .collect();
    let n_frames = frames.len();
    let block = frames[0].block_len();
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(n_shards.max(2))
            .with_shards(n_shards)
            .with_queue_capacity(n_frames * n_shards)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
                anytime: false,
            })
            .paused(),
        c.clone(),
    );
    for f in frames {
        rt.submit_frame(f).expect("sized for the stream");
    }
    rt.resume();
    for _ in 0..n_frames {
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(10))
            .expect("frame steal stalled");
        assert_eq!(resp.detections.len(), block, "block never split");
        assert_eq!(resp.prep_factors, 1, "one preparation per block");
    }
    let (snap, _, _) = rt.shutdown();
    assert_eq!(snap.frames_served, n_frames as u64);
    let served: u64 = snap.shards.iter().map(|s| s.served).sum();
    assert_eq!(served, snap.served, "frame weight survives stealing");
}

/// Per-shard counters close every invariant over a mixed coherent +
/// i.i.d. + frame workload at the shard count under test.
#[test]
fn per_shard_counters_close_the_invariants() {
    let cfg = LoadConfig {
        n_requests: 90,
        ..workload()
    };
    let c = Constellation::new(cfg.modulation);
    let n_shards = shards_under_test();
    let coherent = build_coherent_requests(&cfg, 6, &c);
    let iid = build_coherent_requests(
        &LoadConfig {
            n_requests: 30,
            seed: cfg.seed + 1,
            ..cfg.clone()
        },
        1,
        &c,
    );
    let fcfg = FrameLoadConfig {
        grid: GridConfig::new(8, 2, 4, 4).with_coherence(4, 2),
        deadline: Duration::from_secs(5),
        ..Default::default()
    };
    let frames = build_frame_requests(&fcfg, &c);
    let n_frames = frames.len();
    let n_vec = coherent.len() + iid.len();
    let sub: usize = frames.iter().map(FrameRequest::block_len).sum();

    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(n_shards.max(2))
            .with_shards(n_shards)
            .with_queue_capacity((n_vec + n_frames) * n_shards),
        c.clone(),
    );
    for (vid, mut req) in coherent.into_iter().chain(iid).enumerate() {
        req.id = vid as u64;
        rt.submit(req).expect("sized");
    }
    for f in frames {
        rt.submit_frame(f).expect("sized");
    }
    let mut got_v = 0;
    let mut got_f = 0;
    while got_v < n_vec || got_f < n_frames {
        let mut progressed = false;
        if let Some(r) = rt.try_collect() {
            got_v += 1;
            drop(r);
            progressed = true;
        }
        if let Some(r) = rt.try_collect_frame() {
            got_f += 1;
            drop(r);
            progressed = true;
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let (snap, _, _) = rt.shutdown();

    let total = (n_vec + sub) as u64;
    assert_eq!(snap.accepted, total);
    assert_eq!(snap.served, total, "accepted == served after drain");
    assert_eq!(
        snap.prep_cache_hits + snap.prep_cache_misses + snap.prep_cache_bypass,
        snap.served,
        "global prep accounting closes"
    );
    assert_eq!(snap.shards.len(), snap.n_shards);
    let routed: u64 = snap.shards.iter().map(|s| s.routed).sum();
    let served: u64 = snap.shards.iter().map(|s| s.served).sum();
    assert_eq!(routed, snap.accepted, "Σ shard.routed == accepted");
    assert_eq!(served, snap.served, "Σ shard.served == served");
    for (i, s) in snap.shards.iter().enumerate() {
        assert_eq!(
            s.prep_hits + s.prep_misses + s.prep_bypass,
            s.served,
            "shard {i}: prep accounting closes"
        );
        assert_eq!(
            s.affinity_served + s.stolen_in,
            s.served,
            "shard {i}: served is affinity + loot"
        );
        assert_eq!(
            s.routed + s.stolen_in - s.stolen_out,
            s.served,
            "shard {i}: flow conservation"
        );
    }
}

/// Determinism stress: the same workload served repeatedly through the
/// sharded runtime — different thread interleavings, steals landing on
/// different workers — must return the same bits every run.
/// `SD_STRESS_ITERS` scales the repetitions (ci.sh runs 25).
#[test]
fn repeated_sharded_runs_are_deterministic() {
    let iters: usize = std::env::var("SD_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let cfg = LoadConfig {
        n_requests: 64,
        ..workload()
    };
    let c = Constellation::new(cfg.modulation);
    let n_shards = shards_under_test();
    let requests = build_coherent_requests(&cfg, 8, &c);
    let mut tiers = default_registry(&c, &LadderConfig::default());
    tiers.truncate(1);
    let truth = direct_decodes(&*tiers[0].detector, &requests);
    for run in 0..iters {
        let mut tiers = default_registry(&c, &LadderConfig::default());
        tiers.truncate(1);
        let (served, _) = serve_sharded(
            tiers.pop().unwrap(),
            build_coherent_requests(&cfg, 8, &c),
            n_shards,
            run % 2 == 0, // alternate stealing on and off
        );
        assert_identical(&format!("stress run {run}"), &served, &truth);
    }
}

/// The controller re-plans the shared [`WorkerBudget`] as load crosses
/// the watermarks: a standing backlog narrows the decoder to the
/// throughput split, draining widens it back to the full allowance.
#[test]
fn core_budget_controller_follows_load() {
    let c = Constellation::new(Modulation::Qam4);
    let handle = Arc::new(WorkerBudget::new(1));
    let policy = CoreBudgetPolicy {
        cores: 4,
        period: Duration::from_millis(2),
        low_watermark: 0.5,
        high_watermark: 2.0,
        alpha: 1.0, // undamped: the EWMA is the instantaneous depth
    };
    let cfg = LoadConfig {
        n_requests: 64,
        deadline: Duration::from_secs(5),
        ..workload()
    };
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(2)
            .with_shards(1)
            .with_queue_capacity(cfg.n_requests)
            .with_core_budget(Arc::clone(&handle), policy)
            .paused(),
        c.clone(),
    );
    // Idle: the controller starts on the latency plan (all 4 cores to
    // the decoder).
    assert_eq!(handle.get(), 4);
    // Build a standing backlog (workers gated): load = 64/2 ≫ high
    // watermark, so the next tick must switch to the throughput plan
    // max(1, 4 cores / 2 workers) = 2.
    for req in build_coherent_requests(&cfg, 4, &c) {
        rt.submit(req).expect("sized");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.get() != 2 {
        assert!(
            Instant::now() < deadline,
            "controller never took the throughput plan (budget {})",
            handle.get()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Drain: load falls to 0 ≤ low watermark, the plan must widen back.
    rt.resume();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.get() != 4 {
        assert!(
            Instant::now() < deadline,
            "controller never returned to the latency plan (budget {})",
            handle.get()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let (snap, _, _) = rt.shutdown();
    assert_eq!(snap.served, cfg.n_requests as u64);
    assert!(snap.budget_replans >= 2, "both transitions recorded");
    assert_eq!(snap.core_budget, 4, "final plan is the latency split");
}
