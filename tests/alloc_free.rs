//! Steady-state allocation audit for the arena searches.
//!
//! A counting `#[global_allocator]` proves the ISSUE's core claim: once a
//! [`SearchWorkspace`] has warmed up to capacity, decoding performs **no
//! per-node heap allocation** — the remaining per-*decode* allocations
//! (the returned index vector, the stats' per-level histogram, the BFS
//! trace) are a small constant, while the search generates thousands of
//! nodes. The seed implementation cloned a `Vec<usize>` path per surviving
//! child, so its allocation count scaled with the node count.

use sd_core::preprocess::{preprocess, Prepared};
use sd_core::{
    BestFirstSd, BfsGemmSd, FixedComplexitySd, KBestSd, PreparedDetector, SearchWorkspace,
    SphereDecoder,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// The counter is process-global, so tests in this binary must not overlap
/// their measurement windows: each takes this gate for its whole body.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fixed 8×8 16-QAM problem set, prepared outside the measured region.
/// Returns `(constellation, noise variance, prepared problems)`.
fn prepared_problems() -> (sd_wireless::Constellation, f64, Vec<Prepared<f64>>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let c = sd_wireless::Constellation::new(sd_wireless::Modulation::Qam16);
    let sigma2 = sd_wireless::noise_variance(14.0, 8);
    let mut rng = StdRng::seed_from_u64(0x5DC0DE);
    let preps = (0..8)
        .map(|_| {
            let f = sd_wireless::FrameData::generate(8, 8, &c, sigma2, &mut rng);
            preprocess::<f64>(&f, &c)
        })
        .collect();
    (c, sigma2, preps)
}

/// Run `decode` over all problems twice (warm-up + measured) and return
/// `(alloc calls in the measured pass, nodes generated in it)`.
fn measure(
    preps: &[Prepared<f64>],
    mut decode: impl FnMut(&Prepared<f64>) -> sd_core::Detection,
) -> (u64, u64) {
    for p in preps {
        std::hint::black_box(decode(p));
    }
    let before = allocs();
    let mut nodes = 0;
    for p in preps {
        nodes += std::hint::black_box(decode(p)).stats.nodes_generated;
    }
    (allocs() - before, nodes)
}

/// Per-decode allocation budget: index vector + stats histogram + a few
/// fixed-size odds and ends (the BFS trace), all independent of tree size.
const PER_DECODE_BUDGET: u64 = 16;

#[test]
fn dfs_steady_state_is_node_allocation_free() {
    let _g = serialized();
    let (c, _sigma2, preps) = prepared_problems();
    let sd: SphereDecoder<f64> = SphereDecoder::new(c);
    let mut ws = SearchWorkspace::new();
    let (allocs, nodes) = measure(&preps, |p| sd.detect_prepared_in(p, f64::INFINITY, &mut ws));
    assert!(nodes > 1_000, "search too small to be meaningful: {nodes}");
    assert!(
        allocs <= PER_DECODE_BUDGET * preps.len() as u64,
        "{allocs} allocations for {nodes} nodes: the search loop allocates"
    );
}

#[test]
fn best_first_steady_state_is_node_allocation_free() {
    let _g = serialized();
    let (c, _sigma2, preps) = prepared_problems();
    let bf: BestFirstSd<f64> = BestFirstSd::new(c);
    let mut ws = SearchWorkspace::new();
    let (allocs, nodes) = measure(&preps, |p| bf.detect_prepared_in(p, f64::INFINITY, &mut ws));
    assert!(nodes > 1_000, "search too small to be meaningful: {nodes}");
    assert!(
        allocs <= PER_DECODE_BUDGET * preps.len() as u64,
        "{allocs} allocations for {nodes} nodes: the search loop allocates"
    );
}

#[test]
fn bfs_steady_state_is_node_allocation_free() {
    let _g = serialized();
    let (c, _sigma2, preps) = prepared_problems();
    let bfs: BfsGemmSd<f64> = BfsGemmSd::new(c).with_max_frontier(256);
    let mut ws = SearchWorkspace::new();
    let r2 = sd_core::InitialRadius::ScaledNoise(2.0).resolve(8, _sigma2);
    // The per-decode trace allocates its level vector; still O(M), not O(nodes).
    let (allocs, nodes) = measure(&preps, |p| bfs.detect_prepared_traced_in(p, r2, &mut ws).0);
    assert!(nodes > 1_000, "search too small to be meaningful: {nodes}");
    assert!(
        allocs <= 2 * PER_DECODE_BUDGET * preps.len() as u64,
        "{allocs} allocations for {nodes} nodes: the level loop allocates"
    );
}

#[test]
fn kbest_steady_state_is_node_allocation_free() {
    let _g = serialized();
    let (c, _sigma2, preps) = prepared_problems();
    let kb: KBestSd<f64> = KBestSd::new(c, 64);
    let mut ws = SearchWorkspace::new();
    let (allocs, nodes) = measure(&preps, |p| kb.detect_prepared_in(p, f64::INFINITY, &mut ws));
    assert!(nodes > 1_000, "search too small to be meaningful: {nodes}");
    assert!(
        allocs <= PER_DECODE_BUDGET * preps.len() as u64,
        "{allocs} allocations for {nodes} nodes: the sweep allocates"
    );
}

#[test]
fn bfs_untrace_prepared_path_is_node_allocation_free() {
    let _g = serialized();
    // The plain engine entry point (no trace) must match the traced path's
    // steady-state behavior: recycled workspace, constant per-decode cost.
    let (c, sigma2, preps) = prepared_problems();
    let bfs: BfsGemmSd<f64> = BfsGemmSd::new(c).with_max_frontier(256);
    let mut ws = SearchWorkspace::new();
    let r2 = sd_core::InitialRadius::ScaledNoise(2.0).resolve(8, sigma2);
    let (allocs, nodes) = measure(&preps, |p| bfs.detect_prepared_in(p, r2, &mut ws));
    assert!(nodes > 1_000, "search too small to be meaningful: {nodes}");
    assert!(
        allocs <= PER_DECODE_BUDGET * preps.len() as u64,
        "{allocs} allocations for {nodes} nodes: the level loop allocates"
    );
}

#[test]
fn fsd_steady_state_is_node_allocation_free() {
    let _g = serialized();
    let (c, _sigma2, preps) = prepared_problems();
    let fsd: FixedComplexitySd<f64> = FixedComplexitySd::new(c);
    let mut ws = SearchWorkspace::new();
    let (allocs, nodes) = measure(&preps, |p| {
        fsd.detect_prepared_in(p, f64::INFINITY, &mut ws)
    });
    assert!(nodes > 1_000, "search too small to be meaningful: {nodes}");
    assert!(
        allocs <= PER_DECODE_BUDGET * preps.len() as u64,
        "{allocs} allocations for {nodes} nodes: the prefix sweep allocates"
    );
}

#[test]
fn disabled_trace_decode_is_exactly_allocation_free() {
    let _g = serialized();
    // With no TraceSink installed the observability layer must cost
    // nothing: a warm workspace + recycled Detection decode performs zero
    // allocations — not merely "within budget" — across the engine zoo.
    let (c, _sigma2, preps) = prepared_problems();
    let dets: Vec<Box<dyn PreparedDetector<f64>>> = vec![
        Box::new(SphereDecoder::new(c.clone())),
        Box::new(BestFirstSd::new(c.clone())),
        Box::new(KBestSd::new(c, 64)),
    ];
    let mut ws = SearchWorkspace::new();
    assert!(!ws.trace_enabled());
    let mut out = sd_core::Detection::default();
    for det in &dets {
        for p in &preps {
            det.detect_prepared_into(p, f64::INFINITY, &mut ws, &mut out);
        }
    }
    let before = allocs();
    let mut nodes = 0;
    for det in &dets {
        for p in &preps {
            det.detect_prepared_into(p, f64::INFINITY, &mut ws, &mut out);
            nodes += std::hint::black_box(&out).stats.nodes_generated;
        }
    }
    let delta = allocs() - before;
    assert!(nodes > 10_000, "search too small to be meaningful: {nodes}");
    assert_eq!(
        delta, 0,
        "{delta} allocations with tracing disabled ({nodes} nodes): \
         the observability layer leaks into the hot path"
    );
}

#[test]
fn parallel_decode_steady_state_is_exactly_allocation_free() {
    let _g = serialized();
    // The subtree-parallel engine must match the sequential zero-alloc
    // guarantee: the first decode builds the persistent worker pool and
    // per-worker workspaces; after that, enumeration, the broadcast, the
    // shared-radius CAS loop, stat merging, and telemetry-free searches
    // perform zero allocations.
    let (c, _sigma2, preps) = prepared_problems();
    let par = sd_core::ParallelSphereDecoder::<f64>::new(c).with_workers(4);
    let mut ws = SearchWorkspace::new();
    let mut out = sd_core::Detection::default();
    for p in &preps {
        par.detect_prepared_into(p, f64::INFINITY, &mut ws, &mut out);
    }
    let before = allocs();
    let mut nodes = 0;
    for p in &preps {
        par.detect_prepared_into(p, f64::INFINITY, &mut ws, &mut out);
        nodes += std::hint::black_box(&out).stats.nodes_generated;
    }
    let delta = allocs() - before;
    assert!(nodes > 10_000, "search too small to be meaningful: {nodes}");
    assert_eq!(
        delta, 0,
        "{delta} allocations across 8 parallel decodes ({nodes} nodes): \
         the fan-out/join path allocates in steady state"
    );
}

#[test]
fn installed_telemetry_cost_is_per_level_not_per_node() {
    let _g = serialized();
    // With a SearchTelemetry recorder installed the per-decode cost may
    // include the level table, but must stay O(M) — never O(nodes).
    let (c, _sigma2, preps) = prepared_problems();
    let sd: SphereDecoder<f64> = SphereDecoder::new(c);
    let mut ws = SearchWorkspace::new();
    ws.install_telemetry();
    let mut out = sd_core::Detection::default();
    let warm = |ws: &mut SearchWorkspace<f64>, out: &mut sd_core::Detection| {
        for p in &preps {
            sd.detect_prepared_into(p, f64::INFINITY, ws, out);
        }
    };
    warm(&mut ws, &mut out);
    let before = allocs();
    warm(&mut ws, &mut out);
    let delta = allocs() - before;
    assert!(
        delta <= PER_DECODE_BUDGET * preps.len() as u64,
        "{delta} allocations with telemetry installed: recorder allocates per node"
    );
}

#[test]
fn reference_implementation_allocates_per_node() {
    let _g = serialized();
    // Sanity check that the counter actually sees the seed behavior this
    // PR removes: the path-cloning reference allocates proportionally to
    // the number of surviving nodes.
    let (_, _, preps) = prepared_problems();
    let before = allocs();
    let mut nodes = 0;
    for p in &preps {
        nodes += sd_core::reference::kbest_reference(p, 64)
            .stats
            .nodes_generated;
    }
    let delta = allocs() - before;
    assert!(
        delta > nodes / 4,
        "reference made only {delta} allocations for {nodes} nodes?"
    );
}

#[test]
fn fused_block_decode_steady_state_is_exactly_allocation_free() {
    let _g = serialized();
    // The cross-subcarrier fused path — one GEMM batch per tree level for
    // a whole coherence block — must hold the same steady-state guarantee
    // as the per-vector engines: once the workspace has warmed to the
    // fused frontier width (K × B lanes), decoding a block performs zero
    // allocations across the float and quantized fusable engines.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_core::preprocess::BlockPrep;
    use sd_core::{decode_block_fused_into, DecodeBudget, Detection};
    let c = sd_wireless::Constellation::new(sd_wireless::Modulation::Qam16);
    let sigma2 = sd_wireless::noise_variance(14.0, 8);
    let mut rng = StdRng::seed_from_u64(0xF05ED);
    let base = sd_wireless::FrameData::generate(8, 8, &c, sigma2, &mut rng);
    let frames: Vec<_> = (0..16)
        .map(|_| {
            let mut f = base.clone();
            let fresh = sd_wireless::FrameData::generate(8, 8, &c, sigma2, &mut rng);
            f.y = fresh.y;
            f.tx = fresh.tx;
            f
        })
        .collect();
    let dets: Vec<Box<dyn PreparedDetector<f64>>> = vec![
        Box::new(KBestSd::new(c.clone(), 16)),
        Box::new(sd_core::QuantizedKBestSd::new(c.clone(), 16)),
        Box::new(sd_core::QuantizedFsd::new(c)),
    ];
    let mut scratch = sd_core::preprocess::PrepScratch::new();
    let mut block = BlockPrep::new();
    let mut prep = sd_core::preprocess::Prepared::empty();
    let mut ws = SearchWorkspace::new();
    let mut out = vec![Detection::default(); frames.len()];
    // Two warm-up passes: the level loop ping-pongs two frontier buffers,
    // so a single pass can leave the spare one under max capacity.
    for det in dets.iter().chain(dets.iter()) {
        let (_, fused) = decode_block_fused_into(
            &**det,
            &frames,
            &DecodeBudget::UNLIMITED,
            &mut scratch,
            &mut block,
            &mut prep,
            &mut ws,
            &mut out,
        );
        assert!(fused, "warm-up must take the fused path");
    }
    let before = allocs();
    let mut nodes = 0;
    for det in &dets {
        decode_block_fused_into(
            &**det,
            &frames,
            &DecodeBudget::UNLIMITED,
            &mut scratch,
            &mut block,
            &mut prep,
            &mut ws,
            &mut out,
        );
        for d in std::hint::black_box(&out) {
            nodes += d.stats.nodes_generated;
        }
    }
    let delta = allocs() - before;
    assert!(nodes > 10_000, "search too small to be meaningful: {nodes}");
    assert_eq!(
        delta, 0,
        "{delta} allocations across 3 fused block decodes ({nodes} nodes): \
         the fused level loop allocates in steady state"
    );
}

/// One lock-step pass over the ring: submit each request, wait for its
/// response, recycle the detection buffer, and put the request back.
/// Returns the nodes generated during the pass.
fn serve_roundtrip(
    rt: &sd_serve::ServeRuntime,
    ring: &mut std::collections::VecDeque<sd_serve::DetectionRequest>,
) -> u64 {
    let mut nodes = 0;
    for _ in 0..ring.len() {
        let req = ring.pop_front().unwrap();
        rt.submit(req).expect("lock-step never fills the queue");
        let resp = rt
            .collect_timeout(std::time::Duration::from_secs(10))
            .expect("runtime stalled");
        nodes += resp.detection.stats.nodes_generated;
        ring.push_back(rt.recycle(resp));
    }
    nodes
}

#[test]
fn serve_steady_state_is_request_allocation_free() {
    let _g = serialized();
    use sd_serve::{BatchPolicy, LadderConfig, LoadConfig, ServeConfig, ServeRuntime};
    // Closed-loop client over the serving runtime: every buffer —
    // ingress/response queues, the worker's scratch, the pooled Detection
    // slot, the request frames themselves — round-trips, so after warm-up
    // the whole submit→decode→collect→recycle cycle must not allocate.
    let cfg = LoadConfig {
        n_tx: 8,
        n_rx: 8,
        modulation: sd_wireless::Modulation::Qam16,
        snr_grid_db: vec![14.0],
        n_requests: 8,
        offered_rate_hz: 0.0,
        deadline: std::time::Duration::from_secs(1),
        seed: 0xA110C,
    };
    let c = sd_wireless::Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(16)
            .with_batch(BatchPolicy::unbatched())
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 16,
                anytime: false,
            }),
        c.clone(),
    );
    let mut ring: std::collections::VecDeque<_> = sd_serve::build_requests(&cfg, &c).into();
    for _ in 0..3 {
        serve_roundtrip(&rt, &mut ring);
    }
    let before = allocs();
    let mut nodes = 0;
    for _ in 0..8 {
        nodes += serve_roundtrip(&rt, &mut ring);
    }
    let delta = allocs() - before;
    assert!(nodes > 10_000, "search too small to be meaningful: {nodes}");
    assert_eq!(
        delta, 0,
        "{delta} allocations across 64 served requests ({nodes} nodes): \
         the steady-state serve path allocates"
    );
    rt.shutdown();
}
