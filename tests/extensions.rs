//! Integration tests for the extension layer: ordering, K-best, soft
//! output, channel models, CSI error, and multi-pipeline deployment.

use mimo_sd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_wireless::montecarlo::generate_frames;

#[test]
fn ordering_never_changes_the_answer() {
    let cfg = LinkConfig::square(7, Modulation::Qam4, 6.0).with_frames(30);
    let c = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);
    let natural: SphereDecoder<f64> = SphereDecoder::new(c.clone());
    for ordering in [
        ColumnOrdering::NormDescending,
        ColumnOrdering::NormAscending,
    ] {
        let ordered: SphereDecoder<f64> = SphereDecoder::new(c.clone()).with_ordering(ordering);
        for f in &frames {
            assert_eq!(
                ordered.detect(f).indices,
                natural.detect(f).indices,
                "{ordering:?} must stay ML-exact"
            );
        }
    }
}

#[test]
fn kbest_interpolates_between_linear_and_ml() {
    let cfg = LinkConfig::square(6, Modulation::Qam4, 8.0).with_frames(200);
    let c = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);
    let ml = MlDetector::new(c.clone());
    let zf = ZfDetector::new(c.clone());
    let kb: KBestSd<f64> = KBestSd::new(c.clone(), 16);
    let errs = |det: &dyn Detector| -> u64 {
        frames
            .iter()
            .map(|f| f.bit_errors(&det.detect(f).indices, &c))
            .sum()
    };
    let e_ml = errs(&ml);
    let e_kb = errs(&kb);
    let e_zf = errs(&zf);
    assert!(e_ml <= e_kb, "ML ({e_ml}) must not lose to K-best ({e_kb})");
    assert!(e_kb < e_zf, "K-best ({e_kb}) must beat ZF ({e_zf})");
}

#[test]
fn soft_decoder_is_exact_in_hard_decisions() {
    let cfg = LinkConfig::square(5, Modulation::Qam16, 10.0).with_frames(15);
    let c = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);
    let soft: SoftSphereDecoder<f64> = SoftSphereDecoder::new(c.clone());
    let ml = MlDetector::new(c);
    for f in &frames {
        let s = soft.detect_soft(f);
        assert_eq!(s.detection.indices, ml.detect(f).indices);
        assert_eq!(s.llrs.len(), 5 * 4);
    }
}

#[test]
fn correlated_channels_are_harder_for_every_detector() {
    let n = 8;
    let snr = 12.0;
    let c = Constellation::new(Modulation::Qam4);
    let sd: SphereDecoder<f32> = SphereDecoder::new(c.clone());
    let sigma2 = noise_variance(snr, n);
    let run = |model: ChannelModel, seed: u64| -> (u64, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut errs = 0u64;
        let mut nodes = 0u64;
        for _ in 0..150 {
            let ch = model.realize(n, n, &mut rng);
            let tx = TxFrame::random(n, &c, &mut rng);
            let y = ch.transmit(&tx.symbols, sigma2, &mut rng);
            let frame = FrameData {
                h: ch.matrix().clone(),
                y,
                noise_variance: sigma2,
                tx,
            };
            let d = sd.detect(&frame);
            errs += frame.bit_errors(&d.indices, &c);
            nodes += d.stats.nodes_generated;
        }
        (errs, nodes)
    };
    let (e_iid, n_iid) = run(ChannelModel::Iid, 1);
    let (e_corr, n_corr) = run(
        ChannelModel::KroneckerExponential {
            rho_tx: 0.8,
            rho_rx: 0.8,
        },
        1,
    );
    assert!(
        e_corr > e_iid,
        "correlation must cost BER: {e_iid} vs {e_corr}"
    );
    assert!(
        n_corr > n_iid,
        "correlation must inflate the tree: {n_iid} vs {n_corr}"
    );
}

#[test]
fn csi_error_degrades_gracefully() {
    let n = 6;
    let c = Constellation::new(Modulation::Qam4);
    let sd: SphereDecoder<f32> = SphereDecoder::new(c.clone());
    let sigma2 = noise_variance(14.0, n);
    let run = |eps: f64| -> u64 {
        let mut rng = StdRng::seed_from_u64(77);
        let mut errs = 0u64;
        for _ in 0..200 {
            let mut frame = FrameData::generate(n, n, &c, sigma2, &mut rng);
            corrupt_csi(&mut frame, eps, &mut rng);
            errs += frame.bit_errors(&sd.detect(&frame).indices, &c);
        }
        errs
    };
    let perfect = run(0.0);
    let small = run(0.05);
    let large = run(0.3);
    assert!(small >= perfect);
    assert!(
        large > small,
        "more CSI error must cost more: {perfect} / {small} / {large}"
    );
}

#[test]
fn multi_pipeline_scales_and_validates_resources() {
    let cfg = LinkConfig::square(8, Modulation::Qam4, 8.0).with_frames(16);
    let c = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);
    let config = FpgaConfig::optimized(Modulation::Qam4, 8);
    let single = MultiPipeline::new(config.clone(), c.clone(), 1).decode_batch(&frames);
    let dual = MultiPipeline::new(config, c, 2).decode_batch(&frames);
    assert!(dual.makespan_seconds < single.makespan_seconds);
    for (a, b) in single.reports.iter().zip(dual.reports.iter()) {
        assert_eq!(a.detection.indices, b.detection.indices);
    }
}

#[test]
fn fp16_decoder_agrees_with_f64_on_easy_frames() {
    let cfg = LinkConfig::square(6, Modulation::Qam4, 14.0).with_frames(30);
    let c = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);
    let sd16: SphereDecoder<F16> = SphereDecoder::new(c.clone());
    let sd64: SphereDecoder<f64> = SphereDecoder::new(c);
    let agree = frames
        .iter()
        .filter(|f| sd16.detect(f).indices == sd64.detect(f).indices)
        .count();
    assert!(
        agree >= 28,
        "f16 disagreed on {} of 30 easy frames",
        30 - agree
    );
}
