//! Anytime serving semantics end to end: with a generous deadline the
//! anytime ladder changes *nothing* — every served decision is
//! bit-identical to driving the engine directly, flagged exact — while an
//! exhausted deadline truncates deterministically with complete
//! best-so-far answers. In both regimes the quality counters close:
//! `quality_exact + budget_exhausted == served`, end to end through the
//! metrics snapshot. Predictive admission control rides the same model:
//! a request whose shard backlog is already predicted to outlast its
//! whole deadline is shed at `submit` with
//! [`RejectReason::PredictedLate`] instead of being admitted to miss.

use sd_core::{Detection, PrepScratch, Prepared, PreparedDetector, SearchWorkspace, SphereDecoder};
use sd_serve::{
    build_frame_requests, build_requests, FrameLoadConfig, LadderConfig, LoadConfig, RejectReason,
    ServeConfig, ServeRuntime, Tier, TierCostClass,
};
use sd_wireless::{Constellation, GridConfig, Modulation};
use std::collections::HashMap;
use std::time::Duration;

fn workload(deadline: Duration) -> LoadConfig {
    LoadConfig {
        n_tx: 6,
        n_rx: 6,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![4.0, 8.0, 16.0],
        n_requests: 36,
        offered_rate_hz: 0.0,
        deadline,
        seed: 0xA11F,
    }
}

fn anytime_on() -> LadderConfig {
    LadderConfig {
        enabled: true,
        kbest_k: 16,
        anytime: true,
    }
}

/// Single-tier registry: the exact anytime engine, so every request lands
/// on the decoder whose truncation semantics are under test.
fn exact_tier(c: &Constellation) -> Tier {
    Tier::new(
        "exact",
        TierCostClass::Adaptive,
        Box::new(SphereDecoder::<f64>::new(c.clone())),
    )
}

/// With a deadline far above any decode, the anytime ladder's budgets
/// never trip: every response is bit-identical — indices *and* stats — to
/// the unbudgeted engine driven directly, every quality flag is exact,
/// and the counters close.
#[test]
fn generous_deadline_anytime_serving_is_bit_identical() {
    let cfg = workload(Duration::from_secs(30));
    let c = Constellation::new(cfg.modulation);
    let det = SphereDecoder::<f64>::new(c.clone());
    let mut scratch = PrepScratch::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    let truth: Vec<Detection> = build_requests(&cfg, &c)
        .iter()
        .map(|req| {
            let mut d = Detection::default();
            det.prepare_frame_into(&req.frame, &mut scratch, &mut prep);
            let r2 = det.initial_radius_sqr(req.frame.h.rows(), req.frame.noise_variance);
            det.detect_prepared_into(&prep, r2, &mut ws, &mut d);
            d
        })
        .collect();

    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(cfg.n_requests)
            .with_ladder(anytime_on()),
        vec![exact_tier(&c)],
    );
    for req in build_requests(&cfg, &c) {
        rt.submit(req).expect("queue sized for the burst");
    }
    let (snap, leftover, _) = rt.shutdown();
    assert_eq!(snap.served, cfg.n_requests as u64);
    assert_eq!(snap.quality_exact, snap.served, "no budget ever tripped");
    assert_eq!(snap.budget_exhausted, 0);
    assert_eq!(snap.quality_exact + snap.budget_exhausted, snap.served);

    let by_id: HashMap<u64, &Detection> = leftover
        .iter()
        .map(|r| (r.request.id, &r.detection))
        .collect();
    for (i, want) in truth.iter().enumerate() {
        let got = by_id[&(i as u64)];
        assert_eq!(
            got, want,
            "request {i}: anytime serving must be bit-identical when untripped"
        );
        assert!(!got.stats.quality.is_truncated());
    }
}

/// With the deadline already exhausted at pickup, the anytime budget's
/// wall-clock backstop trips at the first check: every response is
/// truncated (flagged, complete best-so-far indices), and the quality
/// counters account for every served request.
#[test]
fn exhausted_deadline_anytime_serving_truncates_and_counters_close() {
    let cfg = workload(Duration::ZERO);
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(cfg.n_requests)
            .with_ladder(anytime_on())
            .paused(),
        vec![exact_tier(&c)],
    );
    for req in build_requests(&cfg, &c) {
        rt.submit(req).expect("queue sized for the burst");
    }
    let (snap, leftover, _) = rt.shutdown();
    assert_eq!(snap.served, cfg.n_requests as u64);
    assert_eq!(
        snap.budget_exhausted, snap.served,
        "every decode tripped its already-expired deadline"
    );
    assert_eq!(snap.quality_exact, 0);
    assert_eq!(snap.quality_exact + snap.budget_exhausted, snap.served);
    for resp in &leftover {
        assert!(resp.detection.stats.quality.is_truncated());
        assert_eq!(
            resp.detection.indices.len(),
            cfg.n_tx,
            "truncated responses still carry complete decisions"
        );
        assert!(resp.deadline_missed);
    }
}

/// Warm a one-worker runtime's drain-rate estimate with generous-deadline
/// traffic, freeze the worker, and offer requests whose deadline is far
/// below one predicted service time. The first lands on an empty shard
/// (predicted wait zero) and is admitted; every later one sees a backlog
/// already predicted to outlast its whole deadline and must be shed with
/// [`RejectReason::PredictedLate`] — and the shed count must surface in
/// the metrics snapshot.
#[test]
fn predictive_admission_sheds_doomed_requests() {
    let warm = workload(Duration::from_secs(30));
    let c = Constellation::new(warm.modulation);
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(2 * warm.n_requests)
            .with_ladder(anytime_on())
            .with_predictive_admission(true),
        vec![exact_tier(&c)],
    );
    // Warm-up: an empty queue predicts zero wait, so everything is
    // admitted, and each decode trains the shard's mean service rate.
    for req in build_requests(&warm, &c) {
        rt.submit(req).expect("warm-up traffic must be admitted");
    }
    for _ in 0..warm.n_requests {
        rt.collect_timeout(Duration::from_secs(30))
            .expect("warm-up response");
    }
    assert_eq!(rt.metrics().rejected_predicted, 0, "warm-up sheds nothing");

    rt.pause();
    let tight = Duration::from_nanos(1);
    let mut admitted = 0u64;
    let mut shed = 0u64;
    for req in build_requests(&workload(tight), &c) {
        match rt.submit(req) {
            Ok(()) => admitted += 1,
            Err(rej) => {
                match rej.reason {
                    RejectReason::PredictedLate { predicted_wait } => {
                        assert!(predicted_wait > tight, "the gate's own evidence");
                    }
                    other => panic!("expected PredictedLate, got {other:?}"),
                }
                shed += 1;
            }
        }
    }
    assert_eq!(admitted, 1, "only the empty-shard request is admissible");
    assert_eq!(shed, warm.n_requests as u64 - 1);

    rt.resume();
    let (snap, _, _) = rt.shutdown();
    assert_eq!(snap.rejected_predicted, shed);
    assert_eq!(snap.frames_rejected_predicted, 0);
    assert_eq!(snap.served, warm.n_requests as u64 + admitted);
}

/// The frame-scale variant of the admission gate: backlog is weighted by
/// subcarriers, so one admitted coherence block is enough predicted work
/// to shed the next. The frame shed bumps `frames_rejected_predicted` by
/// one and `rejected_predicted` by the block's subcarrier count.
#[test]
fn predictive_admission_sheds_doomed_frames() {
    let warm = workload(Duration::from_secs(30));
    let c = Constellation::new(warm.modulation);
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(2 * warm.n_requests)
            .with_ladder(anytime_on())
            .with_predictive_admission(true),
        vec![exact_tier(&c)],
    );
    for req in build_requests(&warm, &c) {
        rt.submit(req).expect("warm-up traffic must be admitted");
    }
    for _ in 0..warm.n_requests {
        rt.collect_timeout(Duration::from_secs(30))
            .expect("warm-up response");
    }

    rt.pause();
    let frames = build_frame_requests(
        &FrameLoadConfig {
            grid: GridConfig::new(8, 2, 4, 4).with_coherence(4, 2),
            modulation: Modulation::Qam4,
            offered_rate_hz: 0.0,
            deadline: Duration::from_nanos(1),
            seed: 0xF8A3,
        },
        &c,
    );
    assert!(frames.len() >= 2, "need a block to admit and one to shed");
    let block = frames[0].block_len() as u64;
    let mut iter = frames.into_iter();
    rt.submit_frame(iter.next().unwrap())
        .expect("empty shard predicts zero wait");
    let rej = rt
        .submit_frame(iter.next().unwrap())
        .expect_err("a whole queued block must shed the next frame");
    assert!(matches!(rej.reason, RejectReason::PredictedLate { .. }));

    rt.resume();
    let (snap, _, _) = rt.shutdown();
    assert_eq!(snap.frames_rejected_predicted, 1);
    assert_eq!(snap.rejected_predicted, block);
}

/// The reactive ladder (anytime off) never truncates — its quality
/// counters are all-exact even under a zero deadline, the control-arm
/// contract the overload benchmark compares against.
#[test]
fn reactive_ladder_never_truncates() {
    let cfg = workload(Duration::ZERO);
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(cfg.n_requests)
            .with_ladder(LadderConfig {
                enabled: true,
                kbest_k: 16,
                anytime: false,
            })
            .paused(),
        c.clone(),
    );
    for req in build_requests(&cfg, &c) {
        rt.submit(req).expect("queue sized for the burst");
    }
    let (snap, _, _) = rt.shutdown();
    assert_eq!(snap.served, cfg.n_requests as u64);
    assert_eq!(snap.budget_exhausted, 0);
    assert_eq!(snap.quality_exact, snap.served);
    assert_eq!(
        snap.rejected_predicted, 0,
        "predictive admission is opt-in; the reactive arm never sheds on prediction"
    );
}
