//! Cross-crate tests for the fixed-point decode path: ℓ∞/ℓ2 pruning
//! admissibility against brute-force fixed-domain oracles, and the BER
//! gate that licenses the quantized engines as serve-ladder rungs.
//!
//! The BER methodology uses common random numbers: the float oracle and
//! the quantized candidate decode the *same* frame realizations
//! ([`run_link`] regenerates identically from the config seed), so the
//! measured SNR gap at the target BER is the quantization cost alone,
//! not Monte-Carlo variance between two independent sweeps.

use mimo_sd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::preprocess::preprocess;
use sd_core::quantized::{FxPrepared, QuantizedSphereDecoder};
use sd_core::{MetricKind, PreparedDetector, MAX_QUANT_DEGRADATION_DB};
use sd_wireless::degradation_db;

fn make_frame(n: usize, m: Modulation, snr_db: f64, seed: u64) -> (Constellation, FrameData) {
    let c = Constellation::new(m);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let f = FrameData::generate(n, n, &c, sigma2, &mut rng);
    (c, f)
}

fn modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qam4),
        Just(Modulation::Qam16),
    ]
}

fn metric() -> impl Strategy<Value = MetricKind> {
    prop_oneof![Just(MetricKind::L2), Just(MetricKind::LInf)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Pruning admissibility, directly: a bounded search must return the
    /// brute-force optimum whenever the bound admits it (the sphere
    /// constraint never discards a leaf with metric ≤ b), and must
    /// report an empty sphere whenever no leaf qualifies.
    #[test]
    fn bounded_search_is_admissible(
        n in 2usize..6,
        m in modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        metric in metric(),
        slack in 0i64..3,
    ) {
        // Keep the brute-force oracle tractable: P^M ≤ 4096.
        prop_assume!(m.order().pow(n as u32) <= 4096);
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let mut fx = FxPrepared::new();
        fx.quantize_from(&prep);
        let (min, _) = fx.brute_force_min(metric);

        let sd = QuantizedSphereDecoder::new(c).with_metric(metric);
        // Bound at or above the optimum: the optimum must survive.
        let found = sd.detect_prepared_bounded(&prep, min.saturating_add(slack));
        prop_assert_eq!(found.map(|(v, _)| v), Some(min));
        // Bound strictly below every leaf: the sphere is empty. A search
        // that pruned inadmissibly could not tell these cases apart.
        prop_assert_eq!(sd.detect_prepared_bounded(&prep, min - 1), None);
    }

    /// The unbounded ℓ∞ (and ℓ2) engine lands exactly on the fixed-domain
    /// brute-force minimum — max-combined metrics stay monotone along
    /// paths, so sorted-DFS pruning loses nothing.
    #[test]
    fn quantized_dfs_matches_brute_force_oracle(
        n in 2usize..6,
        m in modulation(),
        snr_db in 2.0f64..20.0,
        seed in any::<u64>(),
        metric in metric(),
    ) {
        prop_assume!(m.order().pow(n as u32) <= 4096);
        let (c, frame) = make_frame(n, m, snr_db, seed);
        let prep = preprocess::<f64>(&frame, &c);
        let mut fx = FxPrepared::new();
        fx.quantize_from(&prep);
        let (min, _) = fx.brute_force_min(metric);

        let sd = QuantizedSphereDecoder::new(c).with_metric(metric);
        let (found, _) = sd
            .detect_prepared_bounded(&prep, i64::MAX)
            .expect("unbounded sphere cannot be empty");
        prop_assert_eq!(found, min);
    }
}

/// Run one detector over an SNR sweep with common random numbers and
/// return its BER curve.
fn sweep(
    label: &str,
    n: usize,
    modulation: Modulation,
    snrs: &[f64],
    frames: usize,
    mut decode: impl FnMut(&FrameData) -> Vec<usize>,
) -> BerCurve {
    let mut curve = BerCurve::new(label);
    for &snr_db in snrs {
        let cfg = LinkConfig::square(n, modulation, snr_db).with_frames(frames);
        let stats = run_link(&cfg, &mut decode);
        curve.push(BerPoint::from_counter(snr_db, &stats.errors));
    }
    curve
}

fn assert_quantized_within_bound(n: usize, snrs: &[f64], frames: usize, target_ber: f64) {
    let c = Constellation::new(Modulation::Qam16);

    let oracle: SphereDecoder<f64> = SphereDecoder::new(c.clone());
    let mut ws = SearchWorkspace::new();
    let float_curve = sweep("sd-f64", n, Modulation::Qam16, snrs, frames, |f| {
        oracle.detect_in(f, &mut ws).indices
    });

    let quant = QuantizedSphereDecoder::new(c);
    let fixed_curve = sweep("sd-fx-i16", n, Modulation::Qam16, snrs, frames, |f| {
        quant.detect_frame(f).indices
    });

    assert!(
        float_curve.is_monotone_nonincreasing(0.5),
        "oracle curve not monotone: {float_curve:?}"
    );
    let d = degradation_db(&float_curve, &fixed_curve, target_ber).unwrap_or_else(|| {
        panic!(
            "BER {target_ber} not crossed in the measured span:\n{float_curve:?}\n{fixed_curve:?}"
        )
    });
    assert!(
        d <= MAX_QUANT_DEGRADATION_DB,
        "quantized path degrades {d:.3} dB at BER {target_ber} \
         (bound {MAX_QUANT_DEGRADATION_DB} dB)\n{float_curve:?}\n{fixed_curve:?}"
    );
}

/// The gate that licenses the fixed-point engines: ≤ 0.2 dB SNR penalty
/// vs the f64 exact oracle at the target BER (cheap 8×8 variant, always
/// run).
#[test]
fn quantized_ber_degradation_within_bound_8x8() {
    assert_quantized_within_bound(8, &[14.0, 16.0, 18.0, 20.0, 22.0], 120, 1e-2);
}

/// The paper's 16×16/16-QAM operating point. Expensive (exact DFS at low
/// SNR): run in release via `ci.sh`.
#[test]
#[ignore = "release-mode BER sweep; run via ci.sh"]
fn quantized_ber_degradation_within_bound_16x16() {
    assert_quantized_within_bound(16, &[16.0, 18.0, 20.0, 22.0], 150, 1e-2);
}
