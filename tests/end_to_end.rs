//! End-to-end link-level integration tests across all crates.

use mimo_sd::prelude::*;
use sd_wireless::montecarlo::generate_frames;

/// Run one detector over a config and return its error counter.
fn run<D: Detector>(cfg: &LinkConfig, det: &D) -> ErrorCounter {
    let stats = run_link(cfg, |f| det.detect(f).indices);
    stats.errors
}

#[test]
fn detector_accuracy_hierarchy_holds() {
    // The paper's premise (Sec. I): non-linear ≥ MMSE ≥ ZF ≥ MRC in
    // accuracy. Evaluated on identical frames at an SNR where the tiers
    // are well separated: at 10 dB the ZF-vs-MRC gap at 6×6 is inside
    // Monte-Carlo noise (ZF's noise amplification and MRC's interference
    // floor nearly cancel), while by 14 dB MRC has hit its floor and ZF
    // is clearly ahead regardless of the RNG stream.
    let cfg = LinkConfig::square(6, Modulation::Qam4, 14.0).with_frames(400);
    let c = Constellation::new(cfg.modulation);

    let e_sd = run(&cfg, &SphereDecoder::<f32>::new(c.clone()));
    let e_mmse = run(&cfg, &MmseDetector::new(c.clone()));
    let e_zf = run(&cfg, &ZfDetector::new(c.clone()));
    let e_mrc = run(&cfg, &MrcDetector::new(c.clone()));

    assert!(
        e_sd.bit_errors <= e_mmse.bit_errors,
        "SD ({}) must beat MMSE ({})",
        e_sd.bit_errors,
        e_mmse.bit_errors
    );
    assert!(e_mmse.bit_errors <= e_zf.bit_errors + 5);
    assert!(
        e_zf.bit_errors < e_mrc.bit_errors,
        "ZF ({}) must beat MRC ({})",
        e_zf.bit_errors,
        e_mrc.bit_errors
    );
}

#[test]
fn sd_ber_decreases_with_snr() {
    // Fig. 7's qualitative property under the default convention.
    let c = Constellation::new(Modulation::Qam4);
    let sd = SphereDecoder::<f32>::new(c);
    let mut curve = BerCurve::new("SD");
    for snr in [4.0, 8.0, 12.0, 16.0] {
        let cfg = LinkConfig::square(8, Modulation::Qam4, snr).with_frames(600);
        let stats = run_link_parallel(&cfg, |f| sd.detect(f).indices);
        curve.push(BerPoint::from_counter(snr, &stats.errors));
    }
    assert!(
        curve.is_monotone_nonincreasing(0.10),
        "BER curve must fall with SNR: {:?}",
        curve.points.iter().map(|p| p.ber).collect::<Vec<_>>()
    );
    // And genuinely fall, not just plateau.
    assert!(curve.points.last().unwrap().ber < curve.points[0].ber / 5.0);
}

#[test]
fn per_symbol_convention_reproduces_fig7_claim() {
    // Under the per-symbol convention the paper's "BER < 1e-2 at 4 dB"
    // holds for 10×10 4-QAM.
    let c = Constellation::new(Modulation::Qam4);
    let sd = SphereDecoder::<f32>::new(c);
    let cfg = LinkConfig::square(10, Modulation::Qam4, 4.0)
        .with_convention(SnrConvention::PerSymbol)
        .with_frames(1_500);
    let stats = run_link_parallel(&cfg, |f| sd.detect(f).indices);
    assert!(
        stats.ber() < 1e-2,
        "Fig. 7 claim failed: BER {} at 4 dB",
        stats.ber()
    );
}

#[test]
fn all_sphere_decoders_agree_on_shared_frames() {
    let cfg = LinkConfig::square(5, Modulation::Qam4, 8.0).with_frames(40);
    let c = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);

    let ml = MlDetector::new(c.clone());
    let dfs = SphereDecoder::<f64>::new(c.clone());
    let bf = BestFirstSd::<f64>::new(c.clone());
    let bfs = BfsGemmSd::<f64>::new(c.clone());
    let mp = SubtreeParallelSd::<f64>::new(c.clone());
    for f in &frames {
        let truth = ml.detect(f).indices;
        assert_eq!(dfs.detect(f).indices, truth, "sorted DFS");
        assert_eq!(bf.detect(f).indices, truth, "best-first");
        assert_eq!(bfs.detect(f).indices, truth, "BFS-GEMM");
        assert_eq!(mp.detect(f).indices, truth, "multi-PE");
    }
}

#[test]
fn batch_decoding_through_facade() {
    let cfg = LinkConfig::square(6, Modulation::Qam16, 14.0).with_frames(24);
    let c = Constellation::new(cfg.modulation);
    let (_, frames) = generate_frames(&cfg);
    let sd = SphereDecoder::<f32>::new(c);
    let detections = decode_batch(&sd, &frames);
    assert_eq!(detections.len(), 24);
    let agg = batch_stats(&sd, &frames);
    assert_eq!(
        agg.nodes_generated,
        detections
            .iter()
            .map(|d| d.stats.nodes_generated)
            .sum::<u64>()
    );
}

#[test]
fn fpga_detector_drives_the_link_harness() {
    // The FPGA simulator is a Detector like any other: run a short link
    // through it and require error-free decoding at high SNR.
    let cfg = LinkConfig::square(4, Modulation::Qam4, 24.0).with_frames(60);
    let c = Constellation::new(cfg.modulation);
    let accel = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 4), c);
    let stats = run_link(&cfg, |f| accel.detect(f).indices);
    assert_eq!(stats.errors.bit_errors, 0, "24 dB 4×4 must be clean");
}

#[test]
fn gpu_model_slower_than_fpga_model_at_every_snr() {
    // Fig. 11's qualitative claim over the whole grid.
    let c = Constellation::new(Modulation::Qam4);
    let gpu = GpuSphereDecoder::new(c.clone());
    let fpga = FpgaSphereDecoder::new(FpgaConfig::optimized(Modulation::Qam4, 8), c.clone());
    for snr in [4.0, 12.0, 20.0] {
        let cfg = LinkConfig::square(8, Modulation::Qam4, snr).with_frames(10);
        let (_, frames) = generate_frames(&cfg);
        let t_gpu: f64 = frames
            .iter()
            .map(|f| gpu.decode_with_report(f).decode_seconds)
            .sum();
        let t_fpga: f64 = frames
            .iter()
            .map(|f| fpga.decode_with_report(f).decode_seconds)
            .sum();
        assert!(
            t_gpu > 3.0 * t_fpga,
            "at {snr} dB GPU ({t_gpu:.2e}) must be well behind FPGA ({t_fpga:.2e})"
        );
    }
}

#[test]
fn prelude_surface_is_usable() {
    // Compile-level check that the facade re-exports hang together.
    let c = Constellation::new(Modulation::Bpsk);
    assert_eq!(c.order(), 2);
    let m: Matrix<f64> = Matrix::identity(3);
    assert_eq!(m.rows(), 3);
    let r = InitialRadius::Fixed(4.0).resolve(2, 1.0);
    assert_eq!(r, 4.0);
    assert!(REAL_TIME_BUDGET.as_millis() == 10);
}
