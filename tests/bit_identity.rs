//! Seeded Monte-Carlo bit-identity suite (ISSUE 1 acceptance gate).
//!
//! Over a fixed frame population (seed `0x5DC0DE`), the arena searches
//! with batched GEMM expansion must decode to **bit-identical symbol
//! indices** — and identical statistics — as the seed path-cloning
//! implementations, for DFS, best-first, BFS and K-best, at both the
//! paper's 16×16/16-QAM operating point and a smaller low-SNR point where
//! the searches are deep.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::preprocess::{preprocess, Prepared};
use sd_core::reference::{best_first_reference, bfs_reference, dfs_reference, kbest_reference};
use sd_core::{
    BestFirstSd, BfsGemmSd, EvalStrategy, InitialRadius, KBestSd, PreparedDetector, SphereDecoder,
};
use sd_math::GemmAlgo;
use sd_wireless::{noise_variance, Constellation, FrameData, Modulation};

const SEED: u64 = 0x5DC0DE;

/// The two Monte-Carlo operating points of the suite:
/// `(antennas, modulation, SNR dB, frames)`.
const POINTS: [(usize, Modulation, f64, usize); 2] = [
    (16, Modulation::Qam16, 22.0, 12),
    (8, Modulation::Qam4, 8.0, 25),
];

fn suite(
    n: usize,
    m: Modulation,
    snr_db: f64,
    count: usize,
) -> (Constellation, f64, Vec<Prepared<f64>>) {
    let c = Constellation::new(m);
    let sigma2 = noise_variance(snr_db, n);
    let mut rng = StdRng::seed_from_u64(SEED);
    let preps = (0..count)
        .map(|_| {
            let f = FrameData::generate(n, n, &c, sigma2, &mut rng);
            preprocess::<f64>(&f, &c)
        })
        .collect();
    (c, sigma2, preps)
}

#[test]
fn dfs_is_bit_identical_to_seed() {
    for (n, m, snr, count) in POINTS {
        let (c, _, preps) = suite(n, m, snr, count);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        for (i, prep) in preps.iter().enumerate() {
            let a = sd.detect_prepared(prep, f64::INFINITY);
            let b = dfs_reference(prep, f64::INFINITY, EvalStrategy::Gemm, true);
            assert_eq!(a.indices, b.indices, "frame {i} at {n}x{n}");
            assert_eq!(a.stats, b.stats, "frame {i} at {n}x{n}");
        }
    }
}

#[test]
fn best_first_is_bit_identical_to_seed() {
    for (n, m, snr, count) in POINTS {
        let (c, _, preps) = suite(n, m, snr, count);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c);
        for (i, prep) in preps.iter().enumerate() {
            let a = bf.detect_prepared(prep, f64::INFINITY);
            let b = best_first_reference(prep, f64::INFINITY, EvalStrategy::Gemm);
            assert_eq!(a.indices, b.indices, "frame {i} at {n}x{n}");
            assert_eq!(a.stats, b.stats, "frame {i} at {n}x{n}");
        }
    }
}

#[test]
fn bfs_batched_gemm_is_bit_identical_to_seed() {
    for (n, m, snr, count) in POINTS {
        let (c, sigma2, preps) = suite(n, m, snr, count);
        let cap = 512;
        let r2 = InitialRadius::ScaledNoise(2.0).resolve(n, sigma2);
        for algo in [GemmAlgo::Blocked, GemmAlgo::Parallel] {
            let bfs: BfsGemmSd<f64> = BfsGemmSd::new(c.clone())
                .with_max_frontier(cap)
                .with_batch_algo(algo);
            for (i, prep) in preps.iter().enumerate() {
                let a = bfs.detect_prepared_traced(prep, r2).0;
                let b = bfs_reference(prep, r2, cap);
                assert_eq!(a.indices, b.indices, "frame {i} at {n}x{n} with {algo:?}");
                assert_eq!(a.stats, b.stats, "frame {i} at {n}x{n} with {algo:?}");
            }
        }
    }
}

#[test]
fn kbest_batched_gemm_is_bit_identical_to_seed() {
    for (n, m, snr, count) in POINTS {
        let (c, _, preps) = suite(n, m, snr, count);
        for algo in [GemmAlgo::Blocked, GemmAlgo::Parallel] {
            let kb: KBestSd<f64> = KBestSd::new(c.clone(), 32).with_batch_algo(algo);
            for (i, prep) in preps.iter().enumerate() {
                let a = kb.detect_prepared(prep, f64::INFINITY);
                let b = kbest_reference(prep, 32);
                assert_eq!(a.indices, b.indices, "frame {i} at {n}x{n} with {algo:?}");
                assert_eq!(a.stats, b.stats, "frame {i} at {n}x{n} with {algo:?}");
            }
        }
    }
}
