//! Frame-path exactness: submitting a coherence block as one
//! [`FrameRequest`] must produce detections **bit-identical** — indices
//! *and* search statistics — to submitting the same subcarriers one
//! [`DetectionRequest`] at a time through the same registry tier. The
//! check spans the stock and quantized registries (adaptive, fixed,
//! fixed-point, and linear rungs), survives overload/shedding, and the
//! mixed-traffic prep-accounting invariant
//! `hits + misses + bypass == served` holds throughout.
//!
//! Also demonstrates the `sd-wireless` satellite: `OfdmSymbol`'s
//! `(frame, new_channel)` decode protocol lets a caller holding a
//! [`ChannelPrep`] factor each distinct channel exactly once.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_core::{
    prepare_channel_into, prepare_with_channel_into, ChannelPrep, Detection, PrepScratch, Prepared,
    PreparedDetector, SearchWorkspace, SphereDecoder,
};
use sd_serve::{
    build_frame_requests, default_registry, explode_frames, quantized_registry, FrameLoadConfig,
    LadderConfig, RejectReason, ServeConfig, ServeRuntime, Tier,
};
use sd_wireless::{Constellation, GridConfig, Modulation, OfdmConfig, OfdmSymbol};
use std::collections::HashMap;
use std::time::Duration;

fn grid_workload() -> FrameLoadConfig {
    FrameLoadConfig {
        grid: GridConfig::new(24, 4, 4, 4)
            .with_coherence(8, 2)
            .with_snr(10.0, 3.0),
        modulation: Modulation::Qam4,
        offered_rate_hz: 0.0,
        deadline: Duration::from_secs(5),
        seed: 0xF8A3E5,
    }
}

fn ladder_off() -> LadderConfig {
    LadderConfig {
        enabled: false,
        kbest_k: 16,
        anytime: false,
    }
}

/// Single-tier runtime, one worker, ladder disabled: the deterministic
/// harness both submission shapes run through.
fn single_tier_runtime(tier: Tier, queue: usize) -> ServeRuntime {
    ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(queue)
            .with_ladder(ladder_off()),
        vec![tier],
    )
}

/// Serve the workload frame-by-frame; detections keyed by frame id.
fn serve_frames(
    tier: Tier,
    cfg: &FrameLoadConfig,
    c: &Constellation,
) -> HashMap<u64, Vec<Detection>> {
    let requests = build_frame_requests(cfg, c);
    let n = requests.len();
    let rt = single_tier_runtime(tier, n);
    for req in requests {
        rt.submit_frame(req).expect("queue sized for the stream");
    }
    let mut served = HashMap::new();
    for _ in 0..n {
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(10))
            .expect("frame path stalled");
        assert_eq!(resp.tier, 0, "ladder disabled: tier 0 only");
        served.insert(resp.request.id, resp.detections);
    }
    let (snap, _, leftover) = rt.shutdown();
    assert!(leftover.is_empty());
    assert_eq!(snap.frames_served, n as u64);
    assert_eq!(
        snap.prep_cache_hits + snap.prep_cache_misses + snap.prep_cache_bypass,
        snap.served,
        "prep accounting must close over frame traffic"
    );
    served
}

/// Serve the identical traffic one vector at a time; detections in
/// submission order.
fn serve_vectors(tier: Tier, cfg: &FrameLoadConfig, c: &Constellation) -> Vec<Detection> {
    let requests = explode_frames(&build_frame_requests(cfg, c));
    let n = requests.len();
    let rt = single_tier_runtime(tier, n);
    for req in requests {
        rt.submit(req).expect("queue sized for the stream");
    }
    let mut served: HashMap<u64, Detection> = HashMap::new();
    for _ in 0..n {
        let resp = rt
            .collect_timeout(Duration::from_secs(10))
            .expect("vector path stalled");
        served.insert(resp.request.id, resp.detection);
    }
    rt.shutdown();
    (0..n as u64)
        .map(|id| served.remove(&id).unwrap())
        .collect()
}

/// All tiers under test: the stock registry plus the quantized rungs the
/// quantized registry adds (fixed-point K-best, l-inf FSD).
fn tiers_under_test(c: &Constellation) -> Vec<Tier> {
    let mut tiers = default_registry(c, &LadderConfig::default());
    for t in quantized_registry(c, &LadderConfig::default()) {
        if !tiers.iter().any(|have| have.label == t.label) {
            tiers.push(t);
        }
    }
    tiers
}

#[test]
fn frame_detections_bit_identical_to_per_vector_submission_for_every_tier() {
    let cfg = grid_workload();
    let c = Constellation::new(cfg.modulation);
    let labels: Vec<String> = tiers_under_test(&c)
        .iter()
        .map(|t| t.label.to_string())
        .collect();
    for (i, label) in labels.iter().enumerate() {
        let by_frame = serve_frames(tiers_under_test(&c).remove(i), &cfg, &c);
        let by_vector = serve_vectors(tiers_under_test(&c).remove(i), &cfg, &c);
        let frames = build_frame_requests(&cfg, &c);
        let mut k = 0usize;
        for fr in &frames {
            let block = &by_frame[&fr.id];
            assert_eq!(block.len(), fr.block_len(), "{label}: block shape");
            for d in block {
                let solo = &by_vector[k];
                assert_eq!(d.indices, solo.indices, "{label} subcarrier {k}: decisions");
                assert_eq!(d.stats, solo.stats, "{label} subcarrier {k}: statistics");
                assert_eq!(
                    d.stats.final_radius_sqr.to_bits(),
                    solo.stats.final_radius_sqr.to_bits(),
                    "{label} subcarrier {k}: metric bits"
                );
                k += 1;
            }
        }
        assert_eq!(k, by_vector.len(), "{label}: all subcarriers compared");
    }
}

#[test]
fn frame_exactness_survives_overload_and_shedding() {
    let cfg = grid_workload();
    let c = Constellation::new(cfg.modulation);
    let requests = build_frame_requests(&cfg, &c);
    let n = requests.len();
    assert!(n >= 4, "workload must have enough blocks to overflow");
    let cap = n / 2;
    // Paused single-tier runtime with a queue half the stream: the tail
    // must be shed at the door and handed back intact.
    let rt = ServeRuntime::start_with_registry(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(cap)
            .with_ladder(ladder_off())
            .paused(),
        default_registry(&c, &LadderConfig::default())
            .into_iter()
            .take(1)
            .collect(),
    );
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for req in requests {
        let id = req.id;
        let len = req.block_len();
        match rt.submit_frame(req) {
            Ok(()) => admitted.push(id),
            Err(rej) => {
                shed += 1;
                assert!(matches!(rej.reason, RejectReason::QueueFull { .. }));
                assert_eq!(rej.request.id, id, "shed frame returned intact");
                assert_eq!(rej.request.block_len(), len, "block survives rejection");
            }
        }
    }
    assert_eq!(admitted.len(), cap, "bounded queue admits exactly capacity");
    assert!(shed > 0, "overload must shed");
    rt.resume();
    let mut served = HashMap::new();
    for _ in 0..cap {
        let resp = rt
            .collect_frame_timeout(Duration::from_secs(10))
            .expect("stalled after resume");
        served.insert(resp.request.id, resp.detections);
    }
    let (snap, _, _) = rt.shutdown();
    assert_eq!(snap.frames_served, cap as u64);
    assert_eq!(snap.frames_rejected_full, shed);
    assert_eq!(
        snap.prep_cache_hits + snap.prep_cache_misses + snap.prep_cache_bypass,
        snap.served,
        "prep accounting closes under shedding"
    );

    // Admitted frames must still decode bit-identically to a direct
    // per-subcarrier decode of the same engine.
    let det: SphereDecoder<f64> = SphereDecoder::new(c.clone());
    let mut scratch = PrepScratch::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    for fr in build_frame_requests(&cfg, &c) {
        let Some(block) = served.get(&fr.id) else {
            continue;
        };
        for (f, got) in fr.subcarriers.iter().zip(block.iter()) {
            let mut truth = Detection::default();
            det.prepare_frame_into(f, &mut scratch, &mut prep);
            let r2 = det.initial_radius_sqr(f.h.rows(), f.noise_variance);
            det.detect_prepared_into(&prep, r2, &mut ws, &mut truth);
            assert_eq!(got.indices, truth.indices, "frame {} decisions", fr.id);
            assert_eq!(got.stats, truth.stats, "frame {} statistics", fr.id);
        }
    }
}

#[test]
fn mixed_frame_and_vector_traffic_keeps_prep_accounting_closed() {
    // The satellite-2 invariant under the mixture the cache actually
    // sees: cacheable vector traffic (hits + misses), frame traffic
    // (bypass), and a multi-worker pool.
    let cfg = grid_workload();
    let c = Constellation::new(cfg.modulation);
    let frames = build_frame_requests(&cfg, &c);
    let vectors = explode_frames(&frames);
    let n_frames = frames.len();
    let n_vectors = vectors.len();
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(n_frames + n_vectors)
            .with_prep_cache(4),
        c.clone(),
    );
    // Interleave: vector, frame, vector, frame, ...
    let mut frames = frames.into_iter();
    for req in vectors {
        rt.submit(req).expect("queue sized for the stream");
        if let Some(fr) = frames.next() {
            rt.submit_frame(fr).expect("queue sized for the stream");
        }
    }
    let (snap, _, _) = rt.shutdown();
    assert_eq!(snap.served, (n_vectors + n_vectors) as u64);
    assert_eq!(snap.frames_served, n_frames as u64);
    assert_eq!(snap.frame_subcarriers, n_vectors as u64);
    assert!(
        snap.prep_cache_bypass >= snap.frame_subcarriers,
        "every frame subcarrier bypasses the cache"
    );
    assert_eq!(
        snap.prep_cache_hits + snap.prep_cache_misses + snap.prep_cache_bypass,
        snap.served,
        "hits + misses + bypass == served over mixed traffic"
    );
    assert!(
        snap.prep_amortization > 1.0,
        "coherence blocks amortize preparation"
    );
}

#[test]
fn ofdm_decode_serial_amortizes_channel_prep() {
    // The sd-wireless satellite end to end: decode an OFDM symbol through
    // a ChannelPrep held across the `(frame, new_channel)` protocol —
    // each distinct channel factored once — and check the result equals
    // the naive per-subcarrier full preparation, bit for bit.
    let c = Constellation::new(Modulation::Qam4);
    let ofdm = OfdmConfig::new(24, 4, 4, 6);
    let mut rng = StdRng::seed_from_u64(0x0FD7);
    let symbol = OfdmSymbol::generate(&ofdm, &c, 0.05, &mut rng);

    let det: SphereDecoder<f64> = SphereDecoder::new(c.clone());
    let mut scratch = PrepScratch::new();
    let mut chan: ChannelPrep<f64> = ChannelPrep::new();
    let mut prep = Prepared::empty();
    let mut ws = SearchWorkspace::new();
    let mut factorizations = 0usize;
    let mut amortized_indices: Vec<Vec<usize>> = Vec::new();
    let amortized = symbol.decode_serial(&c, |f, new_channel| {
        if new_channel {
            prepare_channel_into(f, det.ordering(), &mut scratch, &mut chan);
            factorizations += 1;
        }
        prepare_with_channel_into(f, det.constellation(), &mut scratch, &mut chan, &mut prep);
        let mut d = Detection::default();
        let r2 = det.initial_radius_sqr(f.h.rows(), f.noise_variance);
        det.detect_prepared_into(&prep, r2, &mut ws, &mut d);
        amortized_indices.push(d.indices.clone());
        d.indices
    });
    assert_eq!(
        factorizations,
        symbol.distinct_channels(),
        "one QR per distinct channel"
    );
    assert_eq!(symbol.distinct_channels(), 4);

    let mut naive_indices: Vec<Vec<usize>> = Vec::new();
    let naive = symbol.decode_serial(&c, |f, _| {
        let mut d = Detection::default();
        det.prepare_frame_into(f, &mut scratch, &mut prep);
        let r2 = det.initial_radius_sqr(f.h.rows(), f.noise_variance);
        det.detect_prepared_into(&prep, r2, &mut ws, &mut d);
        naive_indices.push(d.indices.clone());
        d.indices
    });
    assert_eq!(amortized, naive, "same (errors, bits) either way");
    assert_eq!(
        amortized_indices, naive_indices,
        "amortized prep changes nothing"
    );
}
