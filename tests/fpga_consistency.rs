//! Hardware-model ↔ software cross-validation.
//!
//! The FPGA pipeline simulator must be *functionally* indistinguishable
//! from the `sd-core` reference at f32 precision, across modulations,
//! sizes, variants and SNRs — while its timing model obeys the paper's
//! qualitative hardware claims.

use mimo_sd::prelude::*;
use sd_wireless::montecarlo::generate_frames;

fn frames_for(n: usize, m: Modulation, snr: f64, count: usize) -> Vec<FrameData> {
    let cfg = LinkConfig::square(n, m, snr).with_frames(count);
    generate_frames(&cfg).1
}

#[test]
fn hardware_matches_software_across_modulations() {
    for (m, n) in [
        (Modulation::Bpsk, 6),
        (Modulation::Qam4, 8),
        (Modulation::Qam16, 4),
    ] {
        let c = Constellation::new(m);
        let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(m, n), c.clone());
        let sw = SphereDecoder::<f32>::new(c);
        for f in frames_for(n, m, 8.0, 10) {
            let a = hw.detect(&f);
            let b = sw.detect(&f);
            assert_eq!(a.indices, b.indices, "{m} {n}x{n}");
            assert_eq!(
                a.stats.nodes_expanded, b.stats.nodes_expanded,
                "{m} {n}x{n}"
            );
            assert!((a.stats.final_radius_sqr - b.stats.final_radius_sqr).abs() < 1e-6);
        }
    }
}

#[test]
fn baseline_variant_also_matches_software() {
    let m = Modulation::Qam4;
    let c = Constellation::new(m);
    let hw = FpgaSphereDecoder::new(FpgaConfig::baseline(m, 6), c.clone());
    let sw = SphereDecoder::<f32>::new(c);
    for f in frames_for(6, m, 12.0, 10) {
        assert_eq!(hw.detect(&f).indices, sw.detect(&f).indices);
    }
}

#[test]
fn fpga_meets_real_time_where_paper_says() {
    // Fig. 8: 15×15 4-QAM at 4 dB — FPGA within 10 ms. Decode time is
    // heavy-tailed at low SNR (a rare dense tree dominates any mean), so
    // assert the median — the same robust statistic the 20×20 test uses.
    let m = Modulation::Qam4;
    let c = Constellation::new(m);
    let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(m, 15), c);
    let frames = frames_for(15, m, 4.0, 31);
    let mut t: Vec<f64> = frames
        .iter()
        .map(|f| hw.decode_with_report(f).decode_seconds)
        .collect();
    t.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = t[t.len() / 2];
    assert!(
        median < 10e-3,
        "15×15 4-QAM @4 dB modeled at {:.2} ms, breaking real-time",
        median * 1e3
    );
}

#[test]
fn fpga_20x20_near_real_time_at_8db() {
    // Fig. 9: the paper's 20×20 design decodes in ≈9.9 ms at 8 dB. Our
    // Monte-Carlo trees are heavier-tailed, so we require the paper's
    // *shape*: within a small multiple of the budget at 8 dB, and safely
    // inside it one grid step later (12 dB). The decode-time distribution
    // is heavy-tailed, so the median is the robust statistic.
    let m = Modulation::Qam4;
    let c = Constellation::new(m);
    let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(m, 20), c);
    let median = |snr: f64| -> f64 {
        let frames = frames_for(20, m, snr, 11);
        let mut t: Vec<f64> = frames
            .iter()
            .map(|f| hw.decode_with_report(f).decode_seconds)
            .collect();
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        t[t.len() / 2]
    };
    let t8 = median(8.0);
    let t12 = median(12.0);
    // ~5× budget: our Monte-Carlo channel draws produce denser 20×20
    // trees than the paper's (median ≈ 32–41 ms across RNG streams), so
    // the absolute bound is loose while the SNR shape stays strict.
    assert!(
        t8 < 50e-3,
        "20×20 @8 dB modeled at {:.1} ms, too far from the paper's 9.9 ms",
        t8 * 1e3
    );
    assert!(
        t12 < 10e-3,
        "20×20 must be real-time by 12 dB, got {:.1} ms",
        t12 * 1e3
    );
    assert!(t12 < t8, "time must fall with SNR");
}

#[test]
fn mst_capacity_is_hardware_feasible_everywhere() {
    // The recycling MST must stay O(M·P) live nodes even on the hardest
    // configuration — the property that lets the table live in URAM.
    let m = Modulation::Qam4;
    let c = Constellation::new(m);
    let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(m, 20), c);
    for f in frames_for(20, m, 4.0, 5) {
        let r = hw.decode_with_report(&f);
        let bound = 20 * 4 + 20;
        assert!(
            r.mst_peak_nodes <= bound,
            "peak {} exceeds O(M·P) bound {bound}",
            r.mst_peak_nodes
        );
        assert!(r.mst_fits_onchip);
    }
}

#[test]
fn table1_resources_and_table2_power_are_coherent() {
    // Cross-module integration: resources → power → energy for the four
    // Table II rows, using modeled FPGA decode times at 8 dB.
    let fpga_power = FpgaPowerModel::u280_kernel();
    let cpu_power = CpuPowerModel::ryzen_64core();
    for (m, n) in [
        (Modulation::Qam4, 10usize),
        (Modulation::Qam4, 15),
        (Modulation::Qam4, 20),
        (Modulation::Qam16, 10),
    ] {
        let config = FpgaConfig::optimized(m, n);
        let usage = estimate_resources(&config);
        assert!(usage.fits_device(), "{m} {n}x{n} must fit the U280");
        let p_fpga = fpga_power.power_watts(&usage, n);
        let p_cpu = cpu_power.power_watts(n, m.order());
        assert!(
            (5.0..20.0).contains(&p_fpga),
            "{m} {n}x{n}: FPGA power {p_fpga:.1} W out of Table II range"
        );
        assert!(
            (70.0..160.0).contains(&p_cpu),
            "{m} {n}x{n}: CPU power {p_cpu:.1} W out of Table II range"
        );
        assert!(
            p_cpu / p_fpga > 5.0,
            "power gap must be near an order of magnitude"
        );
    }
}

#[test]
fn cycle_accounting_is_deterministic() {
    let m = Modulation::Qam4;
    let c = Constellation::new(m);
    let hw = FpgaSphereDecoder::new(FpgaConfig::optimized(m, 8), c);
    let frames = frames_for(8, m, 8.0, 3);
    for f in &frames {
        let a = hw.decode_with_report(f);
        let b = hw.decode_with_report(f);
        assert_eq!(a.cycles, b.cycles, "same frame must cost the same cycles");
        assert_eq!(a.detection.indices, b.detection.indices);
    }
}
