//! Overload behavior is deterministic and bounded: a seeded burst beyond
//! queue capacity sheds exactly the overflow, degradation under an
//! exhausted deadline budget is total and typed, queue depth never
//! exceeds its bound, and shutdown drains everything admitted without
//! deadlocking.

use sd_serve::{build_requests, LadderConfig, LoadConfig, RejectReason, ServeConfig, ServeRuntime};
use sd_wireless::{Constellation, Modulation, REAL_TIME_BUDGET};
use std::time::Duration;

fn burst_config(n_requests: usize, deadline: Duration) -> LoadConfig {
    LoadConfig {
        n_tx: 4,
        n_rx: 4,
        modulation: Modulation::Qam4,
        snr_grid_db: vec![8.0, 14.0],
        n_requests,
        offered_rate_hz: 0.0,
        deadline,
        seed: 0x0E71,
    }
}

#[test]
fn burst_beyond_capacity_sheds_exactly_the_overflow() {
    const CAPACITY: usize = 16;
    const BURST: usize = 45;
    let cfg = burst_config(BURST, REAL_TIME_BUDGET);
    let c = Constellation::new(cfg.modulation);
    // Workers gated: the burst lands on a frozen queue, so admission
    // arithmetic is exact — no race with concurrent draining.
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_capacity(CAPACITY)
            .paused(),
        c.clone(),
    );
    let mut shed = 0usize;
    for req in build_requests(&cfg, &c) {
        match rt.submit(req) {
            Ok(()) => {}
            Err(rej) => {
                assert_eq!(
                    rej.reason,
                    RejectReason::QueueFull { depth: CAPACITY },
                    "typed rejection carries the bounded depth"
                );
                shed += 1;
            }
        }
        assert!(rt.queue_depth() <= CAPACITY, "queue depth stays bounded");
    }
    assert_eq!(shed, BURST - CAPACITY, "deterministic shed count");
    assert_eq!(rt.queue_depth(), CAPACITY);

    // Drain-then-join: shutdown releases the gate, serves every admitted
    // request, and returns them — nothing is silently dropped.
    let (snap, leftover, _) = rt.shutdown();
    assert_eq!(snap.accepted, CAPACITY as u64);
    assert_eq!(snap.rejected_full, (BURST - CAPACITY) as u64);
    assert_eq!(snap.served, CAPACITY as u64);
    assert_eq!(leftover.len(), CAPACITY);
    assert_eq!(snap.queue_depth, 0);
}

#[test]
fn exhausted_deadline_budget_degrades_deterministically() {
    const BURST: usize = 24;
    // Zero deadline: every request's budget is exhausted at pickup, so
    // with the ladder enabled, every one of them must take the MMSE rung.
    let cfg = burst_config(BURST, Duration::ZERO);
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(BURST)
            .with_ladder(LadderConfig {
                enabled: true,
                kbest_k: 8,
                anytime: false,
            })
            .paused(),
        c.clone(),
    );
    for req in build_requests(&cfg, &c) {
        rt.submit(req).expect("queue sized for the burst");
    }
    let (snap, leftover, _) = rt.shutdown();
    assert_eq!(snap.served, BURST as u64);
    assert_eq!(
        snap.tier_served("mmse"),
        BURST as u64,
        "all degraded to the last rung"
    );
    assert_eq!(snap.tier_served("exact") + snap.tier_served("k-best"), 0);
    assert_eq!(snap.deadline_missed, BURST as u64);
    for resp in &leftover {
        assert_eq!(resp.tier, 2, "index of the floor tier");
        assert_eq!(&*resp.tier_label, "mmse");
        assert!(resp.deadline_missed);
        assert_eq!(
            resp.detection.indices.len(),
            cfg.n_tx,
            "degraded responses still carry full decisions"
        );
    }
}

#[test]
fn degradation_off_never_sheds_admitted_work_even_when_late() {
    const BURST: usize = 12;
    let cfg = burst_config(BURST, Duration::ZERO);
    let c = Constellation::new(cfg.modulation);
    let rt = ServeRuntime::start(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(BURST)
            .with_ladder(LadderConfig {
                enabled: false,
                kbest_k: 8,
                anytime: false,
            })
            .paused(),
        c.clone(),
    );
    for req in build_requests(&cfg, &c) {
        rt.submit(req).expect("queue sized for the burst");
    }
    let (snap, leftover, _) = rt.shutdown();
    // Every request decoded exactly (and therefore late) — the control
    // arm the benchmark compares the ladder against.
    assert_eq!(snap.served, BURST as u64);
    assert_eq!(snap.tier_served("exact"), BURST as u64);
    assert_eq!(snap.deadline_missed, BURST as u64);
    assert_eq!(leftover.len(), BURST);
}

#[test]
fn repeated_shutdown_under_load_never_deadlocks() {
    // Start/flood/shutdown repeatedly; a drain-then-join bug (lost
    // notification, worker waiting forever) would hang this test.
    let cfg = burst_config(30, REAL_TIME_BUDGET);
    let c = Constellation::new(cfg.modulation);
    for round in 0..5 {
        let rt = ServeRuntime::start(
            ServeConfig::default()
                .with_workers(3)
                .with_queue_capacity(8),
            c.clone(),
        );
        let mut accepted = 0u64;
        for req in build_requests(&cfg, &c) {
            if rt.submit(req).is_ok() {
                accepted += 1;
            }
        }
        let (snap, _leftover, _) = rt.shutdown();
        assert_eq!(snap.served, accepted, "round {round}: drained exactly");
    }
}
