#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — exactly what a reviewer runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> fixed-point kernels: intrinsics feature gate"
# The AVX2 kernels must build everywhere and be bit-identical to the
# portable fallback wherever the host can actually run them (the tests
# runtime-detect AVX2 and skip the comparison on hosts without it).
cargo test -q -p sd-math -p sd-core --features simd-intrinsics

echo "==> quantized BER gate (release)"
# The 16x16/16-QAM degradation bound that licenses the fixed-point serve
# rungs; debug-ignored because the exact f64 oracle sweep needs release
# speed.
cargo test -q --release --test quantized -- --ignored

echo "==> parallel determinism stress (SD_STRESS_ITERS=200)"
# The subtree-parallel decoder must return bit-identical answers on every
# run regardless of thread interleaving; hammer it at full hardware
# parallelism long enough for scheduling races to surface.
SD_STRESS_ITERS=200 cargo test -q --release --test parallel_exactness \
  repeated_parallel_decodes_are_deterministic

echo "==> frame-path exactness"
# Whole-frame submission must be bit-identical to per-vector submission
# through every registry tier, including under overload/shedding.
cargo test -q --test serve_frames

echo "==> shard matrix (SD_SHARDS in 1 2 4)"
# The sharded runtime must be bit-identical to the single-queue runtime
# at every topology the config space allows: one shard (the classic
# runtime), two (the default under test), and four (more shards than
# this container has cores, so stealing and round-robin worker dealing
# are both exercised hard).
for s in 1 2 4; do
  SD_SHARDS=$s cargo test -q --release --test serve_shards
done

echo "==> sharded determinism stress (SD_STRESS_ITERS=25)"
# Steals land on different workers run to run; the served bits must not.
SD_STRESS_ITERS=25 cargo test -q --release --test serve_shards \
  repeated_sharded_runs_are_deterministic

echo "==> fused block decode exactness"
# The cross-subcarrier fused decode (one GEMM batch per tree level for a
# whole coherence block) must be bit-identical per subcarrier to the
# per-subcarrier loop and to per-vector decoding — across the stock and
# quantized fusable tiers, for degenerate blocks, and with budgets
# tripped and untripped — and exactly allocation-free in steady state.
cargo test -q --release --test block_fused
cargo test -q --release --test alloc_free fused_block_decode

echo "==> anytime exactness + truncation + predictive admission"
# An unexhausted decode budget must change *nothing*: served decisions
# bit-identical to the unbudgeted engine, every quality flag exact. An
# exhausted one must truncate deterministically with the counters
# closing (quality_exact + budget_exhausted == served). The predictive
# admission gate must shed exactly the doomed requests (PredictedLate)
# and count them in the snapshot, for vectors and frames both.
cargo test -q --test serve_anytime

echo "==> serve_demo --smoke"
# End-to-end smoke: tiny per-vector run, a frame loadgen pass, an
# expired-deadline anytime pass, and a frozen-backlog predictive
# admission pass, each rendering the Prometheus + JSON export surfaces
# and self-validating the JSON line — including the quality-counter and
# predictive-shed rows — (non-zero on failure).
cargo run --release --example serve_demo -- --smoke >/dev/null

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run"
# Compile (but don't execute) every Criterion bench so the harness can't
# bit-rot between full bench runs.
cargo bench --workspace --no-run

echo "==> cargo doc --no-deps"
# Broken intra-doc links are rustdoc warnings; promote them to errors.
# The compat/* shims are vendored stand-ins, not product docs — skip them.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet \
  --exclude criterion --exclude proptest --exclude rand --exclude rayon \
  --exclude serde --exclude serde_derive

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "ci: all green"
