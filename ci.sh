#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — exactly what a reviewer runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "ci: all green"
