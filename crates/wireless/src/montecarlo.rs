//! Monte-Carlo link-level simulation.
//!
//! Mirrors the paper's experimental setup (Sec. IV-A): frames of random
//! bits are pushed through fresh Rayleigh channel realizations at a fixed
//! SNR, decoded, and scored. The harness is detector-agnostic: a decoder is
//! any `FnMut(&FrameData) -> Vec<usize>` returning constellation indices
//! per transmit antenna, so the same harness drives the CPU decoders, the
//! FPGA pipeline simulator, and the GPU model.

use crate::ber::ErrorCounter;
use crate::constellation::{Constellation, Modulation};
use crate::frame::FrameData;
use crate::snr::SnrConvention;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of one Monte-Carlo operating point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Transmit antennas `M`.
    pub n_tx: usize,
    /// Receive antennas `N` (≥ `M`).
    pub n_rx: usize,
    /// Modulation scheme.
    pub modulation: Modulation,
    /// Operating SNR in dB.
    pub snr_db: f64,
    /// SNR-to-noise-variance mapping (see [`SnrConvention`]).
    pub convention: SnrConvention,
    /// Number of frames (channel uses) to simulate.
    pub frames: usize,
    /// RNG seed; every run with the same config is bit-identical.
    pub seed: u64,
}

impl LinkConfig {
    /// Square `n × n` MIMO link, the paper's standard configuration.
    pub fn square(n: usize, modulation: Modulation, snr_db: f64) -> Self {
        LinkConfig {
            n_tx: n,
            n_rx: n,
            modulation,
            snr_db,
            convention: SnrConvention::PerReceiveAntenna,
            frames: 100,
            seed: 0x5D_C0DE,
        }
    }

    /// Builder: SNR convention.
    pub fn with_convention(mut self, convention: SnrConvention) -> Self {
        self.convention = convention;
        self
    }

    /// Builder: number of frames.
    pub fn with_frames(mut self, frames: usize) -> Self {
        self.frames = frames;
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Noise variance implied by the SNR convention.
    pub fn noise_variance(&self) -> f64 {
        self.convention.noise_variance(self.snr_db, self.n_tx)
    }

    /// Information bits per frame.
    pub fn bits_per_frame(&self) -> usize {
        self.n_tx * self.modulation.bits_per_symbol()
    }
}

/// Outcome of one Monte-Carlo run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkStats {
    /// Error counts.
    pub errors: ErrorCounter,
    /// Total time spent inside the decoder (excludes frame generation).
    pub decode_time: Duration,
    /// Per-frame decode times (empty for the parallel runner, where
    /// per-frame wall-clock is not meaningful).
    pub per_frame: Vec<Duration>,
}

impl LinkStats {
    /// Mean decode time per frame.
    pub fn mean_decode_time(&self) -> Duration {
        if self.errors.frames == 0 {
            Duration::ZERO
        } else {
            self.decode_time / self.errors.frames as u32
        }
    }

    /// Bit error rate.
    pub fn ber(&self) -> f64 {
        self.errors.ber()
    }

    /// `true` when the mean per-frame decode time meets the paper's 10 ms
    /// real-time budget.
    pub fn meets_real_time(&self) -> bool {
        self.mean_decode_time() <= crate::snr::REAL_TIME_BUDGET
    }
}

/// Pre-generate the frame sequence for a config (shared by the serial and
/// parallel runners and by cross-detector comparisons, which must see the
/// *same* noise realizations).
pub fn generate_frames(cfg: &LinkConfig) -> (Constellation, Vec<FrameData>) {
    let constellation = Constellation::new(cfg.modulation);
    let sigma2 = cfg.noise_variance();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let frames = (0..cfg.frames)
        .map(|_| FrameData::generate(cfg.n_rx, cfg.n_tx, &constellation, sigma2, &mut rng))
        .collect();
    (constellation, frames)
}

/// Run the link serially, timing each decode.
pub fn run_link<D>(cfg: &LinkConfig, mut decode: D) -> LinkStats
where
    D: FnMut(&FrameData) -> Vec<usize>,
{
    let (constellation, frames) = generate_frames(cfg);
    let mut errors = ErrorCounter::new();
    let mut decode_time = Duration::ZERO;
    let mut per_frame = Vec::with_capacity(frames.len());
    let bits = cfg.bits_per_frame() as u64;

    for frame in &frames {
        let t0 = Instant::now();
        let decoded = decode(frame);
        let dt = t0.elapsed();
        decode_time += dt;
        per_frame.push(dt);
        assert_eq!(
            decoded.len(),
            cfg.n_tx,
            "decoder returned wrong number of symbols"
        );
        let be = frame.bit_errors(&decoded, &constellation);
        let se = frame.symbol_errors(&decoded);
        errors.record(bits, be, cfg.n_tx as u64, se);
    }
    LinkStats {
        errors,
        decode_time,
        per_frame,
    }
}

/// Run the link with rayon frame-level parallelism (used for BER curves
/// where wall-clock per frame is not being measured).
pub fn run_link_parallel<D>(cfg: &LinkConfig, decode: D) -> LinkStats
where
    D: Fn(&FrameData) -> Vec<usize> + Sync,
{
    use rayon::prelude::*;
    let (constellation, frames) = generate_frames(cfg);
    let bits = cfg.bits_per_frame() as u64;
    let t0 = Instant::now();
    let errors = frames
        .par_iter()
        .map(|frame| {
            let decoded = decode(frame);
            assert_eq!(decoded.len(), cfg.n_tx);
            let mut c = ErrorCounter::new();
            c.record(
                bits,
                frame.bit_errors(&decoded, &constellation),
                cfg.n_tx as u64,
                frame.symbol_errors(&decoded),
            );
            c
        })
        .reduce(ErrorCounter::new, |mut a, b| {
            a.merge(&b);
            a
        });
    LinkStats {
        errors,
        decode_time: t0.elapsed(),
        per_frame: Vec::new(),
    }
}

/// Convenience oracle decoder: slices the *noiseless* `Hs` reconstruction —
/// i.e. a genie that knows the transmitted symbols. Used to validate the
/// harness itself (BER must be 0).
pub fn genie_decoder(constellation: &Constellation) -> impl Fn(&FrameData) -> Vec<usize> + '_ {
    move |frame: &FrameData| {
        frame
            .tx
            .symbols
            .iter()
            .map(|&s| constellation.slice(s))
            .collect()
    }
}

/// Random-guess decoder (worst case; BER ≈ 1/2). Used to bound harness
/// behaviour in tests.
pub fn random_decoder(order: usize, seed: u64) -> impl FnMut(&FrameData) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    move |frame: &FrameData| {
        (0..frame.tx.n_tx())
            .map(|_| rng.gen_range(0..order))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genie_has_zero_ber() {
        let cfg = LinkConfig::square(4, Modulation::Qam16, 4.0).with_frames(50);
        let c = Constellation::new(cfg.modulation);
        let stats = run_link(&cfg, genie_decoder(&c));
        assert_eq!(stats.errors.bit_errors, 0);
        assert_eq!(stats.errors.frames, 50);
        assert_eq!(stats.errors.bits, 50 * 16);
    }

    #[test]
    fn random_decoder_ber_near_half() {
        let cfg = LinkConfig::square(8, Modulation::Qam4, 20.0).with_frames(500);
        let stats = run_link(&cfg, random_decoder(4, 7));
        let ber = stats.ber();
        assert!((ber - 0.5).abs() < 0.05, "random BER {ber} not ~0.5");
    }

    #[test]
    fn serial_and_parallel_agree_on_errors() {
        let cfg = LinkConfig::square(4, Modulation::Qam4, 8.0).with_frames(64);
        let c = Constellation::new(cfg.modulation);
        // A deterministic (stateless) decoder: slice the first tap's
        // matched filter output — bad but reproducible.
        let decode = |frame: &FrameData| -> Vec<usize> {
            let c = Constellation::new(Modulation::Qam4);
            (0..frame.tx.n_tx()).map(|i| c.slice(frame.y[i])).collect()
        };
        let s1 = run_link(&cfg, decode);
        let s2 = run_link_parallel(&cfg, decode);
        assert_eq!(s1.errors, s2.errors);
        drop(c);
    }

    #[test]
    fn same_seed_same_frames() {
        let cfg = LinkConfig::square(4, Modulation::Qam4, 8.0).with_frames(5);
        let (_, f1) = generate_frames(&cfg);
        let (_, f2) = generate_frames(&cfg);
        for (a, b) in f1.iter().zip(f2.iter()) {
            assert_eq!(a.y, b.y);
            assert_eq!(a.tx.bits, b.tx.bits);
        }
        let (_, f3) = generate_frames(&cfg.with_seed(999));
        assert_ne!(f1[0].y, f3[0].y);
    }

    #[test]
    fn noise_variance_wired_through() {
        let cfg = LinkConfig::square(10, Modulation::Qam4, 4.0);
        assert!((cfg.noise_variance() - 10.0 / 10f64.powf(0.4)).abs() < 1e-12);
        assert_eq!(cfg.bits_per_frame(), 20);
    }

    #[test]
    #[should_panic(expected = "wrong number of symbols")]
    fn short_decoder_output_rejected() {
        let cfg = LinkConfig::square(4, Modulation::Qam4, 8.0).with_frames(1);
        run_link(&cfg, |_| vec![0usize; 2]);
    }

    #[test]
    fn stats_helpers() {
        let cfg = LinkConfig::square(2, Modulation::Bpsk, 10.0).with_frames(10);
        let c = Constellation::new(cfg.modulation);
        let stats = run_link(&cfg, genie_decoder(&c));
        assert!(stats.meets_real_time());
        assert!(stats.mean_decode_time() < Duration::from_millis(1));
        assert_eq!(stats.per_frame.len(), 10);
    }
}
