//! Rayleigh-fading MIMO channel.

use rand::Rng;
use sd_math::{ComplexNormal, Matrix, C64};

/// A small-scale Rayleigh-fading MIMO channel realization: the `N × M`
/// matrix `H` with i.i.d. `CN(0, 1)` entries of Sec. II-A.
#[derive(Clone, Debug)]
pub struct Channel {
    h: Matrix<f64>,
}

impl Channel {
    /// Draw a fresh channel realization for `n_rx` receivers and `n_tx`
    /// transmitters.
    pub fn rayleigh<R: Rng + ?Sized>(n_rx: usize, n_tx: usize, rng: &mut R) -> Self {
        assert!(
            n_rx >= n_tx,
            "need at least as many receivers as transmitters"
        );
        assert!(n_tx > 0, "n_tx must be positive");
        Channel {
            h: ComplexNormal::standard().sample_matrix(n_rx, n_tx, rng),
        }
    }

    /// Wrap an explicit channel matrix (tests, worked examples).
    pub fn from_matrix(h: Matrix<f64>) -> Self {
        assert!(h.rows() >= h.cols(), "need rows >= cols");
        Channel { h }
    }

    /// The channel matrix `H`.
    pub fn matrix(&self) -> &Matrix<f64> {
        &self.h
    }

    /// Number of receive antennas `N`.
    pub fn n_rx(&self) -> usize {
        self.h.rows()
    }

    /// Number of transmit antennas `M`.
    pub fn n_tx(&self) -> usize {
        self.h.cols()
    }

    /// Noiseless receive vector `H s`.
    pub fn apply(&self, s: &[C64]) -> Vec<C64> {
        self.h.mul_vec(s)
    }

    /// Full channel use: `y = H s + n` with `n ~ CN(0, σ²)` per entry.
    pub fn transmit<R: Rng + ?Sized>(
        &self,
        s: &[C64],
        noise_variance: f64,
        rng: &mut R,
    ) -> Vec<C64> {
        let mut y = self.apply(s);
        crate::noise::awgn(&mut y, noise_variance, rng);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_math::Complex;

    #[test]
    fn dimensions() {
        let mut rng = StdRng::seed_from_u64(1);
        let ch = Channel::rayleigh(8, 4, &mut rng);
        assert_eq!(ch.n_rx(), 8);
        assert_eq!(ch.n_tx(), 4);
        assert_eq!(ch.matrix().shape(), (8, 4));
    }

    #[test]
    fn fading_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let ch = Channel::rayleigh(100, 100, &mut rng);
        let avg_power = ch.matrix().frobenius_norm_sqr() / 10_000.0;
        assert!((avg_power - 1.0).abs() < 0.05, "E|h|² = {avg_power} != 1");
    }

    #[test]
    fn noiseless_transmission_is_linear() {
        let mut rng = StdRng::seed_from_u64(3);
        let ch = Channel::rayleigh(4, 2, &mut rng);
        let s1 = vec![Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let s2 = vec![Complex::new(-1.0, 0.5), Complex::new(2.0, 0.0)];
        let sum: Vec<C64> = s1.iter().zip(s2.iter()).map(|(&a, &b)| a + b).collect();
        let y1 = ch.apply(&s1);
        let y2 = ch.apply(&s2);
        let ysum = ch.apply(&sum);
        for i in 0..4 {
            assert!((ysum[i] - (y1[i] + y2[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_noise_transmit_equals_apply() {
        let mut rng = StdRng::seed_from_u64(4);
        let ch = Channel::rayleigh(4, 4, &mut rng);
        let s = vec![Complex::new(1.0, -1.0); 4];
        let clean = ch.apply(&s);
        let y = ch.transmit(&s, 0.0, &mut rng);
        assert_eq!(y, clean);
    }

    #[test]
    fn received_power_grows_with_tx_count() {
        // Average receive power per antenna ≈ M for unit-energy symbols.
        let mut rng = StdRng::seed_from_u64(5);
        let m = 16;
        let trials = 400;
        let mut acc = 0.0;
        for _ in 0..trials {
            let ch = Channel::rayleigh(m, m, &mut rng);
            let s: Vec<C64> = (0..m)
                .map(|i| {
                    if i % 2 == 0 {
                        Complex::new(1.0, 0.0)
                    } else {
                        Complex::new(0.0, -1.0)
                    }
                })
                .collect();
            let y = ch.apply(&s);
            acc += sd_math::vector::norm_sqr(&y) / m as f64;
        }
        let avg = acc / trials as f64;
        assert!(
            (avg - m as f64).abs() < 0.15 * m as f64,
            "per-antenna power {avg}, expected ~{m}"
        );
    }

    #[test]
    #[should_panic(expected = "receivers")]
    fn underdetermined_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        Channel::rayleigh(2, 4, &mut rng);
    }
}
