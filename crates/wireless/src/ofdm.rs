//! MIMO-OFDM multicarrier layer.
//!
//! Wideband systems (the 802.11/LTE deployments the paper's introduction
//! motivates) split the band into subcarriers; each subcarrier sees its
//! own narrowband MIMO channel and is detected independently — which is
//! exactly the data parallelism the paper's second-pipeline / multi-PE
//! directions want to exploit. This module models an OFDM symbol as a
//! bank of per-subcarrier [`FrameData`] problems with configurable
//! frequency coherence (adjacent subcarriers sharing one fading
//! realization), and decodes them serially or with rayon.

use crate::channel::Channel;
use crate::constellation::Constellation;
use crate::frame::{FrameData, TxFrame};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of one OFDM symbol.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OfdmConfig {
    /// Number of data subcarriers.
    pub subcarriers: usize,
    /// Transmit antennas per subcarrier.
    pub n_tx: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// Subcarriers sharing one channel realization (frequency coherence;
    /// 1 = fully frequency-selective, `subcarriers` = flat fading).
    pub coherence: usize,
}

impl OfdmConfig {
    /// Validate and build.
    pub fn new(subcarriers: usize, n_tx: usize, n_rx: usize, coherence: usize) -> Self {
        assert!(subcarriers > 0, "need at least one subcarrier");
        assert!(coherence >= 1, "coherence must be at least 1");
        assert!(n_rx >= n_tx && n_tx > 0, "need n_rx >= n_tx > 0");
        OfdmConfig {
            subcarriers,
            n_tx,
            n_rx,
            coherence,
        }
    }

    /// Information bits carried by one OFDM symbol.
    pub fn bits_per_symbol(&self, constellation: &Constellation) -> usize {
        self.subcarriers * self.n_tx * constellation.bits_per_symbol()
    }
}

/// One OFDM symbol: a bank of per-subcarrier detection problems.
#[derive(Clone, Debug)]
pub struct OfdmSymbol {
    /// Per-subcarrier frames, subcarrier order.
    pub frames: Vec<FrameData>,
}

impl OfdmSymbol {
    /// Generate one OFDM symbol worth of traffic.
    pub fn generate<R: Rng + ?Sized>(
        cfg: &OfdmConfig,
        constellation: &Constellation,
        noise_variance: f64,
        rng: &mut R,
    ) -> Self {
        let mut frames = Vec::with_capacity(cfg.subcarriers);
        let mut channel: Option<Channel> = None;
        for k in 0..cfg.subcarriers {
            if k % cfg.coherence == 0 {
                channel = Some(Channel::rayleigh(cfg.n_rx, cfg.n_tx, rng));
            }
            let ch = channel.as_ref().expect("set on first subcarrier");
            let tx = TxFrame::random(cfg.n_tx, constellation, rng);
            let y = ch.transmit(&tx.symbols, noise_variance, rng);
            frames.push(FrameData {
                h: ch.matrix().clone(),
                y,
                noise_variance,
                tx,
            });
        }
        OfdmSymbol { frames }
    }

    /// Decode every subcarrier serially with `decode`; returns
    /// `(bit errors, total bits)`.
    ///
    /// The closure receives `(frame, new_channel)`: `new_channel` is true
    /// exactly when the subcarrier starts a new coherence run (its `H`
    /// differs from the previous subcarrier's). A decoder holding a
    /// `ChannelPrep`-style factor/apply split factors only when the flag
    /// fires and replays `Qᴴy` otherwise, so each distinct channel is
    /// factored **once** instead of once per subcarrier.
    pub fn decode_serial<D>(&self, constellation: &Constellation, mut decode: D) -> (u64, u64)
    where
        D: FnMut(&FrameData, bool) -> Vec<usize>,
    {
        let mut errs = 0u64;
        let mut bits = 0u64;
        for run in self.coherence_runs() {
            for (i, f) in self.frames[run].iter().enumerate() {
                let d = decode(f, i == 0);
                errs += f.bit_errors(&d, constellation);
                bits += f.tx.bits.len() as u64;
            }
        }
        (errs, bits)
    }

    /// Decode in parallel with rayon — the software analogue of fanning
    /// subcarriers over FPGA pipelines. Parallelism is over **coherence
    /// runs** (not individual subcarriers), each run decoded serially with
    /// the same `(frame, new_channel)` protocol as
    /// [`OfdmSymbol::decode_serial`], so per-run channel-prep amortization
    /// survives the fan-out.
    pub fn decode_parallel<D>(&self, constellation: &Constellation, decode: D) -> (u64, u64)
    where
        D: Fn(&FrameData, bool) -> Vec<usize> + Sync,
    {
        let runs = self.coherence_runs();
        runs.par_iter()
            .map(|run| {
                let mut errs = 0u64;
                let mut bits = 0u64;
                for (i, f) in self.frames[run.clone()].iter().enumerate() {
                    let d = decode(f, i == 0);
                    errs += f.bit_errors(&d, constellation);
                    bits += f.tx.bits.len() as u64;
                }
                (errs, bits)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    }

    /// Maximal runs of consecutive subcarriers sharing one channel
    /// realization, in subcarrier order.
    pub fn coherence_runs(&self) -> Vec<std::ops::Range<usize>> {
        let mut runs: Vec<std::ops::Range<usize>> = Vec::new();
        for (k, f) in self.frames.iter().enumerate() {
            match runs.last_mut() {
                Some(run) if self.frames[run.start].h.approx_eq(&f.h, 0.0) => run.end = k + 1,
                _ => runs.push(k..k + 1),
            }
        }
        runs
    }

    /// Distinct channel realizations in this symbol.
    pub fn distinct_channels(&self) -> usize {
        self.coherence_runs().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Modulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn symbol(subcarriers: usize, coherence: usize, sigma2: f64) -> (Constellation, OfdmSymbol) {
        let c = Constellation::new(Modulation::Qam4);
        let cfg = OfdmConfig::new(subcarriers, 4, 4, coherence);
        let mut rng = StdRng::seed_from_u64(500);
        let s = OfdmSymbol::generate(&cfg, &c, sigma2, &mut rng);
        (c, s)
    }

    #[test]
    fn symbol_has_one_frame_per_subcarrier() {
        let (_, s) = symbol(16, 4, 0.1);
        assert_eq!(s.frames.len(), 16);
    }

    #[test]
    fn coherence_shares_channels() {
        let (_, s) = symbol(16, 4, 0.1);
        assert_eq!(s.distinct_channels(), 4);
        let (_, flat) = symbol(16, 16, 0.1);
        assert_eq!(flat.distinct_channels(), 1);
        let (_, selective) = symbol(16, 1, 0.1);
        assert_eq!(selective.distinct_channels(), 16);
    }

    #[test]
    fn genie_decode_counts_all_bits() {
        let (c, s) = symbol(8, 2, 0.05);
        let (errs, bits) = s.decode_serial(&c, |f, _| f.tx.indices.clone());
        assert_eq!(errs, 0);
        assert_eq!(bits, 8 * 4 * 2);
    }

    #[test]
    fn parallel_matches_serial() {
        let (c, s) = symbol(24, 3, 0.5);
        // A deterministic sub-optimal decoder: slice y element-wise.
        let decode = |f: &FrameData, _new: bool| -> Vec<usize> {
            let c = Constellation::new(Modulation::Qam4);
            (0..f.tx.n_tx()).map(|i| c.slice(f.y[i])).collect()
        };
        let serial = s.decode_serial(&c, decode);
        let parallel = s.decode_parallel(&c, decode);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn coherence_runs_partition_the_symbol_in_order() {
        let (_, s) = symbol(16, 4, 0.1);
        let runs = s.coherence_runs();
        assert_eq!(runs.len(), 4);
        let mut next = 0usize;
        for run in &runs {
            assert_eq!(run.start, next, "runs must tile the symbol");
            assert_eq!(run.len(), 4);
            next = run.end;
        }
        assert_eq!(next, 16);
    }

    #[test]
    fn new_channel_flag_fires_once_per_distinct_channel() {
        // The amortization contract: a caller factoring only on the flag
        // performs exactly `distinct_channels()` factorizations, and every
        // frame it replays against belongs to the factored channel.
        let (c, s) = symbol(20, 5, 0.1);
        let mut factored: Option<sd_math::Matrix<f64>> = None;
        let mut factorizations = 0usize;
        s.decode_serial(&c, |f, new_channel| {
            if new_channel {
                factored = Some(f.h.clone());
                factorizations += 1;
            }
            let h = factored.as_ref().expect("first frame flags a new channel");
            assert!(h.approx_eq(&f.h, 0.0), "replay against a stale channel");
            f.tx.indices.clone()
        });
        assert_eq!(factorizations, s.distinct_channels());
    }

    #[test]
    fn bits_per_symbol_formula() {
        let c = Constellation::new(Modulation::Qam16);
        let cfg = OfdmConfig::new(64, 4, 4, 8);
        assert_eq!(cfg.bits_per_symbol(&c), 64 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "coherence must be at least 1")]
    fn zero_coherence_rejected() {
        OfdmConfig::new(8, 2, 2, 0);
    }
}
