//! MIMO-OFDM multicarrier layer.
//!
//! Wideband systems (the 802.11/LTE deployments the paper's introduction
//! motivates) split the band into subcarriers; each subcarrier sees its
//! own narrowband MIMO channel and is detected independently — which is
//! exactly the data parallelism the paper's second-pipeline / multi-PE
//! directions want to exploit. This module models an OFDM symbol as a
//! bank of per-subcarrier [`FrameData`] problems with configurable
//! frequency coherence (adjacent subcarriers sharing one fading
//! realization), and decodes them serially or with rayon.

use crate::channel::Channel;
use crate::constellation::Constellation;
use crate::frame::{FrameData, TxFrame};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of one OFDM symbol.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OfdmConfig {
    /// Number of data subcarriers.
    pub subcarriers: usize,
    /// Transmit antennas per subcarrier.
    pub n_tx: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// Subcarriers sharing one channel realization (frequency coherence;
    /// 1 = fully frequency-selective, `subcarriers` = flat fading).
    pub coherence: usize,
}

impl OfdmConfig {
    /// Validate and build.
    pub fn new(subcarriers: usize, n_tx: usize, n_rx: usize, coherence: usize) -> Self {
        assert!(subcarriers > 0, "need at least one subcarrier");
        assert!(coherence >= 1, "coherence must be at least 1");
        assert!(n_rx >= n_tx && n_tx > 0, "need n_rx >= n_tx > 0");
        OfdmConfig {
            subcarriers,
            n_tx,
            n_rx,
            coherence,
        }
    }

    /// Information bits carried by one OFDM symbol.
    pub fn bits_per_symbol(&self, constellation: &Constellation) -> usize {
        self.subcarriers * self.n_tx * constellation.bits_per_symbol()
    }
}

/// One OFDM symbol: a bank of per-subcarrier detection problems.
#[derive(Clone, Debug)]
pub struct OfdmSymbol {
    /// Per-subcarrier frames, subcarrier order.
    pub frames: Vec<FrameData>,
}

impl OfdmSymbol {
    /// Generate one OFDM symbol worth of traffic.
    pub fn generate<R: Rng + ?Sized>(
        cfg: &OfdmConfig,
        constellation: &Constellation,
        noise_variance: f64,
        rng: &mut R,
    ) -> Self {
        let mut frames = Vec::with_capacity(cfg.subcarriers);
        let mut channel: Option<Channel> = None;
        for k in 0..cfg.subcarriers {
            if k % cfg.coherence == 0 {
                channel = Some(Channel::rayleigh(cfg.n_rx, cfg.n_tx, rng));
            }
            let ch = channel.as_ref().expect("set on first subcarrier");
            let tx = TxFrame::random(cfg.n_tx, constellation, rng);
            let y = ch.transmit(&tx.symbols, noise_variance, rng);
            frames.push(FrameData {
                h: ch.matrix().clone(),
                y,
                noise_variance,
                tx,
            });
        }
        OfdmSymbol { frames }
    }

    /// Decode every subcarrier serially with `decode`; returns
    /// `(bit errors, total bits)`.
    pub fn decode_serial<D>(&self, constellation: &Constellation, mut decode: D) -> (u64, u64)
    where
        D: FnMut(&FrameData) -> Vec<usize>,
    {
        let mut errs = 0u64;
        let mut bits = 0u64;
        for f in &self.frames {
            let d = decode(f);
            errs += f.bit_errors(&d, constellation);
            bits += f.tx.bits.len() as u64;
        }
        (errs, bits)
    }

    /// Decode subcarriers in parallel with rayon — the software analogue
    /// of fanning subcarriers over FPGA pipelines.
    pub fn decode_parallel<D>(&self, constellation: &Constellation, decode: D) -> (u64, u64)
    where
        D: Fn(&FrameData) -> Vec<usize> + Sync,
    {
        self.frames
            .par_iter()
            .map(|f| {
                let d = decode(f);
                (f.bit_errors(&d, constellation), f.tx.bits.len() as u64)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    }

    /// Distinct channel realizations in this symbol.
    pub fn distinct_channels(&self) -> usize {
        let mut count = 0usize;
        let mut last: Option<&FrameData> = None;
        for f in &self.frames {
            if last.is_none_or(|p| !p.h.approx_eq(&f.h, 0.0)) {
                count += 1;
            }
            last = Some(f);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Modulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn symbol(subcarriers: usize, coherence: usize, sigma2: f64) -> (Constellation, OfdmSymbol) {
        let c = Constellation::new(Modulation::Qam4);
        let cfg = OfdmConfig::new(subcarriers, 4, 4, coherence);
        let mut rng = StdRng::seed_from_u64(500);
        let s = OfdmSymbol::generate(&cfg, &c, sigma2, &mut rng);
        (c, s)
    }

    #[test]
    fn symbol_has_one_frame_per_subcarrier() {
        let (_, s) = symbol(16, 4, 0.1);
        assert_eq!(s.frames.len(), 16);
    }

    #[test]
    fn coherence_shares_channels() {
        let (_, s) = symbol(16, 4, 0.1);
        assert_eq!(s.distinct_channels(), 4);
        let (_, flat) = symbol(16, 16, 0.1);
        assert_eq!(flat.distinct_channels(), 1);
        let (_, selective) = symbol(16, 1, 0.1);
        assert_eq!(selective.distinct_channels(), 16);
    }

    #[test]
    fn genie_decode_counts_all_bits() {
        let (c, s) = symbol(8, 2, 0.05);
        let (errs, bits) = s.decode_serial(&c, |f| f.tx.indices.clone());
        assert_eq!(errs, 0);
        assert_eq!(bits, 8 * 4 * 2);
    }

    #[test]
    fn parallel_matches_serial() {
        let (c, s) = symbol(24, 3, 0.5);
        // A deterministic sub-optimal decoder: slice y element-wise.
        let decode = |f: &FrameData| -> Vec<usize> {
            let c = Constellation::new(Modulation::Qam4);
            (0..f.tx.n_tx()).map(|i| c.slice(f.y[i])).collect()
        };
        let serial = s.decode_serial(&c, decode);
        let parallel = s.decode_parallel(&c, decode);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn bits_per_symbol_formula() {
        let c = Constellation::new(Modulation::Qam16);
        let cfg = OfdmConfig::new(64, 4, 4, 8);
        assert_eq!(cfg.bits_per_symbol(&c), 64 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "coherence must be at least 1")]
    fn zero_coherence_rejected() {
        OfdmConfig::new(8, 2, 2, 0);
    }
}
