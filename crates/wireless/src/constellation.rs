//! Gray-mapped complex constellations.
//!
//! The paper's FPGA designs support 4-QAM and 16-QAM; BPSK appears in the
//! Fig. 2 walk-through and 64-QAM is included as the "denser constellation"
//! extension direction. All constellations are normalized to **unit average
//! symbol energy** so the SNR convention in [`crate::snr`] holds for every
//! modulation.

use sd_math::{Complex, C64};

/// Modulation scheme — the paper's "modulation factor" `P` is
/// [`Modulation::order`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Modulation {
    /// Binary phase-shift keying (1 bit/symbol), used in the paper's tree
    /// examples.
    Bpsk,
    /// 4-QAM / QPSK (2 bits/symbol).
    Qam4,
    /// 16-QAM (4 bits/symbol) — the paper's largest supported modulation.
    Qam16,
    /// 64-QAM (6 bits/symbol) — extension beyond the paper.
    Qam64,
}

impl Modulation {
    /// Constellation size `|Ω|` (the branching factor of the search tree).
    pub fn order(self) -> usize {
        match self {
            Modulation::Bpsk => 2,
            Modulation::Qam4 => 4,
            Modulation::Qam16 => 16,
            Modulation::Qam64 => 64,
        }
    }

    /// Bits carried per symbol (`log2(order)`).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qam4 => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Human-readable name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qam4 => "4-QAM",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
        }
    }

    /// All supported modulations.
    pub fn all() -> [Modulation; 4] {
        [
            Modulation::Bpsk,
            Modulation::Qam4,
            Modulation::Qam16,
            Modulation::Qam64,
        ]
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete constellation: the ordered point set `Ω` plus the Gray
/// bit-mapping between point indices and bit patterns.
///
/// Point `i` carries the bit pattern [`Constellation::index_to_bits`]`(i)`;
/// adjacent points (in I or Q) differ in exactly one bit.
#[derive(Clone, Debug)]
pub struct Constellation {
    modulation: Modulation,
    points: Vec<C64>,
    /// `bits[i]` = bit pattern (LSB-first in the `u32`) of point `i`.
    bits: Vec<u32>,
    /// Inverse map: bit pattern -> point index.
    index_of_bits: Vec<usize>,
    /// Per-axis PAM levels after normalization (empty for BPSK).
    levels: Vec<f64>,
}

/// Gray code of `n`.
#[inline]
fn gray(n: u32) -> u32 {
    n ^ (n >> 1)
}

/// Inverse Gray code.
#[cfg_attr(not(test), allow(dead_code))]
fn gray_inverse(mut g: u32) -> u32 {
    let mut n = g;
    while g > 0 {
        g >>= 1;
        n ^= g;
    }
    n
}

impl Constellation {
    /// Build the canonical Gray-mapped constellation for `modulation`.
    pub fn new(modulation: Modulation) -> Self {
        match modulation {
            Modulation::Bpsk => {
                // ±1 on the real axis; energy already 1.
                let points = vec![Complex::new(-1.0, 0.0), Complex::new(1.0, 0.0)];
                let bits = vec![0u32, 1u32];
                let index_of_bits = vec![0usize, 1usize];
                Constellation {
                    modulation,
                    points,
                    bits,
                    index_of_bits,
                    levels: vec![-1.0, 1.0],
                }
            }
            _ => Self::square_qam(modulation),
        }
    }

    /// Square M-QAM with per-axis Gray coding. Levels are
    /// `{±1, ±3, …, ±(L−1)}` scaled so the average symbol energy is 1.
    fn square_qam(modulation: Modulation) -> Self {
        let order = modulation.order();
        let l = (order as f64).sqrt() as usize; // levels per axis
        debug_assert_eq!(l * l, order, "square QAM requires a square order");
        let axis_bits = modulation.bits_per_symbol() / 2;

        // Average energy of the unnormalized grid: 2(L²−1)/3.
        let energy = 2.0 * ((l * l - 1) as f64) / 3.0;
        let scale = 1.0 / energy.sqrt();

        // Axis level k (k = 0..L) sits at (2k − L + 1); Gray code orders the
        // bit patterns so neighbouring levels differ in one bit.
        let level_value = |k: usize| (2.0 * k as f64 - (l as f64) + 1.0) * scale;
        let levels: Vec<f64> = (0..l).map(level_value).collect();

        let mut points = vec![Complex::new(0.0, 0.0); order];
        let mut bits = vec![0u32; order];
        let mut index_of_bits = vec![0usize; order];
        let mut idx = 0usize;
        for ki in 0..l {
            for kq in 0..l {
                let re = level_value(ki);
                let im = level_value(kq);
                // Bit pattern: I bits in the high half, Q bits in the low
                // half; each half is the Gray code of the level index.
                let pattern = (gray(ki as u32) << axis_bits) | gray(kq as u32);
                points[idx] = Complex::new(re, im);
                bits[idx] = pattern;
                index_of_bits[pattern as usize] = idx;
                idx += 1;
            }
        }
        Constellation {
            modulation,
            points,
            bits,
            index_of_bits,
            levels,
        }
    }

    /// The modulation this constellation implements.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// Constellation size `|Ω|`.
    pub fn order(&self) -> usize {
        self.points.len()
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(&self) -> usize {
        self.modulation.bits_per_symbol()
    }

    /// The ordered point set (index `i` ↔ bit pattern `index_to_bits(i)`).
    pub fn points(&self) -> &[C64] {
        &self.points
    }

    /// Point for index `i`.
    pub fn point(&self, i: usize) -> C64 {
        self.points[i]
    }

    /// Bit pattern of point `i`, MSB-first as a vector of 0/1.
    pub fn index_to_bits(&self, i: usize) -> Vec<u8> {
        let b = self.bits[i];
        (0..self.bits_per_symbol())
            .rev()
            .map(|k| ((b >> k) & 1) as u8)
            .collect()
    }

    /// Point index for an MSB-first bit slice of length `bits_per_symbol`.
    ///
    /// # Panics
    /// If the slice length is wrong or a bit is not 0/1.
    pub fn bits_to_index(&self, bits: &[u8]) -> usize {
        assert_eq!(bits.len(), self.bits_per_symbol(), "wrong bit-slice length");
        let mut pattern = 0u32;
        for &b in bits {
            assert!(b <= 1, "bits must be 0/1");
            pattern = (pattern << 1) | b as u32;
        }
        self.index_of_bits[pattern as usize]
    }

    /// Map an MSB-first bit slice directly to a symbol.
    pub fn map_bits(&self, bits: &[u8]) -> C64 {
        self.point(self.bits_to_index(bits))
    }

    /// Hard-decision slicing: index of the nearest constellation point.
    ///
    /// For square QAM this is an O(1) per-axis quantization; for BPSK a
    /// sign test.
    pub fn slice(&self, x: C64) -> usize {
        match self.modulation {
            Modulation::Bpsk => usize::from(x.re >= 0.0),
            _ => {
                let ki = self.quantize_axis(x.re);
                let kq = self.quantize_axis(x.im);
                let l = self.levels.len();
                ki * l + kq
            }
        }
    }

    /// Nearest-level index along one axis.
    fn quantize_axis(&self, v: f64) -> usize {
        let l = self.levels.len();
        let step = self.levels[1] - self.levels[0];
        let k = ((v - self.levels[0]) / step).round();
        k.clamp(0.0, (l - 1) as f64) as usize
    }

    /// Exhaustive nearest-point search (oracle for [`Constellation::slice`]).
    pub fn slice_exhaustive(&self, x: C64) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let d = (x - *p).norm_sqr();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Average symbol energy (≈ 1 by construction).
    pub fn average_energy(&self) -> f64 {
        self.points.iter().map(|p| p.norm_sqr()).sum::<f64>() / self.order() as f64
    }

    /// Minimum Euclidean distance between distinct points.
    pub fn min_distance(&self) -> f64 {
        let mut best = f64::INFINITY;
        for i in 0..self.order() {
            for j in i + 1..self.order() {
                best = best.min((self.points[i] - self.points[j]).abs());
            }
        }
        best
    }

    /// Hamming distance between the bit labels of two point indices.
    pub fn bit_distance(&self, i: usize, j: usize) -> u32 {
        (self.bits[i] ^ self.bits[j]).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_and_bits() {
        assert_eq!(Modulation::Bpsk.order(), 2);
        assert_eq!(Modulation::Qam4.order(), 4);
        assert_eq!(Modulation::Qam16.order(), 16);
        assert_eq!(Modulation::Qam64.order(), 64);
        for m in Modulation::all() {
            assert_eq!(1usize << m.bits_per_symbol(), m.order());
        }
    }

    #[test]
    fn unit_average_energy() {
        for m in Modulation::all() {
            let c = Constellation::new(m);
            assert!(
                (c.average_energy() - 1.0).abs() < 1e-12,
                "{m}: energy {}",
                c.average_energy()
            );
        }
    }

    #[test]
    fn bits_roundtrip_all_points() {
        for m in Modulation::all() {
            let c = Constellation::new(m);
            for i in 0..c.order() {
                let bits = c.index_to_bits(i);
                assert_eq!(bits.len(), c.bits_per_symbol());
                assert_eq!(c.bits_to_index(&bits), i, "{m} index {i}");
            }
        }
    }

    #[test]
    fn gray_neighbours_differ_in_one_bit() {
        // For square QAM, horizontally/vertically adjacent points must have
        // Hamming-distance-1 labels — the defining Gray property.
        for m in [Modulation::Qam4, Modulation::Qam16, Modulation::Qam64] {
            let c = Constellation::new(m);
            let l = (m.order() as f64).sqrt() as usize;
            for ki in 0..l {
                for kq in 0..l {
                    let idx = ki * l + kq;
                    if kq + 1 < l {
                        assert_eq!(c.bit_distance(idx, ki * l + kq + 1), 1, "{m} Q-neighbour");
                    }
                    if ki + 1 < l {
                        assert_eq!(c.bit_distance(idx, (ki + 1) * l + kq), 1, "{m} I-neighbour");
                    }
                }
            }
        }
    }

    #[test]
    fn slicing_own_points_is_identity() {
        for m in Modulation::all() {
            let c = Constellation::new(m);
            for i in 0..c.order() {
                assert_eq!(c.slice(c.point(i)), i, "{m} point {i}");
            }
        }
    }

    #[test]
    fn fast_slice_matches_exhaustive_on_noisy_points() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(404);
        for m in Modulation::all() {
            let c = Constellation::new(m);
            for _ in 0..500 {
                let x = Complex::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
                assert_eq!(c.slice(x), c.slice_exhaustive(x), "{m} point {x}");
            }
        }
    }

    #[test]
    fn min_distance_known_values() {
        // Unit-energy 4-QAM: points (±1±i)/√2, min distance 2/√2 = √2.
        let c = Constellation::new(Modulation::Qam4);
        assert!((c.min_distance() - 2.0 / 2f64.sqrt()).abs() < 1e-12);
        // 16-QAM: grid step 2/√10.
        let c = Constellation::new(Modulation::Qam16);
        assert!((c.min_distance() - 2.0 / 10f64.sqrt()).abs() < 1e-12);
        // BPSK: distance 2.
        let c = Constellation::new(Modulation::Bpsk);
        assert!((c.min_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gray_code_helpers_invert() {
        for n in 0..64u32 {
            assert_eq!(gray_inverse(gray(n)), n);
        }
        // Consecutive Gray codes differ in exactly one bit.
        for n in 0..63u32 {
            assert_eq!((gray(n) ^ gray(n + 1)).count_ones(), 1);
        }
    }

    #[test]
    fn bpsk_is_real_antipodal() {
        let c = Constellation::new(Modulation::Bpsk);
        assert_eq!(c.point(0), Complex::new(-1.0, 0.0));
        assert_eq!(c.point(1), Complex::new(1.0, 0.0));
        assert_eq!(c.slice(Complex::new(-0.3, 5.0)), 0);
        assert_eq!(c.slice(Complex::new(0.3, -5.0)), 1);
    }

    #[test]
    #[should_panic(expected = "wrong bit-slice length")]
    fn wrong_bit_length_panics() {
        Constellation::new(Modulation::Qam4).bits_to_index(&[1]);
    }

    #[test]
    fn all_points_distinct() {
        for m in Modulation::all() {
            let c = Constellation::new(m);
            for i in 0..c.order() {
                for j in i + 1..c.order() {
                    assert!(
                        (c.point(i) - c.point(j)).abs() > 1e-9,
                        "{m}: duplicate points {i},{j}"
                    );
                }
            }
        }
    }
}
