//! Additive white Gaussian noise.

use rand::Rng;
use sd_math::{ComplexNormal, C64};

/// Add circularly-symmetric complex Gaussian noise of total variance
/// `variance` (per entry) to `y` in place.
pub fn awgn<R: Rng + ?Sized>(y: &mut [C64], variance: f64, rng: &mut R) {
    if variance == 0.0 {
        return;
    }
    let sampler = ComplexNormal::with_variance(variance);
    for v in y.iter_mut() {
        let n: C64 = sampler.sample(rng);
        *v += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_math::Complex;

    #[test]
    fn zero_variance_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut y = vec![Complex::new(1.0, 2.0); 8];
        let orig = y.clone();
        awgn(&mut y, 0.0, &mut rng);
        assert_eq!(y, orig);
    }

    #[test]
    fn noise_power_matches_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mut y = vec![Complex::new(0.0, 0.0); n];
        awgn(&mut y, 0.5, &mut rng);
        let power = sd_math::vector::norm_sqr(&y) / n as f64;
        assert!((power - 0.5).abs() < 0.02, "measured noise power {power}");
    }

    #[test]
    fn noise_is_zero_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut y = vec![Complex::new(0.0, 0.0); n];
        awgn(&mut y, 1.0, &mut rng);
        let mean = y.iter().copied().sum::<C64>().scale(1.0 / n as f64);
        assert!(mean.abs() < 0.02);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = vec![Complex::new(1.0, 1.0); 4];
        let mut b = a.clone();
        awgn(&mut a, 1.0, &mut StdRng::seed_from_u64(7));
        awgn(&mut b, 1.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
