//! Convolutional channel coding and Viterbi decoding.
//!
//! Real links never run uncoded; the value of a *soft-output* detector
//! (see `sd-core::soft`) only shows once a channel decoder consumes its
//! LLRs. This module provides the classic rate-1/2 constraint-length-7
//! convolutional code (the 802.11 `(171, 133)₈` industry standard) with
//! both hard-decision (Hamming metric) and soft-decision (LLR metric)
//! Viterbi decoding, so the coded-BER gain of soft detection is
//! measurable end to end.

use serde::{Deserialize, Serialize};

/// A rate-`1/n` binary convolutional code.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvolutionalCode {
    /// Constraint length `K` (memory = K−1).
    pub constraint: usize,
    /// Generator polynomials, LSB = newest bit.
    pub generators: Vec<u32>,
}

impl ConvolutionalCode {
    /// The 802.11 / CCSDS standard rate-1/2, K = 7 code `(171, 133)₈`.
    pub fn standard_k7() -> Self {
        ConvolutionalCode {
            constraint: 7,
            generators: vec![0o171, 0o133],
        }
    }

    /// A toy K = 3 rate-1/2 code `(7, 5)₈` (fast tests).
    pub fn toy_k3() -> Self {
        ConvolutionalCode {
            constraint: 3,
            generators: vec![0o7, 0o5],
        }
    }

    /// Output bits per input bit.
    pub fn rate_denominator(&self) -> usize {
        self.generators.len()
    }

    /// Number of trellis states.
    pub fn states(&self) -> usize {
        1 << (self.constraint - 1)
    }

    /// Coded length for `info` information bits (the tail flush of
    /// `K−1` zeros is appended automatically).
    pub fn coded_len(&self, info: usize) -> usize {
        (info + self.constraint - 1) * self.rate_denominator()
    }

    /// Encode information bits (tail-terminated).
    pub fn encode(&self, info: &[u8]) -> Vec<u8> {
        assert!(info.iter().all(|&b| b <= 1), "bits must be 0/1");
        let mut out = Vec::with_capacity(self.coded_len(info.len()));
        let mut shift: u32 = 0;
        let mask = (1u32 << self.constraint) - 1;
        for &b in info
            .iter()
            .chain(std::iter::repeat_n(&0u8, self.constraint - 1))
        {
            shift = ((shift << 1) | b as u32) & mask;
            for &g in &self.generators {
                out.push(((shift & g).count_ones() & 1) as u8);
            }
        }
        out
    }

    /// Output bits for a transition from `state` with input `input`.
    fn transition(&self, state: u32, input: u8) -> (u32, Vec<u8>) {
        let mask = (1u32 << self.constraint) - 1;
        let shift = ((state << 1) | input as u32) & mask;
        let outputs = self
            .generators
            .iter()
            .map(|&g| ((shift & g).count_ones() & 1) as u8)
            .collect();
        // Next state = the K−1 newest bits.
        let next = shift & ((1u32 << (self.constraint - 1)) - 1);
        (next, outputs)
    }

    /// Viterbi decoding over per-coded-bit *metrics*: `metrics[i]` is the
    /// gain of deciding coded bit `i` equal to 0 (so an LLR works
    /// directly, and hard decisions map to ±1). Returns the information
    /// bits (tail removed).
    pub fn viterbi_with_metrics(&self, metrics: &[f64]) -> Vec<u8> {
        let nd = self.rate_denominator();
        assert_eq!(
            metrics.len() % nd,
            0,
            "metric length must be a multiple of 1/rate"
        );
        let steps = metrics.len() / nd;
        assert!(
            steps >= self.constraint - 1,
            "sequence shorter than the tail"
        );
        let n_states = self.states();
        const NEG: f64 = f64::NEG_INFINITY;
        // path_metric[s]: best metric ending in state s; survivors for
        // traceback.
        let mut path = vec![NEG; n_states];
        path[0] = 0.0; // encoder starts in the zero state
        let mut survivors: Vec<Vec<(u32, u8)>> = Vec::with_capacity(steps);

        for step in 0..steps {
            let m = &metrics[step * nd..(step + 1) * nd];
            let mut next = vec![NEG; n_states];
            let mut surv = vec![(0u32, 0u8); n_states];
            for (state, &pm) in path.iter().enumerate() {
                if pm == NEG {
                    continue;
                }
                for input in 0..=1u8 {
                    let (ns, outs) = self.transition(state as u32, input);
                    // Gain: +metric when the coded bit is 0, −metric when 1.
                    let mut gain = 0.0;
                    for (o, &mi) in outs.iter().zip(m.iter()) {
                        gain += if *o == 0 { mi } else { -mi };
                    }
                    let cand = pm + gain;
                    if cand > next[ns as usize] {
                        next[ns as usize] = cand;
                        surv[ns as usize] = (state as u32, input);
                    }
                }
            }
            path = next;
            survivors.push(surv);
        }

        // Tail-terminated: trace back from state 0.
        let mut state = 0u32;
        let mut decided = vec![0u8; steps];
        for step in (0..steps).rev() {
            let (prev, input) = survivors[step][state as usize];
            decided[step] = input;
            state = prev;
        }
        decided.truncate(steps - (self.constraint - 1));
        decided
    }

    /// Hard-decision Viterbi from received coded bits.
    pub fn viterbi_hard(&self, coded: &[u8]) -> Vec<u8> {
        let metrics: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        self.viterbi_with_metrics(&metrics)
    }

    /// Soft-decision Viterbi from per-bit LLRs (positive favours 0).
    pub fn viterbi_soft(&self, llrs: &[f64]) -> Vec<u8> {
        self.viterbi_with_metrics(llrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn clean_roundtrip_both_codes() {
        for code in [
            ConvolutionalCode::toy_k3(),
            ConvolutionalCode::standard_k7(),
        ] {
            let info = random_bits(100, 1);
            let coded = code.encode(&info);
            assert_eq!(coded.len(), code.coded_len(100));
            assert_eq!(code.viterbi_hard(&coded), info, "K={}", code.constraint);
        }
    }

    #[test]
    fn known_k3_output() {
        // (7,5) code, input 1 0 1 1 + 2 tail zeros: standard trellis.
        let code = ConvolutionalCode::toy_k3();
        let coded = code.encode(&[1]);
        // Step 1: shift=001 → g7(111)&001=1, g5(101)&001=1 → 11
        // Tail: shift=010 → g7&010=1, g5&010=0 → 10 ; shift=100 → 1,1 → 11
        assert_eq!(coded, vec![1, 1, 1, 0, 1, 1]);
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let code = ConvolutionalCode::standard_k7();
        let info = random_bits(200, 2);
        let mut coded = code.encode(&info);
        // Flip isolated bits, spaced beyond the constraint span.
        for i in (0..coded.len()).step_by(40) {
            coded[i] ^= 1;
        }
        assert_eq!(
            code.viterbi_hard(&coded),
            info,
            "free distance 10 corrects these"
        );
    }

    #[test]
    fn soft_decoding_uses_confidence() {
        // One flipped bit marked as unreliable (tiny LLR) is ignored;
        // a confidently-wrong bit costs more.
        let code = ConvolutionalCode::toy_k3();
        let info = random_bits(60, 3);
        let coded = code.encode(&info);
        let mut llrs: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 8.0 } else { -8.0 })
            .collect();
        // Corrupt 6 positions but with low confidence.
        for i in (5..llrs.len()).step_by(17) {
            llrs[i] = -llrs[i].signum() * 0.3;
        }
        assert_eq!(code.viterbi_soft(&llrs), info);
    }

    #[test]
    fn soft_beats_hard_on_noisy_channel() {
        // BPSK-over-AWGN comparison: identical noise, hard vs soft input.
        let code = ConvolutionalCode::standard_k7();
        let mut rng = StdRng::seed_from_u64(4);
        let mut hard_errs = 0u64;
        let mut soft_errs = 0u64;
        let mut bits = 0u64;
        for trial in 0..30 {
            let info = random_bits(120, 100 + trial);
            let coded = code.encode(&info);
            // y = (1-2b) + noise; LLR ∝ 2y/σ².
            let sigma = 0.95;
            let llrs: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let y = (1.0 - 2.0 * b as f64) + sigma * rng.sample::<f64, _>(StandardLike);
                    2.0 * y / (sigma * sigma)
                })
                .collect();
            let hard_in: Vec<u8> = llrs.iter().map(|&l| u8::from(l < 0.0)).collect();
            let hard_out = code.viterbi_hard(&hard_in);
            let soft_out = code.viterbi_soft(&llrs);
            hard_errs += hard_out
                .iter()
                .zip(info.iter())
                .filter(|(a, b)| a != b)
                .count() as u64;
            soft_errs += soft_out
                .iter()
                .zip(info.iter())
                .filter(|(a, b)| a != b)
                .count() as u64;
            bits += info.len() as u64;
        }
        assert!(
            soft_errs < hard_errs,
            "soft ({soft_errs}) must beat hard ({hard_errs}) over {bits} bits"
        );
    }

    /// Minimal standard-normal sampler via Box–Muller (keeps the test
    /// self-contained).
    struct StandardLike;
    impl rand::distributions::Distribution<f64> for StandardLike {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }

    #[test]
    fn trellis_bookkeeping() {
        let code = ConvolutionalCode::standard_k7();
        assert_eq!(code.states(), 64);
        assert_eq!(code.rate_denominator(), 2);
        assert_eq!(code.coded_len(10), 32);
    }

    #[test]
    #[should_panic(expected = "bits must be 0/1")]
    fn non_binary_input_rejected() {
        ConvolutionalCode::toy_k3().encode(&[0, 2]);
    }

    #[test]
    fn all_zero_and_all_one_inputs() {
        let code = ConvolutionalCode::standard_k7();
        let zeros = vec![0u8; 64];
        let coded = code.encode(&zeros);
        assert!(coded.iter().all(|&b| b == 0), "zero input → zero codeword");
        assert_eq!(code.viterbi_hard(&coded), zeros);
        let ones = vec![1u8; 64];
        assert_eq!(code.viterbi_hard(&code.encode(&ones)), ones);
    }
}
