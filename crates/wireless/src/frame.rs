//! Transmit frames and one complete channel use.
//!
//! A *frame* here is one spatial-multiplexing channel use: `M` symbols
//! (one per transmit antenna), i.e. `M · log2(P)` information bits. The
//! [`FrameData`] bundle is what a detector sees: the channel estimate, the
//! noisy receive vector, and the noise variance — plus the ground truth for
//! scoring.

use crate::channel::Channel;
use crate::constellation::Constellation;
use rand::Rng;
use sd_math::{Matrix, C64};

/// Information bits and their symbol mapping for one channel use.
#[derive(Clone, Debug)]
pub struct TxFrame {
    /// MSB-first information bits, `n_tx · bits_per_symbol` of them.
    pub bits: Vec<u8>,
    /// Constellation point indices, one per transmit antenna.
    pub indices: Vec<usize>,
    /// Mapped complex symbols `s`.
    pub symbols: Vec<C64>,
}

impl TxFrame {
    /// Draw uniformly random bits and map them.
    pub fn random<R: Rng + ?Sized>(
        n_tx: usize,
        constellation: &Constellation,
        rng: &mut R,
    ) -> Self {
        let bps = constellation.bits_per_symbol();
        let bits: Vec<u8> = (0..n_tx * bps).map(|_| rng.gen_range(0..=1u8)).collect();
        Self::from_bits(&bits, constellation)
    }

    /// Map explicit bits (length must be a multiple of `bits_per_symbol`).
    pub fn from_bits(bits: &[u8], constellation: &Constellation) -> Self {
        let bps = constellation.bits_per_symbol();
        assert_eq!(bits.len() % bps, 0, "bit count must be a multiple of {bps}");
        let indices: Vec<usize> = bits
            .chunks_exact(bps)
            .map(|chunk| constellation.bits_to_index(chunk))
            .collect();
        let symbols = indices.iter().map(|&i| constellation.point(i)).collect();
        TxFrame {
            bits: bits.to_vec(),
            indices,
            symbols,
        }
    }

    /// Build from constellation indices directly.
    pub fn from_indices(indices: &[usize], constellation: &Constellation) -> Self {
        let bits = indices
            .iter()
            .flat_map(|&i| constellation.index_to_bits(i))
            .collect();
        let symbols = indices.iter().map(|&i| constellation.point(i)).collect();
        TxFrame {
            bits,
            indices: indices.to_vec(),
            symbols,
        }
    }

    /// Number of transmit antennas.
    pub fn n_tx(&self) -> usize {
        self.indices.len()
    }
}

/// Everything a detector needs for one decode, plus the ground truth.
#[derive(Clone, Debug)]
pub struct FrameData {
    /// Channel estimate `H` (`n_rx × n_tx`), assumed perfect as in the paper.
    pub h: Matrix<f64>,
    /// Noisy receive vector `y = Hs + n`.
    pub y: Vec<C64>,
    /// Noise variance `σ²` per receive antenna.
    pub noise_variance: f64,
    /// Ground-truth transmitted frame (for BER scoring only — detectors
    /// must not read it).
    pub tx: TxFrame,
}

impl FrameData {
    /// Generate one complete channel use.
    pub fn generate<R: Rng + ?Sized>(
        n_rx: usize,
        n_tx: usize,
        constellation: &Constellation,
        noise_variance: f64,
        rng: &mut R,
    ) -> Self {
        let channel = Channel::rayleigh(n_rx, n_tx, rng);
        let tx = TxFrame::random(n_tx, constellation, rng);
        let y = channel.transmit(&tx.symbols, noise_variance, rng);
        FrameData {
            h: channel.matrix().clone(),
            y,
            noise_variance,
            tx,
        }
    }

    /// Count bit errors of a decoded index vector against the ground truth.
    pub fn bit_errors(&self, decoded_indices: &[usize], constellation: &Constellation) -> u64 {
        assert_eq!(decoded_indices.len(), self.tx.indices.len());
        decoded_indices
            .iter()
            .zip(self.tx.indices.iter())
            .map(|(&d, &t)| u64::from(constellation.bit_distance(d, t)))
            .sum()
    }

    /// Count symbol errors of a decoded index vector.
    pub fn symbol_errors(&self, decoded_indices: &[usize]) -> u64 {
        assert_eq!(decoded_indices.len(), self.tx.indices.len());
        decoded_indices
            .iter()
            .zip(self.tx.indices.iter())
            .filter(|(d, t)| d != t)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Modulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bits_symbols_consistent() {
        let c = Constellation::new(Modulation::Qam16);
        let mut rng = StdRng::seed_from_u64(11);
        let f = TxFrame::random(6, &c, &mut rng);
        assert_eq!(f.bits.len(), 24);
        assert_eq!(f.indices.len(), 6);
        assert_eq!(f.symbols.len(), 6);
        // Re-map and compare.
        let g = TxFrame::from_bits(&f.bits, &c);
        assert_eq!(g.indices, f.indices);
        assert_eq!(g.symbols, f.symbols);
    }

    #[test]
    fn from_indices_roundtrips_bits() {
        let c = Constellation::new(Modulation::Qam4);
        let f = TxFrame::from_indices(&[0, 3, 1, 2], &c);
        let g = TxFrame::from_bits(&f.bits, &c);
        assert_eq!(g.indices, vec![0, 3, 1, 2]);
    }

    #[test]
    fn generated_frame_shapes() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(5);
        let fd = FrameData::generate(10, 10, &c, 0.1, &mut rng);
        assert_eq!(fd.h.shape(), (10, 10));
        assert_eq!(fd.y.len(), 10);
        assert_eq!(fd.tx.n_tx(), 10);
    }

    #[test]
    fn perfect_decode_scores_zero_errors() {
        let c = Constellation::new(Modulation::Qam16);
        let mut rng = StdRng::seed_from_u64(6);
        let fd = FrameData::generate(4, 4, &c, 0.01, &mut rng);
        assert_eq!(fd.bit_errors(&fd.tx.indices, &c), 0);
        assert_eq!(fd.symbol_errors(&fd.tx.indices), 0);
    }

    #[test]
    fn wrong_decode_counts_bit_distance() {
        let c = Constellation::new(Modulation::Qam4);
        let f = TxFrame::from_indices(&[0, 0], &c);
        let fd = FrameData {
            h: Matrix::identity(2),
            y: f.symbols.clone(),
            noise_variance: 0.0,
            tx: f,
        };
        // Decode antenna 0 as a point at Hamming distance 1 from index 0.
        let mut wrong = None;
        for j in 1..4 {
            if c.bit_distance(0, j) == 1 {
                wrong = Some(j);
                break;
            }
        }
        let wrong = wrong.unwrap();
        assert_eq!(fd.bit_errors(&[wrong, 0], &c), 1);
        assert_eq!(fd.symbol_errors(&[wrong, 0]), 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_bits_rejected() {
        let c = Constellation::new(Modulation::Qam16);
        TxFrame::from_bits(&[0, 1, 1], &c);
    }
}
