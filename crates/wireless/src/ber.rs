//! Bit-error-rate bookkeeping.

use serde::{Deserialize, Serialize};

/// Running error counter over a Monte-Carlo run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorCounter {
    /// Total information bits observed.
    pub bits: u64,
    /// Bit errors observed.
    pub bit_errors: u64,
    /// Total symbols observed.
    pub symbols: u64,
    /// Symbol errors observed.
    pub symbol_errors: u64,
    /// Frames (channel uses) observed.
    pub frames: u64,
}

impl ErrorCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one frame's outcome.
    pub fn record(&mut self, bits: u64, bit_errors: u64, symbols: u64, symbol_errors: u64) {
        assert!(bit_errors <= bits, "more bit errors than bits");
        assert!(symbol_errors <= symbols, "more symbol errors than symbols");
        self.bits += bits;
        self.bit_errors += bit_errors;
        self.symbols += symbols;
        self.symbol_errors += symbol_errors;
        self.frames += 1;
    }

    /// Merge another counter (used by the parallel harness).
    pub fn merge(&mut self, other: &ErrorCounter) {
        self.bits += other.bits;
        self.bit_errors += other.bit_errors;
        self.symbols += other.symbols;
        self.symbol_errors += other.symbol_errors;
        self.frames += other.frames;
    }

    /// Bit error rate (0 when no bits observed).
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Symbol error rate.
    pub fn ser(&self) -> f64 {
        if self.symbols == 0 {
            0.0
        } else {
            self.symbol_errors as f64 / self.symbols as f64
        }
    }

    /// 95 % Wilson confidence interval on the BER.
    pub fn ber_confidence_95(&self) -> (f64, f64) {
        wilson_interval(self.bit_errors, self.bits, 1.96)
    }
}

/// Wilson score interval for a binomial proportion.
fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// One (SNR, BER) measurement.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BerPoint {
    /// Operating SNR in dB.
    pub snr_db: f64,
    /// Measured bit error rate.
    pub ber: f64,
    /// Measured symbol error rate.
    pub ser: f64,
    /// Bits observed at this point.
    pub bits: u64,
    /// Lower edge of the 95 % confidence interval.
    pub ber_lo: f64,
    /// Upper edge of the 95 % confidence interval.
    pub ber_hi: f64,
}

impl BerPoint {
    /// Summarize a counter at a given SNR.
    pub fn from_counter(snr_db: f64, c: &ErrorCounter) -> Self {
        let (lo, hi) = c.ber_confidence_95();
        BerPoint {
            snr_db,
            ber: c.ber(),
            ser: c.ser(),
            bits: c.bits,
            ber_lo: lo,
            ber_hi: hi,
        }
    }
}

/// A labelled BER-vs-SNR curve (one line of Fig. 7).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BerCurve {
    /// Curve label (detector name).
    pub label: String,
    /// Measurements ordered by SNR.
    pub points: Vec<BerPoint>,
}

impl BerCurve {
    /// Empty curve with a label.
    pub fn new(label: impl Into<String>) -> Self {
        BerCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point, keeping the curve sorted by SNR.
    pub fn push(&mut self, point: BerPoint) {
        self.points.push(point);
        self.points
            .sort_by(|a, b| a.snr_db.partial_cmp(&b.snr_db).expect("non-NaN SNR"));
    }

    /// `true` if the BER never increases with SNR (allowing `slack` for
    /// Monte-Carlo noise) — the basic sanity property of any detector.
    pub fn is_monotone_nonincreasing(&self, slack: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].ber <= w[0].ber * (1.0 + slack) + 1e-9)
    }

    /// SNR (dB) at which this curve crosses `target_ber`, by linear
    /// interpolation of `log10(BER)` between the bracketing measured
    /// points — the standard waterfall-region read-off. `None` when the
    /// curve never reaches the target inside its measured span (or has
    /// fewer than two points). A point with `ber == 0` (error floor of
    /// the measurement, not the detector) is treated as just below the
    /// smallest resolvable BER `1/bits` so the crossing stays finite.
    pub fn snr_at_ber(&self, target_ber: f64) -> Option<f64> {
        assert!(target_ber > 0.0, "target BER must be positive");
        let log_ber = |p: &BerPoint| {
            let floor = 1.0 / (p.bits.max(1) as f64);
            p.ber.max(floor * 0.5).log10()
        };
        let t = target_ber.log10();
        for w in self.points.windows(2) {
            let (a, b) = (log_ber(&w[0]), log_ber(&w[1]));
            // Crossing requires the target between the two samples
            // (curves are non-increasing in SNR, so a ≥ t ≥ b).
            if a >= t && t >= b {
                if a == b {
                    return Some(w[0].snr_db);
                }
                let frac = (a - t) / (a - b);
                return Some(w[0].snr_db + frac * (w[1].snr_db - w[0].snr_db));
            }
        }
        None
    }
}

/// SNR penalty (dB) of `candidate` relative to `reference` at
/// `target_ber`: how much more transmit power the candidate detector
/// needs to hit the same BER. Positive means the candidate is worse.
/// `None` when either curve never crosses the target in its measured
/// span.
pub fn degradation_db(reference: &BerCurve, candidate: &BerCurve, target_ber: f64) -> Option<f64> {
    Some(candidate.snr_at_ber(target_ber)? - reference.snr_at_ber(target_ber)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = ErrorCounter::new();
        c.record(20, 2, 10, 1);
        c.record(20, 0, 10, 0);
        assert_eq!(c.bits, 40);
        assert_eq!(c.bit_errors, 2);
        assert_eq!(c.frames, 2);
        assert!((c.ber() - 0.05).abs() < 1e-12);
        assert!((c.ser() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = ErrorCounter::new();
        a.record(10, 1, 5, 1);
        let mut b = ErrorCounter::new();
        b.record(30, 3, 15, 2);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.bits, 40);
        assert_eq!(m.bit_errors, 4);
        assert_eq!(m.frames, 2);
    }

    #[test]
    fn empty_counter_has_zero_rates() {
        let c = ErrorCounter::new();
        assert_eq!(c.ber(), 0.0);
        assert_eq!(c.ser(), 0.0);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(10, 1000, 1.96);
        assert!(lo < 0.01 && 0.01 < hi);
        assert!(lo > 0.0 && hi < 1.0);
    }

    #[test]
    fn wilson_interval_shrinks_with_samples() {
        let (lo1, hi1) = wilson_interval(10, 1_000, 1.96);
        let (lo2, hi2) = wilson_interval(100, 10_000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn curve_stays_sorted() {
        let mut curve = BerCurve::new("test");
        let mut c = ErrorCounter::new();
        c.record(100, 5, 50, 3);
        curve.push(BerPoint::from_counter(12.0, &c));
        curve.push(BerPoint::from_counter(4.0, &c));
        curve.push(BerPoint::from_counter(8.0, &c));
        let snrs: Vec<f64> = curve.points.iter().map(|p| p.snr_db).collect();
        assert_eq!(snrs, vec![4.0, 8.0, 12.0]);
    }

    #[test]
    fn monotonicity_check() {
        let mut curve = BerCurve::new("mono");
        for (snr, errs) in [(4.0, 50u64), (8.0, 20), (12.0, 5)] {
            let mut c = ErrorCounter::new();
            c.record(1000, errs, 500, errs / 2);
            curve.push(BerPoint::from_counter(snr, &c));
        }
        assert!(curve.is_monotone_nonincreasing(0.0));
        let mut bad = curve.clone();
        let mut c = ErrorCounter::new();
        c.record(1000, 500, 500, 250);
        bad.push(BerPoint::from_counter(16.0, &c));
        assert!(!bad.is_monotone_nonincreasing(0.1));
    }

    #[test]
    #[should_panic(expected = "more bit errors")]
    fn impossible_counts_rejected() {
        ErrorCounter::new().record(5, 6, 5, 0);
    }

    fn curve_from(label: &str, pts: &[(f64, u64, u64)]) -> BerCurve {
        let mut curve = BerCurve::new(label);
        for &(snr, errs, bits) in pts {
            let mut c = ErrorCounter::new();
            c.record(bits, errs, bits / 2, errs / 2);
            curve.push(BerPoint::from_counter(snr, &c));
        }
        curve
    }

    #[test]
    fn snr_at_ber_interpolates_log_linearly() {
        // BER 1e-1 at 4 dB, 1e-3 at 8 dB: 1e-2 is the log-midpoint.
        let curve = curve_from("c", &[(4.0, 100_000, 1_000_000), (8.0, 1_000, 1_000_000)]);
        let snr = curve.snr_at_ber(1e-2).unwrap();
        assert!((snr - 6.0).abs() < 1e-9, "snr = {snr}");
        // Exactly at a measured point.
        assert!((curve.snr_at_ber(1e-1).unwrap() - 4.0).abs() < 1e-9);
        assert!((curve.snr_at_ber(1e-3).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn snr_at_ber_out_of_span_is_none() {
        let curve = curve_from("c", &[(4.0, 100_000, 1_000_000), (8.0, 1_000, 1_000_000)]);
        assert_eq!(curve.snr_at_ber(1e-6), None, "below the measured span");
        assert_eq!(curve.snr_at_ber(0.5), None, "above the measured span");
        assert_eq!(BerCurve::new("one-point").snr_at_ber(1e-2), None);
    }

    #[test]
    fn snr_at_ber_zero_error_point_stays_finite() {
        // The 8 dB point measured no errors in 1e6 bits: treated as just
        // below 1e-6, so a 1e-4 target still crosses between the points.
        let curve = curve_from("c", &[(4.0, 10_000, 1_000_000), (8.0, 0, 1_000_000)]);
        let snr = curve.snr_at_ber(1e-4).unwrap();
        assert!(snr > 4.0 && snr < 8.0, "snr = {snr}");
    }

    #[test]
    fn degradation_is_signed_snr_gap() {
        let reference = curve_from("ref", &[(4.0, 100_000, 1_000_000), (8.0, 1_000, 1_000_000)]);
        // Same slope shifted +1 dB: candidate needs 1 dB more power.
        let candidate = curve_from(
            "cand",
            &[(5.0, 100_000, 1_000_000), (9.0, 1_000, 1_000_000)],
        );
        let d = degradation_db(&reference, &candidate, 1e-2).unwrap();
        assert!((d - 1.0).abs() < 1e-9, "degradation = {d}");
        let better = degradation_db(&candidate, &reference, 1e-2).unwrap();
        assert!((better + 1.0).abs() < 1e-9);
        assert_eq!(degradation_db(&reference, &candidate, 1e-9), None);
    }
}
