//! # sd-wireless
//!
//! MIMO system model (Sec. II-A of the paper): an `M × N` spatial-
//! multiplexing link `y = Hs + n` with
//!
//! * Gray-mapped unit-energy [constellations](constellation)
//!   (BPSK, 4-QAM, 16-QAM as in the paper, plus 64-QAM as an extension),
//! * i.i.d. Rayleigh fading [channel](mod@channel) `h_ij ~ CN(0, 1)`,
//! * complex [AWGN](mod@noise) with variance set from the
//!   [SNR convention](snr) `SNR = M / σ²`,
//! * a seeded [Monte-Carlo link simulator](montecarlo) with
//!   [BER statistics](ber) — the "randomly generated testing data set"
//!   of Sec. IV-A.
//!
//! Everything is deterministic for a fixed seed, so every figure
//! regeneration is reproducible bit-for-bit.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ber;
pub mod channel;
pub mod coding;
pub mod constellation;
pub mod frame;
pub mod grid;
pub mod models;
pub mod montecarlo;
pub mod noise;
pub mod ofdm;
pub mod snr;

pub use ber::{degradation_db, BerCurve, BerPoint, ErrorCounter};
pub use channel::Channel;
pub use coding::ConvolutionalCode;
pub use constellation::{Constellation, Modulation};
pub use frame::{FrameData, TxFrame};
pub use grid::{CoherenceBlock, GridConfig, ResourceGrid};
pub use models::{corrupt_csi, ChannelModel};
pub use montecarlo::{run_link, run_link_parallel, LinkConfig, LinkStats};
pub use noise::awgn;
pub use ofdm::{OfdmConfig, OfdmSymbol};
pub use snr::{noise_variance, snr_db_from_variance, SnrConvention, REAL_TIME_BUDGET};
