//! Channel-model extensions beyond the paper's i.i.d. assumption.
//!
//! Real deployments (the paper's motivation is base-station hardware)
//! see *spatially correlated* fading — antennas packed half a wavelength
//! apart are not independent — and never have a perfect channel
//! estimate. Both effects stress the sphere decoder: correlation
//! ill-conditions `R` and inflates the search tree; CSI error biases the
//! metric. This module provides the standard Kronecker
//! exponential-correlation model and an estimation-error channel so
//! those regimes can be benchmarked.

use crate::channel::Channel;
use crate::frame::FrameData;
use rand::Rng;
use sd_math::{cholesky, gemm, Complex, ComplexNormal, GemmAlgo, Matrix};
use serde::{Deserialize, Serialize};

/// Fading model for one channel realization.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChannelModel {
    /// Independent `CN(0,1)` entries — the paper's Sec. II-A model.
    Iid,
    /// Kronecker model `H = R_rx^{1/2} · H_iid · R_tx^{1/2}` with
    /// exponential correlation `R_ij = ρ^{|i−j|}` on each side.
    KroneckerExponential {
        /// Transmit-side correlation coefficient (0 = i.i.d.).
        rho_tx: f64,
        /// Receive-side correlation coefficient.
        rho_rx: f64,
    },
}

impl ChannelModel {
    /// Draw one channel realization under this model.
    pub fn realize<R: Rng + ?Sized>(&self, n_rx: usize, n_tx: usize, rng: &mut R) -> Channel {
        match *self {
            ChannelModel::Iid => Channel::rayleigh(n_rx, n_tx, rng),
            ChannelModel::KroneckerExponential { rho_tx, rho_rx } => {
                assert!((0.0..1.0).contains(&rho_tx), "rho_tx must be in [0,1)");
                assert!((0.0..1.0).contains(&rho_rx), "rho_rx must be in [0,1)");
                let h_iid: Matrix<f64> = ComplexNormal::standard().sample_matrix(n_rx, n_tx, rng);
                let l_rx = correlation_root(n_rx, rho_rx);
                let l_tx = correlation_root(n_tx, rho_tx);
                // H = L_rx · H_iid · L_tx^H colours both sides; unit
                // diagonals of R keep E[|h_ij|²] = 1.
                let coloured = gemm(
                    &gemm(&l_rx, &h_iid, GemmAlgo::Blocked),
                    &l_tx.hermitian(),
                    GemmAlgo::Blocked,
                );
                Channel::from_matrix(coloured)
            }
        }
    }
}

/// Lower Cholesky factor of the exponential correlation matrix
/// `R_ij = ρ^{|i−j|}`.
fn correlation_root(n: usize, rho: f64) -> Matrix<f64> {
    let r = Matrix::from_fn(n, n, |i, j| {
        Complex::new(rho.powi((i as i32 - j as i32).abs()), 0.0)
    });
    cholesky(&r).expect("exponential correlation matrices are positive definite for |rho|<1")
}

/// Corrupt a frame's channel *estimate*: the detector sees
/// `Ĥ = √(1−ε)·H + √ε·E` with `E` i.i.d. `CN(0,1)`, while `y` was
/// produced by the true `H`. `ε` is the estimation-error fraction
/// (0 = perfect CSI, as the paper assumes).
pub fn corrupt_csi<R: Rng + ?Sized>(frame: &mut FrameData, epsilon: f64, rng: &mut R) {
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
    if epsilon == 0.0 {
        return;
    }
    let (n, m) = frame.h.shape();
    let e: Matrix<f64> = ComplexNormal::standard().sample_matrix(n, m, rng);
    let keep = (1.0 - epsilon).sqrt();
    let err = epsilon.sqrt();
    frame.h = frame.h.scale(keep).add(&e.scale(err));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameData;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless_test_helpers::*;

    // Local helper namespace so the tests read cleanly.
    mod sd_wireless_test_helpers {
        pub use crate::constellation::{Constellation, Modulation};
    }

    #[test]
    fn iid_model_matches_channel_rayleigh_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let ch = ChannelModel::Iid.realize(64, 64, &mut rng);
        let avg = ch.matrix().frobenius_norm_sqr() / (64.0 * 64.0);
        assert!((avg - 1.0).abs() < 0.1);
    }

    #[test]
    fn kronecker_preserves_unit_power() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = ChannelModel::KroneckerExponential {
            rho_tx: 0.7,
            rho_rx: 0.5,
        };
        let mut acc = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let ch = model.realize(8, 8, &mut rng);
            acc += ch.matrix().frobenius_norm_sqr() / 64.0;
        }
        let avg = acc / trials as f64;
        assert!((avg - 1.0).abs() < 0.05, "E|h|² = {avg}");
    }

    #[test]
    fn receive_correlation_matches_rho() {
        // Adjacent receive antennas: E[h_{i,j} conj(h_{i+1,j})] ≈ ρ_rx.
        let mut rng = StdRng::seed_from_u64(3);
        let rho = 0.6;
        let model = ChannelModel::KroneckerExponential {
            rho_tx: 0.0,
            rho_rx: rho,
        };
        let mut acc = Complex::new(0.0, 0.0);
        let mut count = 0usize;
        for _ in 0..400 {
            let ch = model.realize(6, 6, &mut rng);
            let h = ch.matrix();
            for i in 0..5 {
                for j in 0..6 {
                    acc += h[(i, j)] * h[(i + 1, j)].conj();
                    count += 1;
                }
            }
        }
        let corr = acc.scale(1.0 / count as f64);
        assert!(
            (corr.re - rho).abs() < 0.05 && corr.im.abs() < 0.05,
            "measured correlation {corr:?}, expected {rho}"
        );
    }

    #[test]
    fn zero_rho_equals_iid_statistics() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = ChannelModel::KroneckerExponential {
            rho_tx: 0.0,
            rho_rx: 0.0,
        };
        let ch = model.realize(5, 5, &mut rng);
        // With rho=0 the coloring matrices are identity.
        let mut acc = Complex::new(0.0, 0.0);
        let h = ch.matrix();
        for i in 0..4 {
            acc += h[(i, 0)] * h[(i + 1, 0)].conj();
        }
        // Nothing to assert statistically on one draw beyond finiteness;
        // the structural check is that L = I exactly.
        let l = correlation_root(5, 0.0);
        assert!(l.approx_eq(&Matrix::identity(5), 1e-12));
        assert!(acc.is_finite());
    }

    #[test]
    fn correlation_root_reconstructs_r() {
        let l = correlation_root(6, 0.8);
        let r = gemm(&l, &l.hermitian(), GemmAlgo::Naive);
        for i in 0..6 {
            for j in 0..6 {
                let expected = 0.8f64.powi((i as i32 - j as i32).abs());
                assert!((r[(i, j)].re - expected).abs() < 1e-10);
                assert!(r[(i, j)].im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn csi_corruption_preserves_power_and_perturbs() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut frame = FrameData::generate(32, 32, &c, 0.1, &mut rng);
        let original = frame.h.clone();
        corrupt_csi(&mut frame, 0.1, &mut rng);
        assert!(!frame.h.approx_eq(&original, 1e-6), "estimate must change");
        let p0 = original.frobenius_norm_sqr() / 1024.0;
        let p1 = frame.h.frobenius_norm_sqr() / 1024.0;
        assert!((p1 - p0).abs() < 0.15, "power {p0:.3} -> {p1:.3}");
        // y is untouched: the mismatch is between estimate and truth.
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(6);
        let mut frame = FrameData::generate(4, 4, &c, 0.1, &mut rng);
        let original = frame.h.clone();
        corrupt_csi(&mut frame, 0.0, &mut rng);
        assert!(frame.h.approx_eq(&original, 0.0));
    }

    #[test]
    #[should_panic(expected = "rho_tx must be in")]
    fn out_of_range_rho_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        ChannelModel::KroneckerExponential {
            rho_tx: 1.0,
            rho_rx: 0.0,
        }
        .realize(4, 4, &mut rng);
    }
}
