//! LTE-like resource-grid traffic model.
//!
//! A resource grid is the production workload shape for MIMO detection:
//! `subcarriers × symbols` detection problems whose channels are coherent
//! over tiles of the grid — the channel is re-estimated once per
//! time/frequency coherence block, and every receive vector inside the
//! block shares that one `H`. The serve layer's frame path exploits
//! exactly this: one [`CoherenceBlock`] becomes one frame request, and one
//! QR factorization serves the whole block.
//!
//! Beyond the flat [`crate::ofdm`] symbol this adds the pieces of a
//! realistic wideband setup: coherence in *time* as well as frequency,
//! per-subcarrier SNR variation (a deterministic frequency-selective power
//! ripple), and spatially correlated channels through
//! [`ChannelModel::KroneckerExponential`].

use crate::channel::Channel;
use crate::constellation::Constellation;
use crate::frame::{FrameData, TxFrame};
use crate::models::ChannelModel;
use crate::snr::noise_variance;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of one resource grid.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GridConfig {
    /// Data subcarriers (frequency axis).
    pub subcarriers: usize,
    /// OFDM symbols (time axis).
    pub symbols: usize,
    /// Transmit antennas per resource element.
    pub n_tx: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// Subcarriers sharing one channel realization (frequency coherence).
    pub coherence_freq: usize,
    /// Symbols sharing one channel realization (time coherence).
    pub coherence_time: usize,
    /// Fading model each coherence block's channel is drawn from.
    pub model: ChannelModel,
    /// Mean operating SNR in dB.
    pub snr_db: f64,
    /// Peak deviation of the per-subcarrier SNR ripple in dB
    /// (0 = flat). Subcarrier `k` operates at
    /// `snr_db + ripple·sin(2πk / subcarriers)` — a deterministic
    /// frequency-selective power profile.
    pub snr_ripple_db: f64,
}

impl GridConfig {
    /// Grid of `subcarriers × symbols` resource elements over an
    /// `n_rx × n_tx` link, with flat SNR, no coherence (every element its
    /// own channel), and i.i.d. fading. Builder methods refine from here.
    pub fn new(subcarriers: usize, symbols: usize, n_tx: usize, n_rx: usize) -> Self {
        assert!(subcarriers > 0 && symbols > 0, "need a non-empty grid");
        assert!(n_rx >= n_tx && n_tx > 0, "need n_rx >= n_tx > 0");
        GridConfig {
            subcarriers,
            symbols,
            n_tx,
            n_rx,
            coherence_freq: 1,
            coherence_time: 1,
            model: ChannelModel::Iid,
            snr_db: 10.0,
            snr_ripple_db: 0.0,
        }
    }

    /// Set the coherence tile: `freq` subcarriers × `time` symbols share
    /// one channel realization.
    pub fn with_coherence(mut self, freq: usize, time: usize) -> Self {
        assert!(freq >= 1 && time >= 1, "coherence must be at least 1");
        self.coherence_freq = freq;
        self.coherence_time = time;
        self
    }

    /// Set the fading model.
    pub fn with_model(mut self, model: ChannelModel) -> Self {
        self.model = model;
        self
    }

    /// Set the mean SNR and the per-subcarrier ripple amplitude (dB).
    pub fn with_snr(mut self, snr_db: f64, ripple_db: f64) -> Self {
        assert!(ripple_db >= 0.0, "ripple amplitude must be non-negative");
        self.snr_db = snr_db;
        self.snr_ripple_db = ripple_db;
        self
    }

    /// Operating SNR of subcarrier `k` under the ripple profile.
    pub fn subcarrier_snr_db(&self, k: usize) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * k as f64 / self.subcarriers as f64;
        self.snr_db + self.snr_ripple_db * phase.sin()
    }

    /// Coherence blocks along the frequency axis (last may be short).
    pub fn freq_blocks(&self) -> usize {
        self.subcarriers.div_ceil(self.coherence_freq)
    }

    /// Coherence blocks along the time axis (last may be short).
    pub fn time_blocks(&self) -> usize {
        self.symbols.div_ceil(self.coherence_time)
    }
}

/// One coherence block: every frame shares a single channel realization
/// (bit-identical `H` clones), in `(symbol, subcarrier)` order.
#[derive(Clone, Debug)]
pub struct CoherenceBlock {
    /// The block's detection problems; all `h` fields are clones of one
    /// realization.
    pub frames: Vec<FrameData>,
    /// Mean operating SNR over the block's subcarriers — the ladder
    /// operating point a serving layer should use for the whole block.
    pub snr_db: f64,
}

impl CoherenceBlock {
    /// Subcarrier-symbols (resource elements) in this block.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the block is empty (never produced by generation).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// One generated resource grid: coherence blocks in traffic order
/// (time-block major, frequency-block minor).
#[derive(Clone, Debug)]
pub struct ResourceGrid {
    /// The grid's coherence blocks.
    pub blocks: Vec<CoherenceBlock>,
    /// The configuration the grid was generated from.
    pub config: GridConfig,
}

impl ResourceGrid {
    /// Generate one grid of traffic. Each coherence block draws a fresh
    /// channel from `config.model`; each resource element in the block
    /// transmits an independent random symbol vector through it at that
    /// subcarrier's ripple SNR. Deterministic for a fixed seed.
    pub fn generate<R: Rng + ?Sized>(
        config: &GridConfig,
        constellation: &Constellation,
        rng: &mut R,
    ) -> Self {
        let mut blocks = Vec::with_capacity(config.freq_blocks() * config.time_blocks());
        for tb in 0..config.time_blocks() {
            let t0 = tb * config.coherence_time;
            let t1 = (t0 + config.coherence_time).min(config.symbols);
            for fb in 0..config.freq_blocks() {
                let k0 = fb * config.coherence_freq;
                let k1 = (k0 + config.coherence_freq).min(config.subcarriers);
                let ch: Channel = config.model.realize(config.n_rx, config.n_tx, rng);
                let mut frames = Vec::with_capacity((t1 - t0) * (k1 - k0));
                let mut snr_acc = 0.0;
                for _t in t0..t1 {
                    for k in k0..k1 {
                        let snr = config.subcarrier_snr_db(k);
                        snr_acc += snr;
                        let sigma2 = noise_variance(snr, config.n_tx);
                        let tx = TxFrame::random(config.n_tx, constellation, rng);
                        let y = ch.transmit(&tx.symbols, sigma2, rng);
                        frames.push(FrameData {
                            h: ch.matrix().clone(),
                            y,
                            noise_variance: sigma2,
                            tx,
                        });
                    }
                }
                let snr_db = snr_acc / frames.len() as f64;
                blocks.push(CoherenceBlock { frames, snr_db });
            }
        }
        ResourceGrid {
            blocks,
            config: *config,
        }
    }

    /// Total resource elements (detection problems) in the grid.
    pub fn total_elements(&self) -> usize {
        self.blocks.iter().map(CoherenceBlock::len).sum()
    }

    /// Distinct channel realizations — one per coherence block.
    pub fn distinct_channels(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::Modulation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid(cfg: &GridConfig, seed: u64) -> ResourceGrid {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(seed);
        ResourceGrid::generate(cfg, &c, &mut rng)
    }

    #[test]
    fn grid_tiles_into_the_expected_blocks() {
        let cfg = GridConfig::new(12, 4, 4, 4).with_coherence(4, 2);
        let g = grid(&cfg, 1);
        assert_eq!(g.distinct_channels(), 3 * 2);
        assert_eq!(g.total_elements(), 12 * 4);
        for b in &g.blocks {
            assert_eq!(b.len(), 4 * 2);
        }
    }

    #[test]
    fn ragged_tiles_cover_the_grid() {
        // 10 subcarriers at coherence 4 -> blocks of 4, 4, 2.
        let cfg = GridConfig::new(10, 3, 2, 2).with_coherence(4, 2);
        let g = grid(&cfg, 2);
        assert_eq!(g.distinct_channels(), 3 * 2);
        assert_eq!(g.total_elements(), 10 * 3);
    }

    #[test]
    fn blocks_share_one_channel_bit_exactly() {
        let cfg = GridConfig::new(8, 4, 4, 4).with_coherence(4, 4);
        let g = grid(&cfg, 3);
        for b in &g.blocks {
            for f in &b.frames {
                assert!(f.h == b.frames[0].h, "block channel must be shared");
            }
        }
        // Different blocks draw different channels.
        assert!(g.blocks[0].frames[0].h != g.blocks[1].frames[0].h);
    }

    #[test]
    fn snr_ripple_varies_noise_across_subcarriers() {
        let cfg = GridConfig::new(16, 1, 2, 2).with_snr(12.0, 3.0);
        let g = grid(&cfg, 4);
        let sigmas: Vec<f64> = g
            .blocks
            .iter()
            .flat_map(|b| b.frames.iter().map(|f| f.noise_variance))
            .collect();
        assert_eq!(sigmas.len(), 16);
        let min = sigmas.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sigmas.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.5, "ripple must spread the noise variances");
        // Flat profile: all subcarriers identical.
        let flat = grid(&GridConfig::new(16, 1, 2, 2).with_snr(12.0, 0.0), 4);
        let s0 = flat.blocks[0].frames[0].noise_variance;
        for b in &flat.blocks {
            assert!(b.frames.iter().all(|f| f.noise_variance == s0));
        }
    }

    #[test]
    fn block_snr_is_the_mean_of_its_subcarriers() {
        let cfg = GridConfig::new(8, 2, 2, 2)
            .with_coherence(4, 2)
            .with_snr(10.0, 2.0);
        let g = grid(&cfg, 5);
        for (i, b) in g.blocks.iter().enumerate() {
            let k0 = (i % cfg.freq_blocks()) * cfg.coherence_freq;
            let mean: f64 = (k0..k0 + 4).map(|k| cfg.subcarrier_snr_db(k)).sum::<f64>() / 4.0;
            assert!((b.snr_db - mean).abs() < 1e-12, "block {i}");
        }
    }

    #[test]
    fn kronecker_grid_generates() {
        let cfg = GridConfig::new(8, 2, 4, 4).with_coherence(4, 2).with_model(
            ChannelModel::KroneckerExponential {
                rho_tx: 0.5,
                rho_rx: 0.3,
            },
        );
        let g = grid(&cfg, 6);
        assert_eq!(g.total_elements(), 16);
        for b in &g.blocks {
            assert!(b.frames[0].h.is_finite());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GridConfig::new(8, 2, 2, 2)
            .with_coherence(2, 2)
            .with_snr(8.0, 1.0);
        let a = grid(&cfg, 7);
        let b = grid(&cfg, 7);
        assert_eq!(a.total_elements(), b.total_elements());
        for (x, y) in a.blocks.iter().zip(b.blocks.iter()) {
            for (fx, fy) in x.frames.iter().zip(y.frames.iter()) {
                assert!(fx.h == fy.h && fx.y == fy.y);
            }
        }
    }

    #[test]
    #[should_panic(expected = "need n_rx >= n_tx")]
    fn undersized_receive_array_rejected() {
        GridConfig::new(4, 1, 4, 2);
    }
}
