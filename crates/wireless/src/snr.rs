//! SNR conventions and the real-time constraint.
//!
//! With unit-energy constellations and `h_ij ~ CN(0,1)`, each receive
//! antenna collects average signal power `E[|Σ_j h_ij s_j|²] = M` (the
//! number of transmitters). We therefore define
//!
//! ```text
//! SNR = M / σ²        snr_db = 10·log10(M / σ²)
//! ```
//!
//! so `σ² = M / 10^(snr_db/10)`. This matches the massive-MIMO convention
//! used by the paper's reference \[1\] (Arfaoui et al.) whose GEMM-based SD
//! the paper builds on.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The paper's real-time response budget (Sec. I): decoding must finish
/// within 10 ms.
pub const REAL_TIME_BUDGET: Duration = Duration::from_millis(10);

/// How a quoted "SNR" maps to a noise variance.
///
/// The paper does not state its definition, and its two headline claims
/// pull in different directions (see EXPERIMENTS.md): the execution-time
/// magnitudes match the **per-receive-antenna** convention, while the
/// "BER < 10⁻² at 4 dB" claim of Fig. 7 matches the **per-symbol**
/// convention used by its reference \[1\]. Both are provided; the default
/// everywhere is per-receive-antenna.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnrConvention {
    /// `SNR = M/σ²` — signal power collected per receive antenna over the
    /// noise power (the standard massive-MIMO uplink definition).
    #[default]
    PerReceiveAntenna,
    /// `SNR = Es/σ² = 1/σ²` — transmit-symbol energy over noise power.
    PerSymbol,
}

impl SnrConvention {
    /// Noise variance implied by `snr_db` for `n_tx` unit-energy streams.
    pub fn noise_variance(self, snr_db: f64, n_tx: usize) -> f64 {
        assert!(n_tx > 0, "n_tx must be positive");
        let snr = 10f64.powf(snr_db / 10.0);
        match self {
            SnrConvention::PerReceiveAntenna => n_tx as f64 / snr,
            SnrConvention::PerSymbol => 1.0 / snr,
        }
    }
}

/// Noise variance `σ²` for a given SNR in dB and `n_tx` transmitters
/// (unit-energy symbols, per-receive-antenna convention).
pub fn noise_variance(snr_db: f64, n_tx: usize) -> f64 {
    SnrConvention::PerReceiveAntenna.noise_variance(snr_db, n_tx)
}

/// Inverse of [`noise_variance`].
pub fn snr_db_from_variance(sigma2: f64, n_tx: usize) -> f64 {
    assert!(sigma2 > 0.0, "variance must be positive");
    10.0 * (n_tx as f64 / sigma2).log10()
}

/// The SNR grid used by every figure in the paper's evaluation.
pub const PAPER_SNR_GRID_DB: [f64; 5] = [4.0, 8.0, 12.0, 16.0, 20.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_db_means_sigma2_equals_m() {
        assert!((noise_variance(0.0, 10) - 10.0).abs() < 1e-12);
        assert!((noise_variance(0.0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ten_db_is_factor_ten() {
        assert!((noise_variance(10.0, 10) - 1.0).abs() < 1e-12);
        assert!((noise_variance(20.0, 10) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        for &snr in &PAPER_SNR_GRID_DB {
            for &m in &[1usize, 4, 10, 20] {
                let s2 = noise_variance(snr, m);
                assert!((snr_db_from_variance(s2, m) - snr).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn higher_snr_means_less_noise() {
        assert!(noise_variance(20.0, 10) < noise_variance(4.0, 10));
    }

    #[test]
    fn real_time_budget_is_10ms() {
        assert_eq!(REAL_TIME_BUDGET.as_millis(), 10);
    }

    #[test]
    #[should_panic(expected = "n_tx must be positive")]
    fn zero_tx_rejected() {
        noise_variance(10.0, 0);
    }

    #[test]
    fn conventions_differ_by_factor_m() {
        let a = SnrConvention::PerReceiveAntenna.noise_variance(4.0, 10);
        let b = SnrConvention::PerSymbol.noise_variance(4.0, 10);
        assert!((a / b - 10.0).abs() < 1e-12);
        // Single antenna: the two definitions coincide.
        assert_eq!(
            SnrConvention::PerReceiveAntenna.noise_variance(7.0, 1),
            SnrConvention::PerSymbol.noise_variance(7.0, 1)
        );
    }

    #[test]
    fn default_convention_is_per_receive_antenna() {
        assert_eq!(SnrConvention::default(), SnrConvention::PerReceiveAntenna);
        assert_eq!(
            noise_variance(4.0, 10),
            SnrConvention::PerReceiveAntenna.noise_variance(4.0, 10)
        );
    }
}
