//! Globally best-first sphere decoding.
//!
//! Where the paper's sorted DFS orders *siblings* and then commits to a
//! LIFO descent, this variant maintains a global priority queue over all
//! open nodes and always expands the lowest-PD node (the Geosphere-style
//! "best quality leaf first" taken to its limit). It reaches the first
//! leaf with the minimum possible number of expansions, at the cost of a
//! heap and larger memory footprint — the trade the paper's hardware MST
//! sidesteps with per-level sorting.
//!
//! Open nodes live in the [`crate::arena`] slab: a heap entry is twelve
//! bytes of `(pd, id, depth)` instead of an owned path, so pushing a child
//! is a slab append rather than a `Vec` clone, and the winning path is
//! materialized exactly once at the end.

use crate::arena::{SearchWorkspace, NIL};
use crate::detector::Detection;
use crate::engine::{impl_detector_via_prepared, PreparedDetector};
use crate::pd::{eval_children_from_arena, EvalStrategy};
use crate::preprocess::Prepared;
use crate::radius::InitialRadius;
use crate::trace::{span_clock, span_ns, Phase};
use sd_math::Float;
use sd_wireless::Constellation;
use std::cmp::Ordering;

/// Priority-queue (min-PD-first) sphere decoder.
#[derive(Clone, Debug)]
pub struct BestFirstSd<F: Float = f64> {
    constellation: Constellation,
    /// Child-evaluation strategy.
    pub eval: EvalStrategy,
    /// Initial sphere radius policy.
    pub initial_radius: InitialRadius,
    _precision: std::marker::PhantomData<F>,
}

/// Heap entry; ordered so that `BinaryHeap` pops the *smallest* PD.
pub(crate) struct OpenNode {
    /// Accumulated partial distance.
    pub(crate) pd: f64,
    /// Arena id of the node ([`NIL`] for the root / empty path).
    pub(crate) id: u32,
    /// Path length (cached: the arena treats `NIL` as depth 0).
    pub(crate) depth: u32,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.pd == other.pd
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller PD = "greater" for the max-heap. Tie-break on
        // depth (deeper first) to reach leaves sooner. `total_cmp` keeps
        // the order total even if a reduced-precision PD overflows to NaN
        // (NaN sorts past +∞, i.e. expanded last — effectively pruned).
        other
            .pd
            .total_cmp(&self.pd)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

impl<F: Float> BestFirstSd<F> {
    /// Best-first decoder with GEMM evaluation and infinite initial
    /// radius.
    pub fn new(constellation: Constellation) -> Self {
        BestFirstSd {
            constellation,
            eval: EvalStrategy::Gemm,
            initial_radius: InitialRadius::Infinite,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: evaluation strategy.
    pub fn with_eval(mut self, eval: EvalStrategy) -> Self {
        self.eval = eval;
        self
    }

    /// Builder: initial radius policy.
    pub fn with_initial_radius(mut self, r: InitialRadius) -> Self {
        self.initial_radius = r;
        self
    }
}

impl<F: Float> PreparedDetector<F> for BestFirstSd<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn initial_radius_sqr(&self, n_rx: usize, noise_variance: f64) -> f64 {
        self.initial_radius.resolve(n_rx, noise_variance)
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    /// Best-first search into a caller-owned [`Detection`]: after the
    /// workspace buffers reach steady-state capacity, the search loop
    /// performs no heap allocation.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        ws.prepare(p, m);
        out.stats.reset(m);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }
        let stats = &mut out.stats;
        let mut r2 = radius_sqr;
        // Winning leaf as (pd, parent id, leaf symbol): the arena is only
        // cleared on restart, which can only happen while `best` is None,
        // so the parent id stays valid until materialization.
        let mut best: Option<(f64, u32, usize)> = None;

        loop {
            ws.arena.clear();
            ws.heap.clear();
            ws.heap.push(OpenNode {
                pd: 0.0,
                id: NIL,
                depth: 0,
            });
            while let Some(node) = ws.heap.pop() {
                if let Some((best_pd, _, _)) = &best {
                    if node.pd >= *best_pd {
                        // Min-heap ⇒ nothing better remains.
                        break;
                    }
                }
                let depth = node.depth as usize;
                stats.nodes_expanded += 1;
                let t0 = span_clock(trace.is_some());
                stats.flops +=
                    eval_children_from_arena(prep, &ws.arena, node.id, self.eval, &mut ws.scratch);
                if let Some(t) = trace.as_deref_mut() {
                    t.on_phase(Phase::Expand, span_ns(t0));
                    t.on_expand(depth, 1, p as u64);
                }
                stats.nodes_generated += p as u64;
                stats.per_level_generated[depth] += p as u64;

                for c in 0..p {
                    let child_pd = node.pd + ws.scratch.increments[c].to_f64();
                    let bound = best.as_ref().map_or(r2, |(b, _, _)| b.min(r2));
                    if child_pd < bound {
                        if depth + 1 == m {
                            stats.leaves_reached += 1;
                            stats.radius_updates += 1;
                            best = Some((child_pd, node.id, c));
                            if let Some(t) = trace.as_deref_mut() {
                                t.on_accept(depth, 1);
                                t.on_radius_update(depth, child_pd);
                            }
                        } else {
                            let id = ws.arena.alloc(node.id, c);
                            ws.heap.push(OpenNode {
                                pd: child_pd,
                                id,
                                depth: node.depth + 1,
                            });
                            if let Some(t) = trace.as_deref_mut() {
                                t.on_accept(depth, 1);
                            }
                        }
                    } else {
                        stats.nodes_pruned += 1;
                        if let Some(t) = trace.as_deref_mut() {
                            t.on_prune(depth, 1);
                        }
                    }
                }
            }
            if best.is_some() {
                break;
            }
            r2 *= InitialRadius::RESTART_GROWTH;
            stats.restarts += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.on_restart();
            }
            assert!(stats.restarts < 64, "radius failed to capture any leaf");
        }

        let (best_pd, parent, leaf_sym) = best.expect("loop exits only with a solution");
        let t0 = span_clock(trace.is_some());
        ws.arena.path_into(parent, &mut ws.path_buf);
        ws.path_buf.push(leaf_sym);
        if let Some(t) = trace.as_deref_mut() {
            t.on_phase(Phase::Leaf, span_ns(t0));
        }
        ws.trace = trace;
        stats.final_radius_sqr = best_pd;
        stats.flops += prep.prep_flops;
        prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
    }
}

impl_detector_via_prepared!(BestFirstSd<F>, "SD best-first");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::dfs::SphereDecoder;
    use crate::ml::MlDetector;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};
    use std::collections::BinaryHeap;

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn matches_ml() {
        let (c, frames) = frames(5, Modulation::Qam4, 8.0, 25, 60);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(bf.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn matches_sorted_dfs_metric() {
        let (c, frames) = frames(7, Modulation::Qam4, 8.0, 15, 61);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c.clone());
        let dfs: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            let a = bf.detect(f);
            let b = dfs.detect(f);
            assert_eq!(a.indices, b.indices);
            assert!((a.stats.final_radius_sqr - b.stats.final_radius_sqr).abs() < 1e-9);
        }
    }

    #[test]
    fn expands_no_more_nodes_than_sorted_dfs() {
        // Best-first is expansion-optimal among admissible strategies;
        // aggregate over frames it must not exceed sorted DFS.
        let (c, frames) = frames(7, Modulation::Qam4, 6.0, 20, 62);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c.clone());
        let dfs: SphereDecoder<f64> = SphereDecoder::new(c);
        let nb: u64 = frames
            .iter()
            .map(|f| bf.detect(f).stats.nodes_expanded)
            .sum();
        let nd: u64 = frames
            .iter()
            .map(|f| dfs.detect(f).stats.nodes_expanded)
            .sum();
        assert!(nb <= nd, "best-first expanded {nb} > DFS {nd}");
    }

    #[test]
    fn finite_radius_restarts_and_stays_exact() {
        let (c, frames) = frames(4, Modulation::Qam4, 4.0, 20, 63);
        let tight: BestFirstSd<f64> =
            BestFirstSd::new(c.clone()).with_initial_radius(InitialRadius::ScaledNoise(0.01));
        let ml = MlDetector::new(c);
        let mut saw_restart = false;
        for f in &frames {
            let d = tight.detect(f);
            assert_eq!(d.indices, ml.detect(f).indices);
            saw_restart |= d.stats.restarts > 0;
        }
        assert!(saw_restart);
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let (c, frames) = frames(6, Modulation::Qam16, 12.0, 10, 64);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c.clone());
        let mut ws = SearchWorkspace::new();
        for f in &frames {
            let prep: Prepared<f64> = preprocess(f, &c);
            let fresh = bf.detect_prepared(&prep, f64::INFINITY);
            let reused = bf.detect_prepared_in(&prep, f64::INFINITY, &mut ws);
            assert_eq!(fresh.indices, reused.indices);
            assert_eq!(fresh.stats, reused.stats);
        }
    }

    #[test]
    fn heap_ordering_pops_smallest_pd() {
        let mut heap = BinaryHeap::new();
        for pd in [3.0, 1.0, 2.0] {
            heap.push(OpenNode {
                pd,
                id: NIL,
                depth: 0,
            });
        }
        assert_eq!(heap.pop().unwrap().pd, 1.0);
        assert_eq!(heap.pop().unwrap().pd, 2.0);
        assert_eq!(heap.pop().unwrap().pd, 3.0);
    }

    #[test]
    fn deeper_node_wins_ties() {
        let mut heap = BinaryHeap::new();
        heap.push(OpenNode {
            pd: 1.0,
            id: 0,
            depth: 1,
        });
        heap.push(OpenNode {
            pd: 1.0,
            id: 1,
            depth: 3,
        });
        assert_eq!(heap.pop().unwrap().depth, 3);
    }

    #[test]
    fn nan_pd_orders_last_instead_of_panicking() {
        // Regression: the seed ordering used `partial_cmp().expect(..)`
        // and aborted the decode on the first NaN partial distance.
        let mut heap = BinaryHeap::new();
        for pd in [2.0, f64::NAN, 1.0] {
            heap.push(OpenNode {
                pd,
                id: NIL,
                depth: 0,
            });
        }
        assert_eq!(heap.pop().unwrap().pd, 1.0);
        assert_eq!(heap.pop().unwrap().pd, 2.0);
        assert!(heap.pop().unwrap().pd.is_nan(), "NaN expands last");
    }
}
