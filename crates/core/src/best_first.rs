//! Globally best-first sphere decoding.
//!
//! Where the paper's sorted DFS orders *siblings* and then commits to a
//! LIFO descent, this variant maintains a global priority queue over all
//! open nodes and always expands the lowest-PD node (the Geosphere-style
//! "best quality leaf first" taken to its limit). It reaches the first
//! leaf with the minimum possible number of expansions, at the cost of a
//! heap and larger memory footprint — the trade the paper's hardware MST
//! sidesteps with per-level sorting.

use crate::detector::{Detection, DetectionStats, Detector};
use crate::pd::{eval_children, EvalStrategy, PdScratch};
use crate::preprocess::{preprocess, Prepared};
use crate::radius::InitialRadius;
use sd_math::Float;
use sd_wireless::{Constellation, FrameData};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority-queue (min-PD-first) sphere decoder.
#[derive(Clone, Debug)]
pub struct BestFirstSd<F: Float = f64> {
    constellation: Constellation,
    /// Child-evaluation strategy.
    pub eval: EvalStrategy,
    /// Initial sphere radius policy.
    pub initial_radius: InitialRadius,
    _precision: std::marker::PhantomData<F>,
}

/// Heap entry; ordered so that `BinaryHeap` pops the *smallest* PD.
struct OpenNode {
    pd: f64,
    /// Depth-order path (`path[d]` = antenna `M−1−d`).
    path: Vec<usize>,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.pd == other.pd
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller PD = "greater" for the max-heap. Tie-break on
        // depth (deeper first) to reach leaves sooner.
        other
            .pd
            .partial_cmp(&self.pd)
            .expect("non-NaN PD")
            .then_with(|| self.path.len().cmp(&other.path.len()))
    }
}

impl<F: Float> BestFirstSd<F> {
    /// Best-first decoder with GEMM evaluation and infinite initial
    /// radius.
    pub fn new(constellation: Constellation) -> Self {
        BestFirstSd {
            constellation,
            eval: EvalStrategy::Gemm,
            initial_radius: InitialRadius::Infinite,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: evaluation strategy.
    pub fn with_eval(mut self, eval: EvalStrategy) -> Self {
        self.eval = eval;
        self
    }

    /// Builder: initial radius policy.
    pub fn with_initial_radius(mut self, r: InitialRadius) -> Self {
        self.initial_radius = r;
        self
    }

    /// Decode an already-preprocessed problem.
    pub fn detect_prepared(&self, prep: &Prepared<F>, radius_sqr: f64) -> Detection {
        let m = prep.n_tx;
        let p = prep.order;
        let mut scratch = PdScratch::new(p, m);
        let mut stats = DetectionStats {
            per_level_generated: vec![0; m],
            ..Default::default()
        };
        let mut r2 = radius_sqr;
        let mut best: Option<(f64, Vec<usize>)> = None;

        loop {
            let mut heap = BinaryHeap::new();
            heap.push(OpenNode {
                pd: 0.0,
                path: Vec::new(),
            });
            while let Some(node) = heap.pop() {
                if let Some((best_pd, _)) = &best {
                    if node.pd >= *best_pd {
                        // Min-heap ⇒ nothing better remains.
                        break;
                    }
                }
                let depth = node.path.len();
                stats.nodes_expanded += 1;
                stats.flops += eval_children(prep, &node.path, self.eval, &mut scratch);
                stats.nodes_generated += p as u64;
                stats.per_level_generated[depth] += p as u64;

                for c in 0..p {
                    let child_pd = node.pd + scratch.increments[c].to_f64();
                    let bound = best.as_ref().map_or(r2, |(b, _)| b.min(r2));
                    if child_pd < bound {
                        if depth + 1 == m {
                            stats.leaves_reached += 1;
                            stats.radius_updates += 1;
                            let mut leaf = node.path.clone();
                            leaf.push(c);
                            best = Some((child_pd, leaf));
                        } else {
                            let mut path = node.path.clone();
                            path.push(c);
                            heap.push(OpenNode { pd: child_pd, path });
                        }
                    } else {
                        stats.nodes_pruned += 1;
                    }
                }
            }
            if best.is_some() {
                break;
            }
            r2 *= InitialRadius::RESTART_GROWTH;
            stats.restarts += 1;
            assert!(stats.restarts < 64, "radius failed to capture any leaf");
        }

        let (best_pd, best_path) = best.expect("loop exits only with a solution");
        stats.final_radius_sqr = best_pd;
        stats.flops += prep.prep_flops;
        let indices = prep.indices_from_path(&best_path);
        Detection { indices, stats }
    }
}

impl<F: Float> Detector for BestFirstSd<F> {
    fn name(&self) -> &'static str {
        "SD best-first"
    }

    fn detect(&self, frame: &FrameData) -> Detection {
        let prep: Prepared<F> = preprocess(frame, &self.constellation);
        let r2 = self
            .initial_radius
            .resolve(frame.h.rows(), frame.noise_variance);
        self.detect_prepared(&prep, r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::SphereDecoder;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn matches_ml() {
        let (c, frames) = frames(5, Modulation::Qam4, 8.0, 25, 60);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(bf.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn matches_sorted_dfs_metric() {
        let (c, frames) = frames(7, Modulation::Qam4, 8.0, 15, 61);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c.clone());
        let dfs: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            let a = bf.detect(f);
            let b = dfs.detect(f);
            assert_eq!(a.indices, b.indices);
            assert!((a.stats.final_radius_sqr - b.stats.final_radius_sqr).abs() < 1e-9);
        }
    }

    #[test]
    fn expands_no_more_nodes_than_sorted_dfs() {
        // Best-first is expansion-optimal among admissible strategies;
        // aggregate over frames it must not exceed sorted DFS.
        let (c, frames) = frames(7, Modulation::Qam4, 6.0, 20, 62);
        let bf: BestFirstSd<f64> = BestFirstSd::new(c.clone());
        let dfs: SphereDecoder<f64> = SphereDecoder::new(c);
        let nb: u64 = frames.iter().map(|f| bf.detect(f).stats.nodes_expanded).sum();
        let nd: u64 = frames.iter().map(|f| dfs.detect(f).stats.nodes_expanded).sum();
        assert!(nb <= nd, "best-first expanded {nb} > DFS {nd}");
    }

    #[test]
    fn finite_radius_restarts_and_stays_exact() {
        let (c, frames) = frames(4, Modulation::Qam4, 4.0, 20, 63);
        let tight: BestFirstSd<f64> =
            BestFirstSd::new(c.clone()).with_initial_radius(InitialRadius::ScaledNoise(0.01));
        let ml = MlDetector::new(c);
        let mut saw_restart = false;
        for f in &frames {
            let d = tight.detect(f);
            assert_eq!(d.indices, ml.detect(f).indices);
            saw_restart |= d.stats.restarts > 0;
        }
        assert!(saw_restart);
    }

    #[test]
    fn heap_ordering_pops_smallest_pd() {
        let mut heap = BinaryHeap::new();
        for pd in [3.0, 1.0, 2.0] {
            heap.push(OpenNode { pd, path: vec![] });
        }
        assert_eq!(heap.pop().unwrap().pd, 1.0);
        assert_eq!(heap.pop().unwrap().pd, 2.0);
        assert_eq!(heap.pop().unwrap().pd, 3.0);
    }

    #[test]
    fn deeper_node_wins_ties() {
        let mut heap = BinaryHeap::new();
        heap.push(OpenNode {
            pd: 1.0,
            path: vec![0],
        });
        heap.push(OpenNode {
            pd: 1.0,
            path: vec![0, 1, 2],
        });
        assert_eq!(heap.pop().unwrap().path.len(), 3);
    }
}
