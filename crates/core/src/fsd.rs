//! Fixed-complexity sphere decoding (FSD) — related-work baseline.
//!
//! FSD (Barbero & Thompson) trades ML optimality for a fixed,
//! fully-parallel workload: the first `n_fe` tree levels are *fully
//! expanded* (every constellation point), the remaining levels follow a
//! single successive-interference-cancellation (SIC) descent per branch.
//! The number of leaves is exactly `P^{n_fe}` regardless of SNR — which is
//! why the paper's related work calls it "massively parallelizable but
//! resource hungry".

use crate::arena::SearchWorkspace;
use crate::detector::{Detection, SearchQuality};
use crate::engine::{impl_detector_via_prepared, DecodeBudget, PreparedDetector};
use crate::pd::{eval_children, EvalStrategy};
use crate::preprocess::Prepared;
use crate::trace::{span_clock, span_ns, Phase};
use sd_math::Float;
use sd_wireless::Constellation;

/// Fixed-complexity sphere decoder.
#[derive(Clone, Debug)]
pub struct FixedComplexitySd<F: Float = f64> {
    constellation: Constellation,
    /// Number of fully-expanded levels (`⌈√M⌉` is the classic choice; we
    /// default to 1 which already restores most of the ML gap at the
    /// paper's operating points).
    pub full_expansion_levels: usize,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> FixedComplexitySd<F> {
    /// FSD with one fully-expanded level.
    pub fn new(constellation: Constellation) -> Self {
        FixedComplexitySd {
            constellation,
            full_expansion_levels: 1,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: number of fully-expanded levels.
    pub fn with_full_expansion(mut self, levels: usize) -> Self {
        assert!(levels >= 1, "need at least one full-expansion level");
        self.full_expansion_levels = levels;
        self
    }

    /// Total number of leaves this decoder will evaluate for `m` antennas
    /// (independent of SNR — the "fixed complexity" property).
    pub fn leaf_count(&self, _m: usize) -> usize {
        self.constellation
            .order()
            .pow(self.full_expansion_levels as u32)
    }
}

impl<F: Float> PreparedDetector<F> for FixedComplexitySd<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Fixed-complexity sweep into a caller-owned [`Detection`]. The
    /// workload is fixed by construction, so `radius_sqr` is ignored; a
    /// warm workspace + output pair decodes without heap allocation.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        self.detect_prepared_budgeted_into(prep, radius_sqr, &DecodeBudget::UNLIMITED, ws, out);
    }

    /// The FSD sweep under an anytime budget, checked once per prefix at
    /// the odometer top: a trip keeps the incumbent leaf and flags
    /// [`SearchQuality::BudgetTruncated`]. The first prefix always runs
    /// to a leaf (the incumbent starts at `∞`), so even a zero budget
    /// yields a complete vector; untripped decodes are bit-identical to
    /// [`Self::detect_prepared_into`].
    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<F>,
        _radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        let n_fe = self.full_expansion_levels.min(m);
        ws.prepare(p, m);
        out.stats.reset(m);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }
        let stats = &mut out.stats;

        // Enumerate the fully-expanded prefix; each prefix then follows a
        // greedy SIC descent (pick the best child at every level). The
        // prefix odometer lives in `path_buf`, the descent in `path`, the
        // incumbent in `best_path`.
        let mut best_metric = F::infinity();
        ws.path_buf.resize(n_fe, 0);
        loop {
            if stats.leaves_reached > 0 && budget.tripped_after(stats.nodes_generated) {
                // Keep the incumbent leaf; the first prefix always
                // completes one, so the answer is a full vector.
                stats.quality = SearchQuality::BudgetTruncated {
                    nodes_spent: stats.nodes_generated,
                };
                break;
            }
            // PD of the current prefix.
            let mut pd = F::ZERO;
            let mut ok = true;
            ws.path.clear();
            for d in 0..n_fe {
                let digit = ws.path_buf[d];
                stats.nodes_expanded += 1;
                let t0 = span_clock(trace.is_some());
                stats.flops += eval_children(prep, &ws.path, EvalStrategy::Gemm, &mut ws.scratch);
                if let Some(t) = trace.as_deref_mut() {
                    t.on_phase(Phase::Expand, span_ns(t0));
                    t.on_expand(d, 1, p as u64);
                }
                stats.nodes_generated += p as u64;
                stats.per_level_generated[d] += p as u64;
                pd += ws.scratch.increments[digit];
                ws.path.push(digit);
                if !(pd < best_metric) {
                    // Dominated prefix: every child of this expansion is
                    // abandoned.
                    if let Some(t) = trace.as_deref_mut() {
                        t.on_prune(d, p as u64);
                    }
                    ok = false;
                    break;
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.on_accept(d, 1);
                    t.on_prune(d, (p - 1) as u64);
                }
            }
            if ok {
                // SIC tail: greedy best child per level.
                for d in n_fe..m {
                    stats.nodes_expanded += 1;
                    let t0 = span_clock(trace.is_some());
                    stats.flops +=
                        eval_children(prep, &ws.path, EvalStrategy::Gemm, &mut ws.scratch);
                    if let Some(t) = trace.as_deref_mut() {
                        t.on_phase(Phase::Expand, span_ns(t0));
                        t.on_expand(d, 1, p as u64);
                        t.on_accept(d, 1);
                        t.on_prune(d, (p - 1) as u64);
                    }
                    stats.nodes_generated += p as u64;
                    stats.per_level_generated[d] += p as u64;
                    let (mut best_c, mut best_inc) = (0usize, ws.scratch.increments[0]);
                    for (c, &inc) in ws.scratch.increments.iter().enumerate().skip(1) {
                        if inc < best_inc {
                            best_c = c;
                            best_inc = inc;
                        }
                    }
                    pd += best_inc;
                    ws.path.push(best_c);
                }
                stats.leaves_reached += 1;
                if pd < best_metric {
                    best_metric = pd;
                    let t0 = span_clock(trace.is_some());
                    std::mem::swap(&mut ws.path, &mut ws.best_path);
                    stats.radius_updates += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.on_phase(Phase::Leaf, span_ns(t0));
                        t.on_radius_update(m - 1, pd.to_f64());
                    }
                }
            }
            // Odometer over the prefix.
            let mut carry = true;
            for digit in ws.path_buf.iter_mut().rev() {
                if carry {
                    *digit += 1;
                    if *digit == p {
                        *digit = 0;
                    } else {
                        carry = false;
                    }
                }
            }
            if carry {
                break;
            }
        }

        stats.final_radius_sqr = best_metric.to_f64();
        stats.flops += prep.prep_flops;
        ws.trace = trace;
        prep.indices_from_path_into(&ws.best_path, &mut out.indices);
    }
}

impl_detector_via_prepared!(FixedComplexitySd<F>, "FSD");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::ml::MlDetector;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn frames(n: usize, snr_db: f64, count: usize, seed: u64) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn full_expansion_of_all_levels_is_ml() {
        let (c, frames) = frames(4, 6.0, 20, 80);
        let fsd: FixedComplexitySd<f64> = FixedComplexitySd::new(c.clone()).with_full_expansion(4);
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(fsd.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn leaf_count_is_snr_independent() {
        let fsd: FixedComplexitySd<f64> =
            FixedComplexitySd::new(Constellation::new(Modulation::Qam4)).with_full_expansion(2);
        assert_eq!(fsd.leaf_count(10), 16);
        let (_, lo) = frames(6, 4.0, 5, 81);
        let (_, hi) = frames(6, 20.0, 5, 81);
        for (a, b) in lo.iter().zip(hi.iter()) {
            let la = fsd.detect(a).stats.leaves_reached;
            let lb = fsd.detect(b).stats.leaves_reached;
            // Leaves visited may be slightly below P^n_fe when a prefix is
            // dominated, but generated work per level is fixed.
            assert!(la <= 16 && lb <= 16);
            assert_eq!(
                fsd.detect(a).stats.per_level_generated[0],
                fsd.detect(b).stats.per_level_generated[0]
            );
        }
    }

    #[test]
    fn fsd_near_ml_but_not_always_equal() {
        // FSD is suboptimal: at low SNR on enough frames it must disagree
        // with ML at least once, while keeping errors comparable.
        let (c, frames) = frames(6, 4.0, 120, 82);
        let fsd: FixedComplexitySd<f64> = FixedComplexitySd::new(c.clone());
        let ml = MlDetector::new(c.clone());
        let mut disagreements = 0usize;
        let mut e_fsd = 0u64;
        let mut e_ml = 0u64;
        for f in &frames {
            let a = fsd.detect(f);
            let b = ml.detect(f);
            if a.indices != b.indices {
                disagreements += 1;
            }
            e_fsd += f.bit_errors(&a.indices, &c);
            e_ml += f.bit_errors(&b.indices, &c);
        }
        assert!(disagreements > 0, "FSD(1) should be suboptimal somewhere");
        assert!(e_ml <= e_fsd, "ML must not lose");
        assert!(
            (e_fsd as f64) < (e_ml as f64).max(1.0) * 8.0 + 40.0,
            "FSD should stay in the same error ballpark (fsd={e_fsd}, ml={e_ml})"
        );
    }

    #[test]
    fn metric_matches_reported_radius() {
        let (c, frames) = frames(5, 8.0, 5, 83);
        let fsd: FixedComplexitySd<f64> = FixedComplexitySd::new(c.clone());
        for f in &frames {
            let d = fsd.detect(f);
            let prep: Prepared<f64> = preprocess(f, &c);
            let m = prep.full_metric(&d.indices) - prep.tail_energy;
            assert!((m - d.stats.final_radius_sqr).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_expansion_rejected() {
        let _ = FixedComplexitySd::<f64>::new(Constellation::new(Modulation::Qam4))
            .with_full_expansion(0);
    }
}
