//! Exhaustive maximum-likelihood detection (Eq. 2).
//!
//! Enumerates all `P^M` hypotheses. Exponential — usable only for small
//! systems — but it is the correctness oracle every sphere-decoder variant
//! is tested against.

use crate::detector::{Detection, DetectionStats, Detector};
use crate::preprocess::{preprocess, Prepared};
use sd_math::{Complex, Float};
use sd_wireless::{Constellation, FrameData};

/// Exhaustive ML detector.
///
/// Refuses problems with more than [`MlDetector::MAX_HYPOTHESES`]
/// hypotheses to avoid accidental year-long loops.
#[derive(Clone, Debug)]
pub struct MlDetector {
    constellation: Constellation,
}

impl MlDetector {
    /// Enumeration guard.
    pub const MAX_HYPOTHESES: u128 = 1 << 26;

    /// Build an exhaustive detector.
    pub fn new(constellation: Constellation) -> Self {
        MlDetector { constellation }
    }

    fn enumerate<F: Float>(&self, prep: &Prepared<F>) -> Detection {
        let m = prep.n_tx;
        let p = prep.order;
        let total = (p as u128).pow(m as u32);
        assert!(
            total <= Self::MAX_HYPOTHESES,
            "{p}^{m} hypotheses exceed the exhaustive-search guard"
        );

        // Depth-first full enumeration reusing partial suffix sums: row i of
        // R only involves symbols i..M, so we walk antennas from M−1 down,
        // maintaining per-level partial distances.
        let mut best_metric = F::infinity();
        let mut best = vec![0usize; m];
        let mut current = vec![0usize; m];
        let mut stats = DetectionStats {
            per_level_generated: vec![0; m],
            ..Default::default()
        };

        // Iterative odometer over all hypotheses with incremental PD would
        // complicate flop accounting; since ML is the oracle we keep the
        // straightforward recursive enumeration.
        #[allow(clippy::needless_range_loop)] // indices mirror Eq. (6)
        fn recurse<F: Float>(
            prep: &Prepared<F>,
            depth: usize,
            pd: F,
            current: &mut [usize],
            best_metric: &mut F,
            best: &mut [usize],
            stats: &mut DetectionStats,
        ) {
            let m = prep.n_tx;
            let i = m - 1 - depth;
            stats.nodes_expanded += 1;
            let row = prep.r.row(i);
            for c in 0..prep.order {
                stats.nodes_generated += 1;
                stats.per_level_generated[depth] += 1;
                // Suffix sum Σ_{j ≥ i} r_ij s_j with s_i = ω_c.
                let mut e = Complex::zero();
                Complex::mul_acc(&mut e, row[i], prep.points[c]);
                for j in i + 1..m {
                    let d = m - 1 - j;
                    Complex::mul_acc(&mut e, row[j], prep.points[current[d]]);
                }
                stats.flops += 8 * (m - i) as u64 + 5;
                let inc = (prep.ybar[i] - e).norm_sqr();
                let child_pd = pd + inc;
                current[depth] = c;
                if depth + 1 == m {
                    stats.leaves_reached += 1;
                    if child_pd < *best_metric {
                        *best_metric = child_pd;
                        for (b, &cur) in best.iter_mut().zip(current.iter()) {
                            *b = cur;
                        }
                        stats.radius_updates += 1;
                    }
                } else {
                    recurse(prep, depth + 1, child_pd, current, best_metric, best, stats);
                }
            }
        }

        recurse(
            prep,
            0,
            F::ZERO,
            &mut current,
            &mut best_metric,
            &mut best,
            &mut stats,
        );
        stats.final_radius_sqr = best_metric.to_f64();
        stats.flops += prep.prep_flops;

        let indices = prep.indices_from_path(&best);
        Detection { indices, stats }
    }
}

impl Detector for MlDetector {
    fn name(&self) -> &'static str {
        "ML exhaustive"
    }

    fn detect(&self, frame: &FrameData) -> Detection {
        let prep: Prepared<f64> = preprocess(frame, &self.constellation);
        self.enumerate(&prep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_math::Matrix;
    use sd_wireless::{Modulation, TxFrame};

    #[test]
    fn noiseless_identity_channel_recovers_exactly() {
        let c = Constellation::new(Modulation::Qam16);
        let tx = TxFrame::from_indices(&[5, 0, 15, 9], &c);
        let frame = FrameData {
            h: Matrix::identity(4),
            y: tx.symbols.clone(),
            noise_variance: 1e-6,
            tx,
        };
        let ml = MlDetector::new(c);
        let d = ml.detect(&frame);
        assert_eq!(d.indices, vec![5, 0, 15, 9]);
        assert!(d.stats.final_radius_sqr < 1e-12);
    }

    #[test]
    fn visits_exactly_p_pow_m_leaves() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(1);
        let frame = FrameData::generate(4, 4, &c, 0.5, &mut rng);
        let d = MlDetector::new(c).detect(&frame);
        assert_eq!(d.stats.leaves_reached, 4u64.pow(4));
        assert_eq!(d.stats.per_level_generated.len(), 4);
        assert_eq!(d.stats.per_level_generated[0], 4);
        assert_eq!(d.stats.per_level_generated[3], 4u64.pow(4));
    }

    #[test]
    fn solution_has_minimal_metric_among_random_competitors() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(2);
        let frame = FrameData::generate(5, 5, &c, 1.0, &mut rng);
        let ml = MlDetector::new(c.clone());
        let d = ml.detect(&frame);
        let prep: Prepared<f64> = crate::preprocess::preprocess(&frame, &c);
        let opt = prep.full_metric(&d.indices);
        use rand::Rng;
        for _ in 0..200 {
            let cand: Vec<usize> = (0..5).map(|_| rng.gen_range(0..4)).collect();
            assert!(prep.full_metric(&cand) >= opt - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "exceed the exhaustive-search guard")]
    fn guard_rejects_large_systems() {
        let c = Constellation::new(Modulation::Qam16);
        let mut rng = StdRng::seed_from_u64(3);
        let frame = FrameData::generate(10, 10, &c, 0.5, &mut rng);
        MlDetector::new(c).detect(&frame);
    }
}
