//! The paper's sphere decoder: sorted-children depth-first traversal.
//!
//! Children of each expanded node are evaluated with the GEMM formulation
//! (Phase 1–2 of the pipeline), *sorted by partial distance* (Phase 3,
//! Fig. 3), and visited in LIFO order — so the search dives toward the
//! most promising leaf first, establishes a tight sphere radius early, and
//! prunes aggressively on the way back up. With an admissible radius the
//! result is exactly the ML solution; with a finite initial radius the
//! decoder restarts with an enlarged sphere when no leaf survives, so
//! exactness holds for every [`InitialRadius`].

use crate::arena::SearchWorkspace;
use crate::detector::{Detection, DetectionStats, SearchQuality};
use crate::engine::{impl_detector_via_prepared, DecodeBudget, PreparedDetector};
use crate::pd::{children_into, eval_children, sorted_children_into, EvalStrategy, PdScratch};
use crate::preprocess::{ColumnOrdering, Prepared};
use crate::radius::InitialRadius;
use crate::trace::{span_clock, span_ns, Phase, TraceSink};
use sd_math::Float;
use sd_wireless::Constellation;
use std::time::Instant;

/// Compile-time observability switch for the DFS hot path.
///
/// The search is generic over its sink so that the common untraced decode
/// monomorphizes with [`NoSink`]: every `on_*` call inlines to nothing and
/// `S::ACTIVE == false` makes [`span_clock`] skip the `Instant` reads —
/// the traced and untraced paths share one source of truth for the
/// traversal and accounting, but the untraced binary carries zero
/// per-node branches for it. (Boxing the sink into an `Option<&mut dyn>`
/// field cost ~11% end-to-end on 16×16/16-QAM; see BENCH_expansion.json.)
trait DfsSink {
    /// Whether phase spans should read the clock.
    const ACTIVE: bool;
    fn on_phase(&mut self, phase: Phase, ns: u64);
    fn on_expand(&mut self, level: usize, parents: u64, children: u64);
    fn on_sort(&mut self, level: usize, elements: u64);
    fn on_prune(&mut self, level: usize, n: u64);
    fn on_accept(&mut self, level: usize, n: u64);
    fn on_radius_update(&mut self, level: usize, radius_sqr: f64);
    fn on_restart(&mut self);
}

/// The untraced decode: all hooks are no-ops and the optimizer deletes
/// them (and the clock reads guarded by `ACTIVE`).
struct NoSink;

impl DfsSink for NoSink {
    const ACTIVE: bool = false;
    #[inline(always)]
    fn on_phase(&mut self, _: Phase, _: u64) {}
    #[inline(always)]
    fn on_expand(&mut self, _: usize, _: u64, _: u64) {}
    #[inline(always)]
    fn on_sort(&mut self, _: usize, _: u64) {}
    #[inline(always)]
    fn on_prune(&mut self, _: usize, _: u64) {}
    #[inline(always)]
    fn on_accept(&mut self, _: usize, _: u64) {}
    #[inline(always)]
    fn on_radius_update(&mut self, _: usize, _: f64) {}
    #[inline(always)]
    fn on_restart(&mut self) {}
}

/// The traced decode: forwards every hook to the workspace's
/// [`TraceSink`].
struct DynSink<'a>(&'a mut (dyn TraceSink + 'static));

impl DfsSink for DynSink<'_> {
    const ACTIVE: bool = true;
    #[inline]
    fn on_phase(&mut self, phase: Phase, ns: u64) {
        self.0.on_phase(phase, ns);
    }
    #[inline]
    fn on_expand(&mut self, level: usize, parents: u64, children: u64) {
        self.0.on_expand(level, parents, children);
    }
    #[inline]
    fn on_sort(&mut self, level: usize, elements: u64) {
        self.0.on_sort(level, elements);
    }
    #[inline]
    fn on_prune(&mut self, level: usize, n: u64) {
        self.0.on_prune(level, n);
    }
    #[inline]
    fn on_accept(&mut self, level: usize, n: u64) {
        self.0.on_accept(level, n);
    }
    #[inline]
    fn on_radius_update(&mut self, level: usize, radius_sqr: f64) {
        self.0.on_radius_update(level, radius_sqr);
    }
    #[inline]
    fn on_restart(&mut self) {
        self.0.on_restart();
    }
}

/// Sorted-DFS sphere decoder (the paper's algorithm), generic over the
/// working precision `F`.
#[derive(Clone, Debug)]
pub struct SphereDecoder<F: Float = f64> {
    constellation: Constellation,
    /// Child-evaluation strategy (GEMM-based by default).
    pub eval: EvalStrategy,
    /// Initial sphere radius policy.
    pub initial_radius: InitialRadius,
    /// Sort children by PD before descending (`false` reproduces a plain
    /// DFS for the ablation study).
    pub sort_children: bool,
    /// Detection-order preprocessing (column permutation before QR).
    pub ordering: ColumnOrdering,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> SphereDecoder<F> {
    /// Decoder with the paper's defaults: GEMM evaluation, sorted
    /// children, infinite initial radius.
    pub fn new(constellation: Constellation) -> Self {
        SphereDecoder {
            constellation,
            eval: EvalStrategy::Gemm,
            initial_radius: InitialRadius::Infinite,
            sort_children: true,
            ordering: ColumnOrdering::Natural,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: detection-order preprocessing.
    pub fn with_ordering(mut self, ordering: ColumnOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Builder: evaluation strategy.
    pub fn with_eval(mut self, eval: EvalStrategy) -> Self {
        self.eval = eval;
        self
    }

    /// Builder: initial radius policy.
    pub fn with_initial_radius(mut self, r: InitialRadius) -> Self {
        self.initial_radius = r;
        self
    }

    /// Builder: toggle child sorting (ablation).
    pub fn with_sorted_children(mut self, sort: bool) -> Self {
        self.sort_children = sort;
        self
    }

    /// The constellation this decoder was built for.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }
}

impl<F: Float> PreparedDetector<F> for SphereDecoder<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn ordering(&self) -> ColumnOrdering {
        self.ordering
    }

    fn initial_radius_sqr(&self, n_rx: usize, noise_variance: f64) -> f64 {
        self.initial_radius.resolve(n_rx, noise_variance)
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    /// Decode an already-preprocessed problem into a caller-owned
    /// [`Detection`]: the path, best-path and per-depth child-sort
    /// buffers all come from `ws`, and `out`'s index vector and
    /// per-level histogram keep their capacity — with a warm `ws` and
    /// `out`, a decode performs zero heap allocations.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        self.decode_budgeted(prep, radius_sqr, &DecodeBudget::UNLIMITED, ws, out);
    }

    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        self.decode_budgeted(prep, radius_sqr, budget, ws, out);
    }
}

impl<F: Float> SphereDecoder<F> {
    /// The shared decode body: the unbudgeted entry point passes
    /// [`DecodeBudget::UNLIMITED`], which can never trip, so both paths
    /// run literally the same code.
    fn decode_budgeted(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        ws.prepare(prep.order, prep.n_tx);
        out.stats.reset(prep.n_tx);
        // The sink leaves the workspace for the duration of the decode so
        // the search can borrow it alongside the other buffers. Dispatch
        // on its presence ONCE, here, so the per-node hot path is
        // monomorphized trace-free when no sink is installed.
        let mut trace = ws.trace.take();
        let best_metric = match trace.as_deref_mut() {
            Some(t) => {
                t.on_decode_start(prep.n_tx);
                self.run(prep, radius_sqr, budget, ws, out, DynSink(t))
            }
            None => self.run(prep, radius_sqr, budget, ws, out, NoSink),
        };
        ws.trace = trace;
        prep.indices_from_path_into(&ws.best_path, &mut out.indices);
        out.stats.final_radius_sqr = best_metric.to_f64();
        out.stats.flops += prep.prep_flops;
    }
}

impl<F: Float> SphereDecoder<F> {
    /// The restart loop, monomorphized per sink type. Returns the final
    /// squared radius.
    fn run<S: DfsSink>(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
        sink: S,
    ) -> F {
        let mut search = Search {
            prep,
            scratch: &mut ws.scratch,
            stats: &mut out.stats,
            path: &mut ws.path,
            best_path: &mut ws.best_path,
            sort_bufs: &mut ws.sort_bufs,
            best_metric: F::from_f64(radius_sqr),
            sort: self.sort_children,
            eval: self.eval,
            max_nodes: budget.max_nodes,
            deadline: budget.deadline,
            truncated: false,
            sink,
        };
        let mut r2 = radius_sqr;
        loop {
            search.descend(F::ZERO);
            if search.truncated {
                // The budget tripped: keep the best-so-far leaf, or
                // complete one greedily if the budget expired before the
                // first dive reached the bottom. Never restart — the
                // spend is gone either way.
                let spent = search.stats.nodes_generated;
                if search.best_path.is_empty() {
                    search.greedy_complete();
                }
                search.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
                break;
            }
            if !search.best_path.is_empty() {
                break;
            }
            // Empty sphere: enlarge and retry (keeps the decoder exact
            // for finite initial radii).
            r2 *= InitialRadius::RESTART_GROWTH;
            search.stats.restarts += 1;
            search.sink.on_restart();
            search.best_metric = F::from_f64(r2);
            assert!(
                search.stats.restarts < 64,
                "sphere radius failed to capture any leaf"
            );
        }
        search.best_metric
    }
}

impl_detector_via_prepared!(SphereDecoder<F>, "SD sorted-DFS (paper)");

/// One in-flight tree search, borrowing all buffers from a
/// [`SearchWorkspace`].
struct Search<'a, F: Float, S: DfsSink> {
    prep: &'a Prepared<F>,
    scratch: &'a mut PdScratch<F>,
    stats: &'a mut DetectionStats,
    /// Current path, depth order (`path[d]` = antenna `M−1−d`).
    path: &'a mut Vec<usize>,
    best_path: &'a mut Vec<usize>,
    /// Per-depth `(increment, child)` buffers: `descend` at depth `d` owns
    /// `sort_bufs[d]` for the duration of its sibling loop, so recursion
    /// never aliases and no expansion clones the increments.
    sort_bufs: &'a mut [Vec<(F, usize)>],
    /// Current squared sphere radius (shrinks on every accepted leaf).
    best_metric: F,
    sort: bool,
    eval: EvalStrategy,
    /// Node-generation ceiling ([`DecodeBudget::max_nodes`]); `u64::MAX`
    /// when unbudgeted.
    max_nodes: u64,
    /// Wall-clock cutoff, sampled every 64 expansions.
    deadline: Option<Instant>,
    /// Latched once the budget trips; unwinds the recursion without
    /// expanding or accepting anything further.
    truncated: bool,
    /// Observability sink ([`NoSink`] on the untraced hot path).
    sink: S,
}

impl<F: Float, S: DfsSink> Search<'_, F, S> {
    /// Whether the budget has expired. The node check is one integer
    /// compare per expansion; the deadline is sampled every 64
    /// expansions and only when one is set, so the unbudgeted hot path
    /// pays (almost) nothing. A budget only ever *stops* the traversal —
    /// it never reorders it — which is what keeps budgeted decodes
    /// bit-identical to unbudgeted ones whenever the budget is not hit.
    #[inline]
    fn budget_tripped(&self) -> bool {
        if self.stats.nodes_generated >= self.max_nodes {
            return true;
        }
        match self.deadline {
            Some(d) => (self.stats.nodes_expanded & 63) == 0 && Instant::now() >= d,
            None => false,
        }
    }

    /// Expand the node identified by `self.path` whose PD is `pd`.
    fn descend(&mut self, pd: F) {
        if self.truncated || self.budget_tripped() {
            self.truncated = true;
            return;
        }
        let depth = self.path.len();
        let m = self.prep.n_tx;
        let p = self.prep.order;
        self.stats.nodes_expanded += 1;
        let t0 = span_clock(S::ACTIVE);
        self.stats.flops += eval_children(self.prep, self.path, self.eval, self.scratch);
        self.sink.on_phase(Phase::Expand, span_ns(t0));
        self.sink.on_expand(depth, 1, p as u64);
        self.stats.nodes_generated += p as u64;
        self.stats.per_level_generated[depth] += p as u64;

        // Take this depth's buffer out so `visit` can recurse into deeper
        // levels; recursion overwrites `scratch.increments`, which is why
        // the seed implementation cloned them every expansion.
        let mut children = std::mem::take(&mut self.sort_bufs[depth]);
        if self.sort {
            let t0 = span_clock(S::ACTIVE);
            sorted_children_into(&self.scratch.increments, &mut children);
            self.sink.on_phase(Phase::Sort, span_ns(t0));
            self.sink.on_sort(depth, p as u64);
            for (rank, &(inc, child)) in children.iter().enumerate() {
                if self.truncated {
                    break;
                }
                let child_pd = pd + inc;
                if !(child_pd < self.best_metric) {
                    // Sorted order ⇒ every remaining sibling is pruned too.
                    self.stats.nodes_pruned += (p - rank) as u64;
                    self.sink.on_prune(depth, (p - rank) as u64);
                    break;
                }
                self.visit(child, child_pd, depth, m);
            }
        } else {
            // Plain DFS ablation: natural constellation order.
            children_into(&self.scratch.increments, &mut children);
            for &(inc, child) in children.iter() {
                if self.truncated {
                    break;
                }
                let child_pd = pd + inc;
                if child_pd < self.best_metric {
                    self.visit(child, child_pd, depth, m);
                } else {
                    self.stats.nodes_pruned += 1;
                    self.sink.on_prune(depth, 1);
                }
            }
        }
        self.sort_bufs[depth] = children;
    }

    /// The budget expired before the first dive reached a leaf: finish a
    /// path greedily so a truncated decode still returns a complete
    /// symbol vector (SIC-style, the weakest anytime answer).
    fn greedy_complete(&mut self) {
        self.best_metric = greedy_leaf(
            self.prep,
            self.eval,
            self.scratch,
            self.stats,
            self.path,
            self.best_path,
        );
    }

    #[inline]
    fn visit(&mut self, child: usize, child_pd: F, depth: usize, m: usize) {
        self.sink.on_accept(depth, 1);
        if depth + 1 == m {
            // Leaf inside the sphere: Algorithm 1 lines 7–9.
            self.stats.leaves_reached += 1;
            self.stats.radius_updates += 1;
            self.best_metric = child_pd;
            let t0 = span_clock(S::ACTIVE);
            self.best_path.clear();
            self.best_path.extend_from_slice(self.path);
            self.best_path.push(child);
            self.sink.on_phase(Phase::Leaf, span_ns(t0));
            self.sink.on_radius_update(depth, child_pd.to_f64());
        } else {
            self.path.push(child);
            self.descend(child_pd);
            self.path.pop();
        }
    }
}

/// Greedily complete one root-to-leaf path — the minimum-increment child
/// at every level, radius ignored — charging the evaluations to `stats`
/// like any others. Returns the leaf metric; the path lands in
/// `best_path` (depth order). Shared by the budget-truncation fallbacks
/// of the sequential and subtree-parallel decoders.
pub(crate) fn greedy_leaf<F: Float>(
    prep: &Prepared<F>,
    eval: EvalStrategy,
    scratch: &mut PdScratch<F>,
    stats: &mut DetectionStats,
    path: &mut Vec<usize>,
    best_path: &mut Vec<usize>,
) -> F {
    let m = prep.n_tx;
    let p = prep.order;
    path.clear();
    let mut pd = F::ZERO;
    for depth in 0..m {
        stats.nodes_expanded += 1;
        stats.flops += eval_children(prep, path, eval, scratch);
        stats.nodes_generated += p as u64;
        stats.per_level_generated[depth] += p as u64;
        let mut best_child = 0usize;
        let mut best_inc = scratch.increments[0];
        for (i, &inc) in scratch.increments.iter().enumerate().skip(1) {
            if inc < best_inc {
                best_inc = inc;
                best_child = i;
            }
        }
        pd += best_inc;
        path.push(best_child);
    }
    stats.leaves_reached += 1;
    stats.radius_updates += 1;
    best_path.clear();
    best_path.extend_from_slice(path);
    path.clear();
    pd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::ml::MlDetector;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::FrameData;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn matches_exhaustive_ml_qam4() {
        let (c, frames) = frames(5, Modulation::Qam4, 8.0, 30, 42);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            let a = sd.detect(f);
            let b = ml.detect(f);
            assert_eq!(a.indices, b.indices, "SD must be ML-exact");
        }
    }

    #[test]
    fn matches_exhaustive_ml_qam16() {
        let (c, frames) = frames(3, Modulation::Qam16, 6.0, 20, 43);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(sd.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn finite_radius_still_exact() {
        let (c, frames) = frames(4, Modulation::Qam4, 4.0, 25, 44);
        let inf: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        // Deliberately tiny radius to force restarts.
        let tight: SphereDecoder<f64> =
            SphereDecoder::new(c.clone()).with_initial_radius(InitialRadius::ScaledNoise(0.01));
        let mut saw_restart = false;
        for f in &frames {
            let a = inf.detect(f);
            let b = tight.detect(f);
            assert_eq!(a.indices, b.indices);
            saw_restart |= b.stats.restarts > 0;
        }
        assert!(saw_restart, "0.01·N·σ² should be empty at least once");
    }

    #[test]
    fn unsorted_dfs_same_answer_more_work() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 15, 45);
        let sorted: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let plain: SphereDecoder<f64> = SphereDecoder::new(c.clone()).with_sorted_children(false);
        let mut n_sorted = 0u64;
        let mut n_plain = 0u64;
        for f in &frames {
            let a = sorted.detect(f);
            let b = plain.detect(f);
            assert_eq!(a.indices, b.indices, "both are exact");
            n_sorted += a.stats.nodes_generated;
            n_plain += b.stats.nodes_generated;
        }
        assert!(
            n_sorted < n_plain,
            "sorting must shrink the search: {n_sorted} vs {n_plain}"
        );
    }

    #[test]
    fn incremental_eval_same_answer_fewer_flops() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 10, 46);
        let gemm: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let inc: SphereDecoder<f64> =
            SphereDecoder::new(c.clone()).with_eval(EvalStrategy::Incremental);
        for f in &frames {
            let a = gemm.detect(f);
            let b = inc.detect(f);
            assert_eq!(a.indices, b.indices);
            assert!(a.stats.flops > b.stats.flops);
            assert_eq!(a.stats.nodes_generated, b.stats.nodes_generated);
        }
    }

    #[test]
    fn high_snr_explores_fewer_nodes() {
        let (c, lo) = frames(8, Modulation::Qam4, 4.0, 20, 47);
        let (_, hi) = frames(8, Modulation::Qam4, 20.0, 20, 47);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let count = |fs: &[FrameData]| -> u64 {
            fs.iter().map(|f| sd.detect(f).stats.nodes_generated).sum()
        };
        let n_lo = count(&lo);
        let n_hi = count(&hi);
        assert!(
            n_hi * 2 < n_lo,
            "tree must shrink with SNR: {n_lo} @4dB vs {n_hi} @20dB"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let (c, frames) = frames(5, Modulation::Qam4, 8.0, 5, 48);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            let d = sd.detect(f);
            let s = &d.stats;
            assert_eq!(s.nodes_generated, s.per_level_generated.iter().sum::<u64>());
            assert_eq!(s.nodes_generated, s.nodes_expanded * 4);
            assert!(s.leaves_reached >= 1);
            assert_eq!(s.leaves_reached, s.radius_updates);
            assert!(s.final_radius_sqr.is_finite());
            assert!(s.flops > 0);
        }
    }

    #[test]
    fn returned_metric_matches_solution() {
        let (c, frames) = frames(6, Modulation::Qam16, 12.0, 5, 49);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        for f in &frames {
            let d = sd.detect(f);
            let prep: Prepared<f64> = preprocess(f, &c);
            let metric = prep.full_metric(&d.indices) - prep.tail_energy;
            assert!(
                (metric - d.stats.final_radius_sqr).abs() < 1e-8,
                "metric {metric} != reported {}",
                d.stats.final_radius_sqr
            );
        }
    }

    #[test]
    fn f32_precision_usually_matches_f64() {
        let (c, frames) = frames(6, Modulation::Qam4, 12.0, 20, 50);
        let sd64: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let sd32: SphereDecoder<f32> = SphereDecoder::new(c);
        let agree = frames
            .iter()
            .filter(|f| sd64.detect(f).indices == sd32.detect(f).indices)
            .count();
        assert!(agree >= 19, "f32 disagreed on {} of 20 frames", 20 - agree);
    }

    #[test]
    fn ordering_preserves_ml_exactness() {
        let (c, frames) = frames(6, Modulation::Qam4, 6.0, 20, 52);
        let ml = MlDetector::new(c.clone());
        for ordering in [
            ColumnOrdering::Natural,
            ColumnOrdering::NormDescending,
            ColumnOrdering::NormAscending,
        ] {
            let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone()).with_ordering(ordering);
            for f in &frames {
                assert_eq!(sd.detect(f).indices, ml.detect(f).indices, "{ordering:?}");
            }
        }
    }

    #[test]
    fn good_ordering_shrinks_the_search() {
        // Detecting reliable streams first is the classic V-BLAST trick:
        // aggregate node counts must improve over the pessimal order.
        let (c, frames) = frames(10, Modulation::Qam4, 8.0, 25, 53);
        let best: SphereDecoder<f64> =
            SphereDecoder::new(c.clone()).with_ordering(ColumnOrdering::NormDescending);
        let worst: SphereDecoder<f64> =
            SphereDecoder::new(c.clone()).with_ordering(ColumnOrdering::NormAscending);
        let n_best: u64 = frames
            .iter()
            .map(|f| best.detect(f).stats.nodes_generated)
            .sum();
        let n_worst: u64 = frames
            .iter()
            .map(|f| worst.detect(f).stats.nodes_generated)
            .sum();
        assert!(
            n_best < n_worst,
            "descending ({n_best}) must beat ascending ({n_worst})"
        );
    }

    /// An unexhausted budget must leave the decode bit-identical —
    /// indices, stats, metric bits — to the unbudgeted engine.
    #[test]
    fn generous_budget_is_bit_identical() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 20, 54);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let mut ws = SearchWorkspace::new();
        let mut plain = Detection::default();
        let mut budgeted = Detection::default();
        for f in &frames {
            let prep = sd.prepare_frame(f);
            sd.detect_prepared_into(&prep, f64::INFINITY, &mut ws, &mut plain);
            // One node more than the decode needs: the check can never trip.
            let budget = DecodeBudget::nodes(plain.stats.nodes_generated + 1);
            sd.detect_prepared_budgeted_into(&prep, f64::INFINITY, &budget, &mut ws, &mut budgeted);
            assert_eq!(budgeted, plain, "unexhausted budget must change nothing");
            assert_eq!(budgeted.stats.quality, SearchQuality::Exact);
            // The unlimited budget is the plain decode by construction.
            sd.detect_prepared_budgeted_into(
                &prep,
                f64::INFINITY,
                &DecodeBudget::UNLIMITED,
                &mut ws,
                &mut budgeted,
            );
            assert_eq!(budgeted, plain);
        }
    }

    /// A tight budget must truncate, flag the result, and still return a
    /// complete symbol vector whose reported metric matches it.
    #[test]
    fn exhausted_budget_returns_best_so_far_leaf() {
        let (c, frames) = frames(8, Modulation::Qam4, 4.0, 20, 55);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        let mut saw_truncation = false;
        for f in &frames {
            let prep = sd.prepare_frame(f);
            let full = sd.detect_prepared_in(&prep, f64::INFINITY, &mut ws);
            // Half the full spend: low-SNR 8x8 searches blow well past it.
            let budget = DecodeBudget::nodes(full.stats.nodes_generated / 2);
            sd.detect_prepared_budgeted_into(&prep, f64::INFINITY, &budget, &mut ws, &mut out);
            assert_eq!(out.indices.len(), 8, "always a complete vector");
            if let SearchQuality::BudgetTruncated { nodes_spent } = out.stats.quality {
                saw_truncation = true;
                assert!(nodes_spent >= budget.max_nodes);
                // The reported radius is the returned leaf's metric, and
                // an anytime answer can never beat the exact one.
                let metric = prep.full_metric(&out.indices) - prep.tail_energy;
                assert!((metric - out.stats.final_radius_sqr).abs() < 1e-8);
                assert!(out.stats.final_radius_sqr >= full.stats.final_radius_sqr - 1e-12);
            }
        }
        assert!(saw_truncation, "half-spend budgets must trip somewhere");
    }

    /// A budget of zero nodes degenerates to the greedy (SIC-style)
    /// completion: still a complete, flagged answer.
    #[test]
    fn zero_budget_degenerates_to_greedy_completion() {
        let (c, frames) = frames(6, Modulation::Qam4, 10.0, 5, 56);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        for f in &frames {
            let prep = sd.prepare_frame(f);
            sd.detect_prepared_budgeted_into(
                &prep,
                f64::INFINITY,
                &DecodeBudget::nodes(0),
                &mut ws,
                &mut out,
            );
            assert_eq!(out.indices.len(), 6);
            assert!(out.stats.quality.is_truncated());
            assert_eq!(out.stats.leaves_reached, 1);
            let metric = prep.full_metric(&out.indices) - prep.tail_energy;
            assert!((metric - out.stats.final_radius_sqr).abs() < 1e-8);
        }
    }

    /// An already-expired deadline truncates immediately.
    #[test]
    fn expired_deadline_truncates() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 3, 57);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        let budget = DecodeBudget {
            max_nodes: u64::MAX,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        for f in &frames {
            let prep = sd.prepare_frame(f);
            sd.detect_prepared_budgeted_into(&prep, f64::INFINITY, &budget, &mut ws, &mut out);
            assert!(out.stats.quality.is_truncated());
            assert_eq!(out.indices.len(), 6);
        }
    }

    #[test]
    fn bpsk_single_antenna() {
        // Degenerate 1×1 system: SD must slice correctly.
        let c = Constellation::new(Modulation::Bpsk);
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..10 {
            let f = FrameData::generate(1, 1, &c, 0.01, &mut rng);
            let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
            let d = sd.detect(&f);
            assert_eq!(d.indices, f.tx.indices, "near-noiseless 1x1 decode");
        }
    }
}
