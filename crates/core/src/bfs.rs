//! Level-synchronous BFS-GEMM sphere decoding — the GPU baseline of \[1\].
//!
//! All nodes of a tree level are expanded together and their children
//! evaluated in one large GEMM against the level's tree-state matrix; the
//! radius is *not* tightened until the leaf level (BFS reaches no leaf
//! earlier), so pruning only uses the initial radius. This exposes maximal
//! data parallelism — ideal for a GPU — but explores orders of magnitude
//! more nodes than the leaf-biased DFS (the effect behind the paper's
//! Fig. 11 and the "<1 %" claim of Sec. IV-F).
//!
//! The "one GEMM per level" is literal here: the frontier lives in the
//! [`crate::arena`] slab as `(pd, id)` pairs and
//! [`crate::pd::eval_children_batch`] packs every open node's tree state
//! into a single `(depth+1) × (B·P)` operand per level (chunked at
//! [`crate::pd::MAX_BATCH`]), evaluated by one [`sd_math`] kernel call.
//! The kernel is selectable ([`BfsGemmSd::with_batch_algo`]) and the
//! resulting increments are bit-identical to per-node evaluation, so the
//! decoded symbols and every statistic match the scalar formulation
//! exactly.
//!
//! The decoder records a [`BfsLevelTrace`] of per-level frontier sizes and
//! GEMM shapes; the `sd-gpu` crate charges an A100 cost model over that
//! trace.

use crate::arena::{SearchWorkspace, NIL};
use crate::detector::{Detection, SearchQuality};
use crate::engine::{impl_detector_via_prepared, DecodeBudget, PreparedDetector};
use crate::pd::{eval_children_batch, greedy_tail};
use crate::preprocess::Prepared;
use crate::radius::InitialRadius;
use crate::select::keep_best;
use crate::trace::{span_clock, span_ns, Phase, TraceSink};
use sd_math::{Float, GemmAlgo};
use sd_wireless::{Constellation, FrameData};
use serde::{Deserialize, Serialize};

/// Per-level record of one BFS decode.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BfsLevelInfo {
    /// Nodes entering the level (parents expanded).
    pub frontier_in: usize,
    /// Children generated (`frontier_in × P`).
    pub children: usize,
    /// Children surviving the radius test.
    pub survivors: usize,
    /// GEMM shape (m, k, n) evaluated at this level:
    /// `1 × (depth+1) × children`.
    pub gemm_shape: (usize, usize, usize),
}

/// Execution trace used by the GPU cost model.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BfsLevelTrace {
    /// One entry per tree level, in expansion order.
    pub levels: Vec<BfsLevelInfo>,
    /// Radius restarts performed.
    pub restarts: u64,
    /// `true` if the frontier cap truncated the search (makes the decode
    /// approximate, mirroring GPU memory limits).
    pub clipped: bool,
}

/// Breadth-first GEMM sphere decoder.
#[derive(Clone, Debug)]
pub struct BfsGemmSd<F: Float = f64> {
    constellation: Constellation,
    /// Initial radius (BFS cannot start from infinity — it would
    /// enumerate the full tree).
    pub initial_radius: InitialRadius,
    /// Hard cap on the surviving frontier per level; beyond it only the
    /// best nodes are kept (GPU memory limit surrogate).
    pub max_frontier: usize,
    /// Kernel driving the per-level batched GEMM.
    pub batch_algo: GemmAlgo,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> BfsGemmSd<F> {
    /// BFS decoder with the customary `r² = 2·N·σ²` initial sphere.
    pub fn new(constellation: Constellation) -> Self {
        BfsGemmSd {
            constellation,
            initial_radius: InitialRadius::ScaledNoise(2.0),
            max_frontier: 1 << 20,
            batch_algo: GemmAlgo::Blocked,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: initial radius policy.
    pub fn with_initial_radius(mut self, r: InitialRadius) -> Self {
        assert!(
            !matches!(r, InitialRadius::Infinite),
            "BFS requires a finite initial radius"
        );
        self.initial_radius = r;
        self
    }

    /// Builder: frontier cap.
    pub fn with_max_frontier(mut self, cap: usize) -> Self {
        assert!(cap > 0);
        self.max_frontier = cap;
        self
    }

    /// Builder: batched-GEMM kernel ([`GemmAlgo::Blocked`] serial or
    /// [`GemmAlgo::Parallel`] for wide frontiers; every kernel yields
    /// bit-identical increments).
    pub fn with_batch_algo(mut self, algo: GemmAlgo) -> Self {
        self.batch_algo = algo;
        self
    }

    /// Decode and return the per-level trace alongside the detection.
    pub fn detect_traced(&self, frame: &FrameData) -> (Detection, BfsLevelTrace) {
        let prep: Prepared<F> = self.prepare_frame(frame);
        let r2 = self
            .initial_radius
            .resolve(frame.h.rows(), frame.noise_variance);
        self.detect_prepared_traced(&prep, r2)
    }

    /// Decode an already-preprocessed problem, returning the trace.
    pub fn detect_prepared_traced(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
    ) -> (Detection, BfsLevelTrace) {
        let mut ws = SearchWorkspace::new();
        self.detect_prepared_traced_in(prep, radius_sqr, &mut ws)
    }

    /// [`BfsGemmSd::detect_prepared_traced`] reusing a caller-owned
    /// workspace; the level loop performs no heap allocation once the
    /// buffers reach steady-state capacity.
    pub fn detect_prepared_traced_in(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
    ) -> (Detection, BfsLevelTrace) {
        let mut out = Detection::default();
        let mut adapter = BfsTraceAdapter::default();
        self.bfs_core(
            prep,
            radius_sqr,
            &DecodeBudget::UNLIMITED,
            ws,
            &mut out,
            Some(&mut adapter),
        );
        (out, adapter.trace)
    }

    /// The level-synchronous sweep shared by the traced and engine entry
    /// points. `trace` is `None` when no sink is installed, which skips
    /// every emission and keeps the decode allocation-free; the decode
    /// itself is identical either way. The traced APIs pass a
    /// [`BfsTraceAdapter`] that folds the event stream back into a
    /// [`BfsLevelTrace`].
    fn bfs_core(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
        mut trace: Option<&mut (dyn TraceSink + 'static)>,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        ws.prepare(p, m);
        out.stats.reset(m);
        if let Some(t) = trace.as_mut() {
            t.on_decode_start(m);
        }
        let stats = &mut out.stats;
        let mut r2 = radius_sqr;

        'restart: loop {
            ws.arena.clear();
            ws.frontier.clear();
            ws.frontier.push((0.0, NIL));
            for depth in 0..m {
                if budget.tripped_after(stats.nodes_generated) {
                    // Budget exhausted: greedily complete the best open
                    // node to a leaf — never restart a truncated search.
                    let spent = stats.nodes_generated;
                    let &(pd, id) = ws
                        .frontier
                        .iter()
                        .min_by(|a, b| a.0.total_cmp(&b.0))
                        .expect("frontier is never empty");
                    ws.arena.path_into(id, &mut ws.path_buf);
                    let final_pd = greedy_tail(
                        prep,
                        &mut ws.path_buf,
                        F::from_f64(pd),
                        stats,
                        &mut ws.scratch,
                    );
                    stats.leaves_reached += 1;
                    stats.radius_updates = 1;
                    stats.final_radius_sqr = final_pd.to_f64();
                    stats.flops += prep.prep_flops;
                    stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
                    prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
                    return;
                }
                // One batched GEMM for the whole level.
                ws.ids.clear();
                ws.ids.extend(ws.frontier.iter().map(|&(_, id)| id));
                let t0 = span_clock(trace.is_some());
                stats.flops +=
                    eval_children_batch(prep, &ws.arena, &ws.ids, self.batch_algo, &mut ws.scratch);
                if let Some(t) = trace.as_mut() {
                    t.on_phase(Phase::Expand, span_ns(t0));
                    t.on_expand(
                        depth,
                        ws.frontier.len() as u64,
                        (ws.frontier.len() * p) as u64,
                    );
                }
                stats.nodes_expanded += ws.frontier.len() as u64;
                stats.nodes_generated += (ws.frontier.len() * p) as u64;
                stats.per_level_generated[depth] += (ws.frontier.len() * p) as u64;

                ws.next.clear();
                let mut radius_pruned = 0u64;
                for (bi, &(pd, id)) in ws.frontier.iter().enumerate() {
                    for c in 0..p {
                        let child_pd = pd + ws.scratch.batch_increments[bi * p + c].to_f64();
                        if child_pd < r2 {
                            let child = ws.arena.alloc(id, c);
                            ws.next.push((child_pd, child));
                        } else {
                            radius_pruned += 1;
                        }
                    }
                }
                stats.nodes_pruned += radius_pruned;
                if let Some(t) = trace.as_mut() {
                    t.on_prune(depth, radius_pruned);
                }
                if ws.next.is_empty() {
                    // Empty sphere: grow radius and restart the whole BFS.
                    if let Some(t) = trace.as_mut() {
                        t.on_restart();
                    }
                    r2 *= InitialRadius::RESTART_GROWTH;
                    stats.restarts += 1;
                    assert!(stats.restarts < 64, "radius failed to capture any leaf");
                    continue 'restart;
                }
                if ws.next.len() > self.max_frontier {
                    // GPU-memory surrogate: keep the best nodes only —
                    // via partial selection, like the K-best cut.
                    let sorted = ws.next.len();
                    let t0 = span_clock(trace.is_some());
                    keep_best(&mut ws.next, self.max_frontier, |a, b| a.0.total_cmp(&b.0));
                    let dropped = (sorted - self.max_frontier) as u64;
                    stats.nodes_pruned += dropped;
                    if let Some(t) = trace.as_mut() {
                        t.on_phase(Phase::Sort, span_ns(t0));
                        t.on_sort(depth, sorted as u64);
                        t.on_clip(depth, dropped);
                        t.on_prune(depth, dropped);
                    }
                }
                if let Some(t) = trace.as_mut() {
                    t.on_accept(depth, ws.next.len() as u64);
                }
                std::mem::swap(&mut ws.frontier, &mut ws.next);
            }

            // Leaf level: pick the minimum-PD survivor.
            stats.leaves_reached += ws.frontier.len() as u64;
            let t0 = span_clock(trace.is_some());
            let &(best_pd, best_id) = ws
                .frontier
                .iter()
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("non-empty by construction");
            stats.radius_updates += 1;
            stats.final_radius_sqr = best_pd;
            stats.flops += prep.prep_flops;
            ws.arena.path_into(best_id, &mut ws.path_buf);
            if let Some(t) = trace.as_mut() {
                t.on_phase(Phase::Leaf, span_ns(t0));
                t.on_radius_update(m - 1, best_pd);
            }
            prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
            return;
        }
    }
}

/// Folds the generic [`TraceSink`] event stream back into the legacy
/// [`BfsLevelTrace`] record the GPU cost model consumes. `survivors`
/// keeps its historical pre-clip meaning: the accepted count reported
/// after a clip is topped back up with the clipped-off nodes.
#[derive(Debug, Default)]
struct BfsTraceAdapter {
    trace: BfsLevelTrace,
    pending_clip: u64,
}

impl TraceSink for BfsTraceAdapter {
    fn on_decode_start(&mut self, _n_levels: usize) {
        self.trace.levels.clear();
        self.trace.restarts = 0;
        self.trace.clipped = false;
        self.pending_clip = 0;
    }

    fn on_expand(&mut self, level: usize, parents: u64, children: u64) {
        self.trace.levels.push(BfsLevelInfo {
            frontier_in: parents as usize,
            children: children as usize,
            survivors: 0,
            gemm_shape: (1, level + 1, children as usize),
        });
    }

    fn on_accept(&mut self, _level: usize, n: u64) {
        if let Some(last) = self.trace.levels.last_mut() {
            last.survivors = (n + self.pending_clip) as usize;
        }
        self.pending_clip = 0;
    }

    fn on_clip(&mut self, _level: usize, dropped: u64) {
        self.trace.clipped = true;
        self.pending_clip += dropped;
    }

    fn on_restart(&mut self) {
        self.trace.restarts += 1;
        self.trace.levels.clear();
        self.trace.clipped = false;
        self.pending_clip = 0;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl<F: Float> PreparedDetector<F> for BfsGemmSd<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn initial_radius_sqr(&self, n_rx: usize, noise_variance: f64) -> f64 {
        self.initial_radius.resolve(n_rx, noise_variance)
    }

    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let mut trace = ws.trace.take();
        self.bfs_core(
            prep,
            radius_sqr,
            &DecodeBudget::UNLIMITED,
            ws,
            out,
            trace.as_deref_mut(),
        );
        ws.trace = trace;
    }

    /// BFS under an anytime budget: checked once per level; a trip ends
    /// the sweep with the best open node greedily completed
    /// ([`SearchQuality::BudgetTruncated`]) — a truncated search never
    /// restarts. Untripped decodes are bit-identical to
    /// [`Self::detect_prepared_into`].
    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let mut trace = ws.trace.take();
        self.bfs_core(prep, radius_sqr, budget, ws, out, trace.as_deref_mut());
        ws.trace = trace;
    }
}

impl_detector_via_prepared!(BfsGemmSd<F>, "SD BFS-GEMM (GPU baseline)");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::dfs::SphereDecoder;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn matches_ml_when_uncapped() {
        let (c, frames) = frames(5, Modulation::Qam4, 8.0, 20, 70);
        let bfs: BfsGemmSd<f64> = BfsGemmSd::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            let (d, trace) = bfs.detect_traced(f);
            assert!(!trace.clipped);
            assert_eq!(d.indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn batch_kernels_agree_exactly() {
        // Blocked and Parallel batched kernels must produce identical
        // decodes *and statistics* (bit-identical increments).
        let (c, frames) = frames(6, Modulation::Qam16, 10.0, 8, 75);
        let blocked: BfsGemmSd<f64> = BfsGemmSd::new(c.clone());
        let parallel: BfsGemmSd<f64> =
            BfsGemmSd::new(c.clone()).with_batch_algo(GemmAlgo::Parallel);
        let naive: BfsGemmSd<f64> = BfsGemmSd::new(c).with_batch_algo(GemmAlgo::Naive);
        for f in &frames {
            let a = blocked.detect(f);
            let b = parallel.detect(f);
            let n = naive.detect(f);
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.indices, n.indices);
            assert_eq!(a.stats, n.stats);
        }
    }

    #[test]
    fn explores_far_more_nodes_than_dfs() {
        // The Sec. IV-F claim: at the paper's low-SNR operating point the
        // leaf-biased search visits a small fraction of what BFS visits,
        // and under 1 % of the full enumeration.
        let (c, frames) = frames(8, Modulation::Qam4, 4.0, 10, 71);
        let bfs: BfsGemmSd<f64> = BfsGemmSd::new(c.clone());
        let dfs: SphereDecoder<f64> = SphereDecoder::new(c);
        let nb: u64 = frames
            .iter()
            .map(|f| bfs.detect(f).stats.nodes_generated)
            .sum();
        let nd: u64 = frames
            .iter()
            .map(|f| dfs.detect(f).stats.nodes_generated)
            .sum();
        assert!(nd * 4 < nb, "DFS ({nd}) should explore ≪ BFS ({nb}) nodes");
        let full = 10 * 4u64.pow(8);
        assert!(
            (nd as f64) < 0.05 * full as f64,
            "DFS explored {nd} of {full}"
        );
    }

    #[test]
    fn trace_shapes_are_consistent() {
        let (c, frames) = frames(6, Modulation::Qam4, 12.0, 5, 72);
        let bfs: BfsGemmSd<f64> = BfsGemmSd::new(c);
        for f in &frames {
            let (_, trace) = bfs.detect_traced(f);
            let levels = &trace.levels;
            assert_eq!(levels.len(), 6);
            assert_eq!(levels[0].frontier_in, 1);
            for (depth, l) in levels.iter().enumerate() {
                assert_eq!(l.children, l.frontier_in * 4);
                assert!(l.survivors <= l.children);
                assert_eq!(l.gemm_shape, (1, depth + 1, l.children));
            }
            for w in levels.windows(2) {
                assert_eq!(w[1].frontier_in, w[0].survivors);
            }
        }
    }

    #[test]
    fn restart_grows_radius_until_leaf_found() {
        let (c, frames) = frames(4, Modulation::Qam4, 4.0, 15, 73);
        let bfs: BfsGemmSd<f64> =
            BfsGemmSd::new(c.clone()).with_initial_radius(InitialRadius::ScaledNoise(0.001));
        let ml = MlDetector::new(c);
        let mut saw_restart = false;
        for f in &frames {
            let (d, trace) = bfs.detect_traced(f);
            saw_restart |= trace.restarts > 0;
            assert_eq!(d.indices, ml.detect(f).indices);
        }
        assert!(saw_restart);
    }

    #[test]
    fn frontier_cap_clips_and_flags() {
        let (c, frames) = frames(6, Modulation::Qam4, 4.0, 10, 74);
        let capped: BfsGemmSd<f64> = BfsGemmSd::new(c).with_max_frontier(2);
        let mut clipped_any = false;
        for f in &frames {
            let (d, trace) = capped.detect_traced(f);
            clipped_any |= trace.clipped;
            assert_eq!(d.indices.len(), 6);
        }
        assert!(clipped_any, "cap of 2 must clip at 4 dB");
    }

    #[test]
    #[should_panic(expected = "finite initial radius")]
    fn infinite_radius_rejected() {
        let c = Constellation::new(Modulation::Qam4);
        let _ = BfsGemmSd::<f64>::new(c).with_initial_radius(InitialRadius::Infinite);
    }
}
