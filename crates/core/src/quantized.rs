//! Quantized (i16/i32 fixed-point) search engines — the software model of
//! the paper's DSP-slice datapath.
//!
//! [`FxPrepared`] quantizes a QR-[`Prepared`] problem into the Q-format of
//! [`sd_math::fixed`] (symbols Q3.12, `R` block-scaled to an 11-bit
//! target, `ȳ` on the product grid), and three engines search it with the
//! exact integer kernels of [`sd_math::fxkernel`]:
//!
//! * [`QuantizedSphereDecoder`] — depth-first with sorted children and
//!   integer-strict pruning; exact ML *in the quantized domain*;
//! * [`QuantizedKBestSd`] — level-synchronous K-best, the batched
//!   fixed-throughput rung for the serve ladder;
//! * [`QuantizedFsd`] — fixed-complexity: full expansion of the top
//!   levels, then per-node argmin SIC, with no data-dependent control
//!   flow at all (the hardware-shaped variant).
//!
//! All three take [`MetricKind::L2`] (the ML metric) or
//! [`MetricKind::LInf`] (Seethaler–Bölcskei infinity-norm, compares
//! instead of multiplies). Both metrics are monotone non-decreasing along
//! a path, so sphere pruning stays admissible — pinned by the proptests
//! in `tests/quantized.rs`.
//!
//! The f64 engines remain the exactness oracle: quantization *rounds*, so
//! the gate for these engines is not bit-identity with the float path but
//! a measured BER degradation bound, [`MAX_QUANT_DEGRADATION_DB`].
//!
//! `DetectionStats::flops` for these engines counts *integer* lane ops
//! (multiplies, adds, compares of the fixed kernels) so throughput ratios
//! against the float engines compare like for like.

use crate::arena::{SearchWorkspace, NIL};
use crate::detector::{Detection, SearchQuality};
use crate::engine::{impl_detector_via_prepared, DecodeBudget, PreparedDetector};
use crate::preprocess::{BlockPrep, Prepared};
use crate::radius::InitialRadius;
use crate::select::{keep_best, keep_best_slice};
use sd_math::fixed::{
    coef_scale, quantize_i16, quantize_i32, MetricKind, MAX_FX_ANTENNAS, SYM_SCALE,
};
use sd_math::fxkernel::{fx_expand_level, fx_expand_level_multi, fx_metric_update};
use sd_wireless::{Constellation, FrameData};
use std::sync::Mutex;
use std::time::Instant;

/// Measured BER-degradation budget of the quantized engines against their
/// f64 counterparts, in dB at the target BER of the standard
/// 16×16/16-QAM grid (see `tests/quantized.rs` and EXPERIMENTS.md).
///
/// This is the acceptance gate for the Q-format chosen in
/// [`sd_math::fixed`]: Q3.12 symbols against 11-bit block-scaled
/// coefficients leave the quantization noise more than 30 dB below the
/// channel noise at every SNR the sweep visits, so the measured penalty
/// sits well inside this bound; the constant is the *contract*, the
/// sweep is the evidence.
pub const MAX_QUANT_DEGRADATION_DB: f64 = 0.2;

/// One tree level of a quantized problem.
#[derive(Clone, Debug, Default)]
struct FxLevel {
    /// Suffix coefficients `r̂_{i,i+1+off}` (deepest ancestor first).
    a_re: Vec<i16>,
    a_im: Vec<i16>,
    /// Quantized received component `ŷ_i` on the product grid.
    y_re: i32,
    y_im: i32,
    /// Per-child seeds `r̂_ii ⊗ ŝ_c` (exact i32 products).
    seed_re: Vec<i32>,
    seed_im: Vec<i32>,
}

/// A [`Prepared`] problem quantized into the fixed-point Q-format.
///
/// Rebuilt per decode by the quantized engines (cheap: one pass over the
/// `R` triangle), reusing all buffers; see [`sd_math::fixed`] for the
/// scaling rules and overflow analysis that make every kernel op exact.
#[derive(Clone, Debug, Default)]
pub struct FxPrepared {
    /// Tree depth `M`.
    pub n_tx: usize,
    /// Constellation order `P`.
    pub order: usize,
    /// Dynamic coefficient scale `α` (see [`coef_scale`]).
    pub coef_scale: f64,
    /// Quantized constellation components (Q3.12).
    sym_re: Vec<i16>,
    sym_im: Vec<i16>,
    levels: Vec<FxLevel>,
}

impl FxPrepared {
    /// Empty problem; fill with [`FxPrepared::quantize_from`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantize `prep` into this problem, reusing all buffers.
    pub fn quantize_from(&mut self, prep: &Prepared<f64>) {
        let m = prep.n_tx;
        let p = prep.order;
        assert!(
            m <= MAX_FX_ANTENNAS,
            "quantized path supports at most {MAX_FX_ANTENNAS} antennas (overflow analysis)"
        );
        self.n_tx = m;
        self.order = p;

        let mut max_abs = 0.0f64;
        for block in &prep.row_blocks {
            for l in 0..block.cols() {
                let v = block[(0, l)];
                max_abs = max_abs.max(v.re.abs()).max(v.im.abs());
            }
        }
        let alpha = coef_scale(max_abs);
        self.coef_scale = alpha;

        self.sym_re.clear();
        self.sym_im.clear();
        for pt in &prep.points {
            self.sym_re.push(quantize_i16(pt.re, SYM_SCALE));
            self.sym_im.push(quantize_i16(pt.im, SYM_SCALE));
        }

        self.levels.resize_with(m, FxLevel::default);
        for (d, level) in self.levels.iter_mut().enumerate() {
            let i = m - 1 - d;
            let block = &prep.row_blocks[d];
            level.a_re.clear();
            level.a_im.clear();
            for off in 0..d {
                let v = block[(0, 1 + off)];
                level.a_re.push(quantize_i16(v.re, alpha));
                level.a_im.push(quantize_i16(v.im, alpha));
            }
            let y = prep.ybar[i];
            level.y_re = quantize_i32(y.re, alpha * SYM_SCALE);
            level.y_im = quantize_i32(y.im, alpha * SYM_SCALE);
            let rii = block[(0, 0)];
            let (rr, ri) = (
                quantize_i16(rii.re, alpha) as i32,
                quantize_i16(rii.im, alpha) as i32,
            );
            level.seed_re.clear();
            level.seed_im.clear();
            for c in 0..p {
                let (sr, si) = (self.sym_re[c] as i32, self.sym_im[c] as i32);
                level.seed_re.push(rr * sr - ri * si);
                level.seed_im.push(rr * si + ri * sr);
            }
        }
    }

    /// Scale factor from a fixed metric back to float units:
    /// `(α·2^12)²` for ℓ2 (a squared distance), `α·2^12` for ℓ∞ (a
    /// distance).
    fn metric_unit(&self, metric: MetricKind) -> f64 {
        let unit = self.coef_scale * SYM_SCALE;
        match metric {
            MetricKind::L2 => unit * unit,
            MetricKind::LInf => unit,
        }
    }

    /// Convert a fixed path metric to float units (for
    /// `DetectionStats::final_radius_sqr`; note it is a plain distance,
    /// not squared, under ℓ∞).
    pub fn metric_to_f64(&self, metric: MetricKind, v: i64) -> f64 {
        v as f64 / self.metric_unit(metric)
    }

    /// Convert a float bound to the fixed grid (rounded up, so the fixed
    /// sphere is never smaller than the float one); infinite or
    /// overflowing bounds saturate to `i64::MAX`.
    pub fn fixed_bound(&self, metric: MetricKind, bound: f64) -> i64 {
        let scaled = bound * self.metric_unit(metric);
        if scaled.is_finite() && scaled < i64::MAX as f64 {
            scaled.ceil() as i64
        } else {
            i64::MAX
        }
    }

    /// Exact fixed-domain metric of a complete depth-order path — the
    /// scalar oracle the engines (and the admissibility proptests) are
    /// checked against.
    pub fn leaf_metric(&self, path: &[usize], metric: MetricKind) -> i64 {
        assert_eq!(path.len(), self.n_tx);
        let mut acc = 0i64;
        for (d, level) in self.levels.iter().enumerate() {
            let mut wr = 0i32;
            let mut wi = 0i32;
            for off in 0..d {
                let s = path[d - 1 - off];
                let (ar, ai) = (level.a_re[off] as i32, level.a_im[off] as i32);
                let (sr, si) = (self.sym_re[s] as i32, self.sym_im[s] as i32);
                wr += ar * sr - ai * si;
                wi += ar * si + ai * sr;
            }
            let mut inc = [0i64];
            fx_metric_update(
                level.y_re - wr,
                level.y_im - wi,
                &level.seed_re[path[d]..path[d] + 1],
                &level.seed_im[path[d]..path[d] + 1],
                metric,
                &mut inc,
            );
            acc = metric.combine(acc, inc[0]);
        }
        acc
    }

    /// Fixed-domain metric of the best leaf found by exhaustive
    /// enumeration (odometer over all `P^M` paths). Test oracle — only
    /// viable on small grids.
    pub fn brute_force_min(&self, metric: MetricKind) -> (i64, Vec<usize>) {
        let m = self.n_tx;
        let p = self.order;
        let mut path = vec![0usize; m];
        let mut best = (self.leaf_metric(&path, metric), path.clone());
        'outer: loop {
            for d in (0..m).rev() {
                path[d] += 1;
                if path[d] < p {
                    let v = self.leaf_metric(&path, metric);
                    if v < best.0 {
                        best = (v, path.clone());
                    }
                    continue 'outer;
                }
                path[d] = 0;
            }
            return best;
        }
    }
}

/// Reused integer search state (planes, frontiers, stacks) behind each
/// engine's `&self` decode entry point.
#[derive(Debug, Default)]
struct FxState {
    fx: FxPrepared,
    frontier: Vec<(i64, u32)>,
    next: Vec<(i64, u32)>,
    s_re: Vec<i16>,
    s_im: Vec<i16>,
    w_re: Vec<i32>,
    w_im: Vec<i32>,
    inc: Vec<i64>,
    /// DFS: depth-order path under construction / best leaf.
    path: Vec<usize>,
    best_path: Vec<usize>,
    children: Vec<(i64, usize)>,
    metric: MetricKind,
    /// Fused block decode: per-subcarrier quantized `ŷ_i`, level-major
    /// (`m × B`, index `depth · B + sc`). `R`'s block scale `α` depends
    /// only on the shared channel, so one quantization grid covers the
    /// whole block.
    y_multi_re: Vec<i32>,
    y_multi_im: Vec<i32>,
    /// Per-node ŷ lanes of the current fused level (node `bi` reads its
    /// subcarrier's component).
    y_lane_re: Vec<i32>,
    y_lane_im: Vec<i32>,
}

/// Integer-op count of one batched level expansion (`b` nodes of depth
/// `depth`, `p` children each): the suffix CMACs, the residual subtract,
/// and the metric reduction.
fn fx_level_ops(b: usize, depth: usize, p: usize) -> u64 {
    (b as u64) * (8 * depth as u64 + 2) + (b * p) as u64 * 5
}

/// Gather the compressed suffix-symbol planes (`depth × b`, row `off`,
/// column `node`) for a batch of arena nodes — the fixed-point analogue
/// of the float batcher's gather.
fn gather_planes(
    fx: &FxPrepared,
    arena: &crate::arena::NodeArena,
    ids: &[u32],
    depth: usize,
    s_re: &mut Vec<i16>,
    s_im: &mut Vec<i16>,
) {
    let b = ids.len();
    s_re.clear();
    s_re.resize(depth * b, 0);
    s_im.clear();
    s_im.resize(depth * b, 0);
    for (bi, &id) in ids.iter().enumerate() {
        for (off, sym) in arena.ancestry(id).enumerate() {
            s_re[off * b + bi] = fx.sym_re[sym];
            s_im[off * b + bi] = fx.sym_im[sym];
        }
    }
}

/// Expand one level of a batched sweep: quantized kernel over all nodes
/// in `st.frontier`, leaving increments in `st.inc` (`b × p` row-major).
/// Returns the integer-op count.
fn expand_frontier(st: &mut FxState, ws: &mut SearchWorkspace<f64>, depth: usize) -> u64 {
    let b = st.frontier.len();
    let p = st.fx.order;
    ws.ids.clear();
    ws.ids.extend(st.frontier.iter().map(|&(_, id)| id));
    gather_planes(
        &st.fx,
        &ws.arena,
        &ws.ids,
        depth,
        &mut st.s_re,
        &mut st.s_im,
    );
    let metric = st.metric;
    if st.w_re.len() < b {
        st.w_re.resize(b, 0);
        st.w_im.resize(b, 0);
    }
    st.inc.clear();
    st.inc.resize(b * p, 0);
    let level = &st.fx.levels[depth];
    fx_expand_level(
        &level.a_re,
        &level.a_im,
        &st.s_re,
        &st.s_im,
        b,
        level.y_re,
        level.y_im,
        &level.seed_re,
        &level.seed_im,
        metric,
        &mut st.w_re,
        &mut st.w_im,
        &mut st.inc,
    );
    fx_level_ops(b, depth, p)
}

/// Fused-block analogue of [`expand_frontier`]: `st.frontier` stacks
/// `b_count` subcarriers' frontiers subcarrier-major, `fl` nodes each,
/// and every node reads *its* subcarrier's `ŷ` lane
/// ([`fx_expand_level_multi`]). The suffix CMAC never touches `ŷ` and is
/// column-independent, so each node's increment is bit-identical to the
/// per-subcarrier [`expand_frontier`] call.
fn expand_frontier_fused(
    st: &mut FxState,
    ws: &mut SearchWorkspace<f64>,
    depth: usize,
    fl: usize,
    b_count: usize,
) -> u64 {
    let b = st.frontier.len();
    debug_assert_eq!(b, fl * b_count, "fused frontier must stack equal blocks");
    let p = st.fx.order;
    ws.ids.clear();
    ws.ids.extend(st.frontier.iter().map(|&(_, id)| id));
    gather_planes(
        &st.fx,
        &ws.arena,
        &ws.ids,
        depth,
        &mut st.s_re,
        &mut st.s_im,
    );
    st.y_lane_re.clear();
    st.y_lane_im.clear();
    for bi in 0..b {
        let sc = bi / fl;
        st.y_lane_re.push(st.y_multi_re[depth * b_count + sc]);
        st.y_lane_im.push(st.y_multi_im[depth * b_count + sc]);
    }
    let metric = st.metric;
    if st.w_re.len() < b {
        st.w_re.resize(b, 0);
        st.w_im.resize(b, 0);
    }
    st.inc.clear();
    st.inc.resize(b * p, 0);
    let level = &st.fx.levels[depth];
    fx_expand_level_multi(
        &level.a_re,
        &level.a_im,
        &st.s_re,
        &st.s_im,
        b,
        &st.y_lane_re,
        &st.y_lane_im,
        &level.seed_re,
        &level.seed_im,
        metric,
        &mut st.w_re,
        &mut st.w_im,
        &mut st.inc,
    );
    fx_level_ops(b, depth, p)
}

impl FxState {
    fn prepare(&mut self, prep: &Prepared<f64>, metric: MetricKind) {
        self.metric = metric;
        self.fx.quantize_from(prep);
    }

    /// Quantize every subcarrier's `ȳ` onto the block's product grid
    /// (level-major), for the fused sweep. Must run after
    /// [`FxState::prepare`] fixed `α` from the shared `R`.
    fn quantize_block_ys(&mut self, block: &BlockPrep<f64>, b_count: usize) {
        let m = self.fx.n_tx;
        let scale = self.fx.coef_scale * SYM_SCALE;
        self.y_multi_re.clear();
        self.y_multi_im.clear();
        for d in 0..m {
            let i = m - 1 - d;
            for sc in 0..b_count {
                let y = block.ybar_at(i, sc);
                self.y_multi_re.push(quantize_i32(y.re, scale));
                self.y_multi_im.push(quantize_i32(y.im, scale));
            }
        }
    }

    /// Point the scalar per-level `ŷ` at subcarrier `sc` of the block —
    /// the rare budget-trip path runs its greedy completion through the
    /// scalar kernels.
    fn load_sc_ys(&mut self, sc: usize, b_count: usize) {
        for (d, level) in self.fx.levels.iter_mut().enumerate() {
            level.y_re = self.y_multi_re[d * b_count + sc];
            level.y_im = self.y_multi_im[d * b_count + sc];
        }
    }
}

/// K-best (M-algorithm) sweep over the quantized problem: the cheap
/// fixed-throughput rung of the serve ladder. Level-synchronous, one
/// fused integer kernel call per level; survivors are the `K` smallest
/// fixed metrics (ties broken by arena id, so results are deterministic).
#[derive(Debug)]
pub struct QuantizedKBestSd {
    constellation: Constellation,
    /// Survivors kept per level.
    pub k: usize,
    /// Path metric (ℓ2 or ℓ∞).
    pub metric: MetricKind,
    state: Mutex<FxState>,
}

impl QuantizedKBestSd {
    /// Quantized K-best decoder with per-level list size `k` (ℓ2 metric).
    pub fn new(constellation: Constellation, k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        QuantizedKBestSd {
            constellation,
            k,
            metric: MetricKind::L2,
            state: Mutex::new(FxState::default()),
        }
    }

    /// Builder: path metric.
    pub fn with_metric(mut self, metric: MetricKind) -> Self {
        self.metric = metric;
        self
    }
}

impl PreparedDetector<f64> for QuantizedKBestSd {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    fn detect_prepared_into(
        &self,
        prep: &Prepared<f64>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        self.detect_prepared_budgeted_into(prep, radius_sqr, &DecodeBudget::UNLIMITED, ws, out);
    }

    /// The quantized K-best sweep under an anytime budget (checked once
    /// per level, like the float engine): a trip completes the best
    /// frontier node greedily in the fixed domain and flags
    /// [`SearchQuality::BudgetTruncated`]; untripped decodes are
    /// bit-identical to [`Self::detect_prepared_into`].
    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<f64>,
        _radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        ws.prepare(p, m);
        out.stats.reset(m);
        let mut st = self.state.lock().expect("quantized state poisoned");
        let st = &mut *st;
        st.prepare(prep, self.metric);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }

        st.frontier.clear();
        st.frontier.push((0, NIL));
        let mut tripped = false;
        for depth in 0..m {
            if budget.tripped_after(out.stats.nodes_generated) {
                tripped = true;
                break;
            }
            let b = st.frontier.len();
            out.stats.flops += expand_frontier(&mut *st, ws, depth);
            if let Some(t) = trace.as_deref_mut() {
                t.on_expand(depth, b as u64, (b * p) as u64);
            }
            out.stats.nodes_expanded += b as u64;
            out.stats.nodes_generated += (b * p) as u64;
            out.stats.per_level_generated[depth] += (b * p) as u64;

            let FxState {
                frontier,
                next,
                inc,
                ..
            } = &mut *st;
            next.clear();
            for (bi, &(pd, id)) in frontier.iter().enumerate() {
                for c in 0..p {
                    let child_pd = self.metric.combine(pd, inc[bi * p + c]);
                    next.push((child_pd, ws.arena.alloc(id, c)));
                }
            }
            if next.len() > self.k {
                let sorted = next.len();
                // Partial selection under the total `(metric, id)` order:
                // the unique top-K in the full sort's order, at
                // O(n + K log K) instead of O(n log n).
                keep_best(next, self.k, |a, b| a.cmp(b));
                out.stats.nodes_pruned += (sorted - self.k) as u64;
                if let Some(t) = trace.as_deref_mut() {
                    t.on_sort(depth, sorted as u64);
                    t.on_prune(depth, (sorted - self.k) as u64);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.on_accept(depth, next.len() as u64);
            }
            std::mem::swap(&mut st.frontier, &mut st.next);
        }

        if tripped {
            let spent = out.stats.nodes_generated;
            let &(pd, id) = st.frontier.iter().min().expect("frontier is never empty");
            ws.arena.path_into(id, &mut st.path);
            let final_pd = fx_greedy_tail(st, self.metric, pd, &mut out.stats);
            out.stats.leaves_reached += 1;
            out.stats.radius_updates = 1;
            out.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, final_pd);
            out.stats.flops += prep.prep_flops;
            out.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
            ws.trace = trace;
            prep.indices_from_path_into(&st.path, &mut out.indices);
            return;
        }

        out.stats.leaves_reached = st.frontier.len() as u64;
        let &(best, best_id) = st.frontier.iter().min().expect("frontier is never empty");
        out.stats.radius_updates = 1;
        out.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, best);
        out.stats.flops += prep.prep_flops;
        ws.arena.path_into(best_id, &mut ws.path_buf);
        if let Some(t) = trace.as_deref_mut() {
            t.on_radius_update(m - 1, out.stats.final_radius_sqr);
        }
        ws.trace = trace;
        prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
    }

    /// Cross-subcarrier fused block decode: one quantized K-best sweep —
    /// one integer kernel call per tree level ([`fx_expand_level_multi`])
    /// — for the whole coherence block. `α` is a function of the shared
    /// `R` alone, so every subcarrier quantizes onto one grid, and the
    /// `(metric, id)` survivor cut is bit-identical per subcarrier to the
    /// loop path (arena ids renumber monotonically within a subcarrier).
    fn detect_block_prepared_budgeted_into(
        &self,
        block: &BlockPrep<f64>,
        frames: &[FrameData],
        budget: &DecodeBudget,
        prep: &mut Prepared<f64>,
        ws: &mut SearchWorkspace<f64>,
        out: &mut [Detection],
    ) -> bool {
        if ws.trace_enabled() {
            return false; // per-decode event streams need the loop path
        }
        let b_count = frames.len();
        debug_assert_eq!(out.len(), b_count);
        if b_count == 0 {
            return true;
        }
        block.fill_prepared(0, &frames[0], &self.constellation, prep);
        let m = prep.n_tx;
        let p = prep.order;
        ws.prepare(p, m);
        for d in out.iter_mut() {
            d.stats.reset(m);
        }
        let mut st = self.state.lock().expect("quantized state poisoned");
        let st = &mut *st;
        st.prepare(prep, self.metric);
        st.quantize_block_ys(block, b_count);

        st.frontier.clear();
        st.frontier.extend((0..b_count).map(|_| (0i64, NIL)));
        let mut fl = 1usize;
        let mut tripped = false;
        for depth in 0..m {
            if budget.tripped_after(out[0].stats.nodes_generated) {
                tripped = true;
                break;
            }
            let level_ops = expand_frontier_fused(&mut *st, ws, depth, fl, b_count);
            let per_sc_ops = fx_level_ops(fl, depth, p);
            debug_assert_eq!(per_sc_ops * b_count as u64, level_ops);
            for d in out.iter_mut() {
                d.stats.flops += per_sc_ops;
                d.stats.nodes_expanded += fl as u64;
                d.stats.nodes_generated += (fl * p) as u64;
                d.stats.per_level_generated[depth] += (fl * p) as u64;
            }

            let FxState {
                frontier,
                next,
                inc,
                ..
            } = &mut *st;
            next.clear();
            for (bi, &(pd, id)) in frontier.iter().enumerate() {
                for c in 0..p {
                    let child_pd = self.metric.combine(pd, inc[bi * p + c]);
                    next.push((child_pd, ws.arena.alloc(id, c)));
                }
            }
            let gen = fl * p;
            if gen > self.k {
                for (sc, d) in out.iter_mut().enumerate() {
                    let seg = &mut next[sc * gen..(sc + 1) * gen];
                    keep_best_slice(seg, self.k, |a, b| a.cmp(b));
                    d.stats.nodes_pruned += (gen - self.k) as u64;
                }
                frontier.clear();
                for sc in 0..b_count {
                    let start = sc * gen;
                    frontier.extend_from_slice(&next[start..start + self.k]);
                }
                fl = self.k;
            } else {
                std::mem::swap(&mut st.frontier, &mut st.next);
                fl = gen;
            }
        }

        for (sc, d) in out.iter_mut().enumerate() {
            let seg = &st.frontier[sc * fl..(sc + 1) * fl];
            let &(best, best_id) = seg.iter().min().expect("frontier is never empty");
            if tripped {
                let spent = d.stats.nodes_generated;
                st.load_sc_ys(sc, b_count);
                ws.arena.path_into(best_id, &mut st.path);
                let final_pd = fx_greedy_tail(st, self.metric, best, &mut d.stats);
                d.stats.leaves_reached += 1;
                d.stats.radius_updates = 1;
                d.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, final_pd);
                d.stats.flops += prep.prep_flops;
                d.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
                prep.indices_from_path_into(&st.path, &mut d.indices);
            } else {
                d.stats.leaves_reached = fl as u64;
                d.stats.radius_updates = 1;
                d.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, best);
                d.stats.flops += prep.prep_flops;
                ws.arena.path_into(best_id, &mut ws.path_buf);
                prep.indices_from_path_into(&ws.path_buf, &mut d.indices);
            }
        }
        true
    }
}

impl_detector_via_prepared!(QuantizedKBestSd, "SD K-best fixed-i16");

/// Fixed-complexity sphere decoding on the quantized problem: the first
/// `full_expansion_levels` tree levels are fully expanded, every later
/// level keeps each node's single best child (SIC). Zero data-dependent
/// control flow — frontier sizes depend only on `(M, P, n_fe)` — which is
/// the property the FPGA schedule needs.
#[derive(Debug)]
pub struct QuantizedFsd {
    constellation: Constellation,
    /// Fully-expanded levels `n_fe`.
    pub full_expansion_levels: usize,
    /// Path metric (ℓ2 or ℓ∞).
    pub metric: MetricKind,
    state: Mutex<FxState>,
}

impl QuantizedFsd {
    /// Quantized FSD with one fully-expanded level (ℓ2 metric).
    pub fn new(constellation: Constellation) -> Self {
        QuantizedFsd {
            constellation,
            full_expansion_levels: 1,
            metric: MetricKind::L2,
            state: Mutex::new(FxState::default()),
        }
    }

    /// Builder: number of fully-expanded levels.
    pub fn with_full_expansion_levels(mut self, n_fe: usize) -> Self {
        self.full_expansion_levels = n_fe;
        self
    }

    /// Builder: path metric.
    pub fn with_metric(mut self, metric: MetricKind) -> Self {
        self.metric = metric;
        self
    }
}

impl PreparedDetector<f64> for QuantizedFsd {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    fn detect_prepared_into(
        &self,
        prep: &Prepared<f64>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        self.detect_prepared_budgeted_into(prep, radius_sqr, &DecodeBudget::UNLIMITED, ws, out);
    }

    /// The quantized FSD sweep under an anytime budget (checked once per
    /// level): a trip completes the best frontier node greedily in the
    /// fixed domain and flags [`SearchQuality::BudgetTruncated`];
    /// untripped decodes are bit-identical to
    /// [`Self::detect_prepared_into`].
    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<f64>,
        _radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        let n_fe = self.full_expansion_levels.min(m);
        ws.prepare(p, m);
        out.stats.reset(m);
        let mut st = self.state.lock().expect("quantized state poisoned");
        let st = &mut *st;
        st.prepare(prep, self.metric);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }

        st.frontier.clear();
        st.frontier.push((0, NIL));
        let mut tripped = false;
        for depth in 0..m {
            if budget.tripped_after(out.stats.nodes_generated) {
                tripped = true;
                break;
            }
            let b = st.frontier.len();
            out.stats.flops += expand_frontier(&mut *st, ws, depth);
            if let Some(t) = trace.as_deref_mut() {
                t.on_expand(depth, b as u64, (b * p) as u64);
            }
            out.stats.nodes_expanded += b as u64;
            out.stats.nodes_generated += (b * p) as u64;
            out.stats.per_level_generated[depth] += (b * p) as u64;

            let FxState {
                frontier,
                next,
                inc,
                ..
            } = &mut *st;
            next.clear();
            if depth < n_fe {
                // Full expansion: every child survives.
                for (bi, &(pd, id)) in frontier.iter().enumerate() {
                    for c in 0..p {
                        let child_pd = self.metric.combine(pd, inc[bi * p + c]);
                        next.push((child_pd, ws.arena.alloc(id, c)));
                    }
                }
            } else {
                // SIC tail: each node keeps its single best child
                // (lowest increment, ties to the lowest index).
                for (bi, &(pd, id)) in frontier.iter().enumerate() {
                    let row = &inc[bi * p..(bi + 1) * p];
                    let (c, &best_inc) = row
                        .iter()
                        .enumerate()
                        .min_by_key(|&(c, &v)| (v, c))
                        .expect("P > 0");
                    next.push((self.metric.combine(pd, best_inc), ws.arena.alloc(id, c)));
                }
                out.stats.nodes_pruned += (b * (p - 1)) as u64;
                if let Some(t) = trace.as_deref_mut() {
                    t.on_prune(depth, (b * (p - 1)) as u64);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.on_accept(depth, next.len() as u64);
            }
            std::mem::swap(&mut st.frontier, &mut st.next);
        }

        if tripped {
            let spent = out.stats.nodes_generated;
            let &(pd, id) = st.frontier.iter().min().expect("frontier is never empty");
            ws.arena.path_into(id, &mut st.path);
            let final_pd = fx_greedy_tail(st, self.metric, pd, &mut out.stats);
            out.stats.leaves_reached += 1;
            out.stats.radius_updates = 1;
            out.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, final_pd);
            out.stats.flops += prep.prep_flops;
            out.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
            ws.trace = trace;
            prep.indices_from_path_into(&st.path, &mut out.indices);
            return;
        }

        out.stats.leaves_reached = st.frontier.len() as u64;
        let &(best, best_id) = st.frontier.iter().min().expect("frontier is never empty");
        out.stats.radius_updates = 1;
        out.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, best);
        out.stats.flops += prep.prep_flops;
        ws.arena.path_into(best_id, &mut ws.path_buf);
        if let Some(t) = trace.as_deref_mut() {
            t.on_radius_update(m - 1, out.stats.final_radius_sqr);
        }
        ws.trace = trace;
        prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
    }

    /// Cross-subcarrier fused block decode: one quantized FSD sweep for
    /// the whole coherence block. FSD has *no* data-dependent control
    /// flow — the frontier is `p^min(depth, n_fe)` nodes per subcarrier
    /// at every level — so the stacked sweep is a pure scheduling change:
    /// full-expansion levels stack trivially and the SIC argmin acts per
    /// node. Bit-identical per subcarrier to the loop path.
    fn detect_block_prepared_budgeted_into(
        &self,
        block: &BlockPrep<f64>,
        frames: &[FrameData],
        budget: &DecodeBudget,
        prep: &mut Prepared<f64>,
        ws: &mut SearchWorkspace<f64>,
        out: &mut [Detection],
    ) -> bool {
        if ws.trace_enabled() {
            return false; // per-decode event streams need the loop path
        }
        let b_count = frames.len();
        debug_assert_eq!(out.len(), b_count);
        if b_count == 0 {
            return true;
        }
        block.fill_prepared(0, &frames[0], &self.constellation, prep);
        let m = prep.n_tx;
        let p = prep.order;
        let n_fe = self.full_expansion_levels.min(m);
        ws.prepare(p, m);
        for d in out.iter_mut() {
            d.stats.reset(m);
        }
        let mut st = self.state.lock().expect("quantized state poisoned");
        let st = &mut *st;
        st.prepare(prep, self.metric);
        st.quantize_block_ys(block, b_count);

        st.frontier.clear();
        st.frontier.extend((0..b_count).map(|_| (0i64, NIL)));
        let mut fl = 1usize;
        let mut tripped = false;
        for depth in 0..m {
            if budget.tripped_after(out[0].stats.nodes_generated) {
                tripped = true;
                break;
            }
            let level_ops = expand_frontier_fused(&mut *st, ws, depth, fl, b_count);
            let per_sc_ops = fx_level_ops(fl, depth, p);
            debug_assert_eq!(per_sc_ops * b_count as u64, level_ops);
            for d in out.iter_mut() {
                d.stats.flops += per_sc_ops;
                d.stats.nodes_expanded += fl as u64;
                d.stats.nodes_generated += (fl * p) as u64;
                d.stats.per_level_generated[depth] += (fl * p) as u64;
            }

            let FxState {
                frontier,
                next,
                inc,
                ..
            } = &mut *st;
            next.clear();
            if depth < n_fe {
                for (bi, &(pd, id)) in frontier.iter().enumerate() {
                    for c in 0..p {
                        let child_pd = self.metric.combine(pd, inc[bi * p + c]);
                        next.push((child_pd, ws.arena.alloc(id, c)));
                    }
                }
                fl *= p;
            } else {
                for (bi, &(pd, id)) in frontier.iter().enumerate() {
                    let row = &inc[bi * p..(bi + 1) * p];
                    let (c, &best_inc) = row
                        .iter()
                        .enumerate()
                        .min_by_key(|&(c, &v)| (v, c))
                        .expect("P > 0");
                    next.push((self.metric.combine(pd, best_inc), ws.arena.alloc(id, c)));
                }
                for d in out.iter_mut() {
                    d.stats.nodes_pruned += (fl * (p - 1)) as u64;
                }
            }
            std::mem::swap(&mut st.frontier, &mut st.next);
        }

        for (sc, d) in out.iter_mut().enumerate() {
            let seg = &st.frontier[sc * fl..(sc + 1) * fl];
            let &(best, best_id) = seg.iter().min().expect("frontier is never empty");
            if tripped {
                let spent = d.stats.nodes_generated;
                st.load_sc_ys(sc, b_count);
                ws.arena.path_into(best_id, &mut st.path);
                let final_pd = fx_greedy_tail(st, self.metric, best, &mut d.stats);
                d.stats.leaves_reached += 1;
                d.stats.radius_updates = 1;
                d.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, final_pd);
                d.stats.flops += prep.prep_flops;
                d.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
                prep.indices_from_path_into(&st.path, &mut d.indices);
            } else {
                d.stats.leaves_reached = fl as u64;
                d.stats.radius_updates = 1;
                d.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, best);
                d.stats.flops += prep.prep_flops;
                ws.arena.path_into(best_id, &mut ws.path_buf);
                prep.indices_from_path_into(&ws.path_buf, &mut d.indices);
            }
        }
        true
    }
}

impl_detector_via_prepared!(QuantizedFsd, "FSD fixed-i16");

/// Depth-first sphere decoding on the quantized problem: sorted children,
/// integer pruning (`pd > min(bound, best)` discards a subtree), restart
/// doubling on an empty sphere. Exact ML in the quantized domain — the
/// engine the admissibility proptests drive.
#[derive(Debug)]
pub struct QuantizedSphereDecoder {
    constellation: Constellation,
    /// Path metric (ℓ2 or ℓ∞).
    pub metric: MetricKind,
    /// Initial-radius policy (resolved in float, converted to the grid).
    pub initial_radius: InitialRadius,
    state: Mutex<FxState>,
}

impl QuantizedSphereDecoder {
    /// Quantized DFS decoder (ℓ2 metric, infinite initial radius).
    pub fn new(constellation: Constellation) -> Self {
        QuantizedSphereDecoder {
            constellation,
            metric: MetricKind::L2,
            initial_radius: InitialRadius::Infinite,
            state: Mutex::new(FxState::default()),
        }
    }

    /// Builder: path metric.
    pub fn with_metric(mut self, metric: MetricKind) -> Self {
        self.metric = metric;
        self
    }

    /// Builder: initial-radius policy.
    pub fn with_initial_radius(mut self, policy: InitialRadius) -> Self {
        self.initial_radius = policy;
        self
    }

    /// One bounded DFS pass with a *fixed-domain* bound: returns the best
    /// leaf whose fixed metric is ≤ `bound` (and its physical-order
    /// indices), or `None` when the sphere is empty. No restarts — this
    /// is the primitive the admissibility proptests exercise.
    pub fn detect_prepared_bounded(
        &self,
        prep: &Prepared<f64>,
        bound: i64,
    ) -> Option<(i64, Vec<usize>)> {
        let mut st = self.state.lock().expect("quantized state poisoned");
        let st = &mut *st;
        st.prepare(prep, self.metric);
        let mut stats = crate::detector::DetectionStats::default();
        stats.reset(prep.n_tx);
        let best = dfs_bounded(
            st,
            self.metric,
            bound,
            &mut FxBudget::unlimited(),
            &mut stats,
            &mut None,
        );
        best.map(|b| {
            let mut indices = Vec::new();
            prep.indices_from_path_into(&st.best_path, &mut indices);
            (b, indices)
        })
    }
}

/// Mutable budget ledger for the recursive integer DFS: the fixed-point
/// analogue of the float DFS's in-struct budget fields. `tripped` latches
/// so every frame of the recursion unwinds without charging further work.
struct FxBudget {
    max_nodes: u64,
    deadline: Option<Instant>,
    tripped: bool,
}

impl FxBudget {
    fn unlimited() -> Self {
        FxBudget {
            max_nodes: u64::MAX,
            deadline: None,
            tripped: false,
        }
    }

    fn from_budget(budget: &DecodeBudget) -> Self {
        FxBudget {
            max_nodes: budget.max_nodes,
            deadline: budget.deadline,
            tripped: false,
        }
    }

    /// Latching trip check against work already charged to `stats`. The
    /// deadline is sampled every 64 expansions so the common (node-only)
    /// budget costs one integer compare per node.
    #[inline]
    fn tripping(&mut self, stats: &crate::detector::DetectionStats) -> bool {
        if self.tripped {
            return true;
        }
        if stats.nodes_generated >= self.max_nodes
            || self
                .deadline
                .is_some_and(|d| (stats.nodes_expanded & 63) == 0 && Instant::now() >= d)
        {
            self.tripped = true;
        }
        self.tripped
    }
}

/// Greedy (SIC-style) completion to the nearest leaf when a budget trips
/// before any leaf was reached: per level, keep the single lowest-
/// increment child, ignoring the sphere bound. The fixed-point analogue
/// of `crate::dfs::greedy_leaf`; work is charged to `stats` like any
/// other expansion. Leaves the leaf in `st.best_path` and returns its
/// fixed-domain metric.
fn fx_greedy_leaf(
    st: &mut FxState,
    metric: MetricKind,
    stats: &mut crate::detector::DetectionStats,
) -> i64 {
    st.path.clear();
    let pd = fx_greedy_tail(st, metric, 0, stats);
    stats.leaves_reached += 1;
    stats.radius_updates += 1;
    st.best_path.clear();
    st.best_path.extend_from_slice(&st.path);
    st.path.clear();
    pd
}

/// Greedy SIC completion of the partial path in `st.path` down to a
/// leaf, starting from path metric `pd0`: the level-synchronous engines'
/// budget-trip completion (shared with [`fx_greedy_leaf`], which starts
/// it from the root). Charges `stats` per expansion and leaves the full
/// depth-order path in `st.path`.
fn fx_greedy_tail(
    st: &mut FxState,
    metric: MetricKind,
    pd0: i64,
    stats: &mut crate::detector::DetectionStats,
) -> i64 {
    let m = st.fx.n_tx;
    let p = st.fx.order;
    let mut pd = pd0;
    for depth in st.path.len()..m {
        stats.nodes_expanded += 1;
        stats.nodes_generated += p as u64;
        stats.per_level_generated[depth] += p as u64;
        let level = &st.fx.levels[depth];
        let mut wr = 0i32;
        let mut wi = 0i32;
        for off in 0..depth {
            let s = st.path[depth - 1 - off];
            let (ar, ai) = (level.a_re[off] as i32, level.a_im[off] as i32);
            let (sr, si) = (st.fx.sym_re[s] as i32, st.fx.sym_im[s] as i32);
            wr += ar * sr - ai * si;
            wi += ar * si + ai * sr;
        }
        st.inc.clear();
        st.inc.resize(p, 0);
        fx_metric_update(
            level.y_re - wr,
            level.y_im - wi,
            &level.seed_re,
            &level.seed_im,
            metric,
            &mut st.inc,
        );
        stats.flops += fx_level_ops(1, depth, p);
        let (c, &best_inc) = st
            .inc
            .iter()
            .enumerate()
            .min_by_key(|&(c, &v)| (v, c))
            .expect("P > 0");
        pd = metric.combine(pd, best_inc);
        st.path.push(c);
    }
    pd
}

/// Recursive bounded integer DFS over `st.fx`. Keeps a leaf when its
/// metric is ≤ the *initial* bound and < the best found so far; prunes a
/// subtree only when its prefix metric already exceeds that limit, which
/// (by metric monotonicity) can never discard a qualifying leaf.
fn dfs_bounded(
    st: &mut FxState,
    metric: MetricKind,
    bound: i64,
    budget: &mut FxBudget,
    stats: &mut crate::detector::DetectionStats,
    trace: &mut Option<Box<dyn crate::trace::TraceSink>>,
) -> Option<i64> {
    st.path.clear();
    let mut best: Option<i64> = None;
    descend(st, metric, 0, bound, budget, &mut best, stats, trace);
    best
}

#[allow(clippy::too_many_arguments)]
fn descend(
    st: &mut FxState,
    metric: MetricKind,
    pd: i64,
    bound: i64,
    budget: &mut FxBudget,
    best: &mut Option<i64>,
    stats: &mut crate::detector::DetectionStats,
    trace: &mut Option<Box<dyn crate::trace::TraceSink>>,
) {
    // Budget gate *before* charging this expansion, so an untripped
    // budget leaves every counter bit-identical to the unbudgeted run.
    if budget.tripping(stats) {
        return;
    }
    let depth = st.path.len();
    let m = st.fx.n_tx;
    let p = st.fx.order;
    stats.nodes_expanded += 1;
    stats.nodes_generated += p as u64;
    stats.per_level_generated[depth] += p as u64;
    if let Some(t) = trace.as_deref_mut() {
        t.on_expand(depth, 1, p as u64);
    }

    // Children of the current prefix: one scalar kernel row.
    let level = &st.fx.levels[depth];
    let mut wr = 0i32;
    let mut wi = 0i32;
    for off in 0..depth {
        let s = st.path[depth - 1 - off];
        let (ar, ai) = (level.a_re[off] as i32, level.a_im[off] as i32);
        let (sr, si) = (st.fx.sym_re[s] as i32, st.fx.sym_im[s] as i32);
        wr += ar * sr - ai * si;
        wi += ar * si + ai * sr;
    }
    st.inc.clear();
    st.inc.resize(p, 0);
    fx_metric_update(
        level.y_re - wr,
        level.y_im - wi,
        &level.seed_re,
        &level.seed_im,
        metric,
        &mut st.inc,
    );
    stats.flops += fx_level_ops(1, depth, p);
    st.children.clear();
    for c in 0..p {
        st.children.push((metric.combine(pd, st.inc[c]), c));
    }
    let mut children = std::mem::take(&mut st.children);
    children.sort_unstable();
    if let Some(t) = trace.as_deref_mut() {
        t.on_sort(depth, p as u64);
    }

    for (rank, &(child_pd, c)) in children.iter().enumerate() {
        if budget.tripped {
            break;
        }
        // Admissible cut: > the initial bound discards nothing ≤ bound;
        // ≥ the running best only discards non-improving leaves.
        if child_pd > bound || best.is_some_and(|b| child_pd >= b) {
            stats.nodes_pruned += (p - rank) as u64;
            if let Some(t) = trace.as_deref_mut() {
                t.on_prune(depth, (p - rank) as u64);
            }
            break;
        }
        if let Some(t) = trace.as_deref_mut() {
            t.on_accept(depth, 1);
        }
        st.path.push(c);
        if depth + 1 == m {
            stats.leaves_reached += 1;
            stats.radius_updates += 1;
            *best = Some(child_pd);
            st.best_path.clear();
            st.best_path.extend_from_slice(&st.path);
            if let Some(t) = trace.as_deref_mut() {
                t.on_radius_update(depth, child_pd as f64);
            }
        } else {
            descend(st, metric, child_pd, bound, budget, best, stats, trace);
        }
        st.path.pop();
    }
    st.children = children;
}

impl PreparedDetector<f64> for QuantizedSphereDecoder {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    fn initial_radius_sqr(&self, n_rx: usize, noise_variance: f64) -> f64 {
        self.initial_radius.resolve(n_rx, noise_variance)
    }

    fn detect_prepared_into(
        &self,
        prep: &Prepared<f64>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        self.decode_budgeted(prep, radius_sqr, &DecodeBudget::UNLIMITED, ws, out);
    }

    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<f64>,
        radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        self.decode_budgeted(prep, radius_sqr, budget, ws, out);
    }
}

impl QuantizedSphereDecoder {
    fn decode_budgeted(
        &self,
        prep: &Prepared<f64>,
        radius_sqr: f64,
        decode_budget: &DecodeBudget,
        ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        ws.prepare(prep.order, m);
        out.stats.reset(m);
        let mut st = self.state.lock().expect("quantized state poisoned");
        let st = &mut *st;
        st.prepare(prep, self.metric);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }

        let mut fx_budget = FxBudget::from_budget(decode_budget);
        let mut bound = st.fx.fixed_bound(self.metric, radius_sqr);
        let mut best;
        loop {
            best = dfs_bounded(
                st,
                self.metric,
                bound,
                &mut fx_budget,
                &mut out.stats,
                &mut trace,
            );
            if fx_budget.tripped {
                // Anytime exit: keep the best-so-far leaf, or complete
                // one greedily when the trip came before any leaf. The
                // spend is what the search cost *at the trip*; the
                // greedy completion's extra work still lands in the
                // plain counters. Never restart a truncated search.
                let spent = out.stats.nodes_generated;
                if best.is_none() {
                    best = Some(fx_greedy_leaf(st, self.metric, &mut out.stats));
                }
                out.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
                break;
            }
            if best.is_some() || bound == i64::MAX {
                break;
            }
            out.stats.restarts += 1;
            assert!(out.stats.restarts < 64, "runaway quantized restart loop");
            if let Some(t) = trace.as_deref_mut() {
                t.on_restart();
            }
            bound = bound
                .saturating_mul(InitialRadius::RESTART_GROWTH as i64)
                .max(1);
        }
        let best = best.expect("infinite sphere always contains a leaf");
        out.stats.final_radius_sqr = st.fx.metric_to_f64(self.metric, best);
        out.stats.flops += prep.prep_flops;
        ws.trace = trace;
        prep.indices_from_path_into(&st.best_path, &mut out.indices);
    }
}

impl_detector_via_prepared!(QuantizedSphereDecoder, "SD DFS fixed-i16");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::kbest::KBestSd;
    use crate::ml::MlDetector;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn quantization_is_reusable_and_deterministic() {
        let (c, fs) = frames(6, Modulation::Qam16, 12.0, 3, 1);
        let mut fx = FxPrepared::new();
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            fx.quantize_from(&prep);
            let mut fx2 = FxPrepared::new();
            fx2.quantize_from(&prep);
            assert_eq!(fx.coef_scale, fx2.coef_scale);
            assert_eq!(fx.sym_re, fx2.sym_re);
            assert_eq!(
                fx.leaf_metric(&[0; 6], MetricKind::L2),
                fx2.leaf_metric(&[0; 6], MetricKind::L2)
            );
        }
    }

    #[test]
    fn quantized_dfs_matches_brute_force_both_metrics() {
        for (seed, m) in [(2u64, Modulation::Qam4), (3, Modulation::Qam16)] {
            let (c, fs) = frames(3, m, 10.0, 8, seed);
            for metric in [MetricKind::L2, MetricKind::LInf] {
                let sd = QuantizedSphereDecoder::new(c.clone()).with_metric(metric);
                for f in &fs {
                    let prep = preprocess::<f64>(f, &c);
                    let det = sd.detect_prepared(&prep, f64::INFINITY);
                    let mut fx = FxPrepared::new();
                    fx.quantize_from(&prep);
                    let (want, _) = fx.brute_force_min(metric);
                    // Undo the physical-order mapping to score the leaf.
                    let mut tree_path = vec![0usize; prep.n_tx];
                    for (d, slot) in tree_path.iter_mut().enumerate() {
                        *slot = det.indices[prep.perm[prep.n_tx - 1 - d]];
                    }
                    let got = fx.leaf_metric(&tree_path, metric);
                    assert_eq!(got, want, "fixed metric must be ML-min");
                }
            }
        }
    }

    #[test]
    fn quantized_kbest_full_width_is_fixed_ml() {
        // K ≥ P^M keeps everything: the K-best sweep must find the same
        // fixed-domain minimum as brute force.
        let (c, fs) = frames(3, Modulation::Qam4, 8.0, 10, 4);
        for metric in [MetricKind::L2, MetricKind::LInf] {
            let kb = QuantizedKBestSd::new(c.clone(), 64).with_metric(metric);
            for f in &fs {
                let prep = preprocess::<f64>(f, &c);
                let det = kb.detect_prepared(&prep, f64::INFINITY);
                let mut fx = FxPrepared::new();
                fx.quantize_from(&prep);
                let (want, _) = fx.brute_force_min(metric);
                let tree_path: Vec<usize> = (0..prep.n_tx)
                    .map(|d| det.indices[prep.perm[prep.n_tx - 1 - d]])
                    .collect();
                assert_eq!(fx.leaf_metric(&tree_path, metric), want);
            }
        }
    }

    #[test]
    fn quantized_kbest_tracks_float_kbest_closely() {
        // Same K, same frames: the quantized K-best should almost always
        // agree with the float K-best at moderate SNR (quantization noise
        // ≪ channel noise).
        let (c, fs) = frames(8, Modulation::Qam16, 18.0, 40, 5);
        let fkb: KBestSd<f64> = KBestSd::new(c.clone(), 16);
        let qkb = QuantizedKBestSd::new(c.clone(), 16);
        let mut disagreements = 0;
        for f in &fs {
            if fkb.detect(f).indices != qkb.detect(f).indices {
                disagreements += 1;
            }
        }
        assert!(
            disagreements <= 2,
            "quantized K-best diverged from float on {disagreements}/40 frames"
        );
    }

    #[test]
    fn quantized_dfs_l2_matches_float_ml_on_most_frames() {
        let (c, fs) = frames(4, Modulation::Qam16, 14.0, 30, 6);
        let qsd = QuantizedSphereDecoder::new(c.clone());
        let ml = MlDetector::new(c.clone());
        let mut disagreements = 0;
        for f in &fs {
            if qsd.detect(f).indices != ml.detect(f).indices {
                disagreements += 1;
            }
        }
        assert!(
            disagreements <= 2,
            "quantized DFS diverged from float ML on {disagreements}/30 frames"
        );
    }

    #[test]
    fn fsd_is_fixed_complexity_and_exact_when_everything_expands() {
        let (c, fs) = frames(4, Modulation::Qam4, 6.0, 10, 7);
        // n_fe = M: FSD degenerates to exhaustive search.
        let fsd = QuantizedFsd::new(c.clone()).with_full_expansion_levels(4);
        let mut gen_counts = std::collections::HashSet::new();
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            let det = fsd.detect_prepared(&prep, f64::INFINITY);
            gen_counts.insert(det.stats.nodes_generated);
            let mut fx = FxPrepared::new();
            fx.quantize_from(&prep);
            let (want, _) = fx.brute_force_min(MetricKind::L2);
            let tree_path: Vec<usize> = (0..prep.n_tx)
                .map(|d| det.indices[prep.perm[prep.n_tx - 1 - d]])
                .collect();
            assert_eq!(fx.leaf_metric(&tree_path, MetricKind::L2), want);
        }
        assert_eq!(gen_counts.len(), 1, "workload must be data-independent");
    }

    #[test]
    fn fsd_workload_is_snr_independent() {
        let (c, lo) = frames(8, Modulation::Qam16, 4.0, 5, 8);
        let (_, hi) = frames(8, Modulation::Qam16, 24.0, 5, 8);
        let fsd = QuantizedFsd::new(c);
        let n_lo: u64 = lo.iter().map(|f| fsd.detect(f).stats.nodes_generated).sum();
        let n_hi: u64 = hi.iter().map(|f| fsd.detect(f).stats.nodes_generated).sum();
        assert_eq!(n_lo, n_hi);
    }

    #[test]
    fn bounded_search_empty_sphere_returns_none() {
        let (c, fs) = frames(3, Modulation::Qam4, 10.0, 3, 9);
        let sd = QuantizedSphereDecoder::new(c.clone());
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            let mut fx = FxPrepared::new();
            fx.quantize_from(&prep);
            let (min, _) = fx.brute_force_min(MetricKind::L2);
            if min > 0 {
                assert!(sd.detect_prepared_bounded(&prep, min - 1).is_none());
            }
            let found = sd.detect_prepared_bounded(&prep, min);
            assert_eq!(found.expect("min leaf is in the sphere").0, min);
        }
    }

    #[test]
    fn restart_loop_recovers_from_tiny_radius() {
        let (c, fs) = frames(4, Modulation::Qam4, 10.0, 5, 10);
        let tight = QuantizedSphereDecoder::new(c.clone())
            .with_initial_radius(InitialRadius::ScaledNoise(1e-6));
        let open = QuantizedSphereDecoder::new(c.clone());
        for f in &fs {
            let a = tight.detect(f);
            let b = open.detect(f);
            assert_eq!(a.indices, b.indices, "restarts must not change the answer");
            assert!(a.stats.restarts > 0, "tiny radius must actually restart");
        }
    }

    #[test]
    fn stats_invariants_hold() {
        let (c, fs) = frames(5, Modulation::Qam16, 12.0, 5, 11);
        let engines: Vec<Box<dyn PreparedDetector<f64>>> = vec![
            Box::new(QuantizedKBestSd::new(c.clone(), 8)),
            Box::new(QuantizedFsd::new(c.clone())),
            Box::new(QuantizedSphereDecoder::new(c.clone())),
        ];
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            for e in &engines {
                let det = e.detect_prepared(&prep, f64::INFINITY);
                assert_eq!(det.indices.len(), 5);
                assert!(det.stats.nodes_generated >= det.stats.nodes_pruned);
                assert!(det.stats.leaves_reached > 0);
                assert!(det.stats.flops > prep.prep_flops);
                assert!(det.stats.final_radius_sqr.is_finite());
                let total: u64 = det.stats.per_level_generated.iter().sum();
                assert_eq!(total, det.stats.nodes_generated);
            }
        }
    }

    #[test]
    fn linf_metric_is_max_of_level_increments() {
        let (c, fs) = frames(4, Modulation::Qam4, 8.0, 3, 12);
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            let mut fx = FxPrepared::new();
            fx.quantize_from(&prep);
            let path = vec![1usize, 0, 3, 2];
            let linf = fx.leaf_metric(&path, MetricKind::LInf);
            let l2 = fx.leaf_metric(&path, MetricKind::L2);
            // ℓ∞ ≤ √ℓ2 (component max vs Euclidean norm, fixed grid).
            assert!((linf as f64) <= (l2 as f64).sqrt() + 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_rejected() {
        let _ = QuantizedKBestSd::new(Constellation::new(Modulation::Qam4), 0);
    }

    /// An unexhausted budget must leave the quantized DFS bit-identical
    /// to the unbudgeted decode — indices, stats, metric bits.
    #[test]
    fn generous_budget_is_bit_identical_in_fixed_point() {
        use crate::engine::DecodeBudget;
        let (c, fs) = frames(6, Modulation::Qam16, 10.0, 10, 13);
        let sd = QuantizedSphereDecoder::new(c.clone());
        let mut ws = SearchWorkspace::new();
        let mut plain = Detection::default();
        let mut budgeted = Detection::default();
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            sd.detect_prepared_into(&prep, f64::INFINITY, &mut ws, &mut plain);
            let budget = DecodeBudget::nodes(plain.stats.nodes_generated + 1);
            sd.detect_prepared_budgeted_into(&prep, f64::INFINITY, &budget, &mut ws, &mut budgeted);
            assert_eq!(budgeted, plain, "unexhausted budget must change nothing");
            assert_eq!(
                budgeted.stats.quality,
                crate::detector::SearchQuality::Exact
            );
            sd.detect_prepared_budgeted_into(
                &prep,
                f64::INFINITY,
                &DecodeBudget::UNLIMITED,
                &mut ws,
                &mut budgeted,
            );
            assert_eq!(budgeted, plain);
        }
    }

    /// A tight budget truncates the quantized DFS, flags the result, and
    /// still returns a complete vector whose reported metric matches it.
    #[test]
    fn exhausted_budget_truncates_quantized_dfs() {
        use crate::detector::SearchQuality;
        use crate::engine::DecodeBudget;
        let (c, fs) = frames(8, Modulation::Qam4, 4.0, 20, 14);
        let sd = QuantizedSphereDecoder::new(c.clone());
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        let mut saw_truncation = false;
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            let full = sd.detect_prepared(&prep, f64::INFINITY);
            let budget = DecodeBudget::nodes(full.stats.nodes_generated / 2);
            sd.detect_prepared_budgeted_into(&prep, f64::INFINITY, &budget, &mut ws, &mut out);
            assert_eq!(out.indices.len(), 8, "always a complete vector");
            if let SearchQuality::BudgetTruncated { nodes_spent } = out.stats.quality {
                saw_truncation = true;
                assert!(nodes_spent >= budget.max_nodes);
                // The reported radius is the returned leaf's fixed metric,
                // and an anytime answer can never beat the exact one.
                let mut fx = FxPrepared::new();
                fx.quantize_from(&prep);
                let tree_path: Vec<usize> = (0..prep.n_tx)
                    .map(|d| out.indices[prep.perm[prep.n_tx - 1 - d]])
                    .collect();
                let leaf = fx.leaf_metric(&tree_path, MetricKind::L2);
                let reported = fx.fixed_bound(MetricKind::L2, out.stats.final_radius_sqr);
                assert!((leaf - reported).abs() <= 1);
                assert!(out.stats.final_radius_sqr >= full.stats.final_radius_sqr - 1e-12);
            }
        }
        assert!(saw_truncation, "half-spend budgets must trip somewhere");
    }

    /// A zero-node budget degenerates to the greedy (SIC) completion:
    /// one leaf, complete vector, flagged truncated.
    #[test]
    fn zero_budget_is_greedy_completion_in_fixed_point() {
        use crate::engine::DecodeBudget;
        let (c, fs) = frames(6, Modulation::Qam4, 10.0, 5, 15);
        let sd = QuantizedSphereDecoder::new(c.clone());
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        for f in &fs {
            let prep = preprocess::<f64>(f, &c);
            sd.detect_prepared_budgeted_into(
                &prep,
                f64::INFINITY,
                &DecodeBudget::nodes(0),
                &mut ws,
                &mut out,
            );
            assert_eq!(out.indices.len(), 6);
            assert_eq!(out.stats.leaves_reached, 1, "exactly the greedy leaf");
            assert!(out.stats.quality.is_truncated());
        }
    }
}
