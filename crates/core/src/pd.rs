//! Partial-distance (PD) evaluation — Phase 2 of the paper's pipeline.
//!
//! Expanding a node at depth `ℓ` (antenna `i = M−1−ℓ`) generates the `P`
//! children obtained by trying every constellation point for `s_i`; each
//! child's PD increment is (Eq. 6)
//!
//! ```text
//! g = | ȳ_i − Σ_{j ≥ i} r_{ij} s_j |²
//! ```
//!
//! Two evaluation strategies are provided:
//!
//! * [`EvalStrategy::Gemm`] — the paper's compute-bound refactoring: the
//!   row block `R[i, i..M]` is multiplied against the *tree-state matrix*
//!   `S` whose `P` columns are the candidate symbol vectors. The suffix
//!   sum is recomputed for every child — more flops, but one dense
//!   Level-3 kernel per expansion, which is what the FPGA systolic array
//!   and the MKL/GPU baselines execute.
//! * [`EvalStrategy::Incremental`] — the classic memory-bound SD
//!   evaluation: the suffix sum `b = ȳ_i − Σ_{j>i} r_{ij} s_j` is computed
//!   once and each child costs one scalar MAC. Used as the ablation
//!   contrast to quantify what the refactoring trades.
//!
//! Both produce identical increments (up to rounding) and are
//! cross-checked by tests.

use crate::preprocess::Prepared;
use sd_math::{Complex, Float};
use serde::{Deserialize, Serialize};

/// Child PD evaluation strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalStrategy {
    /// GEMM-based, compute-bound (the paper's formulation).
    #[default]
    Gemm,
    /// Incremental, memory-bound (classic SD).
    Incremental,
}

/// Scratch buffers reused across expansions of one decode — the software
/// analogue of the FPGA's double-buffered BRAM blocks.
pub struct PdScratch<F: Float> {
    /// Per-child metric increments (length `P`).
    pub increments: Vec<F>,
    /// Suffix symbol values `s_{i+1} … s_{M−1}` of the current path.
    suffix: Vec<Complex<F>>,
}

impl<F: Float> PdScratch<F> {
    /// Allocate scratch for a problem with branching factor `order`.
    pub fn new(order: usize, n_tx: usize) -> Self {
        PdScratch {
            increments: vec![F::ZERO; order],
            suffix: Vec::with_capacity(n_tx),
        }
    }
}

/// Evaluate the `P` child PD increments of the node identified by `path`.
///
/// `path[d]` is the constellation index fixed at depth `d`, i.e. antenna
/// `M−1−d`. The expansion happens at depth `path.len()`. Returns the
/// number of real flops charged; increments land in
/// `scratch.increments`.
pub fn eval_children<F: Float>(
    prep: &Prepared<F>,
    path: &[usize],
    strategy: EvalStrategy,
    scratch: &mut PdScratch<F>,
) -> u64 {
    let m = prep.n_tx;
    let depth = path.len();
    assert!(depth < m, "cannot expand a leaf");
    let i = m - 1 - depth; // antenna index fixed by this expansion
    let p = prep.order;
    debug_assert_eq!(scratch.increments.len(), p);

    // Gather the already-fixed suffix symbol values s_{i+1} … s_{M−1}.
    // path[d] fixed antenna M−1−d, so antenna j = M−1−d ⇔ d = M−1−j.
    scratch.suffix.clear();
    for j in i + 1..m {
        let d = m - 1 - j;
        scratch.suffix.push(prep.points[path[d]]);
    }

    let ybar_i = prep.ybar[i];
    let r_row = prep.r.row(i);
    let r_ii = r_row[i];

    match strategy {
        EvalStrategy::Gemm => {
            // One (1 × k+1) · (k+1 × P) product: for every child, the full
            // suffix sum is recomputed inside the dense kernel.
            for (c, inc) in scratch.increments.iter_mut().enumerate() {
                let mut e = Complex::zero();
                Complex::mul_acc(&mut e, r_ii, prep.points[c]);
                for (off, s) in scratch.suffix.iter().enumerate() {
                    let j = i + 1 + off;
                    Complex::mul_acc(&mut e, r_row[j], *s);
                }
                *inc = (ybar_i - e).norm_sqr();
            }
            // 8 real flops per complex MAC, (depth+1) MACs per child, plus
            // the subtraction + norm (≈ 5 flops) per child.
            (p as u64) * (8 * (depth as u64 + 1) + 5)
        }
        EvalStrategy::Incremental => {
            // Suffix sum once …
            let mut b = ybar_i;
            for (off, s) in scratch.suffix.iter().enumerate() {
                let j = i + 1 + off;
                let delta = r_row[j] * *s;
                b -= delta;
            }
            // … then one MAC per child.
            for (c, inc) in scratch.increments.iter_mut().enumerate() {
                let e = r_ii * prep.points[c];
                *inc = (b - e).norm_sqr();
            }
            8 * depth as u64 + (p as u64) * 13
        }
    }
}

/// Sort child indices ascending by increment — the paper's sorted
/// insertion (Fig. 3) that biases the traversal toward promising leaves.
/// Returns `(increment, child_index)` pairs.
pub fn sorted_children<F: Float>(increments: &[F]) -> Vec<(F, usize)> {
    let mut order: Vec<(F, usize)> = increments
        .iter()
        .copied()
        .enumerate()
        .map(|(i, g)| (g, i))
        .collect();
    order.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("non-NaN PD").then(a.1.cmp(&b.1)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{Constellation, FrameData, Modulation};

    fn setup(n: usize, m: Modulation, seed: u64) -> (Constellation, Prepared<f64>) {
        let c = Constellation::new(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = FrameData::generate(n, n, &c, 0.2, &mut rng);
        let prep = preprocess(&f, &c);
        (c, prep)
    }

    #[test]
    fn strategies_agree() {
        let (_, prep) = setup(6, Modulation::Qam16, 1);
        let mut s1 = PdScratch::new(16, 6);
        let mut s2 = PdScratch::new(16, 6);
        let paths: [&[usize]; 4] = [&[], &[3], &[3, 7], &[0, 15, 8, 2, 11]];
        for path in paths {
            eval_children(&prep, path, EvalStrategy::Gemm, &mut s1);
            eval_children(&prep, path, EvalStrategy::Incremental, &mut s2);
            for (a, b) in s1.increments.iter().zip(s2.increments.iter()) {
                assert!((a - b).abs() < 1e-10, "path {path:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn increments_match_full_metric_difference() {
        // Summing increments along a root-to-leaf path must equal the full
        // metric of the leaf (minus the constant tail).
        let (_, prep) = setup(5, Modulation::Qam4, 2);
        let mut scratch = PdScratch::new(4, 5);
        let leaf = [2usize, 0, 3, 1, 2]; // depth order (antenna 4 .. 0)
        let mut pd = 0.0f64;
        for depth in 0..5 {
            eval_children(&prep, &leaf[..depth], EvalStrategy::Gemm, &mut scratch);
            pd += scratch.increments[leaf[depth]];
        }
        // Convert path (depth order) to antenna order for full_metric.
        let mut indices = vec![0usize; 5];
        for (d, &idx) in leaf.iter().enumerate() {
            indices[5 - 1 - d] = idx;
        }
        let full = prep.full_metric(&indices);
        assert!(
            (pd + prep.tail_energy - full).abs() < 1e-9,
            "pd sum {pd} + tail != {full}"
        );
    }

    #[test]
    fn gemm_charges_more_flops_at_depth() {
        let (_, prep) = setup(8, Modulation::Qam4, 3);
        let mut scratch = PdScratch::new(4, 8);
        let path = vec![0usize, 1, 2, 3, 0, 1];
        let f_gemm = eval_children(&prep, &path, EvalStrategy::Gemm, &mut scratch);
        let f_inc = eval_children(&prep, &path, EvalStrategy::Incremental, &mut scratch);
        assert!(
            f_gemm > f_inc,
            "GEMM refactoring must be compute-heavier: {f_gemm} vs {f_inc}"
        );
    }

    #[test]
    fn root_expansion_uses_only_diagonal() {
        // At the root, increment for child c is |ȳ_{M−1} − r_{M−1,M−1}·ω_c|².
        let (_, prep) = setup(4, Modulation::Qam4, 4);
        let mut scratch = PdScratch::new(4, 4);
        eval_children(&prep, &[], EvalStrategy::Gemm, &mut scratch);
        let i = 3;
        for c in 0..4 {
            let expected = (prep.ybar[i] - prep.r[(i, i)] * prep.points[c]).norm_sqr();
            assert!((scratch.increments[c] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn sorted_children_is_ascending_and_stable() {
        let incs = vec![3.0f64, 1.0, 2.0, 1.0];
        let sorted = sorted_children(&incs);
        assert_eq!(
            sorted.iter().map(|&(_, i)| i).collect::<Vec<_>>(),
            vec![1, 3, 2, 0],
            "ties broken by index"
        );
        assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    #[should_panic(expected = "cannot expand a leaf")]
    fn leaf_expansion_rejected() {
        let (_, prep) = setup(3, Modulation::Qam4, 5);
        let mut scratch = PdScratch::new(4, 3);
        eval_children(&prep, &[0, 1, 2], EvalStrategy::Gemm, &mut scratch);
    }
}
