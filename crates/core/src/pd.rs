//! Partial-distance (PD) evaluation — Phase 2 of the paper's pipeline.
//!
//! Expanding a node at depth `ℓ` (antenna `i = M−1−ℓ`) generates the `P`
//! children obtained by trying every constellation point for `s_i`; each
//! child's PD increment is (Eq. 6)
//!
//! ```text
//! g = | ȳ_i − Σ_{j ≥ i} r_{ij} s_j |²
//! ```
//!
//! Two evaluation strategies are provided:
//!
//! * [`EvalStrategy::Gemm`] — the paper's compute-bound refactoring: the
//!   row block `R[i, i..M]` is multiplied against the *tree-state matrix*
//!   `S` whose `P` columns are the candidate symbol vectors. The suffix
//!   sum is recomputed for every child — more flops, but one dense
//!   Level-3 kernel per expansion, which is what the FPGA systolic array
//!   and the MKL/GPU baselines execute.
//! * [`EvalStrategy::Incremental`] — the classic memory-bound SD
//!   evaluation: the suffix sum `b = ȳ_i − Σ_{j>i} r_{ij} s_j` is computed
//!   once and each child costs one scalar MAC. Used as the ablation
//!   contrast to quantify what the refactoring trades.
//!
//! Both produce identical increments (up to rounding) and are
//! cross-checked by tests.
//!
//! ## Arena and batched entry points
//!
//! The arena-based searches ([`crate::arena`]) never materialize paths, so
//! [`eval_children_from_arena`] gathers the suffix straight off the parent
//! chain. Level-synchronous searches (BFS, K-best) go further with
//! [`eval_children_batch`]: the tree-state matrices of up to
//! [`MAX_BATCH`] open nodes at the same level form one `k × (B·P)` suffix
//! operand — held in compressed broadcast form, since each node's fixed
//! suffix symbol spans its `P` child columns — the output row is seeded
//! with the level-constant diagonal products `r_ii·ω_c`, and a *single*
//! [`sd_math::gemm_broadcast_acc_into`] call accumulates the suffix terms
//! — the software realization of the paper's "one GEMM per level" claim
//! instead of one small GEMM per node. The seed equals the scalar loop's
//! first `mul_acc` from zero and the kernels accumulate each output
//! column left-to-right over the inner dimension, exactly like the scalar
//! loop here, so the batched increments are bit-identical to per-node
//! evaluation.

use crate::arena::NodeArena;
use crate::preprocess::Prepared;
use sd_math::{gemm_acc_into, gemm_broadcast_acc_into, Complex, Float, GemmAlgo};
use serde::{Deserialize, Serialize};

/// Child PD evaluation strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalStrategy {
    /// GEMM-based, compute-bound (the paper's formulation).
    #[default]
    Gemm,
    /// Incremental, memory-bound (classic SD).
    Incremental,
}

/// Cap on nodes folded into one batched GEMM call. Bounds the per-chunk
/// output row `E` to `1 × (MAX_BATCH·P)` and the compressed tree-state
/// operand to `M × MAX_BATCH` — tens of KiB, matching the paper's
/// double-buffered on-chip tile budget — while leaving the kernel enough
/// columns to amortize its per-tile setup.
pub const MAX_BATCH: usize = 128;

/// Scratch buffers reused across expansions of one decode — the software
/// analogue of the FPGA's double-buffered BRAM blocks.
pub struct PdScratch<F: Float> {
    /// Per-child metric increments (length `P`).
    pub increments: Vec<F>,
    /// Per-child increments of a batched evaluation, laid out
    /// `[node 0's P children, node 1's P children, …]`.
    pub batch_increments: Vec<F>,
    /// Suffix symbol values `s_{i+1} … s_{M−1}` of the current path.
    suffix: Vec<Complex<F>>,
    /// Batched tree-state operand `S` in compressed broadcast form,
    /// `k × B`: entry `(off, bi)` is node `bi`'s fixed symbol for suffix
    /// level `off`, implicitly spanning the node's `P` child columns.
    s_mat: sd_math::Matrix<F>,
    /// Width-`P` materialization of `s_mat`, `k × (B·P)` — only built by
    /// the [`GemmAlgo::Naive`] oracle path.
    s_wide: sd_math::Matrix<F>,
    /// Batched GEMM output `E`, `1 × (B·P)`, seeded with the diagonal
    /// products `r_ii·ω_c` before the suffix rows accumulate.
    e_mat: sd_math::Matrix<F>,
    /// The level's suffix coefficients `R[i, i+1..M]`, `1 × k`.
    a_tail: sd_math::Matrix<F>,
    /// Diagonal products `r_ii·ω_c`, one per constellation point.
    seeds: Vec<Complex<F>>,
}

impl<F: Float> PdScratch<F> {
    /// Allocate scratch for a problem with branching factor `order`.
    pub fn new(order: usize, n_tx: usize) -> Self {
        let mut s = Self::empty();
        s.ensure(order, n_tx);
        s
    }

    /// Zero-capacity scratch; size it later with [`PdScratch::ensure`].
    pub fn empty() -> Self {
        PdScratch {
            increments: Vec::new(),
            batch_increments: Vec::new(),
            suffix: Vec::new(),
            s_mat: sd_math::Matrix::zeros(0, 0),
            s_wide: sd_math::Matrix::zeros(0, 0),
            e_mat: sd_math::Matrix::zeros(0, 0),
            a_tail: sd_math::Matrix::zeros(0, 0),
            seeds: Vec::new(),
        }
    }

    /// Size the buffers for branching factor `order` and tree depth
    /// `n_tx`, allocating only on growth.
    pub fn ensure(&mut self, order: usize, n_tx: usize) {
        self.increments.clear();
        self.increments.resize(order, F::ZERO);
        if self.suffix.capacity() < n_tx {
            self.suffix.reserve(n_tx - self.suffix.capacity());
        }
    }
}

/// Evaluate the `P` child PD increments of the node identified by `path`.
///
/// `path[d]` is the constellation index fixed at depth `d`, i.e. antenna
/// `M−1−d`. The expansion happens at depth `path.len()`. Returns the
/// number of real flops charged; increments land in
/// `scratch.increments`.
pub fn eval_children<F: Float>(
    prep: &Prepared<F>,
    path: &[usize],
    strategy: EvalStrategy,
    scratch: &mut PdScratch<F>,
) -> u64 {
    let m = prep.n_tx;
    let depth = path.len();
    assert!(depth < m, "cannot expand a leaf");
    // Gather the already-fixed suffix symbol values s_{i+1} … s_{M−1},
    // deepest-first. path[d] fixed antenna M−1−d, so antenna j = M−1−d
    // ⇔ d = M−1−j: walking j upward from i+1 is walking d downward.
    scratch.suffix.clear();
    for off in 0..depth {
        scratch.suffix.push(prep.points[path[depth - 1 - off]]);
    }
    eval_suffix(prep, depth, strategy, scratch)
}

/// [`eval_children`] for an arena node — the suffix is read straight off
/// the parent chain (which yields symbols deepest-first, exactly the PD
/// suffix order), so no path is ever materialized.
pub fn eval_children_from_arena<F: Float>(
    prep: &Prepared<F>,
    arena: &NodeArena,
    node: u32,
    strategy: EvalStrategy,
    scratch: &mut PdScratch<F>,
) -> u64 {
    let m = prep.n_tx;
    let depth = arena.depth(node);
    assert!(depth < m, "cannot expand a leaf");
    scratch.suffix.clear();
    for sym in arena.ancestry(node) {
        scratch.suffix.push(prep.points[sym]);
    }
    eval_suffix(prep, depth, strategy, scratch)
}

/// Shared core of the scalar entry points: `scratch.suffix` already holds
/// `s_{i+1} … s_{M−1}` (deepest-first); evaluate all `P` increments.
fn eval_suffix<F: Float>(
    prep: &Prepared<F>,
    depth: usize,
    strategy: EvalStrategy,
    scratch: &mut PdScratch<F>,
) -> u64 {
    let m = prep.n_tx;
    let i = m - 1 - depth; // antenna index fixed by this expansion
    let p = prep.order;
    debug_assert_eq!(scratch.increments.len(), p);
    debug_assert_eq!(scratch.suffix.len(), depth);

    let ybar_i = prep.ybar[i];
    let r_row = prep.r.row(i);
    let r_ii = r_row[i];

    match strategy {
        EvalStrategy::Gemm => {
            // One (1 × k+1) · (k+1 × P) product: for every child, the full
            // suffix sum is recomputed inside the dense kernel.
            for (c, inc) in scratch.increments.iter_mut().enumerate() {
                let mut e = Complex::zero();
                Complex::mul_acc(&mut e, r_ii, prep.points[c]);
                for (off, s) in scratch.suffix.iter().enumerate() {
                    let j = i + 1 + off;
                    Complex::mul_acc(&mut e, r_row[j], *s);
                }
                *inc = (ybar_i - e).norm_sqr();
            }
            // 8 real flops per complex MAC, (depth+1) MACs per child, plus
            // the subtraction + norm (≈ 5 flops) per child.
            (p as u64) * (8 * (depth as u64 + 1) + 5)
        }
        EvalStrategy::Incremental => {
            // Suffix sum once …
            let mut b = ybar_i;
            for (off, s) in scratch.suffix.iter().enumerate() {
                let j = i + 1 + off;
                let delta = r_row[j] * *s;
                b -= delta;
            }
            // … then one MAC per child.
            for (c, inc) in scratch.increments.iter_mut().enumerate() {
                let e = r_ii * prep.points[c];
                *inc = (b - e).norm_sqr();
            }
            8 * depth as u64 + (p as u64) * 13
        }
    }
}

/// Evaluate the children of a whole *level* of arena nodes with batched
/// GEMM: the tree-state matrices of all `B = nodes.len()` open nodes form
/// one `k × (B·P)` suffix operand `S`, held in compressed broadcast form
/// (`k × B` — each node's fixed suffix symbol spans its `P` child
/// columns); the output `E` is seeded with the level-constant diagonal
/// products `r_ii·ω_c` and the suffix rows accumulate on top via one
/// [`sd_math::gemm_broadcast_acc_into`] call against `A' = R[i, i+1..M]`,
/// in chunks of at most [`MAX_BATCH`] nodes. The compressed operand is
/// what makes the batch fast: materializing `S` costs `P ×` more stores
/// than the whole fma chain (see `sd-math`'s kernel docs), and the
/// broadcast kernel is bit-identical to materializing
/// (`sd_math::fill_tiles`) and calling [`sd_math::gemm_acc_into`] — a
/// property both crates' tests pin down exactly.
///
/// All nodes must sit at the same tree depth (level-synchronous searches
/// guarantee this). Results land in `scratch.batch_increments`, child `c`
/// of `nodes[b]` at index `b·P + c`, and are bit-identical to evaluating
/// each node with [`eval_children_from_arena`] under
/// [`EvalStrategy::Gemm`]: the seed is the scalar loop's first `mul_acc`
/// from zero, and every kernel accumulates each output column
/// left-to-right over the inner dimension, matching the scalar loop's
/// summation order term for term.
///
/// Returns the flops charged — exactly `B ×` the per-node GEMM formula,
/// so batching never changes [`crate::DetectionStats`] accounting.
pub fn eval_children_batch<F: Float>(
    prep: &Prepared<F>,
    arena: &NodeArena,
    nodes: &[u32],
    algo: GemmAlgo,
    scratch: &mut PdScratch<F>,
) -> u64 {
    let m = prep.n_tx;
    let p = prep.order;
    assert!(!nodes.is_empty(), "empty batch");
    let depth = arena.depth(nodes[0]);
    assert!(depth < m, "cannot expand a leaf");
    let k1 = depth + 1;
    let a_row = &prep.row_blocks[depth];
    debug_assert_eq!(a_row.shape(), (1, k1));
    let ybar_i = prep.ybar[m - 1 - depth];
    let r_ii = a_row.as_slice()[0];

    // The diagonal term r_ii·ω_c is the same for every node of the level:
    // compute the P seed products once (the scalar loop's first
    // `mul_acc` from zero, so seeding E with them and accumulating the
    // suffix rows is bit-identical to the full per-node product).
    scratch.seeds.clear();
    for &point in prep.points.iter() {
        let mut e = Complex::zero();
        Complex::mul_acc(&mut e, r_ii, point);
        scratch.seeds.push(e);
    }
    // The level's suffix coefficients A' = R[i, i+1..M].
    scratch.a_tail.resize_for_overwrite(1, depth);
    scratch
        .a_tail
        .as_mut_slice()
        .copy_from_slice(&a_row.as_slice()[1..]);

    // Grow-only resize: every element is overwritten chunk by chunk below.
    if scratch.batch_increments.len() != nodes.len() * p {
        scratch.batch_increments.clear();
        scratch.batch_increments.resize(nodes.len() * p, F::ZERO);
    }

    for (chunk_idx, chunk) in nodes.chunks(MAX_BATCH).enumerate() {
        let b = chunk.len();
        let n = b * p;
        // Every S entry and every E entry is written below, so neither
        // operand pays `resize`'s zero-fill pass.
        scratch.s_mat.resize_for_overwrite(depth, b);
        scratch.e_mat.resize_for_overwrite(1, n);
        // Gather each node's suffix (ancestry is deepest-first = the PD
        // suffix order) straight into the compressed operand: row `off`,
        // column `bi` holds node `bi`'s fixed symbol for suffix level
        // `off`, implicitly spanning the node's P child columns.
        let s = scratch.s_mat.as_mut_slice();
        for (bi, &node) in chunk.iter().enumerate() {
            debug_assert_eq!(arena.depth(node), depth, "batch must be level-synchronous");
            for (off, sym) in arena.ancestry(node).enumerate() {
                s[off * b + bi] = prep.points[sym];
            }
        }
        // Seed E with the diagonal products, tiled across the batch.
        for tile in scratch.e_mat.as_mut_slice().chunks_exact_mut(p) {
            tile.copy_from_slice(&scratch.seeds);
        }
        // One accumulate-GEMM per level: E += A' × (S ⊗ 1ᵀ_P). At the
        // root (depth 0) the operands are empty and E is already the
        // answer. `Naive` materializes the width-P operand and runs the
        // reference kernel — the oracle formulation the fast paths are
        // tested against; `Blocked`/`Parallel` consume the compressed
        // operand directly.
        match algo {
            GemmAlgo::Naive => {
                scratch.s_wide.resize_for_overwrite(depth, n);
                let sw = scratch.s_wide.as_mut_slice();
                let sv = scratch.s_mat.as_slice();
                for off in 0..depth {
                    sd_math::fill_tiles(
                        &mut sw[off * n..(off + 1) * n],
                        &sv[off * b..(off + 1) * b],
                        p,
                    );
                }
                gemm_acc_into(&scratch.a_tail, &scratch.s_wide, &mut scratch.e_mat, algo);
            }
            GemmAlgo::Blocked | GemmAlgo::Parallel => {
                gemm_broadcast_acc_into(&scratch.a_tail, &scratch.s_mat, p, &mut scratch.e_mat);
            }
        }
        let e = scratch.e_mat.as_slice();
        let base = chunk_idx * MAX_BATCH * p;
        let out = &mut scratch.batch_increments[base..base + n];
        for (o, &ev) in out.iter_mut().zip(e) {
            *o = (ybar_i - ev).norm_sqr();
        }
    }

    (nodes.len() as u64) * (p as u64) * (8 * (depth as u64 + 1) + 5)
}

/// Cross-subcarrier fused form of [`eval_children_batch`]: one GEMM batch
/// per tree level for a whole coherence block.
///
/// `nodes` stacks the same-depth frontiers of `nodes.len() / stride`
/// subcarriers, subcarrier-major with exactly `stride` nodes each;
/// `ybars[sc]` is subcarrier `sc`'s received component `ȳ_i` for this
/// level. All subcarriers must share `prep`'s channel factorization
/// (`R`, hence `row_blocks`, `points` and the seeds) — the coherence-block
/// invariant — because the GEMM operand stacks their tree states against
/// the ONE suffix row `A' = R[i, i+1..M]`.
///
/// Exactness: ȳ never enters the GEMM. Every output column accumulates
/// independently (the stacking lemma pinned by
/// [`sd_math::gemm_broadcast_acc_stacked_into`]), and the per-subcarrier
/// ȳ is subtracted column-wise afterwards, so node `bi`'s increments are
/// bit-identical to a per-subcarrier [`eval_children_batch`] call on its
/// own frontier — chunk boundaries included, since chunking only splits
/// columns. Chunks are drawn at whole-subcarrier granularity (the largest
/// multiple of `stride` under [`MAX_BATCH`], or one subcarrier when
/// `stride` exceeds it) so each kernel call is a clean stack of blocks.
///
/// Returns the flops charged for the whole fused level — linear in the
/// node count, so callers can attribute `stride · P · (8(depth+1) + 5)`
/// to each subcarrier and reproduce the per-subcarrier accounting
/// exactly.
pub fn eval_children_batch_fused<F: Float>(
    prep: &Prepared<F>,
    arena: &NodeArena,
    nodes: &[u32],
    ybars: &[Complex<F>],
    stride: usize,
    algo: GemmAlgo,
    scratch: &mut PdScratch<F>,
) -> u64 {
    let m = prep.n_tx;
    let p = prep.order;
    assert!(!nodes.is_empty(), "empty batch");
    assert!(stride > 0, "empty per-subcarrier frontier");
    assert_eq!(
        nodes.len(),
        ybars.len() * stride,
        "fused batch must stack equal frontiers"
    );
    let depth = arena.depth(nodes[0]);
    assert!(depth < m, "cannot expand a leaf");
    let a_row = &prep.row_blocks[depth];
    debug_assert_eq!(a_row.shape(), (1, depth + 1));
    let r_ii = a_row.as_slice()[0];

    scratch.seeds.clear();
    for &point in prep.points.iter() {
        let mut e = Complex::zero();
        Complex::mul_acc(&mut e, r_ii, point);
        scratch.seeds.push(e);
    }
    scratch.a_tail.resize_for_overwrite(1, depth);
    scratch
        .a_tail
        .as_mut_slice()
        .copy_from_slice(&a_row.as_slice()[1..]);

    if scratch.batch_increments.len() != nodes.len() * p {
        scratch.batch_increments.clear();
        scratch.batch_increments.resize(nodes.len() * p, F::ZERO);
    }

    // Whole subcarriers per chunk: ⌊MAX_BATCH / stride⌋ of them, floored
    // at one so oversized frontiers still fuse (one block per call).
    let sc_per_chunk = (MAX_BATCH / stride).max(1);
    let chunk_nodes = sc_per_chunk * stride;
    for (chunk_idx, chunk) in nodes.chunks(chunk_nodes).enumerate() {
        let b = chunk.len();
        let n = b * p;
        scratch.s_mat.resize_for_overwrite(depth, b);
        scratch.e_mat.resize_for_overwrite(1, n);
        let s = scratch.s_mat.as_mut_slice();
        for (bi, &node) in chunk.iter().enumerate() {
            debug_assert_eq!(arena.depth(node), depth, "batch must be level-synchronous");
            for (off, sym) in arena.ancestry(node).enumerate() {
                s[off * b + bi] = prep.points[sym];
            }
        }
        for tile in scratch.e_mat.as_mut_slice().chunks_exact_mut(p) {
            tile.copy_from_slice(&scratch.seeds);
        }
        match algo {
            GemmAlgo::Naive => {
                scratch.s_wide.resize_for_overwrite(depth, n);
                let sw = scratch.s_wide.as_mut_slice();
                let sv = scratch.s_mat.as_slice();
                for off in 0..depth {
                    sd_math::fill_tiles(
                        &mut sw[off * n..(off + 1) * n],
                        &sv[off * b..(off + 1) * b],
                        p,
                    );
                }
                gemm_acc_into(&scratch.a_tail, &scratch.s_wide, &mut scratch.e_mat, algo);
            }
            GemmAlgo::Blocked | GemmAlgo::Parallel => {
                sd_math::gemm_broadcast_acc_stacked_into(
                    &scratch.a_tail,
                    &scratch.s_mat,
                    p,
                    b / stride,
                    &mut scratch.e_mat,
                );
            }
        }
        let e = scratch.e_mat.as_slice();
        let base = chunk_idx * chunk_nodes * p;
        let out = &mut scratch.batch_increments[base..base + n];
        for (local_bi, node_out) in out.chunks_exact_mut(p).enumerate() {
            let sc = (chunk_idx * chunk_nodes + local_bi) / stride;
            let ybar_i = ybars[sc];
            for (o, &ev) in node_out.iter_mut().zip(&e[local_bi * p..]) {
                *o = (ybar_i - ev).norm_sqr();
            }
        }
    }

    (nodes.len() as u64) * (p as u64) * (8 * (depth as u64 + 1) + 5)
}

/// Greedy (successive-interference-cancellation) completion of a partial
/// path: extend `path` to a leaf by taking the locally best child at each
/// remaining level, charging the search stats as it goes. Returns the
/// completed leaf's partial distance, starting from `pd0`.
///
/// This is the shared best-so-far finisher of the budget-truncated
/// breadth-first engines — both the per-subcarrier and the fused block
/// paths call it, which is what keeps their truncated outputs
/// bit-identical. Ties take the lowest child index (strict `<` scan).
pub(crate) fn greedy_tail<F: Float>(
    prep: &Prepared<F>,
    path: &mut Vec<usize>,
    pd0: F,
    stats: &mut crate::detector::DetectionStats,
    scratch: &mut PdScratch<F>,
) -> F {
    let m = prep.n_tx;
    let p = prep.order;
    let mut pd = pd0;
    for depth in path.len()..m {
        stats.flops += eval_children(prep, path, EvalStrategy::Gemm, scratch);
        stats.nodes_expanded += 1;
        stats.nodes_generated += p as u64;
        stats.per_level_generated[depth] += p as u64;
        let mut best_c = 0usize;
        let mut best_inc = scratch.increments[0];
        for (c, &inc) in scratch.increments.iter().enumerate().skip(1) {
            if inc < best_inc {
                best_c = c;
                best_inc = inc;
            }
        }
        pd += best_inc;
        path.push(best_c);
    }
    pd
}

/// Fill `out` with `(increment, child_index)` pairs in natural child
/// order, reusing its allocation.
pub fn children_into<F: Float>(increments: &[F], out: &mut Vec<(F, usize)>) {
    out.clear();
    out.extend(increments.iter().copied().enumerate().map(|(i, g)| (g, i)));
}

/// [`sorted_children`] into a caller-owned buffer — the allocation-free
/// form the arena searches use. NaN increments (possible in reduced
/// precision) order last via `total_cmp` instead of panicking.
pub fn sorted_children_into<F: Float>(increments: &[F], out: &mut Vec<(F, usize)>) {
    children_into(increments, out);
    out.sort_unstable_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()).then(a.1.cmp(&b.1)));
}

/// Sort child indices ascending by increment — the paper's sorted
/// insertion (Fig. 3) that biases the traversal toward promising leaves.
/// Returns `(increment, child_index)` pairs.
pub fn sorted_children<F: Float>(increments: &[F]) -> Vec<(F, usize)> {
    let mut order = Vec::new();
    sorted_children_into(increments, &mut order);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::NIL;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{Constellation, FrameData, Modulation};

    fn setup(n: usize, m: Modulation, seed: u64) -> (Constellation, Prepared<f64>) {
        let c = Constellation::new(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = FrameData::generate(n, n, &c, 0.2, &mut rng);
        let prep = preprocess(&f, &c);
        (c, prep)
    }

    #[test]
    fn strategies_agree() {
        let (_, prep) = setup(6, Modulation::Qam16, 1);
        let mut s1 = PdScratch::new(16, 6);
        let mut s2 = PdScratch::new(16, 6);
        let paths: [&[usize]; 4] = [&[], &[3], &[3, 7], &[0, 15, 8, 2, 11]];
        for path in paths {
            eval_children(&prep, path, EvalStrategy::Gemm, &mut s1);
            eval_children(&prep, path, EvalStrategy::Incremental, &mut s2);
            for (a, b) in s1.increments.iter().zip(s2.increments.iter()) {
                assert!((a - b).abs() < 1e-10, "path {path:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn arena_eval_is_bit_identical_to_path_eval() {
        let (_, prep) = setup(6, Modulation::Qam16, 6);
        let mut arena = NodeArena::new();
        let mut s1 = PdScratch::new(16, 6);
        let mut s2 = PdScratch::new(16, 6);
        let path = [0usize, 15, 8, 2, 11];
        let mut id = NIL;
        for strategy in [EvalStrategy::Gemm, EvalStrategy::Incremental] {
            for depth in 0..=path.len() {
                let f1 = eval_children(&prep, &path[..depth], strategy, &mut s1);
                let f2 = eval_children_from_arena(&prep, &arena, id, strategy, &mut s2);
                assert_eq!(f1, f2, "flops must match");
                assert_eq!(s1.increments, s2.increments, "depth {depth}");
                if depth < path.len() {
                    id = arena.alloc(id, path[depth]);
                }
            }
            arena.clear();
            id = NIL;
        }
    }

    #[test]
    fn batched_eval_is_bit_identical_per_node() {
        // A level of heterogeneous nodes: batch once, compare every node's
        // slice against its scalar arena evaluation, bit for bit.
        let (_, prep) = setup(7, Modulation::Qam16, 7);
        let p = 16;
        let mut arena = NodeArena::new();
        let mut nodes = Vec::new();
        for c0 in 0..8 {
            let a = arena.alloc(NIL, c0);
            let b = arena.alloc(a, (c0 + 5) % p);
            nodes.push(arena.alloc(b, (3 * c0) % p));
        }
        let mut batch = PdScratch::new(p, 7);
        let mut scalar = PdScratch::new(p, 7);
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            let flops = eval_children_batch(&prep, &arena, &nodes, algo, &mut batch);
            let mut scalar_flops = 0;
            for (bi, &node) in nodes.iter().enumerate() {
                scalar_flops +=
                    eval_children_from_arena(&prep, &arena, node, EvalStrategy::Gemm, &mut scalar);
                for c in 0..p {
                    assert_eq!(
                        batch.batch_increments[bi * p + c],
                        scalar.increments[c],
                        "{algo:?} node {bi} child {c} must be bit-identical"
                    );
                }
            }
            assert_eq!(
                flops, scalar_flops,
                "{algo:?}: batching must not change accounting"
            );
        }
    }

    #[test]
    fn batched_eval_chunks_beyond_max_batch() {
        // More level-1 nodes than MAX_BATCH forces the chunk loop; QAM-4
        // at depth 1 keeps it cheap (root fan-out repeated).
        let (_, prep) = setup(4, Modulation::Qam4, 8);
        let p = 4;
        let mut arena = NodeArena::new();
        let nodes: Vec<u32> = (0..MAX_BATCH + 37)
            .map(|i| arena.alloc(NIL, i % p))
            .collect();
        let mut batch = PdScratch::new(p, 4);
        let mut scalar = PdScratch::new(p, 4);
        eval_children_batch(&prep, &arena, &nodes, GemmAlgo::Blocked, &mut batch);
        assert_eq!(batch.batch_increments.len(), nodes.len() * p);
        for (bi, &node) in nodes.iter().enumerate() {
            eval_children_from_arena(&prep, &arena, node, EvalStrategy::Gemm, &mut scalar);
            assert_eq!(
                &batch.batch_increments[bi * p..(bi + 1) * p],
                &scalar.increments[..],
                "chunk boundary node {bi}"
            );
        }
    }

    #[test]
    fn fused_eval_is_bit_identical_per_subcarrier() {
        // Stack several subcarriers' frontiers (each with its own ȳ) and
        // compare every subcarrier's slice against its own
        // eval_children_batch run — bit for bit, across chunk boundaries.
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 6;
        let p = 4;
        let base = FrameData::generate(n, n, &c, 0.1, &mut rng);
        // Per-subcarrier preps sharing one H: regenerate y on a fixed H.
        let preps: Vec<Prepared<f64>> = (0..5)
            .map(|_| {
                let mut f = FrameData::generate(n, n, &c, 0.1, &mut rng);
                f.h = base.h.clone();
                preprocess(&f, &c)
            })
            .collect();
        // stride chosen so MAX_BATCH is not a multiple: forces the fused
        // chunking to realign at whole-subcarrier boundaries.
        let stride = 48;
        let mut arena = NodeArena::new();
        let mut nodes = Vec::new();
        for sc in 0..preps.len() {
            for i in 0..stride {
                let a = arena.alloc(NIL, (sc + i) % p);
                let b = arena.alloc(a, (3 * i) % p);
                nodes.push(arena.alloc(b, (i + 2 * sc) % p));
            }
        }
        let depth = 3;
        let i_ant = n - 1 - depth;
        let ybars: Vec<_> = preps.iter().map(|pr| pr.ybar[i_ant]).collect();
        let mut fused = PdScratch::new(p, n);
        let mut per_sc = PdScratch::new(p, n);
        for algo in [GemmAlgo::Naive, GemmAlgo::Blocked, GemmAlgo::Parallel] {
            let flops = eval_children_batch_fused(
                &preps[0], &arena, &nodes, &ybars, stride, algo, &mut fused,
            );
            let mut want_flops = 0;
            for (sc, pr) in preps.iter().enumerate() {
                want_flops += eval_children_batch(
                    pr,
                    &arena,
                    &nodes[sc * stride..(sc + 1) * stride],
                    algo,
                    &mut per_sc,
                );
                assert_eq!(
                    &fused.batch_increments[sc * stride * p..(sc + 1) * stride * p],
                    &per_sc.batch_increments[..],
                    "{algo:?} subcarrier {sc} must be bit-identical"
                );
            }
            assert_eq!(
                flops, want_flops,
                "{algo:?}: fusion must not change accounting"
            );
        }
    }

    #[test]
    fn increments_match_full_metric_difference() {
        // Summing increments along a root-to-leaf path must equal the full
        // metric of the leaf (minus the constant tail).
        let (_, prep) = setup(5, Modulation::Qam4, 2);
        let mut scratch = PdScratch::new(4, 5);
        let leaf = [2usize, 0, 3, 1, 2]; // depth order (antenna 4 .. 0)
        let mut pd = 0.0f64;
        for depth in 0..5 {
            eval_children(&prep, &leaf[..depth], EvalStrategy::Gemm, &mut scratch);
            pd += scratch.increments[leaf[depth]];
        }
        // Convert path (depth order) to antenna order for full_metric.
        let mut indices = vec![0usize; 5];
        for (d, &idx) in leaf.iter().enumerate() {
            indices[5 - 1 - d] = idx;
        }
        let full = prep.full_metric(&indices);
        assert!(
            (pd + prep.tail_energy - full).abs() < 1e-9,
            "pd sum {pd} + tail != {full}"
        );
    }

    #[test]
    fn gemm_charges_more_flops_at_depth() {
        let (_, prep) = setup(8, Modulation::Qam4, 3);
        let mut scratch = PdScratch::new(4, 8);
        let path = vec![0usize, 1, 2, 3, 0, 1];
        let f_gemm = eval_children(&prep, &path, EvalStrategy::Gemm, &mut scratch);
        let f_inc = eval_children(&prep, &path, EvalStrategy::Incremental, &mut scratch);
        assert!(
            f_gemm > f_inc,
            "GEMM refactoring must be compute-heavier: {f_gemm} vs {f_inc}"
        );
    }

    #[test]
    fn root_expansion_uses_only_diagonal() {
        // At the root, increment for child c is |ȳ_{M−1} − r_{M−1,M−1}·ω_c|².
        let (_, prep) = setup(4, Modulation::Qam4, 4);
        let mut scratch = PdScratch::new(4, 4);
        eval_children(&prep, &[], EvalStrategy::Gemm, &mut scratch);
        let i = 3;
        for c in 0..4 {
            let expected = (prep.ybar[i] - prep.r[(i, i)] * prep.points[c]).norm_sqr();
            assert!((scratch.increments[c] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn sorted_children_is_ascending_and_stable() {
        let incs = vec![3.0f64, 1.0, 2.0, 1.0];
        let sorted = sorted_children(&incs);
        assert_eq!(
            sorted.iter().map(|&(_, i)| i).collect::<Vec<_>>(),
            vec![1, 3, 2, 0],
            "ties broken by index"
        );
        assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn sorted_children_tolerates_nan() {
        // A NaN increment (overflow in reduced precision) must order last,
        // not panic the decode.
        let incs = vec![2.0f64, f64::NAN, 1.0];
        let sorted = sorted_children(&incs);
        assert_eq!(sorted[0].1, 2);
        assert_eq!(sorted[1].1, 0);
        assert!(sorted[2].0.is_nan());
    }

    #[test]
    #[should_panic(expected = "cannot expand a leaf")]
    fn leaf_expansion_rejected() {
        let (_, prep) = setup(3, Modulation::Qam4, 5);
        let mut scratch = PdScratch::new(4, 3);
        eval_children(&prep, &[0, 1, 2], EvalStrategy::Gemm, &mut scratch);
    }
}
