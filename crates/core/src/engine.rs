//! The prepared-decode engine trait every detector implements.
//!
//! One abstraction replaces the per-file wrapper zoo: a detector supplies
//! a single scratch-reusing entry point ([`PreparedDetector::detect_prepared_into`])
//! plus a handful of small policy hooks (constellation, column ordering,
//! initial radius, custom preprocessing), and the trait derives every
//! convenience from them — the allocating one-shot decode, the workspace
//! variant, and the frame-level entry points that the
//! [`Detector`](crate::detector::Detector) /
//! [`WorkspaceDetector`](crate::batch::WorkspaceDetector) bridges forward
//! to. Higher layers (the serve tier registry, batch drivers, benches)
//! program against this trait and treat every member of the detector zoo
//! interchangeably.
//!
//! The contract mirrors the serving runtime's steady-state discipline:
//! `detect_prepared_into` must draw all search buffers from the passed
//! [`SearchWorkspace`] and write into the recycled [`Detection`], so a
//! caller that reuses `prep`/`ws`/`out` decodes without per-request heap
//! allocation (asserted by `tests/alloc_free.rs` for the tree decoders).

use crate::arena::SearchWorkspace;
use crate::detector::Detection;
use crate::preprocess::{
    preprocess_ordered_into, BlockPrep, ColumnOrdering, PrepScratch, Prepared,
};
use sd_math::Float;
use sd_wireless::{Constellation, FrameData};
use std::time::Instant;

/// An anytime-decoding budget: how much search a decode is allowed to
/// spend before returning the best-so-far leaf.
///
/// A budget never *changes* the search — it only stops it. An engine
/// running under a budget expands nodes in exactly the order it would
/// without one, so whenever the budget is not hit the output (indices,
/// stats, metric bits) is bit-identical to the unbudgeted decode and
/// [`SearchQuality::Exact`](crate::detector::SearchQuality) is reported.
/// When the budget trips, the engine stops descending, completes any
/// partial path greedily if no leaf has been reached yet, and flags the
/// result [`SearchQuality::BudgetTruncated`](crate::detector::SearchQuality).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecodeBudget {
    /// Maximum nodes the search may generate before truncating.
    /// `u64::MAX` means unlimited.
    pub max_nodes: u64,
    /// Wall-clock cutoff; checked coarsely (every few hundred nodes), so
    /// it is a deadline *guard*, not a precise timer. `None` means no
    /// deadline.
    pub deadline: Option<Instant>,
}

impl DecodeBudget {
    /// The no-op budget: unlimited nodes, no deadline. Decoding under it
    /// is bit-identical to not passing a budget at all.
    pub const UNLIMITED: DecodeBudget = DecodeBudget {
        max_nodes: u64::MAX,
        deadline: None,
    };

    /// A pure node-count budget.
    pub fn nodes(max_nodes: u64) -> Self {
        DecodeBudget {
            max_nodes,
            deadline: None,
        }
    }

    /// `true` when this budget can never trip.
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes == u64::MAX && self.deadline.is_none()
    }

    /// Whether a search that has generated `nodes_generated` nodes must
    /// stop now: the node cap is spent or the deadline has passed. The
    /// level-synchronous engines call this once per tree level (their
    /// deadline granularity), the depth-first ones every few dozen nodes.
    pub fn tripped_after(&self, nodes_generated: u64) -> bool {
        if self.is_unlimited() {
            return false;
        }
        nodes_generated >= self.max_nodes || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

impl Default for DecodeBudget {
    fn default() -> Self {
        DecodeBudget::UNLIMITED
    }
}

/// A detector that decodes a QR-[`Prepared`] problem into caller-owned
/// buffers.
///
/// Required: [`Self::detect_prepared_into`] and [`Self::constellation`].
/// Everything else has a default that matches the common tree-decoder
/// shape (natural ordering, infinite initial radius, shared QR
/// preprocessing); detectors with different needs override the hooks —
/// e.g. the linear family replaces [`Self::prepare_frame_into`] with a
/// QR-free frame load, and the real-valued decomposition builds its
/// doubled real system there.
pub trait PreparedDetector<F: Float>: Send + Sync {
    /// Decode a prepared problem, drawing every search buffer from `ws`
    /// and writing the decision + statistics into `out` (which is fully
    /// overwritten). `radius_sqr` is the initial squared sphere radius;
    /// detectors without a radius notion ignore it.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    );

    /// The constellation this detector decides over.
    fn constellation(&self) -> &Constellation;

    /// Budget-bounded (anytime) decode: like [`Self::detect_prepared_into`]
    /// but allowed to stop early when `budget` trips, returning the
    /// best-so-far leaf with
    /// [`SearchQuality::BudgetTruncated`](crate::detector::SearchQuality)
    /// set in the stats. The default ignores the budget and runs the full
    /// decode — correct only for engines whose cost is a small constant
    /// (the linear family); every tree search (DFS, subtree-parallel,
    /// best-first, BFS, K-best, FSD, and their quantized counterparts)
    /// overrides it with a real budget check. Whenever the budget is not
    /// hit the output must be bit-identical to
    /// [`Self::detect_prepared_into`].
    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        _budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        self.detect_prepared_into(prep, radius_sqr, ws, out);
    }

    /// Cross-subcarrier fused block decode: run ONE level-synchronous
    /// search over a whole prepared coherence block, stacking all
    /// subcarriers' frontiers into one GEMM operand per tree level, and
    /// write subcarrier `k`'s decision into `out[k]`. Returns `true` when
    /// the engine fused the block; the default `false` tells the driver
    /// ([`decode_block_fused_into`](crate::block::decode_block_fused_into))
    /// to fall back to the per-subcarrier loop.
    ///
    /// Contract for engines that fuse: per-subcarrier results (indices,
    /// stats, metric bits) must be **bit-identical** to the per-subcarrier
    /// [`Self::detect_prepared_budgeted_into`] loop over
    /// [`BlockPrep::fill_prepared`] — fusion is a scheduling change, never
    /// a numeric one. Only level-synchronous engines whose per-level
    /// frontier size is data-independent (K-best, fixed-complexity FSD)
    /// can honor that contract; data-dependent searches keep the default.
    /// `prep` is caller scratch the engine may fill from the block
    /// (shared `R`; a fused engine reads per-subcarrier `ȳ` straight off
    /// `block`). `frames[k]` must be the subcarrier the block was
    /// prepared from.
    fn detect_block_prepared_budgeted_into(
        &self,
        _block: &BlockPrep<F>,
        _frames: &[FrameData],
        _budget: &DecodeBudget,
        _prep: &mut Prepared<F>,
        _ws: &mut SearchWorkspace<F>,
        _out: &mut [Detection],
    ) -> bool {
        false
    }

    /// Column ordering applied before QR (policy hook for
    /// [`Self::prepare_frame_into`]'s default).
    fn ordering(&self) -> ColumnOrdering {
        ColumnOrdering::Natural
    }

    /// Initial squared sphere radius for a frame with `n_rx` receive
    /// antennas at noise variance `σ²`. Defaults to an infinite sphere.
    fn initial_radius_sqr(&self, _n_rx: usize, _noise_variance: f64) -> f64 {
        f64::INFINITY
    }

    /// Whether this detector's [`Self::prepare_frame_into`] is exactly
    /// the shared QR preprocessing under [`Self::ordering`] — i.e. its
    /// prepared state splits into a channel-only half (QR factors,
    /// ordering) and a per-request half (`ȳ = Qᴴy`), so a serving layer
    /// may cache the channel half across requests that share `H`
    /// ([`prepare_with_channel_into`](crate::preprocess::prepare_with_channel_into)).
    /// Detectors that override [`Self::prepare_frame_into`] (the linear
    /// family, the real-valued decomposition) keep the default `false`.
    fn channel_cacheable(&self) -> bool {
        false
    }

    /// Turn a frame into this detector's prepared problem, reusing
    /// `scratch` and `prep`. Defaults to the shared QR preprocessing
    /// under [`Self::ordering`]; allocation-free at steady state.
    fn prepare_frame_into(
        &self,
        frame: &FrameData,
        scratch: &mut PrepScratch<F>,
        prep: &mut Prepared<F>,
    ) {
        preprocess_ordered_into(frame, self.constellation(), self.ordering(), scratch, prep);
    }

    /// Allocating convenience: prepare a frame into a fresh [`Prepared`].
    fn prepare_frame(&self, frame: &FrameData) -> Prepared<F> {
        let mut scratch = PrepScratch::new();
        let mut prep = Prepared::empty();
        self.prepare_frame_into(frame, &mut scratch, &mut prep);
        prep
    }

    /// Decode a prepared problem into a fresh [`Detection`], reusing the
    /// caller's workspace.
    fn detect_prepared_in(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
    ) -> Detection {
        let mut out = Detection::default();
        self.detect_prepared_into(prep, radius_sqr, ws, &mut out);
        out
    }

    /// Allocating convenience: decode a prepared problem with a
    /// throwaway workspace. The one place a temporary
    /// [`SearchWorkspace`] is ever spun up on a decode path.
    fn detect_prepared(&self, prep: &Prepared<F>, radius_sqr: f64) -> Detection {
        let mut ws = SearchWorkspace::new();
        self.detect_prepared_in(prep, radius_sqr, &mut ws)
    }

    /// Frame-level decode reusing the caller's workspace: prepare (fresh
    /// buffers), resolve the initial radius, decode. What the
    /// [`WorkspaceDetector`](crate::batch::WorkspaceDetector) bridge
    /// forwards to.
    ///
    /// When a [`TraceSink`](crate::trace::TraceSink) is installed on `ws`
    /// the preprocessing time is reported as
    /// [`Phase::Prepare`](crate::trace::Phase) — emitted after the decode
    /// so it survives the sink's per-decode reset.
    fn detect_frame_in(&self, frame: &FrameData, ws: &mut SearchWorkspace<F>) -> Detection {
        let t0 = crate::trace::span_clock(ws.trace.is_some());
        let prep = self.prepare_frame(frame);
        let prep_ns = crate::trace::span_ns(t0);
        let radius_sqr = self.initial_radius_sqr(frame.h.rows(), frame.noise_variance);
        let out = self.detect_prepared_in(&prep, radius_sqr, ws);
        if let Some(t) = ws.trace.as_deref_mut() {
            t.on_phase(crate::trace::Phase::Prepare, prep_ns);
        }
        out
    }

    /// Frame-level one-shot decode. What the [`Detector`](crate::detector::Detector)
    /// bridge forwards to.
    fn detect_frame(&self, frame: &FrameData) -> Detection {
        let mut ws = SearchWorkspace::new();
        self.detect_frame_in(frame, &mut ws)
    }
}

/// Generate the [`Detector`](crate::detector::Detector) and
/// [`WorkspaceDetector`](crate::batch::WorkspaceDetector) bridge impls
/// for a [`PreparedDetector`], forwarding `detect` / `detect_in` to the
/// engine trait's frame-level entry points.
///
/// A blanket `impl<F, T: PreparedDetector<F>> Detector for T` is
/// impossible (`F` would be unconstrained), so each detector invokes this
/// once with its display name. Two arms: types generic over the working
/// precision `F`, and concrete `f64`-only types (the linear family).
macro_rules! impl_detector_via_prepared {
    ($ty:ident <F>, $name:literal) => {
        impl<F: sd_math::Float> $crate::detector::Detector for $ty<F> {
            fn name(&self) -> &'static str {
                $name
            }

            fn detect(&self, frame: &sd_wireless::FrameData) -> $crate::detector::Detection {
                $crate::engine::PreparedDetector::detect_frame(self, frame)
            }
        }

        impl<F: sd_math::Float> $crate::batch::WorkspaceDetector<F> for $ty<F> {
            fn detect_in(
                &self,
                frame: &sd_wireless::FrameData,
                ws: &mut $crate::arena::SearchWorkspace<F>,
            ) -> $crate::detector::Detection {
                $crate::engine::PreparedDetector::detect_frame_in(self, frame, ws)
            }
        }
    };
    ($ty:ty, $name:literal) => {
        impl $crate::detector::Detector for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn detect(&self, frame: &sd_wireless::FrameData) -> $crate::detector::Detection {
                $crate::engine::PreparedDetector::detect_frame(self, frame)
            }
        }

        impl $crate::batch::WorkspaceDetector<f64> for $ty {
            fn detect_in(
                &self,
                frame: &sd_wireless::FrameData,
                ws: &mut $crate::arena::SearchWorkspace<f64>,
            ) -> $crate::detector::Detection {
                $crate::engine::PreparedDetector::detect_frame_in(self, frame, ws)
            }
        }
    };
}

pub(crate) use impl_detector_via_prepared;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BestFirstSd, Detector, KBestSd, SphereDecoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(count: usize) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(10.0, 6);
        let mut rng = StdRng::seed_from_u64(0xE2617E);
        let f = (0..count)
            .map(|_| FrameData::generate(6, 6, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    /// Every derived convenience must agree with the required `_into`
    /// entry point bit-for-bit, across detectors with different hook
    /// overrides.
    #[test]
    fn derived_entry_points_agree_with_detect_prepared_into() {
        let (c, frames) = frames(8);
        let dets: Vec<Box<dyn PreparedDetector<f64>>> = vec![
            Box::new(SphereDecoder::new(c.clone())),
            Box::new(BestFirstSd::new(c.clone())),
            Box::new(KBestSd::new(c.clone(), 8)),
        ];
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        for det in &dets {
            for f in &frames {
                let mut scratch = PrepScratch::new();
                let mut prep = Prepared::empty();
                det.prepare_frame_into(f, &mut scratch, &mut prep);
                let r2 = det.initial_radius_sqr(f.h.rows(), f.noise_variance);
                det.detect_prepared_into(&prep, r2, &mut ws, &mut out);

                assert_eq!(det.detect_prepared_in(&prep, r2, &mut ws), out);
                assert_eq!(det.detect_prepared(&prep, r2), out);
                assert_eq!(det.detect_frame_in(f, &mut ws), out);
                assert_eq!(det.detect_frame(f), out);
            }
        }
    }

    /// The default budgeted entry point must be the plain decode,
    /// bit-for-bit, for every engine that does not override it. (K-best
    /// used to sit here; it now honors budgets and is covered by its own
    /// truncation tests instead.)
    #[test]
    fn default_budgeted_decode_is_the_plain_decode() {
        let (c, frames) = frames(4);
        let dets: Vec<Box<dyn PreparedDetector<f64>>> = vec![Box::new(BestFirstSd::new(c.clone()))];
        let mut ws = SearchWorkspace::new();
        let mut plain = Detection::default();
        let mut budgeted = Detection::default();
        for det in &dets {
            for f in &frames {
                let prep = det.prepare_frame(f);
                let r2 = det.initial_radius_sqr(f.h.rows(), f.noise_variance);
                det.detect_prepared_into(&prep, r2, &mut ws, &mut plain);
                det.detect_prepared_budgeted_into(
                    &prep,
                    r2,
                    &DecodeBudget::nodes(1),
                    &mut ws,
                    &mut budgeted,
                );
                assert_eq!(budgeted, plain, "default impl must ignore the budget");
                assert!(!budgeted.stats.quality.is_truncated());
            }
        }
    }

    #[test]
    fn unlimited_budget_reports_itself() {
        assert!(DecodeBudget::UNLIMITED.is_unlimited());
        assert!(DecodeBudget::default().is_unlimited());
        assert!(!DecodeBudget::nodes(100).is_unlimited());
        let with_deadline = DecodeBudget {
            max_nodes: u64::MAX,
            deadline: Some(Instant::now()),
        };
        assert!(!with_deadline.is_unlimited());
    }

    /// The `Detector` bridge is the engine's frame-level decode.
    #[test]
    fn detector_bridge_matches_engine() {
        let (c, frames) = frames(4);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            assert_eq!(sd.detect(f), PreparedDetector::detect_frame(&sd, f));
        }
    }

    /// Trait objects decode through the dynamic dispatch path the serve
    /// tier registry uses.
    #[test]
    fn dyn_prepared_detector_is_object_safe_and_decodes() {
        let (c, frames) = frames(2);
        let det: Box<dyn PreparedDetector<f64>> = Box::new(SphereDecoder::new(c));
        let mut ws = SearchWorkspace::new();
        for f in &frames {
            let d = det.detect_frame_in(f, &mut ws);
            assert_eq!(d.indices.len(), 6);
        }
    }
}
