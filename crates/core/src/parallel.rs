//! Subtree-parallel exact sphere decoding with a shared pruning radius.
//!
//! The conclusion of the paper proposes "partitioning the search tree
//! over multiple Processing Entities (PEs)"; fixed-complexity
//! decompositions (Barbero & Thompson's FSD) show the top levels of the
//! tree partition cleanly into independent subtrees. This module is that
//! design in software, generalized from the level-1 split of the earlier
//! `multi_pe` prototype:
//!
//! 1. **Subtree enumeration** — the top `L` levels are walked on the
//!    calling thread in Schnorr–Euchner (sorted-children) order, pruning
//!    against the initial radius, producing every surviving depth-`L`
//!    prefix as a *subtree root*.
//! 2. **Fan-out** — the roots, sorted by partial distance so the most
//!    promising subtrees are entered first, are dealt round-robin to the
//!    workers of a persistent [`rayon::ThreadPool`]. Each worker runs the
//!    same sorted depth-first descent as the sequential
//!    [`SphereDecoder`](crate::dfs::SphereDecoder) inside its subtrees.
//! 3. **Shared radius** — workers prune through one
//!    [`AtomicF64Min`]: a lock-free fetch-min over the IEEE-754 bits of
//!    the squared radius. Any worker's leaf immediately tightens every
//!    other worker's sphere, the synchronization Nikitopoulos et al. \[4\]
//!    identify as essential. Sharing only ever *shrinks* the sphere
//!    toward valid leaf metrics, so the combined search remains exactly
//!    ML: a stale (larger) radius read merely delays a prune, never
//!    causes a wrong one.
//!
//! Per-worker [`SearchWorkspace`]s and the subtree-root buffers persist
//! inside the decoder, so the steady-state decode path performs no heap
//! allocation and no thread spawn (`tests/alloc_free.rs`). With one
//! worker the decoder takes the sequential code path outright and is
//! bit-identical — stats included — to [`SphereDecoder`](crate::dfs::SphereDecoder).
//!
//! Determinism: the returned *metric* is the exact ML minimum and is
//! bit-identical to the sequential decoder's (both accumulate the same
//! `pd + increment` chain along the winning path). Node/prune *counts*
//! depend on radius-update timing and may vary run to run.

use crate::arena::SearchWorkspace;
use crate::detector::{Detection, DetectionStats, SearchQuality};
use crate::engine::{impl_detector_via_prepared, DecodeBudget, PreparedDetector};
use crate::pd::{eval_children, sorted_children_into, EvalStrategy, PdScratch};
use crate::preprocess::{ColumnOrdering, Prepared};
use crate::radius::InitialRadius;
use crate::trace::{span_clock, span_ns, Phase, SearchTelemetry, TraceSink};
use sd_math::{AtomicF64Min, Float};
use sd_wireless::Constellation;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The decode-wide spend ledger of a budgeted parallel decode: one atomic
/// node counter shared by the enumeration pass and every broadcast lane,
/// plus a latch that stops all lanes once the budget expires. Allocated
/// on the decode's stack only when the budget is limited, so the
/// unbudgeted hot path carries no shared-counter traffic at all.
struct SharedBudget {
    max_nodes: u64,
    deadline: Option<Instant>,
    spent: AtomicU64,
    tripped: AtomicBool,
}

impl SharedBudget {
    fn new(budget: &DecodeBudget) -> Self {
        SharedBudget {
            max_nodes: budget.max_nodes,
            deadline: budget.deadline,
            spent: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// Called at the top of every expansion: reports whether the budget
    /// has already expired (latching the trip so every lane sees it),
    /// and if not, charges the `n` children about to be generated.
    /// Like the sequential decoder's check, this only ever *stops* the
    /// search — pruning and ordering are untouched — so an untripped
    /// budgeted decode explores exactly the tree the unbudgeted one does.
    #[inline]
    fn check_and_charge(&self, n: u64) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        let spent = self.spent.load(Ordering::Relaxed);
        let expired = spent >= self.max_nodes || self.deadline.is_some_and(|d| Instant::now() >= d);
        if expired {
            self.tripped.store(true, Ordering::Relaxed);
            return true;
        }
        self.spent.fetch_add(n, Ordering::Relaxed);
        false
    }

    fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

/// Shared, dynamically adjustable worker allowance for
/// [`ParallelSphereDecoder`].
///
/// A controller (e.g. the serve runtime's adaptive core budget) writes
/// the number of broadcast lanes the next decode may occupy; the decoder
/// samples it once at the top of every decode and runs on
/// `min(configured workers, budget)` lanes. The pool itself is built once
/// at the configured width — shrinking the budget idles lanes (they
/// return from the broadcast immediately), it never tears threads down,
/// so re-planning is free on the decode path.
///
/// Correctness is budget-independent: the returned solution metric is the
/// exact ML minimum for every lane count, and a budget of 1 takes the
/// sequential code path outright (bit-identical stats included).
#[derive(Debug)]
pub struct WorkerBudget(AtomicUsize);

impl WorkerBudget {
    /// A budget of `workers` lanes (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        WorkerBudget(AtomicUsize::new(workers.max(1)))
    }

    /// Re-plan the allowance (clamped to at least 1). Decodes already in
    /// flight finish at their sampled width; the next decode sees this.
    pub fn set(&self, workers: usize) {
        self.0.store(workers.max(1), Ordering::Relaxed);
    }

    /// Current allowance.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed).max(1)
    }
}

/// Subtree-parallel exact sphere decoder (see the module docs).
///
/// The established [`SubtreeParallelSd`] name is kept as an alias; all
/// prior call sites (`SubtreeParallelSd::new(c)`) behave as before but
/// now fan over a persistent pool with a configurable split depth.
pub struct ParallelSphereDecoder<F: Float = f64> {
    /// Sequential twin: holds the shared configuration (constellation,
    /// eval, radius policy, ordering) and serves the 1-worker path.
    seq: crate::dfs::SphereDecoder<F>,
    workers: usize,
    split_levels: Option<usize>,
    /// Optional shared lane allowance; `None` always runs all `workers`.
    budget: Option<Arc<WorkerBudget>>,
    runtime: Mutex<ParRuntime<F>>,
}

/// The established name of the subtree-parallel decoder.
pub type SubtreeParallelSd<F = f64> = ParallelSphereDecoder<F>;

impl<F: Float> std::fmt::Debug for ParallelSphereDecoder<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSphereDecoder")
            .field("workers", &self.workers)
            .field("split_levels", &self.split_levels)
            .field("budget", &self.budget)
            .field("seq", &self.seq)
            .finish()
    }
}

impl<F: Float> Clone for ParallelSphereDecoder<F> {
    fn clone(&self) -> Self {
        ParallelSphereDecoder {
            seq: self.seq.clone(),
            workers: self.workers,
            split_levels: self.split_levels,
            // The budget handle is shared, not duplicated: clones of one
            // decoder answer to the same controller.
            budget: self.budget.clone(),
            runtime: Mutex::new(ParRuntime::new()),
        }
    }
}

impl<F: Float> ParallelSphereDecoder<F> {
    /// Parallel decoder with the paper's defaults (GEMM evaluation,
    /// infinite initial radius) and one worker per logical CPU.
    pub fn new(constellation: Constellation) -> Self {
        ParallelSphereDecoder {
            seq: crate::dfs::SphereDecoder::new(constellation),
            workers: rayon::max_threads(),
            split_levels: None,
            budget: None,
            runtime: Mutex::new(ParRuntime::new()),
        }
    }

    /// Builder: number of parallel workers (`1` = fully sequential, no
    /// pool is ever spawned).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: attach a shared [`WorkerBudget`]. Every decode samples the
    /// budget once and runs on `min(workers, budget)` broadcast lanes; the
    /// pool keeps its configured width, so a controller can re-plan the
    /// allowance between decodes with no thread churn.
    pub fn with_worker_budget(mut self, budget: Arc<WorkerBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Builder: split depth `L` — the number of top tree levels
    /// enumerated into subtree roots. Clamped to `[1, n_tx − 1]` at
    /// decode time, so an `L ≥ n_tx` request degrades gracefully.
    /// Default: the smallest `L` with `P^L ≥ 2 · workers`.
    pub fn with_split_levels(mut self, levels: usize) -> Self {
        self.split_levels = Some(levels);
        self
    }

    /// Builder: evaluation strategy.
    pub fn with_eval(mut self, eval: EvalStrategy) -> Self {
        self.seq = self.seq.with_eval(eval);
        self
    }

    /// Builder: initial radius policy.
    pub fn with_initial_radius(mut self, r: InitialRadius) -> Self {
        self.seq = self.seq.with_initial_radius(r);
        self
    }

    /// Builder: detection-order preprocessing.
    pub fn with_ordering(mut self, ordering: ColumnOrdering) -> Self {
        self.seq = self.seq.with_ordering(ordering);
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Effective split depth for a tree of `n_tx` levels with branching
    /// factor `order`.
    pub fn effective_split_levels(&self, n_tx: usize, order: usize) -> usize {
        let cap = n_tx.saturating_sub(1).max(1);
        let l = self.split_levels.unwrap_or_else(|| {
            // Smallest L with order^L >= 2·workers: enough subtrees that
            // the round-robin deal keeps every worker busy.
            let target = (2 * self.workers) as u64;
            let mut l = 1usize;
            let mut count = order.max(2) as u64;
            while count < target && l < cap {
                l += 1;
                count = count.saturating_mul(order.max(2) as u64);
            }
            l
        });
        l.clamp(1, cap)
    }
}

/// One surviving depth-`L` prefix: its partial distance and the offset of
/// its path in the flattened path buffer.
#[derive(Clone, Copy)]
struct RootRef<F> {
    pd: F,
    off: u32,
}

/// Per-worker persistent state: a full search workspace plus the stats /
/// telemetry / incumbent the worker accumulates during a decode.
struct WorkerSlot<F: Float> {
    ws: SearchWorkspace<F>,
    stats: DetectionStats,
    telemetry: SearchTelemetry,
    best_pd: Option<f64>,
    best_path: Vec<usize>,
}

impl<F: Float> WorkerSlot<F> {
    fn new() -> Self {
        WorkerSlot {
            ws: SearchWorkspace::new(),
            stats: DetectionStats::default(),
            telemetry: SearchTelemetry::new(),
            best_pd: None,
            best_path: Vec::new(),
        }
    }
}

/// Lazily initialized parallel-decode machinery, behind the decoder's
/// decode gate (one decode at a time per decoder instance; the serve
/// registry shares detector objects across serve workers).
struct ParRuntime<F: Float> {
    pool: Option<rayon::ThreadPool>,
    slots: Vec<Mutex<WorkerSlot<F>>>,
    roots: Vec<RootRef<F>>,
    root_paths: Vec<usize>,
    shared: AtomicF64Min,
}

impl<F: Float> ParRuntime<F> {
    fn new() -> Self {
        ParRuntime {
            pool: None,
            slots: Vec::new(),
            roots: Vec::new(),
            root_paths: Vec::new(),
            shared: AtomicF64Min::new(),
        }
    }

    fn ensure_pool(&mut self, workers: usize) {
        if self.pool.is_none() {
            self.pool = Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(workers)
                    .build()
                    .expect("spawn decode pool"),
            );
            self.slots = (0..workers)
                .map(|_| Mutex::new(WorkerSlot::new()))
                .collect();
        }
    }
}

impl<F: Float> PreparedDetector<F> for ParallelSphereDecoder<F> {
    fn constellation(&self) -> &Constellation {
        self.seq.constellation()
    }

    fn ordering(&self) -> ColumnOrdering {
        self.seq.ordering
    }

    fn initial_radius_sqr(&self, n_rx: usize, noise_variance: f64) -> f64 {
        self.seq.initial_radius.resolve(n_rx, noise_variance)
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    /// Decode a prepared problem over the worker pool. With one worker
    /// (or a degenerate single-level tree) this is exactly the
    /// sequential [`SphereDecoder`](crate::dfs::SphereDecoder) decode —
    /// no pool is consulted and the stats are bit-identical.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        self.decode_budgeted(prep, radius_sqr, &DecodeBudget::UNLIMITED, ws, out);
    }

    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        self.decode_budgeted(prep, radius_sqr, budget, ws, out);
    }
}

impl<F: Float> ParallelSphereDecoder<F> {
    /// The shared decode body; the unbudgeted entry point passes
    /// [`DecodeBudget::UNLIMITED`], which allocates no spend ledger and
    /// can never trip.
    fn decode_budgeted(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        decode_budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        // Sample the lane allowance once per decode: the controller may
        // re-plan concurrently, but this decode runs at a fixed width.
        let active = match &self.budget {
            Some(b) => self.workers.min(b.get()),
            None => self.workers,
        };
        if active <= 1 || m < 2 {
            return self.seq.detect_prepared_budgeted_into(
                prep,
                radius_sqr,
                decode_budget,
                ws,
                out,
            );
        }
        // The spend ledger lives on this decode's stack; `None` (the
        // unlimited case) keeps the hot path free of atomic traffic.
        let shared_budget = if decode_budget.is_unlimited() {
            None
        } else {
            Some(SharedBudget::new(decode_budget))
        };
        let shared_budget = shared_budget.as_ref();
        let split = self.effective_split_levels(m, p);

        let mut rt = self.runtime.lock().unwrap();
        let rt = &mut *rt;
        rt.ensure_pool(self.workers);

        ws.prepare(p, m);
        out.stats.reset(m);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }
        let tracing = trace.is_some();
        for slot in &rt.slots {
            let mut slot = slot.lock().unwrap();
            slot.stats.reset(m);
            slot.best_pd = None;
            slot.best_path.clear();
            if tracing {
                slot.telemetry.on_decode_start(m);
            }
        }

        let eval = self.seq.eval;
        let mut r2 = radius_sqr;
        loop {
            rt.roots.clear();
            rt.root_paths.clear();
            {
                let ws = &mut *ws;
                let mut enumerate = Enumerate {
                    prep,
                    scratch: &mut ws.scratch,
                    stats: &mut out.stats,
                    path: &mut ws.path,
                    sort_bufs: &mut ws.sort_bufs,
                    radius: F::from_f64(r2),
                    split,
                    eval,
                    trace: trace.as_deref_mut(),
                    roots: &mut rt.roots,
                    root_paths: &mut rt.root_paths,
                    budget: shared_budget,
                    truncated: false,
                };
                enumerate.descend(F::ZERO);
            }

            if !rt.roots.is_empty() {
                // Most promising subtrees first: the earlier a tight leaf
                // lands, the harder everyone prunes. Ties (measure-zero
                // for random channels) break on enumeration order, so the
                // deal is deterministic.
                rt.roots
                    .sort_unstable_by(|a, b| match a.pd.partial_cmp(&b.pd) {
                        Some(core::cmp::Ordering::Equal) | None => a.off.cmp(&b.off),
                        Some(o) => o,
                    });
                rt.shared.store(r2);

                let slots = &rt.slots;
                let roots = &rt.roots[..];
                let root_paths = &rt.root_paths[..];
                let shared = &rt.shared;
                rt.pool.as_ref().unwrap().broadcast(|ctx| {
                    // Lanes beyond the sampled budget idle out immediately;
                    // the round-robin deal below covers every root with
                    // `active` workers, so correctness is width-independent.
                    if ctx.index() >= active {
                        return;
                    }
                    let mut slot = slots[ctx.index()].lock().unwrap();
                    worker_search(
                        prep,
                        eval,
                        split,
                        shared,
                        roots,
                        root_paths,
                        ctx.index(),
                        active,
                        &mut slot,
                        tracing,
                        shared_budget,
                    );
                });

                let found = rt.slots.iter().any(|s| s.lock().unwrap().best_pd.is_some());
                if found {
                    break;
                }
            }

            // A tripped budget ends the decode — never restart into spend
            // that is already gone; the merge below completes a leaf
            // greedily if no lane landed one.
            if shared_budget.is_some_and(|b| b.is_tripped()) {
                break;
            }

            // Empty sphere: enlarge and retry (keeps the decoder exact
            // for finite initial radii), mirroring the sequential loop.
            r2 *= InitialRadius::RESTART_GROWTH;
            out.stats.restarts += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.on_restart();
            }
            assert!(
                out.stats.restarts < 64,
                "sphere radius failed to capture any leaf"
            );
        }

        // Merge worker stats and pick the incumbent: the shared radius
        // admits one winner per value, so the global best lives in
        // exactly one slot.
        let mut best: Option<(f64, usize)> = None;
        for (i, slot) in rt.slots.iter().enumerate() {
            let slot = slot.lock().unwrap();
            out.stats.merge(&slot.stats);
            if let Some(pd) = slot.best_pd {
                if best.is_none_or(|(b, _)| pd < b) {
                    best = Some((pd, i));
                }
            }
        }
        let tripped = shared_budget.is_some_and(|b| b.is_tripped());
        let spent = out.stats.nodes_generated;
        let best_pd = match best {
            Some((best_pd, winner)) => {
                if let Some(t) = trace.as_deref_mut() {
                    for slot in &rt.slots {
                        let slot = slot.lock().unwrap();
                        replay_telemetry(t, &slot.telemetry, best_pd);
                    }
                }
                let slot = rt.slots[winner].lock().unwrap();
                prep.indices_from_path_into(&slot.best_path, &mut out.indices);
                best_pd
            }
            None => {
                // Only reachable on a tripped budget (an unbudgeted loop
                // exits solely through `found`): no lane landed a leaf,
                // so complete one greedily on the calling thread.
                debug_assert!(tripped, "leafless exit without a tripped budget");
                let pd = crate::dfs::greedy_leaf(
                    prep,
                    eval,
                    &mut ws.scratch,
                    &mut out.stats,
                    &mut ws.path,
                    &mut ws.best_path,
                )
                .to_f64();
                if let Some(t) = trace.as_deref_mut() {
                    for slot in &rt.slots {
                        let slot = slot.lock().unwrap();
                        replay_telemetry(t, &slot.telemetry, pd);
                    }
                }
                prep.indices_from_path_into(&ws.best_path, &mut out.indices);
                pd
            }
        };
        if tripped {
            out.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
        }
        out.stats.final_radius_sqr = best_pd;
        out.stats.flops += prep.prep_flops;
        ws.trace = trace;
    }
}

impl_detector_via_prepared!(ParallelSphereDecoder<F>, "SD subtree-parallel");

/// Replay one worker's recorded telemetry into the decode's main sink as
/// aggregate events. Counter totals (and therefore the per-level
/// `generated == accepted + pruned` identity) are preserved exactly;
/// span structure is aggregated (one `on_phase` per phase with the total)
/// and radius-update values are reported as the final radius, since the
/// recorder keeps counts, not event values.
fn replay_telemetry(t: &mut dyn TraceSink, rec: &SearchTelemetry, final_radius_sqr: f64) {
    for (level, l) in rec.levels().iter().enumerate() {
        if l.expanded > 0 || l.generated > 0 {
            t.on_expand(level, l.expanded, l.generated);
        }
        if l.accepted > 0 {
            t.on_accept(level, l.accepted);
        }
        if l.pruned > 0 {
            t.on_prune(level, l.pruned);
        }
        // Preserve both the sort count and the element total: n−1 empty
        // sorts plus one carrying every element.
        for _ in 1..l.sorts {
            t.on_sort(level, 0);
        }
        if l.sorts > 0 {
            t.on_sort(level, l.sorted_elements);
        }
        for _ in 0..l.radius_updates {
            t.on_radius_update(level, final_radius_sqr);
        }
    }
    for phase in [Phase::Expand, Phase::Sort, Phase::Leaf] {
        let amount = rec.phases.get(phase);
        if amount > 0 {
            t.on_phase(phase, amount);
        }
    }
}

/// Walk the top `split` levels in Schnorr–Euchner order on the calling
/// thread, pruning against the (fixed) initial radius and pushing every
/// surviving depth-`split` prefix as a subtree root.
struct Enumerate<'a, F: Float> {
    prep: &'a Prepared<F>,
    scratch: &'a mut PdScratch<F>,
    stats: &'a mut DetectionStats,
    path: &'a mut Vec<usize>,
    sort_bufs: &'a mut [Vec<(F, usize)>],
    radius: F,
    split: usize,
    eval: EvalStrategy,
    trace: Option<&'a mut (dyn TraceSink + 'static)>,
    roots: &'a mut Vec<RootRef<F>>,
    root_paths: &'a mut Vec<usize>,
    /// Spend ledger of a budgeted decode; `None` when unlimited.
    budget: Option<&'a SharedBudget>,
    /// Latched once the budget trips; unwinds the enumeration.
    truncated: bool,
}

impl<F: Float> Enumerate<'_, F> {
    fn descend(&mut self, pd: F) {
        let depth = self.path.len();
        let p = self.prep.order;
        if let Some(b) = self.budget {
            if b.check_and_charge(p as u64) {
                self.truncated = true;
                return;
            }
        }
        self.stats.nodes_expanded += 1;
        let t0 = span_clock(self.trace.is_some());
        self.stats.flops += eval_children(self.prep, self.path, self.eval, self.scratch);
        if let Some(t) = self.trace.as_mut() {
            t.on_phase(Phase::Expand, span_ns(t0));
            t.on_expand(depth, 1, p as u64);
        }
        self.stats.nodes_generated += p as u64;
        self.stats.per_level_generated[depth] += p as u64;

        let mut children = std::mem::take(&mut self.sort_bufs[depth]);
        let t0 = span_clock(self.trace.is_some());
        sorted_children_into(&self.scratch.increments, &mut children);
        if let Some(t) = self.trace.as_mut() {
            t.on_phase(Phase::Sort, span_ns(t0));
            t.on_sort(depth, p as u64);
        }
        for (rank, &(inc, child)) in children.iter().enumerate() {
            if self.truncated {
                break;
            }
            let child_pd = pd + inc;
            if !(child_pd < self.radius) {
                // Sorted order ⇒ every remaining sibling is pruned too.
                self.stats.nodes_pruned += (p - rank) as u64;
                if let Some(t) = self.trace.as_mut() {
                    t.on_prune(depth, (p - rank) as u64);
                }
                break;
            }
            if let Some(t) = self.trace.as_mut() {
                t.on_accept(depth, 1);
            }
            if depth + 1 == self.split {
                self.roots.push(RootRef {
                    pd: child_pd,
                    off: self.root_paths.len() as u32,
                });
                self.root_paths.extend_from_slice(self.path);
                self.root_paths.push(child);
            } else {
                self.path.push(child);
                self.descend(child_pd);
                self.path.pop();
            }
        }
        self.sort_bufs[depth] = children;
    }
}

/// One worker's turn of a broadcast: run the sorted depth-first search
/// over every subtree dealt to `windex`, pruning through the shared
/// radius.
#[allow(clippy::too_many_arguments)]
fn worker_search<F: Float>(
    prep: &Prepared<F>,
    eval: EvalStrategy,
    split: usize,
    shared: &AtomicF64Min,
    roots: &[RootRef<F>],
    root_paths: &[usize],
    windex: usize,
    nworkers: usize,
    slot: &mut WorkerSlot<F>,
    tracing: bool,
    budget: Option<&SharedBudget>,
) {
    let m = prep.n_tx;
    let p = prep.order;
    slot.ws.prepare(p, m);
    let slot = &mut *slot;
    let mut search = WorkerSearch {
        prep,
        scratch: &mut slot.ws.scratch,
        stats: &mut slot.stats,
        path: &mut slot.ws.path,
        sort_bufs: &mut slot.ws.sort_bufs,
        best_pd: &mut slot.best_pd,
        best_path: &mut slot.best_path,
        shared,
        eval,
        budget,
        truncated: false,
        trace: if tracing {
            Some(&mut slot.telemetry)
        } else {
            None
        },
    };
    let mut i = windex;
    while i < roots.len() {
        if search.truncated {
            break;
        }
        let root = roots[i];
        i += nworkers;
        // A subtree whose root already falls outside everyone's sphere
        // is dead; its children were never generated, so skipping keeps
        // the per-level accounting consistent.
        if !(root.pd.to_f64() < shared.load()) {
            continue;
        }
        let path = &root_paths[root.off as usize..root.off as usize + split];
        search.path.clear();
        search.path.extend_from_slice(path);
        search.descend(root.pd);
    }
}

/// One worker's depth-first search below a subtree root — the sequential
/// [`Search`](crate::dfs) loop with the incumbent radius replaced by the
/// shared atomic.
struct WorkerSearch<'a, F: Float> {
    prep: &'a Prepared<F>,
    scratch: &'a mut PdScratch<F>,
    stats: &'a mut DetectionStats,
    path: &'a mut Vec<usize>,
    sort_bufs: &'a mut [Vec<(F, usize)>],
    best_pd: &'a mut Option<f64>,
    best_path: &'a mut Vec<usize>,
    shared: &'a AtomicF64Min,
    eval: EvalStrategy,
    /// Spend ledger of a budgeted decode; `None` when unlimited.
    budget: Option<&'a SharedBudget>,
    /// Latched once the budget trips; unwinds this lane's recursion.
    truncated: bool,
    trace: Option<&'a mut SearchTelemetry>,
}

impl<F: Float> WorkerSearch<'_, F> {
    fn descend(&mut self, pd: F) {
        let depth = self.path.len();
        let m = self.prep.n_tx;
        let p = self.prep.order;
        if let Some(b) = self.budget {
            if b.check_and_charge(p as u64) {
                self.truncated = true;
                return;
            }
        }
        self.stats.nodes_expanded += 1;
        let t0 = span_clock(self.trace.is_some());
        self.stats.flops += eval_children(self.prep, self.path, self.eval, self.scratch);
        if let Some(t) = self.trace.as_mut() {
            t.on_phase(Phase::Expand, span_ns(t0));
            t.on_expand(depth, 1, p as u64);
        }
        self.stats.nodes_generated += p as u64;
        self.stats.per_level_generated[depth] += p as u64;

        let mut children = std::mem::take(&mut self.sort_bufs[depth]);
        let t0 = span_clock(self.trace.is_some());
        sorted_children_into(&self.scratch.increments, &mut children);
        if let Some(t) = self.trace.as_mut() {
            t.on_phase(Phase::Sort, span_ns(t0));
            t.on_sort(depth, p as u64);
        }
        for (rank, &(inc, child)) in children.iter().enumerate() {
            if self.truncated {
                break;
            }
            let child_pd = pd + inc;
            // Prune against everyone's best, not just our own.
            if !(child_pd.to_f64() < self.shared.load()) {
                self.stats.nodes_pruned += (p - rank) as u64;
                if let Some(t) = self.trace.as_mut() {
                    t.on_prune(depth, (p - rank) as u64);
                }
                break;
            }
            if let Some(t) = self.trace.as_mut() {
                t.on_accept(depth, 1);
            }
            if depth + 1 == m {
                let leaf_pd = child_pd.to_f64();
                self.stats.leaves_reached += 1;
                if self.shared.try_lower(leaf_pd) {
                    self.stats.radius_updates += 1;
                    *self.best_pd = Some(leaf_pd);
                    let t0 = span_clock(self.trace.is_some());
                    self.best_path.clear();
                    self.best_path.extend_from_slice(self.path);
                    self.best_path.push(child);
                    if let Some(t) = self.trace.as_mut() {
                        t.on_phase(Phase::Leaf, span_ns(t0));
                        t.on_radius_update(depth, leaf_pd);
                    }
                }
            } else {
                self.path.push(child);
                self.descend(child_pd);
                self.path.pop();
            }
        }
        self.sort_bufs[depth] = children;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::dfs::SphereDecoder;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn matches_ml() {
        let (c, frames) = frames(5, Modulation::Qam4, 6.0, 25, 100);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn matches_serial_dfs_metric_bitwise() {
        let (c, frames) = frames(8, Modulation::Qam4, 8.0, 15, 101);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone()).with_workers(4);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            let a = mp.detect(f);
            let b = sd.detect(f);
            // Same optimum: the winning leaf's metric is the same
            // pd + increment accumulation in both engines.
            assert_eq!(
                a.stats.final_radius_sqr.to_bits(),
                b.stats.final_radius_sqr.to_bits()
            );
        }
    }

    #[test]
    fn sixteen_qam_exactness() {
        let (c, frames) = frames(3, Modulation::Qam16, 8.0, 10, 102);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn single_antenna_degenerate_case() {
        // m = 1 cannot split below the root; must fall back to the
        // sequential path and stay exact.
        let (c, frames) = frames(1, Modulation::Qam4, 15.0, 10, 103);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn one_worker_is_bit_identical_to_sequential_including_stats() {
        let (c, frames) = frames(6, Modulation::Qam16, 10.0, 10, 105);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone()).with_workers(1);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f), sd.detect(f));
        }
    }

    #[test]
    fn oversized_split_depth_is_clamped() {
        let (c, frames) = frames(4, Modulation::Qam4, 8.0, 10, 106);
        // L = 99 ≥ n_tx: must clamp to n_tx − 1 and stay exact.
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone())
            .with_workers(2)
            .with_split_levels(99);
        assert_eq!(mp.effective_split_levels(4, 4), 3);
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn more_workers_than_subtrees_leaves_some_idle() {
        // BPSK at L=1 yields only 2 subtree roots for 8 workers; the six
        // empty workers must not disturb exactness or stats merging.
        let c = Constellation::new(Modulation::Bpsk);
        let sigma2 = noise_variance(8.0, 5);
        let mut rng = StdRng::seed_from_u64(107);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone())
            .with_workers(8)
            .with_split_levels(1);
        let ml = MlDetector::new(c.clone());
        for _ in 0..10 {
            let f = FrameData::generate(5, 5, &c, sigma2, &mut rng);
            let d = mp.detect(&f);
            assert_eq!(d.indices, ml.detect(&f).indices);
            assert_eq!(
                d.stats.nodes_generated,
                d.stats.per_level_generated.iter().sum::<u64>()
            );
        }
    }

    #[test]
    fn finite_radius_restarts_stay_exact() {
        let (c, frames) = frames(4, Modulation::Qam4, 4.0, 25, 108);
        let inf: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone()).with_workers(4);
        let tight: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone())
            .with_workers(4)
            .with_initial_radius(InitialRadius::ScaledNoise(0.01));
        let mut saw_restart = false;
        for f in &frames {
            let a = inf.detect(f);
            let b = tight.detect(f);
            assert_eq!(a.indices, b.indices);
            assert_eq!(
                a.stats.final_radius_sqr.to_bits(),
                b.stats.final_radius_sqr.to_bits()
            );
            saw_restart |= b.stats.restarts > 0;
        }
        assert!(saw_restart, "0.01·N·σ² should be empty at least once");
    }

    #[test]
    fn deeper_splits_stay_exact() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 10, 109);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        for l in 1..=5 {
            let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone())
                .with_workers(3)
                .with_split_levels(l);
            for f in &frames {
                let a = mp.detect(f);
                let b = sd.detect(f);
                assert_eq!(
                    a.stats.final_radius_sqr.to_bits(),
                    b.stats.final_radius_sqr.to_bits(),
                    "split depth {l}"
                );
            }
        }
    }

    #[test]
    fn work_does_not_explode_vs_serial() {
        // Parallel workers start without the serial search's early
        // radius, so some extra work is expected — but sharing must keep
        // it bounded (well under the blowup of independent subtrees).
        let (c, frames) = frames(8, Modulation::Qam4, 8.0, 10, 104);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone());
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let np: u64 = frames
            .iter()
            .map(|f| mp.detect(f).stats.nodes_generated)
            .sum();
        let ns: u64 = frames
            .iter()
            .map(|f| sd.detect(f).stats.nodes_generated)
            .sum();
        assert!(
            np < ns * 3,
            "parallel explored {np} vs serial {ns}: sharing is broken"
        );
    }

    #[test]
    fn worker_budget_caps_lanes_and_stays_exact() {
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 12, 111);
        let budget = Arc::new(WorkerBudget::new(4));
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone())
            .with_workers(4)
            .with_worker_budget(Arc::clone(&budget));
        let ml = MlDetector::new(c);
        // Sweep the allowance across decodes — including values above the
        // configured width, which must clamp to it — and stay exact ML.
        for (i, f) in frames.iter().enumerate() {
            budget.set([4, 2, 1, 3, 9][i % 5]);
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn worker_budget_of_one_is_bit_identical_to_sequential() {
        let (c, frames) = frames(6, Modulation::Qam16, 10.0, 10, 112);
        let budget = Arc::new(WorkerBudget::new(1));
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone())
            .with_workers(4)
            .with_worker_budget(budget);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            // Budget 1 takes the sequential path outright: full Detection
            // equality, stats included.
            assert_eq!(mp.detect(f), sd.detect(f));
        }
    }

    #[test]
    fn worker_budget_clamps_to_at_least_one() {
        let b = WorkerBudget::new(0);
        assert_eq!(b.get(), 1);
        b.set(0);
        assert_eq!(b.get(), 1);
        b.set(6);
        assert_eq!(b.get(), 6);
    }

    /// An unlimited budget through the budgeted entry point is literally
    /// the unbudgeted decode (same code path, no spend ledger).
    #[test]
    fn unlimited_budget_matches_plain_parallel_decode() {
        use crate::engine::DecodeBudget;
        let (c, frames) = frames(6, Modulation::Qam4, 8.0, 8, 113);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c).with_workers(4);
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        for f in &frames {
            let prep = mp.prepare_frame(f);
            let plain = mp.detect_prepared_in(&prep, f64::INFINITY, &mut ws);
            mp.detect_prepared_budgeted_into(
                &prep,
                f64::INFINITY,
                &DecodeBudget::UNLIMITED,
                &mut ws,
                &mut out,
            );
            // Node counts vary run to run under parallelism, but the
            // answer and its metric are deterministic.
            assert_eq!(out.indices, plain.indices);
            assert_eq!(
                out.stats.final_radius_sqr.to_bits(),
                plain.stats.final_radius_sqr.to_bits()
            );
            assert_eq!(out.stats.quality, crate::detector::SearchQuality::Exact);
        }
    }

    /// A tight budget truncates every lane, flags the result, and still
    /// returns a complete symbol vector.
    #[test]
    fn tight_budget_truncates_parallel_decode() {
        use crate::engine::DecodeBudget;
        let (c, frames) = frames(8, Modulation::Qam4, 4.0, 10, 114);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone()).with_workers(4);
        let mut ws = SearchWorkspace::new();
        let mut out = Detection::default();
        let mut saw_truncation = false;
        for f in &frames {
            let prep = mp.prepare_frame(f);
            // A handful of nodes: enumeration alone blows through this.
            mp.detect_prepared_budgeted_into(
                &prep,
                f64::INFINITY,
                &DecodeBudget::nodes(8),
                &mut ws,
                &mut out,
            );
            assert_eq!(out.indices.len(), 8, "always a complete vector");
            if out.stats.quality.is_truncated() {
                saw_truncation = true;
                let metric = prep.full_metric(&out.indices) - prep.tail_energy;
                assert!(
                    (metric - out.stats.final_radius_sqr).abs() < 1e-8,
                    "reported radius must be the returned leaf's metric"
                );
            }
        }
        assert!(saw_truncation, "8-node budgets must trip at 8x8 / 4 dB");
    }

    /// Budgets thread through the sequential fallback (1 worker)
    /// bit-identically to the sequential decoder's budgeted decode.
    #[test]
    fn one_worker_budgeted_matches_sequential_budgeted() {
        use crate::engine::DecodeBudget;
        let (c, frames) = frames(6, Modulation::Qam4, 6.0, 8, 115);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c.clone()).with_workers(1);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let mut ws = SearchWorkspace::new();
        let mut a = Detection::default();
        let mut b = Detection::default();
        for f in &frames {
            let prep = mp.prepare_frame(f);
            let budget = DecodeBudget::nodes(24);
            mp.detect_prepared_budgeted_into(&prep, f64::INFINITY, &budget, &mut ws, &mut a);
            sd.detect_prepared_budgeted_into(&prep, f64::INFINITY, &budget, &mut ws, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stats_reconcile_under_parallelism() {
        let (c, frames) = frames(6, Modulation::Qam16, 12.0, 8, 110);
        let mp: ParallelSphereDecoder<f64> = ParallelSphereDecoder::new(c).with_workers(4);
        for f in &frames {
            let d = mp.detect(f);
            let s = &d.stats;
            assert_eq!(s.nodes_generated, s.per_level_generated.iter().sum::<u64>());
            assert_eq!(s.nodes_generated, s.nodes_expanded * 16);
            assert!(s.leaves_reached >= 1);
            assert!(s.final_radius_sqr.is_finite());
            assert!(s.flops > 0);
        }
    }
}
