//! QR preprocessing (Eq. 4 of the paper).
//!
//! `‖y − Hs‖² = ‖ȳ − Rs‖² + ‖tail‖²` with `H = QR`, `ȳ = Q^H y`. The
//! tree search then only touches the `M × M` upper-triangular `R` and the
//! first `M` entries of `ȳ`. The preprocessing is done once per channel
//! use and is shared by every tree decoder, so cross-decoder comparisons
//! are exact.

use sd_math::{qr_with_qty, Complex, Float, Matrix};
use sd_wireless::{Constellation, FrameData};
use serde::{Deserialize, Serialize};

/// Detection-order preprocessing: permute the columns of `H` before the
/// QR step so the tree fixes streams in a chosen order. The tree's first
/// levels correspond to the *last* columns, so placing reliable
/// (high-norm) streams last makes the early partial distances sharp and
/// shrinks the search — the standard ordering trick of V-BLAST-style
/// detectors, exposed here as an ablation axis.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnOrdering {
    /// Natural antenna order (what the paper's pipeline uses).
    #[default]
    Natural,
    /// Strongest column (largest ‖h_j‖) detected first.
    NormDescending,
    /// Weakest column detected first (the pessimal order, for contrast).
    NormAscending,
}

impl ColumnOrdering {
    /// Column permutation `perm` such that `H_perm[:, k] = H[:, perm[k]]`.
    fn permutation<F: Float>(self, h: &Matrix<F>) -> Vec<usize> {
        let m = h.cols();
        let mut perm: Vec<usize> = (0..m).collect();
        if self == ColumnOrdering::Natural {
            return perm;
        }
        let norms: Vec<f64> = (0..m)
            .map(|j| {
                (0..h.rows())
                    .map(|i| h[(i, j)].norm_sqr().to_f64())
                    .sum::<f64>()
            })
            .collect();
        // Tree level 0 fixes the LAST column, so "detected first" means
        // sorted to the end of the permutation.
        match self {
            ColumnOrdering::NormDescending => perm.sort_by(|&a, &b| norms[a].total_cmp(&norms[b])),
            ColumnOrdering::NormAscending => perm.sort_by(|&a, &b| norms[b].total_cmp(&norms[a])),
            ColumnOrdering::Natural => unreachable!(),
        }
        perm
    }
}

/// Precision-cast, QR-reduced decoding problem.
#[derive(Clone, Debug)]
pub struct Prepared<F: Float> {
    /// `M × M` upper-triangular factor.
    pub r: Matrix<F>,
    /// First `M` entries of `Q^H y`.
    pub ybar: Vec<Complex<F>>,
    /// Constant metric offset `‖(Q^H y)[M..]‖²` (hypothesis-independent).
    pub tail_energy: F,
    /// Constellation points cast to the working precision.
    pub points: Vec<Complex<F>>,
    /// Number of transmit antennas `M` (tree depth).
    pub n_tx: usize,
    /// Constellation order `P` (branching factor).
    pub order: usize,
    /// Real flops charged to the QR + `Q^H y` step.
    pub prep_flops: u64,
    /// Column permutation applied before QR: tree antenna `k` is
    /// physical antenna `perm[k]`.
    pub perm: Vec<usize>,
    /// Per-depth GEMM row operands: `row_blocks[d]` is the `1 × (d+1)`
    /// block `[r_{ii}, r_{i,i+1}, …, r_{i,M−1}]` with `i = M−1−d`, laid
    /// out so column `1+off` multiplies the depth-`d` suffix entry `off`
    /// (deepest-first). Built once here so the batched expansion of
    /// [`crate::pd::eval_children_batch`] never re-gathers `R` rows.
    pub row_blocks: Vec<Matrix<F>>,
}

/// Build the per-depth `1 × (d+1)` GEMM row operands from `R`.
pub(crate) fn row_blocks_from_r<F: Float>(r: &Matrix<F>) -> Vec<Matrix<F>> {
    let m = r.cols();
    (0..m)
        .map(|depth| {
            let i = m - 1 - depth;
            Matrix::from_fn(1, depth + 1, |_, l| r[(i, i + l)])
        })
        .collect()
}

/// Approximate real-flop count of a complex Householder QR of an `n × m`
/// matrix plus the application of `Q^H` to one vector.
pub fn qr_flops(n: usize, m: usize) -> u64 {
    // Complex arithmetic is 4 mul + 4 add per MAC; the classic
    // 2(nm² − m³/3) real-QR count scales by 4.
    let n = n as u64;
    let m = m as u64;
    8 * (n * m * m).saturating_sub(8 * m * m * m / 3) + 8 * n * m
}

/// Cast the frame to precision `F` and QR-reduce it.
pub fn preprocess<F: Float>(frame: &FrameData, constellation: &Constellation) -> Prepared<F> {
    preprocess_ordered(frame, constellation, ColumnOrdering::Natural)
}

/// [`preprocess`] with an explicit detection ordering.
pub fn preprocess_ordered<F: Float>(
    frame: &FrameData,
    constellation: &Constellation,
    ordering: ColumnOrdering,
) -> Prepared<F> {
    let h_cast: Matrix<F> = frame.h.cast();
    let perm = ordering.permutation(&h_cast);
    let h = Matrix::from_fn(h_cast.rows(), h_cast.cols(), |i, j| h_cast[(i, perm[j])]);
    let y: Vec<Complex<F>> = frame.y.iter().map(|c| c.cast()).collect();
    let (r, ybar, tail_energy) = qr_with_qty(&h, &y);
    let points = constellation.points().iter().map(|p| p.cast()).collect();
    let row_blocks = row_blocks_from_r(&r);
    Prepared {
        r,
        ybar,
        tail_energy,
        points,
        n_tx: frame.h.cols(),
        order: constellation.order(),
        prep_flops: qr_flops(frame.h.rows(), frame.h.cols()),
        perm,
        row_blocks,
    }
}

impl<F: Float> Prepared<F> {
    /// Map a depth-order tree path (`path[d]` = tree level `d`'s symbol)
    /// back to physical antenna order, undoing the column permutation.
    pub fn indices_from_path(&self, path: &[usize]) -> Vec<usize> {
        let m = self.n_tx;
        assert_eq!(path.len(), m, "need a complete leaf path");
        let mut physical = vec![0usize; m];
        for (d, &c) in path.iter().enumerate() {
            physical[self.perm[m - 1 - d]] = c;
        }
        physical
    }

    /// Full metric `‖y − Hs‖²` of a complete symbol-index vector in
    /// *tree antenna order* (`indices[j]` is tree column `j`'s symbol;
    /// identical to physical order under [`ColumnOrdering::Natural`]).
    pub fn full_metric(&self, indices: &[usize]) -> F {
        assert_eq!(indices.len(), self.n_tx);
        let s: Vec<Complex<F>> = indices.iter().map(|&i| self.points[i]).collect();
        let rs = self.r.mul_vec(&s);
        let mut acc = self.tail_energy;
        for (yi, ri) in self.ybar.iter().zip(rs.iter()) {
            acc += (*yi - *ri).norm_sqr();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::Modulation;

    fn frame(n: usize, m: Modulation, seed: u64) -> (Constellation, FrameData) {
        let c = Constellation::new(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = FrameData::generate(n, n, &c, 0.1, &mut rng);
        (c, f)
    }

    #[test]
    fn full_metric_matches_direct_computation() {
        let (c, f) = frame(6, Modulation::Qam4, 3);
        let prep: Prepared<f64> = preprocess(&f, &c);
        // Metric of the true transmitted vector, both ways.
        let direct = {
            let hs = f.h.mul_vec(&f.tx.symbols);
            sd_math::vector::dist_sqr(&f.y, &hs)
        };
        let via_prep = prep.full_metric(&f.tx.indices);
        assert!(
            (direct - via_prep).abs() < 1e-9,
            "direct {direct} != prep {via_prep}"
        );
    }

    #[test]
    fn square_channel_has_zero_tail() {
        let (c, f) = frame(5, Modulation::Qam16, 4);
        let prep: Prepared<f64> = preprocess(&f, &c);
        assert!(prep.tail_energy.abs() < 1e-18);
        assert_eq!(prep.r.shape(), (5, 5));
        assert_eq!(prep.ybar.len(), 5);
        assert_eq!(prep.order, 16);
    }

    #[test]
    fn rectangular_channel_tail_is_positive() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(9);
        let f = FrameData::generate(8, 4, &c, 0.5, &mut rng);
        let prep: Prepared<f64> = preprocess(&f, &c);
        assert!(prep.tail_energy > 0.0, "noisy overdetermined system");
        // Metric identity must still hold.
        let direct = {
            let hs = f.h.mul_vec(&f.tx.symbols);
            sd_math::vector::dist_sqr(&f.y, &hs)
        };
        assert!((direct - prep.full_metric(&f.tx.indices)).abs() < 1e-9);
    }

    #[test]
    fn f32_preprocessing_close_to_f64() {
        let (c, f) = frame(8, Modulation::Qam4, 11);
        let p64: Prepared<f64> = preprocess(&f, &c);
        let p32: Prepared<f32> = preprocess(&f, &c);
        let m64 = p64.full_metric(&f.tx.indices);
        let m32 = p32.full_metric(&f.tx.indices) as f64;
        assert!((m64 - m32).abs() < 1e-3 * (1.0 + m64));
    }

    #[test]
    fn natural_ordering_permutation_is_identity() {
        let (c, f) = frame(6, Modulation::Qam4, 17);
        let prep: Prepared<f64> = preprocess(&f, &c);
        assert_eq!(prep.perm, vec![0, 1, 2, 3, 4, 5]);
        // indices_from_path inverts the depth order.
        let path = vec![3usize, 1, 0, 2, 3, 1];
        let phys = prep.indices_from_path(&path);
        assert_eq!(phys, vec![1, 3, 2, 0, 1, 3]);
    }

    #[test]
    fn ordered_preprocessing_sorts_column_norms() {
        let (c, f) = frame(8, Modulation::Qam4, 18);
        for ordering in [
            ColumnOrdering::NormDescending,
            ColumnOrdering::NormAscending,
        ] {
            let prep: Prepared<f64> = preprocess_ordered(&f, &c, ordering);
            let norms: Vec<f64> = prep
                .perm
                .iter()
                .map(|&j| (0..8).map(|i| f.h[(i, j)].norm_sqr()).sum::<f64>())
                .collect();
            let sorted_ok = match ordering {
                // Detected-first = last tree column = largest norm.
                ColumnOrdering::NormDescending => norms.windows(2).all(|w| w[0] <= w[1]),
                ColumnOrdering::NormAscending => norms.windows(2).all(|w| w[0] >= w[1]),
                ColumnOrdering::Natural => unreachable!(),
            };
            assert!(sorted_ok, "{ordering:?}: {norms:?}");
        }
    }

    #[test]
    fn ordered_metric_identity_still_holds() {
        // The permuted problem must evaluate the same physical hypothesis
        // to the same metric.
        let (c, f) = frame(6, Modulation::Qam4, 19);
        let natural: Prepared<f64> = preprocess(&f, &c);
        let ordered: Prepared<f64> = preprocess_ordered(&f, &c, ColumnOrdering::NormDescending);
        // Physical hypothesis -> tree order for the ordered problem.
        let physical = vec![1usize, 2, 3, 0, 1, 2];
        let tree: Vec<usize> = ordered.perm.iter().map(|&j| physical[j]).collect();
        let m_nat = natural.full_metric(&physical);
        let m_ord = ordered.full_metric(&tree);
        assert!((m_nat - m_ord).abs() < 1e-9, "{m_nat} vs {m_ord}");
    }

    #[test]
    fn flops_counter_positive_and_monotone() {
        assert!(qr_flops(10, 10) > 0);
        assert!(qr_flops(20, 20) > qr_flops(10, 10));
        assert!(qr_flops(16, 8) > qr_flops(8, 8));
    }
}
