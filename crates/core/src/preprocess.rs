//! QR preprocessing (Eq. 4 of the paper).
//!
//! `‖y − Hs‖² = ‖ȳ − Rs‖² + ‖tail‖²` with `H = QR`, `ȳ = Q^H y`. The
//! tree search then only touches the `M × M` upper-triangular `R` and the
//! first `M` entries of `ȳ`. The preprocessing is done once per channel
//! use and is shared by every tree decoder, so cross-decoder comparisons
//! are exact.

use sd_math::{qr_with_qty, Complex, Float, Matrix, QrFactors, QrScratch};
use sd_wireless::{Constellation, FrameData};
use serde::{Deserialize, Serialize};

/// Detection-order preprocessing: permute the columns of `H` before the
/// QR step so the tree fixes streams in a chosen order. The tree's first
/// levels correspond to the *last* columns, so placing reliable
/// (high-norm) streams last makes the early partial distances sharp and
/// shrinks the search — the standard ordering trick of V-BLAST-style
/// detectors, exposed here as an ablation axis.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnOrdering {
    /// Natural antenna order (what the paper's pipeline uses).
    #[default]
    Natural,
    /// Strongest column (largest ‖h_j‖) detected first.
    NormDescending,
    /// Weakest column detected first (the pessimal order, for contrast).
    NormAscending,
}

impl ColumnOrdering {
    /// Column permutation `perm` such that `H_perm[:, k] = H[:, perm[k]]`,
    /// written into caller-owned buffers (`norms` is scratch).
    fn permutation_into<F: Float>(
        self,
        h: &Matrix<F>,
        perm: &mut Vec<usize>,
        norms: &mut Vec<f64>,
    ) {
        let m = h.cols();
        perm.clear();
        perm.extend(0..m);
        if self == ColumnOrdering::Natural {
            return;
        }
        norms.clear();
        norms.extend((0..m).map(|j| {
            (0..h.rows())
                .map(|i| h[(i, j)].norm_sqr().to_f64())
                .sum::<f64>()
        }));
        // Tree level 0 fixes the LAST column, so "detected first" means
        // sorted to the end of the permutation. `sort_unstable_by` keeps
        // this path allocation-free (ties are measure-zero for random H).
        match self {
            ColumnOrdering::NormDescending => {
                perm.sort_unstable_by(|&a, &b| norms[a].total_cmp(&norms[b]))
            }
            ColumnOrdering::NormAscending => {
                perm.sort_unstable_by(|&a, &b| norms[b].total_cmp(&norms[a]))
            }
            ColumnOrdering::Natural => unreachable!(),
        }
    }

    /// Column permutation `perm` such that `H_perm[:, k] = H[:, perm[k]]`.
    fn permutation<F: Float>(self, h: &Matrix<F>) -> Vec<usize> {
        let mut perm = Vec::new();
        let mut norms = Vec::new();
        self.permutation_into(h, &mut perm, &mut norms);
        perm
    }
}

/// Precision-cast, QR-reduced decoding problem.
#[derive(Clone, Debug)]
pub struct Prepared<F: Float> {
    /// `M × M` upper-triangular factor.
    pub r: Matrix<F>,
    /// First `M` entries of `Q^H y`.
    pub ybar: Vec<Complex<F>>,
    /// Constant metric offset `‖(Q^H y)[M..]‖²` (hypothesis-independent).
    pub tail_energy: F,
    /// Constellation points cast to the working precision.
    pub points: Vec<Complex<F>>,
    /// Number of transmit antennas `M` (tree depth).
    pub n_tx: usize,
    /// Constellation order `P` (branching factor).
    pub order: usize,
    /// Real flops charged to the QR + `Q^H y` step.
    pub prep_flops: u64,
    /// Column permutation applied before QR: tree antenna `k` is
    /// physical antenna `perm[k]`.
    pub perm: Vec<usize>,
    /// Per-depth GEMM row operands: `row_blocks[d]` is the `1 × (d+1)`
    /// block `[r_{ii}, r_{i,i+1}, …, r_{i,M−1}]` with `i = M−1−d`, laid
    /// out so column `1+off` multiplies the depth-`d` suffix entry `off`
    /// (deepest-first). Built once here so the batched expansion of
    /// [`crate::pd::eval_children_batch`] never re-gathers `R` rows.
    pub row_blocks: Vec<Matrix<F>>,
    /// Native-precision copy of the channel matrix `H` (unpermuted, as
    /// received). Carried so detectors that work on the raw system —
    /// the linear ZF/MMSE/MRC family — can decode from a [`Prepared`]
    /// without a round trip back to the frame.
    pub h: Matrix<f64>,
    /// Native-precision copy of the receive vector `y` (see [`Prepared::h`]).
    pub y: Vec<Complex<f64>>,
    /// Noise variance `σ²` of the frame; used by MMSE regularization and
    /// the soft/statistical decoders' noise-scaled thresholds.
    pub noise_variance: f64,
}

/// Build the per-depth `1 × (d+1)` GEMM row operands from `R`.
pub(crate) fn row_blocks_from_r<F: Float>(r: &Matrix<F>) -> Vec<Matrix<F>> {
    let mut blocks = Vec::new();
    row_blocks_into(r, &mut blocks);
    blocks
}

/// [`row_blocks_from_r`] into a caller-owned vector, reusing each block's
/// backing buffer (allocation-free at steady state for a fixed `M`).
pub(crate) fn row_blocks_into<F: Float>(r: &Matrix<F>, blocks: &mut Vec<Matrix<F>>) {
    let m = r.cols();
    if blocks.len() != m {
        blocks.resize_with(m, || Matrix::zeros(0, 0));
    }
    for (depth, block) in blocks.iter_mut().enumerate() {
        let i = m - 1 - depth;
        block.resize_for_overwrite(1, depth + 1);
        for l in 0..=depth {
            block[(0, l)] = r[(i, i + l)];
        }
    }
}

/// Approximate real-flop count of a complex Householder QR of an `n × m`
/// matrix plus the application of `Q^H` to one vector.
pub fn qr_flops(n: usize, m: usize) -> u64 {
    // Complex arithmetic is 4 mul + 4 add per MAC; the classic
    // 2(nm² − m³/3) real-QR count scales by 4.
    let n = n as u64;
    let m = m as u64;
    8 * (n * m * m).saturating_sub(8 * m * m * m / 3) + 8 * n * m
}

/// Cast the frame to precision `F` and QR-reduce it.
pub fn preprocess<F: Float>(frame: &FrameData, constellation: &Constellation) -> Prepared<F> {
    preprocess_ordered(frame, constellation, ColumnOrdering::Natural)
}

/// [`preprocess`] with an explicit detection ordering.
pub fn preprocess_ordered<F: Float>(
    frame: &FrameData,
    constellation: &Constellation,
    ordering: ColumnOrdering,
) -> Prepared<F> {
    let h_cast: Matrix<F> = frame.h.cast();
    let perm = ordering.permutation(&h_cast);
    let h = Matrix::from_fn(h_cast.rows(), h_cast.cols(), |i, j| h_cast[(i, perm[j])]);
    let y: Vec<Complex<F>> = frame.y.iter().map(|c| c.cast()).collect();
    let (r, ybar, tail_energy) = qr_with_qty(&h, &y);
    let points = constellation.points().iter().map(|p| p.cast()).collect();
    let row_blocks = row_blocks_from_r(&r);
    Prepared {
        r,
        ybar,
        tail_energy,
        points,
        n_tx: frame.h.cols(),
        order: constellation.order(),
        prep_flops: qr_flops(frame.h.rows(), frame.h.cols()),
        perm,
        row_blocks,
        h: frame.h.clone(),
        y: frame.y.clone(),
        noise_variance: frame.noise_variance,
    }
}

/// Reusable buffers for [`preprocess_ordered_into`]: the QR scratch plus
/// the cast / permuted channel matrices and the cast receive vector.
pub struct PrepScratch<F: Float> {
    qr: QrScratch<F>,
    h_cast: Matrix<F>,
    h_perm: Matrix<F>,
    y: Vec<Complex<F>>,
    norms: Vec<f64>,
}

impl<F: Float> Default for PrepScratch<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Float> PrepScratch<F> {
    /// Empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        PrepScratch {
            qr: QrScratch::new(),
            h_cast: Matrix::zeros(0, 0),
            h_perm: Matrix::zeros(0, 0),
            y: Vec::new(),
            norms: Vec::new(),
        }
    }
}

/// [`preprocess_ordered`] into a caller-owned [`Prepared`], drawing every
/// intermediate from `scratch`. Bit-identical to the allocating variant;
/// after each problem shape has been seen once, neither `scratch` nor
/// `prep` touches the allocator again — the serving runtime's per-request
/// preprocessing path.
pub fn preprocess_ordered_into<F: Float>(
    frame: &FrameData,
    constellation: &Constellation,
    ordering: ColumnOrdering,
    scratch: &mut PrepScratch<F>,
    prep: &mut Prepared<F>,
) {
    let (n, m) = frame.h.shape();
    scratch.h_cast.resize_for_overwrite(n, m);
    for i in 0..n {
        for j in 0..m {
            scratch.h_cast[(i, j)] = frame.h[(i, j)].cast();
        }
    }
    ordering.permutation_into(&scratch.h_cast, &mut prep.perm, &mut scratch.norms);
    scratch.h_perm.resize_for_overwrite(n, m);
    for i in 0..n {
        for j in 0..m {
            scratch.h_perm[(i, j)] = scratch.h_cast[(i, prep.perm[j])];
        }
    }
    scratch.y.clear();
    scratch.y.extend(frame.y.iter().map(|c| c.cast()));
    prep.tail_energy =
        scratch
            .qr
            .qr_with_qty_into(&scratch.h_perm, &scratch.y, &mut prep.r, &mut prep.ybar);
    prep.points.clear();
    prep.points
        .extend(constellation.points().iter().map(|p| p.cast()));
    prep.n_tx = m;
    prep.order = constellation.order();
    prep.prep_flops = qr_flops(n, m);
    row_blocks_into(&prep.r, &mut prep.row_blocks);
    prep.load_frame(frame);
}

/// The channel-only half of the QR preprocessing: everything that depends
/// on `H` (and the ordering) but not on the received vector `y`.
///
/// The factorization `H_perm = QR` never reads `y`; only the cheap
/// `ȳ = Qᴴy` application does. Splitting along that line lets a serving
/// layer that sees many requests sharing one channel matrix (a coherence
/// block: `H` is re-estimated once per block, symbol vectors arrive every
/// symbol period) factor once and replay — the paper's own argument for
/// amortizing preprocessing across the symbol vectors that share `H`.
/// [`prepare_with_channel_into`] completes a [`Prepared`] from this state
/// bit-identically to [`preprocess_ordered_into`].
pub struct ChannelPrep<F: Float> {
    factors: QrFactors<F>,
    r: Matrix<F>,
    perm: Vec<usize>,
    prep_flops: u64,
}

impl<F: Float> Default for ChannelPrep<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Float> ChannelPrep<F> {
    /// Empty channel state; not usable until [`prepare_channel_into`]
    /// fills it.
    pub fn new() -> Self {
        ChannelPrep {
            factors: QrFactors::new(),
            r: Matrix::zeros(0, 0),
            perm: Vec::new(),
            prep_flops: 0,
        }
    }

    /// `(n_rx, n_tx)` of the factored channel.
    pub fn shape(&self) -> (usize, usize) {
        self.factors.shape()
    }
}

/// Factor a frame's channel matrix into `chan`, reusing `scratch`:
/// the `y`-independent half of [`preprocess_ordered_into`].
/// Allocation-free once the shape has been seen.
pub fn prepare_channel_into<F: Float>(
    frame: &FrameData,
    ordering: ColumnOrdering,
    scratch: &mut PrepScratch<F>,
    chan: &mut ChannelPrep<F>,
) {
    let (n, m) = frame.h.shape();
    scratch.h_cast.resize_for_overwrite(n, m);
    for i in 0..n {
        for j in 0..m {
            scratch.h_cast[(i, j)] = frame.h[(i, j)].cast();
        }
    }
    ordering.permutation_into(&scratch.h_cast, &mut chan.perm, &mut scratch.norms);
    scratch.h_perm.resize_for_overwrite(n, m);
    for i in 0..n {
        for j in 0..m {
            scratch.h_perm[(i, j)] = scratch.h_cast[(i, chan.perm[j])];
        }
    }
    chan.factors.factor(&scratch.h_perm, &mut chan.r);
    chan.prep_flops = qr_flops(n, m);
}

/// Complete a [`Prepared`] from a previously factored channel and this
/// frame's `y`: the per-request half of [`preprocess_ordered_into`].
///
/// Bit-identical to running the full preprocessing on this frame,
/// provided `chan` was built from the same `H` under the same ordering
/// (the factor/apply split of [`QrFactors`] reproduces the fused
/// `qr_with_qty` exactly). The cached path still charges the full
/// `prep_flops`, so flop-based complexity accounting stays comparable
/// whether or not a serving layer cached the factorization.
pub fn prepare_with_channel_into<F: Float>(
    frame: &FrameData,
    constellation: &Constellation,
    scratch: &mut PrepScratch<F>,
    chan: &mut ChannelPrep<F>,
    prep: &mut Prepared<F>,
) {
    let (n, m) = chan.shape();
    assert_eq!(frame.h.shape(), (n, m), "frame does not match the channel");
    prep.r.resize_for_overwrite(m, m);
    for i in 0..m {
        for j in 0..m {
            prep.r[(i, j)] = chan.r[(i, j)];
        }
    }
    prep.perm.clone_from(&chan.perm);
    scratch.y.clear();
    scratch.y.extend(frame.y.iter().map(|c| c.cast()));
    prep.tail_energy = chan.factors.apply_qty_into(&scratch.y, &mut prep.ybar);
    prep.points.clear();
    prep.points
        .extend(constellation.points().iter().map(|p| p.cast()));
    prep.n_tx = m;
    prep.order = constellation.order();
    prep.prep_flops = chan.prep_flops;
    row_blocks_into(&prep.r, &mut prep.row_blocks);
    prep.load_frame(frame);
}

/// Shared-prep state of one coherence block: a single factored channel
/// plus the **batched** `ȳ = QᴴY` products and metric tails of every
/// receive vector that shares it.
///
/// This is the frame-serving counterpart of [`ChannelPrep`]: where the
/// per-request split factors once and replays `Qᴴ` vector by vector, the
/// block path factors once and applies `Qᴴ` to the whole block in one
/// [`sd_math::QrFactors::apply_qty_block_into`] sweep, then hands out
/// per-subcarrier [`Prepared`] problems via [`BlockPrep::fill_prepared`].
/// Both halves are bit-identical to the per-vector pipeline.
pub struct BlockPrep<F: Float> {
    chan: ChannelPrep<F>,
    /// Cast receive vectors, one column per subcarrier (`n × B`).
    ys: Matrix<F>,
    /// `(Qᴴ y_b)[..m]`, one column per subcarrier (`m × B`).
    ybars: Matrix<F>,
    /// `‖(Qᴴ y_b)[m..]‖²` per subcarrier.
    tails: Vec<F>,
    len: usize,
}

impl<F: Float> Default for BlockPrep<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Float> BlockPrep<F> {
    /// Empty block state; not usable until [`prepare_frame_block_into`]
    /// fills it. Buffers are reused across blocks.
    pub fn new() -> Self {
        BlockPrep {
            chan: ChannelPrep::new(),
            ys: Matrix::zeros(0, 0),
            ybars: Matrix::zeros(0, 0),
            tails: Vec::new(),
            len: 0,
        }
    }

    /// Number of subcarriers in the most recently prepared block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no block has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Complete `prep` for subcarrier `k` of the prepared block: the
    /// shared channel state (`R`, permutation, flop charge) plus this
    /// subcarrier's batched `ȳ` column, tail, and frame view. Bit-identical
    /// to [`prepare_with_channel_into`] of the same frame against the same
    /// factored channel. `frame` must be the subcarrier the block was
    /// prepared from (its `y` fed column `k`).
    pub fn fill_prepared(
        &self,
        k: usize,
        frame: &FrameData,
        constellation: &Constellation,
        prep: &mut Prepared<F>,
    ) {
        assert!(k < self.len, "subcarrier {k} out of range ({})", self.len);
        let (_, m) = self.chan.shape();
        prep.r.resize_for_overwrite(m, m);
        for i in 0..m {
            for j in 0..m {
                prep.r[(i, j)] = self.chan.r[(i, j)];
            }
        }
        prep.perm.clone_from(&self.chan.perm);
        prep.ybar.clear();
        prep.ybar.extend((0..m).map(|i| self.ybars[(i, k)]));
        prep.tail_energy = self.tails[k];
        prep.points.clear();
        prep.points
            .extend(constellation.points().iter().map(|p| p.cast()));
        prep.n_tx = m;
        prep.order = constellation.order();
        // Same accounting convention as the per-vector cached path: each
        // subcarrier is charged the full factorization cost so flop-based
        // complexity numbers stay comparable across serving strategies.
        prep.prep_flops = self.chan.prep_flops;
        row_blocks_into(&prep.r, &mut prep.row_blocks);
        prep.load_frame(frame);
    }

    /// Subcarrier `k`'s batched `ȳ_i` — the only per-subcarrier input the
    /// fused block decoders read per tree level, everything else being
    /// block-shared channel state.
    pub(crate) fn ybar_at(&self, i: usize, k: usize) -> Complex<F> {
        self.ybars[(i, k)]
    }
}

/// Prepare a whole coherence block: factor `frames[0]`'s channel once
/// (all frames must carry the same `H`) and apply `Qᴴ` to every receive
/// vector in one batched sweep. The per-subcarrier problems are then read
/// out with [`BlockPrep::fill_prepared`]. Allocation-free once the block
/// shape has been seen.
///
/// # Panics
/// If `frames` is empty or any frame's `H` differs from `frames[0]`'s.
pub fn prepare_frame_block_into<F: Float>(
    frames: &[FrameData],
    ordering: ColumnOrdering,
    scratch: &mut PrepScratch<F>,
    block: &mut BlockPrep<F>,
) {
    assert!(!frames.is_empty(), "empty coherence block");
    let first = &frames[0];
    let (n, _) = first.h.shape();
    for (k, f) in frames.iter().enumerate().skip(1) {
        assert!(
            f.h == first.h,
            "block frame {k} does not share the block channel"
        );
    }
    prepare_channel_into(first, ordering, scratch, &mut block.chan);
    block.ys.resize_for_overwrite(n, frames.len());
    for (b, f) in frames.iter().enumerate() {
        assert_eq!(f.y.len(), n, "frame {b}: y length must equal rows of H");
        for i in 0..n {
            block.ys[(i, b)] = f.y[i].cast();
        }
    }
    block
        .chan
        .factors
        .apply_qty_block_into(&block.ys, &mut block.ybars, &mut block.tails);
    block.len = frames.len();
}

impl<F: Float> Prepared<F> {
    /// An empty placeholder to preprocess into (see
    /// [`preprocess_ordered_into`]); not a valid decoding problem until
    /// filled.
    pub fn empty() -> Self {
        Prepared {
            r: Matrix::zeros(0, 0),
            ybar: Vec::new(),
            tail_energy: F::ZERO,
            points: Vec::new(),
            n_tx: 0,
            order: 0,
            prep_flops: 0,
            perm: Vec::new(),
            row_blocks: Vec::new(),
            h: Matrix::zeros(0, 0),
            y: Vec::new(),
            noise_variance: 0.0,
        }
    }

    /// Copy the frame view (`H`, `y`, `σ²`) into this problem without
    /// touching the QR factors — allocation-free once the shape has been
    /// seen. Detectors that skip tree preprocessing entirely (the linear
    /// family) use this as their whole preparation step.
    pub fn load_frame(&mut self, frame: &FrameData) {
        let (n, m) = frame.h.shape();
        self.h.resize_for_overwrite(n, m);
        for i in 0..n {
            for j in 0..m {
                self.h[(i, j)] = frame.h[(i, j)];
            }
        }
        self.y.clear();
        self.y.extend_from_slice(&frame.y);
        self.noise_variance = frame.noise_variance;
        self.n_tx = m;
    }

    /// Map a depth-order tree path (`path[d]` = tree level `d`'s symbol)
    /// back to physical antenna order, undoing the column permutation.
    pub fn indices_from_path(&self, path: &[usize]) -> Vec<usize> {
        let mut physical = Vec::new();
        self.indices_from_path_into(path, &mut physical);
        physical
    }

    /// [`Prepared::indices_from_path`] into a caller-owned vector.
    pub fn indices_from_path_into(&self, path: &[usize], out: &mut Vec<usize>) {
        let m = self.n_tx;
        assert_eq!(path.len(), m, "need a complete leaf path");
        out.clear();
        out.resize(m, 0);
        for (d, &c) in path.iter().enumerate() {
            out[self.perm[m - 1 - d]] = c;
        }
    }

    /// Full metric `‖y − Hs‖²` of a complete symbol-index vector in
    /// *tree antenna order* (`indices[j]` is tree column `j`'s symbol;
    /// identical to physical order under [`ColumnOrdering::Natural`]).
    pub fn full_metric(&self, indices: &[usize]) -> F {
        assert_eq!(indices.len(), self.n_tx);
        let s: Vec<Complex<F>> = indices.iter().map(|&i| self.points[i]).collect();
        let rs = self.r.mul_vec(&s);
        let mut acc = self.tail_energy;
        for (yi, ri) in self.ybar.iter().zip(rs.iter()) {
            acc += (*yi - *ri).norm_sqr();
        }
        acc
    }

    /// Exact [`ChannelObservables`] of this prepared problem, read off
    /// the `R` diagonal (one pass over `M` entries — free relative to
    /// the QR that produced it).
    pub fn observables(&self) -> ChannelObservables {
        ChannelObservables::from_gains((0..self.n_tx).map(|i| {
            let rii = self.r[(i, i)];
            rii.norm_sqr().to_f64()
        }))
    }
}

/// Pre-decode complexity observables of one channel use — the features
/// the serve layer's predictive admission control conditions on.
///
/// Sphere-decoder search cost at a given SNR is driven by how well
/// conditioned the channel is (the Dabah et al. trade-off curves): a
/// small `|r_ii|` anywhere on the diagonal means one tree level barely
/// discriminates between hypotheses and the search fans out. Two
/// constructors produce the same shape:
///
/// * [`Prepared::observables`] — exact, from the `R` diagonal
///   (`gain_i = |r_ii|²`, so the product is `det(HᴴH)`);
/// * [`ChannelObservables::from_channel`] — a pre-QR proxy from the
///   squared column norms of `H` (Hadamard bound on the same product),
///   cheap enough to run at admission time before any factorization.
///
/// All fields are finite for any input (non-finite or non-positive gains
/// degrade to the worst-case conditioning), so downstream bucketing is
/// total.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelObservables {
    /// Smallest per-stream energy (`min_i |r_ii|²` or `min_j ‖h_j‖²`).
    pub min_gain_sqr: f64,
    /// Largest per-stream energy.
    pub max_gain_sqr: f64,
    /// `Σᵢ log2 gain_i` — `log2 det(HᴴH)` exactly when built from `R`,
    /// its Hadamard upper bound when built from `H`.
    pub log2_gain_product: f64,
}

impl ChannelObservables {
    /// Worst-case conditioning reported when a gain is zero, negative or
    /// non-finite (a singular or corrupt channel): effectively "assume
    /// the search will fan out maximally".
    pub const WORST_CONDITION_LOG2: f64 = 64.0;

    /// Build from an iterator of per-stream squared gains.
    pub fn from_gains<I: IntoIterator<Item = f64>>(gains: I) -> Self {
        let mut min_gain_sqr = f64::INFINITY;
        let mut max_gain_sqr = 0.0f64;
        let mut log2_gain_product = 0.0f64;
        let mut degenerate = false;
        let mut n = 0usize;
        for g in gains {
            n += 1;
            if !(g.is_finite() && g > 0.0) {
                degenerate = true;
                continue;
            }
            min_gain_sqr = min_gain_sqr.min(g);
            max_gain_sqr = max_gain_sqr.max(g);
            log2_gain_product += g.log2();
        }
        if n == 0 || degenerate || min_gain_sqr > max_gain_sqr {
            // Empty or singular channel: pin to the worst conditioning
            // so the predictor assumes maximal fan-out.
            return ChannelObservables {
                min_gain_sqr: 0.0,
                max_gain_sqr: max_gain_sqr.max(0.0),
                log2_gain_product: f64::MIN_EXP as f64,
            };
        }
        ChannelObservables {
            min_gain_sqr,
            max_gain_sqr,
            log2_gain_product,
        }
    }

    /// Pre-QR proxy from the squared column norms of the channel matrix
    /// (Hadamard bound on `det(HᴴH)`); `O(NM)`, no factorization.
    pub fn from_channel(h: &Matrix<f64>) -> Self {
        ChannelObservables::from_gains(
            (0..h.cols()).map(|j| (0..h.rows()).map(|i| h[(i, j)].norm_sqr()).sum::<f64>()),
        )
    }

    /// Condition proxy `log2(κ²) / 2 = log2(max gain / min gain) / 2` —
    /// 0 for a perfectly balanced channel, growing as the weakest stream
    /// collapses. Always finite: degenerate channels report
    /// [`ChannelObservables::WORST_CONDITION_LOG2`].
    pub fn condition_log2(&self) -> f64 {
        if !(self.min_gain_sqr > 0.0)
            || !self.min_gain_sqr.is_finite()
            || !self.max_gain_sqr.is_finite()
        {
            return Self::WORST_CONDITION_LOG2;
        }
        ((self.max_gain_sqr / self.min_gain_sqr).log2() / 2.0)
            .clamp(0.0, Self::WORST_CONDITION_LOG2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::Modulation;

    fn frame(n: usize, m: Modulation, seed: u64) -> (Constellation, FrameData) {
        let c = Constellation::new(m);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = FrameData::generate(n, n, &c, 0.1, &mut rng);
        (c, f)
    }

    #[test]
    fn full_metric_matches_direct_computation() {
        let (c, f) = frame(6, Modulation::Qam4, 3);
        let prep: Prepared<f64> = preprocess(&f, &c);
        // Metric of the true transmitted vector, both ways.
        let direct = {
            let hs = f.h.mul_vec(&f.tx.symbols);
            sd_math::vector::dist_sqr(&f.y, &hs)
        };
        let via_prep = prep.full_metric(&f.tx.indices);
        assert!(
            (direct - via_prep).abs() < 1e-9,
            "direct {direct} != prep {via_prep}"
        );
    }

    #[test]
    fn square_channel_has_zero_tail() {
        let (c, f) = frame(5, Modulation::Qam16, 4);
        let prep: Prepared<f64> = preprocess(&f, &c);
        assert!(prep.tail_energy.abs() < 1e-18);
        assert_eq!(prep.r.shape(), (5, 5));
        assert_eq!(prep.ybar.len(), 5);
        assert_eq!(prep.order, 16);
    }

    #[test]
    fn rectangular_channel_tail_is_positive() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(9);
        let f = FrameData::generate(8, 4, &c, 0.5, &mut rng);
        let prep: Prepared<f64> = preprocess(&f, &c);
        assert!(prep.tail_energy > 0.0, "noisy overdetermined system");
        // Metric identity must still hold.
        let direct = {
            let hs = f.h.mul_vec(&f.tx.symbols);
            sd_math::vector::dist_sqr(&f.y, &hs)
        };
        assert!((direct - prep.full_metric(&f.tx.indices)).abs() < 1e-9);
    }

    #[test]
    fn f32_preprocessing_close_to_f64() {
        let (c, f) = frame(8, Modulation::Qam4, 11);
        let p64: Prepared<f64> = preprocess(&f, &c);
        let p32: Prepared<f32> = preprocess(&f, &c);
        let m64 = p64.full_metric(&f.tx.indices);
        let m32 = p32.full_metric(&f.tx.indices) as f64;
        assert!((m64 - m32).abs() < 1e-3 * (1.0 + m64));
    }

    #[test]
    fn natural_ordering_permutation_is_identity() {
        let (c, f) = frame(6, Modulation::Qam4, 17);
        let prep: Prepared<f64> = preprocess(&f, &c);
        assert_eq!(prep.perm, vec![0, 1, 2, 3, 4, 5]);
        // indices_from_path inverts the depth order.
        let path = vec![3usize, 1, 0, 2, 3, 1];
        let phys = prep.indices_from_path(&path);
        assert_eq!(phys, vec![1, 3, 2, 0, 1, 3]);
    }

    #[test]
    fn ordered_preprocessing_sorts_column_norms() {
        let (c, f) = frame(8, Modulation::Qam4, 18);
        for ordering in [
            ColumnOrdering::NormDescending,
            ColumnOrdering::NormAscending,
        ] {
            let prep: Prepared<f64> = preprocess_ordered(&f, &c, ordering);
            let norms: Vec<f64> = prep
                .perm
                .iter()
                .map(|&j| (0..8).map(|i| f.h[(i, j)].norm_sqr()).sum::<f64>())
                .collect();
            let sorted_ok = match ordering {
                // Detected-first = last tree column = largest norm.
                ColumnOrdering::NormDescending => norms.windows(2).all(|w| w[0] <= w[1]),
                ColumnOrdering::NormAscending => norms.windows(2).all(|w| w[0] >= w[1]),
                ColumnOrdering::Natural => unreachable!(),
            };
            assert!(sorted_ok, "{ordering:?}: {norms:?}");
        }
    }

    #[test]
    fn ordered_metric_identity_still_holds() {
        // The permuted problem must evaluate the same physical hypothesis
        // to the same metric.
        let (c, f) = frame(6, Modulation::Qam4, 19);
        let natural: Prepared<f64> = preprocess(&f, &c);
        let ordered: Prepared<f64> = preprocess_ordered(&f, &c, ColumnOrdering::NormDescending);
        // Physical hypothesis -> tree order for the ordered problem.
        let physical = vec![1usize, 2, 3, 0, 1, 2];
        let tree: Vec<usize> = ordered.perm.iter().map(|&j| physical[j]).collect();
        let m_nat = natural.full_metric(&physical);
        let m_ord = ordered.full_metric(&tree);
        assert!((m_nat - m_ord).abs() < 1e-9, "{m_nat} vs {m_ord}");
    }

    #[test]
    fn preprocess_into_is_bit_identical_to_fresh() {
        let mut scratch: PrepScratch<f64> = PrepScratch::new();
        let mut prep = Prepared::empty();
        for (seed, ordering) in [
            (21u64, ColumnOrdering::Natural),
            (22, ColumnOrdering::NormDescending),
            (23, ColumnOrdering::NormAscending),
            (24, ColumnOrdering::Natural),
        ] {
            let (c, f) = frame(7, Modulation::Qam16, seed);
            let fresh: Prepared<f64> = preprocess_ordered(&f, &c, ordering);
            preprocess_ordered_into(&f, &c, ordering, &mut scratch, &mut prep);
            assert_eq!(fresh.r, prep.r, "{ordering:?}: R differs");
            assert_eq!(fresh.ybar, prep.ybar);
            assert_eq!(fresh.tail_energy.to_bits(), prep.tail_energy.to_bits());
            assert_eq!(fresh.points, prep.points);
            assert_eq!(fresh.n_tx, prep.n_tx);
            assert_eq!(fresh.order, prep.order);
            assert_eq!(fresh.prep_flops, prep.prep_flops);
            assert_eq!(fresh.perm, prep.perm);
            assert_eq!(fresh.row_blocks.len(), prep.row_blocks.len());
            for (a, b) in fresh.row_blocks.iter().zip(prep.row_blocks.iter()) {
                assert_eq!(a, b);
            }
            assert_eq!(fresh.h, prep.h, "{ordering:?}: frame view H differs");
            assert_eq!(fresh.y, prep.y);
            assert_eq!(
                fresh.noise_variance.to_bits(),
                prep.noise_variance.to_bits()
            );
        }
    }

    #[test]
    fn channel_split_is_bit_identical_to_fused_preprocessing() {
        let mut scratch: PrepScratch<f64> = PrepScratch::new();
        let mut chan: ChannelPrep<f64> = ChannelPrep::new();
        let mut split = Prepared::empty();
        let mut fused = Prepared::empty();
        for (seed, ordering) in [
            (41u64, ColumnOrdering::Natural),
            (42, ColumnOrdering::NormDescending),
            (43, ColumnOrdering::NormAscending),
        ] {
            let (c, f) = frame(7, Modulation::Qam16, seed);
            prepare_channel_into(&f, ordering, &mut scratch, &mut chan);
            assert_eq!(chan.shape(), (7, 7));
            // Several received vectors against the one factored channel —
            // the coherence-block shape the serve cache exploits.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            for _ in 0..4 {
                let mut fy = f.clone();
                let other = FrameData::generate(7, 7, &c, 0.1, &mut rng);
                fy.y = other.y.clone();
                prepare_with_channel_into(&fy, &c, &mut scratch, &mut chan, &mut split);
                preprocess_ordered_into(&fy, &c, ordering, &mut scratch, &mut fused);
                assert_eq!(fused.r, split.r, "{ordering:?}: R differs");
                assert_eq!(fused.ybar, split.ybar, "{ordering:?}: ybar differs");
                assert_eq!(fused.tail_energy.to_bits(), split.tail_energy.to_bits());
                assert_eq!(fused.points, split.points);
                assert_eq!(fused.n_tx, split.n_tx);
                assert_eq!(fused.order, split.order);
                assert_eq!(fused.prep_flops, split.prep_flops);
                assert_eq!(fused.perm, split.perm);
                assert_eq!(fused.row_blocks, split.row_blocks);
                assert_eq!(fused.h, split.h);
                assert_eq!(fused.y, split.y);
                assert_eq!(
                    fused.noise_variance.to_bits(),
                    split.noise_variance.to_bits()
                );
            }
        }
    }

    #[test]
    fn block_prep_is_bit_identical_to_per_vector_channel_split() {
        let mut scratch: PrepScratch<f64> = PrepScratch::new();
        let mut chan: ChannelPrep<f64> = ChannelPrep::new();
        let mut block: BlockPrep<f64> = BlockPrep::new();
        let mut from_block = Prepared::empty();
        let mut from_vec = Prepared::empty();
        for (seed, ordering) in [
            (61u64, ColumnOrdering::Natural),
            (62, ColumnOrdering::NormDescending),
            (63, ColumnOrdering::NormAscending),
        ] {
            let (c, f) = frame(6, Modulation::Qam16, seed);
            // A coherence block: one H, fresh y per subcarrier.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB10C);
            let frames: Vec<FrameData> = (0..5)
                .map(|_| {
                    let mut fk = f.clone();
                    fk.y = FrameData::generate(6, 6, &c, 0.1, &mut rng).y;
                    fk
                })
                .collect();
            prepare_frame_block_into(&frames, ordering, &mut scratch, &mut block);
            assert_eq!(block.len(), 5);
            prepare_channel_into(&frames[0], ordering, &mut scratch, &mut chan);
            for (k, fk) in frames.iter().enumerate() {
                block.fill_prepared(k, fk, &c, &mut from_block);
                prepare_with_channel_into(fk, &c, &mut scratch, &mut chan, &mut from_vec);
                assert_eq!(from_vec.r, from_block.r, "{ordering:?} sc {k}: R");
                assert_eq!(from_vec.ybar, from_block.ybar, "{ordering:?} sc {k}: ybar");
                assert_eq!(
                    from_vec.tail_energy.to_bits(),
                    from_block.tail_energy.to_bits()
                );
                assert_eq!(from_vec.points, from_block.points);
                assert_eq!(from_vec.n_tx, from_block.n_tx);
                assert_eq!(from_vec.order, from_block.order);
                assert_eq!(from_vec.prep_flops, from_block.prep_flops);
                assert_eq!(from_vec.perm, from_block.perm);
                assert_eq!(from_vec.row_blocks, from_block.row_blocks);
                assert_eq!(from_vec.h, from_block.h);
                assert_eq!(from_vec.y, from_block.y);
                assert_eq!(
                    from_vec.noise_variance.to_bits(),
                    from_block.noise_variance.to_bits()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not share the block channel")]
    fn block_with_mixed_channels_panics() {
        let mut scratch: PrepScratch<f64> = PrepScratch::new();
        let mut block: BlockPrep<f64> = BlockPrep::new();
        let (c, f0) = frame(5, Modulation::Qam4, 71);
        let mut rng = StdRng::seed_from_u64(72);
        let f1 = FrameData::generate(5, 5, &c, 0.1, &mut rng);
        prepare_frame_block_into(&[f0, f1], ColumnOrdering::Natural, &mut scratch, &mut block);
    }

    #[test]
    #[should_panic(expected = "frame does not match the channel")]
    fn channel_shape_mismatch_panics() {
        let mut scratch: PrepScratch<f64> = PrepScratch::new();
        let mut chan: ChannelPrep<f64> = ChannelPrep::new();
        let (c, f) = frame(6, Modulation::Qam4, 44);
        prepare_channel_into(&f, ColumnOrdering::Natural, &mut scratch, &mut chan);
        let (_, small) = frame(5, Modulation::Qam4, 45);
        let mut prep = Prepared::empty();
        prepare_with_channel_into(&small, &c, &mut scratch, &mut chan, &mut prep);
    }

    #[test]
    fn indices_from_path_into_matches_allocating_variant() {
        let (c, f) = frame(6, Modulation::Qam4, 31);
        let prep: Prepared<f64> = preprocess_ordered(&f, &c, ColumnOrdering::NormDescending);
        let path = vec![3usize, 1, 0, 2, 3, 1];
        let mut buf = vec![9usize; 2];
        prep.indices_from_path_into(&path, &mut buf);
        assert_eq!(buf, prep.indices_from_path(&path));
    }

    #[test]
    fn flops_counter_positive_and_monotone() {
        assert!(qr_flops(10, 10) > 0);
        assert!(qr_flops(20, 20) > qr_flops(10, 10));
        assert!(qr_flops(16, 8) > qr_flops(8, 8));
    }

    /// The exact observables (R diagonal) and the pre-QR proxy (column
    /// norms) must agree on the invariants the predictor relies on: the
    /// exact gain product is `log2 det(HᴴH)` and the Hadamard bound from
    /// `H` is an upper bound on it; both condition proxies are finite.
    #[test]
    fn observables_exact_vs_hadamard_bound() {
        for seed in 40..46 {
            let (c, f) = frame(6, Modulation::Qam16, seed);
            let prep: Prepared<f64> = preprocess(&f, &c);
            let exact = prep.observables();
            let proxy = ChannelObservables::from_channel(&f.h);
            assert!(
                exact.log2_gain_product <= proxy.log2_gain_product + 1e-9,
                "Hadamard bound violated: exact {} > proxy {}",
                exact.log2_gain_product,
                proxy.log2_gain_product
            );
            for o in [&exact, &proxy] {
                assert!(o.min_gain_sqr > 0.0 && o.min_gain_sqr <= o.max_gain_sqr);
                assert!(o.condition_log2().is_finite());
                assert!(o.condition_log2() >= 0.0);
            }
        }
    }

    /// Degenerate inputs (empty, zero, NaN gains) must not poison the
    /// observables: everything stays finite and reports the worst-case
    /// conditioning, so downstream bucketing is total.
    #[test]
    fn observables_are_total_on_degenerate_channels() {
        for obs in [
            ChannelObservables::from_gains([]),
            ChannelObservables::from_gains([0.0, 1.0]),
            ChannelObservables::from_gains([f64::NAN, 1.0]),
            ChannelObservables::from_gains([f64::INFINITY]),
            ChannelObservables::from_gains([-1.0, 2.0]),
        ] {
            assert!(obs.condition_log2().is_finite());
            assert_eq!(
                obs.condition_log2(),
                ChannelObservables::WORST_CONDITION_LOG2
            );
            assert!(obs.log2_gain_product.is_finite());
        }
    }
}
