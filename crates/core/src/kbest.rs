//! K-best (M-algorithm) sphere decoding.
//!
//! The classic fixed-throughput compromise between the exact SD and the
//! linear detectors: a level-synchronous sweep that keeps only the `K`
//! lowest-PD nodes per level. Like FSD it is massively parallel and
//! SNR-independent in workload (attractive for hardware), but unlike the
//! radius-based decoders it is *not* ML-exact unless `K` covers the
//! whole level. Included as the related-work baseline family the paper
//! contrasts against (Sec. II-C) and as an accuracy/throughput ablation
//! axis.
//!
//! Being level-synchronous, K-best gets the same batched treatment as the
//! BFS decoder: the surviving frontier lives in the [`crate::arena`] slab
//! and each level's children are evaluated with one
//! [`crate::pd::eval_children_batch`] GEMM call. Partial distances
//! accumulate in the working precision `F` (not `f64`), preserving the
//! original fixed-precision semantics bit for bit.

use crate::arena::{SearchWorkspace, NIL};
use crate::detector::{Detection, SearchQuality};
use crate::engine::{impl_detector_via_prepared, DecodeBudget, PreparedDetector};
use crate::pd::{eval_children_batch, eval_children_batch_fused, greedy_tail};
use crate::preprocess::{BlockPrep, Prepared};
use crate::select::{keep_best, keep_best_slice};
use crate::trace::{span_clock, span_ns, Phase};
use sd_math::{Float, GemmAlgo};
use sd_wireless::{Constellation, FrameData};

/// K-best breadth-limited decoder.
#[derive(Clone, Debug)]
pub struct KBestSd<F: Float = f64> {
    constellation: Constellation,
    /// Survivors kept per level.
    pub k: usize,
    /// Kernel driving the per-level batched GEMM.
    pub batch_algo: GemmAlgo,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> KBestSd<F> {
    /// K-best decoder with the given per-level list size.
    pub fn new(constellation: Constellation, k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        KBestSd {
            constellation,
            k,
            batch_algo: GemmAlgo::Blocked,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: batched-GEMM kernel (bit-identical across kernels).
    pub fn with_batch_algo(mut self, algo: GemmAlgo) -> Self {
        self.batch_algo = algo;
        self
    }
}

impl<F: Float> PreparedDetector<F> for KBestSd<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    /// Level-synchronous K-best sweep into a caller-owned [`Detection`]:
    /// a warm workspace + output pair decodes without heap allocation.
    /// The sweep is breadth-limited rather than radius-bounded, so
    /// `radius_sqr` is ignored.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        self.detect_prepared_budgeted_into(prep, radius_sqr, &DecodeBudget::UNLIMITED, ws, out);
    }

    /// The K-best sweep under an anytime budget: the node cap / deadline
    /// is checked once per tree level, and a trip ends the level loop
    /// with the best frontier node greedily completed to a leaf
    /// ([`SearchQuality::BudgetTruncated`]). Untripped decodes are
    /// bit-identical to [`Self::detect_prepared_into`] (the checks are
    /// pure reads).
    fn detect_prepared_budgeted_into(
        &self,
        prep: &Prepared<F>,
        _radius_sqr: f64,
        budget: &DecodeBudget,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        ws.prepare(p, m);
        out.stats.reset(m);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }

        // Frontier of (pd, arena id), capped at K after each level.
        ws.frontier_f.clear();
        ws.frontier_f.push((F::ZERO, NIL));
        let mut tripped = false;
        for depth in 0..m {
            if budget.tripped_after(out.stats.nodes_generated) {
                tripped = true;
                break;
            }
            let stats = &mut out.stats;
            ws.ids.clear();
            ws.ids.extend(ws.frontier_f.iter().map(|&(_, id)| id));
            let t0 = span_clock(trace.is_some());
            stats.flops +=
                eval_children_batch(prep, &ws.arena, &ws.ids, self.batch_algo, &mut ws.scratch);
            if let Some(t) = trace.as_deref_mut() {
                t.on_phase(Phase::Expand, span_ns(t0));
                t.on_expand(
                    depth,
                    ws.frontier_f.len() as u64,
                    (ws.frontier_f.len() * p) as u64,
                );
            }
            stats.nodes_expanded += ws.frontier_f.len() as u64;
            stats.nodes_generated += (ws.frontier_f.len() * p) as u64;
            stats.per_level_generated[depth] += (ws.frontier_f.len() * p) as u64;

            ws.next_f.clear();
            for (bi, &(pd, id)) in ws.frontier_f.iter().enumerate() {
                for c in 0..p {
                    let child_pd = pd + ws.scratch.batch_increments[bi * p + c];
                    let child = ws.arena.alloc(id, c);
                    ws.next_f.push((child_pd, child));
                }
            }
            if ws.next_f.len() > self.k {
                let sorted = ws.next_f.len();
                let t0 = span_clock(trace.is_some());
                // Partial selection instead of a full sort: keep the K
                // best (then order just those) — the level cost drops
                // from O(n log n) to O(n + K log K), which PR 6 measured
                // as the float engine's Amdahl bottleneck.
                keep_best(&mut ws.next_f, self.k, |a, b| {
                    a.0.to_f64().total_cmp(&b.0.to_f64())
                });
                stats.nodes_pruned += (sorted - self.k) as u64;
                if let Some(t) = trace.as_deref_mut() {
                    t.on_phase(Phase::Sort, span_ns(t0));
                    t.on_sort(depth, sorted as u64);
                    t.on_prune(depth, (sorted - self.k) as u64);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.on_accept(depth, ws.next_f.len() as u64);
            }
            std::mem::swap(&mut ws.frontier_f, &mut ws.next_f);
        }

        if tripped {
            // Best-so-far: greedily complete the most promising frontier
            // node to a leaf and flag the truncation.
            let spent = out.stats.nodes_generated;
            let &(pd, id) = ws
                .frontier_f
                .iter()
                .min_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()))
                .expect("frontier is never empty");
            ws.arena.path_into(id, &mut ws.path_buf);
            let final_pd = greedy_tail(prep, &mut ws.path_buf, pd, &mut out.stats, &mut ws.scratch);
            out.stats.leaves_reached += 1;
            out.stats.radius_updates = 1;
            out.stats.final_radius_sqr = final_pd.to_f64();
            out.stats.flops += prep.prep_flops;
            out.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
            ws.trace = trace;
            prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
            return;
        }

        out.stats.leaves_reached = ws.frontier_f.len() as u64;
        let t0 = span_clock(trace.is_some());
        let &(best_pd, best_id) = ws
            .frontier_f
            .iter()
            .min_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()))
            .expect("frontier is never empty");
        out.stats.radius_updates = 1;
        out.stats.final_radius_sqr = best_pd.to_f64();
        out.stats.flops += prep.prep_flops;
        ws.arena.path_into(best_id, &mut ws.path_buf);
        if let Some(t) = trace.as_deref_mut() {
            t.on_phase(Phase::Leaf, span_ns(t0));
            t.on_radius_update(m - 1, best_pd.to_f64());
        }
        ws.trace = trace;
        prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
    }

    /// Cross-subcarrier fused block decode: ONE K-best sweep over the
    /// whole coherence block. The per-subcarrier frontiers are stacked
    /// subcarrier-major into a single `(depth × B·fl)` operand and each
    /// tree level costs one fused GEMM call
    /// ([`eval_children_batch_fused`]) instead of `B`; the survivor cut
    /// then runs per subcarrier on the fused score list.
    ///
    /// Exactness: the GEMM never sees ȳ (shared-`R` lemma), each
    /// subcarrier's candidate segment is the same value sequence the
    /// per-subcarrier loop produces, and the cut is a deterministic
    /// function of that sequence — so indices, stats and metric bits are
    /// bit-identical per subcarrier, budgets included (uniform frontier
    /// sizes make every subcarrier trip at the same level).
    fn detect_block_prepared_budgeted_into(
        &self,
        block: &BlockPrep<F>,
        frames: &[FrameData],
        budget: &DecodeBudget,
        prep: &mut Prepared<F>,
        ws: &mut SearchWorkspace<F>,
        out: &mut [Detection],
    ) -> bool {
        if ws.trace_enabled() {
            return false; // per-decode event streams need the loop path
        }
        let b_count = frames.len();
        debug_assert_eq!(out.len(), b_count);
        if b_count == 0 {
            return true;
        }
        // Shared channel state (R, row blocks, points, permutation) from
        // subcarrier 0; per-subcarrier ȳ is read straight off the block.
        block.fill_prepared(0, &frames[0], &self.constellation, prep);
        let m = prep.n_tx;
        let p = prep.order;
        ws.prepare(p, m);
        for d in out.iter_mut() {
            d.stats.reset(m);
        }

        // One root per subcarrier, subcarrier-major; `fl` is the uniform
        // per-subcarrier frontier length (min(pᵈ, K) — data-independent).
        ws.frontier_f.clear();
        ws.frontier_f.extend((0..b_count).map(|_| (F::ZERO, NIL)));
        let mut fl = 1usize;
        let mut tripped = false;
        for depth in 0..m {
            if budget.tripped_after(out[0].stats.nodes_generated) {
                tripped = true;
                break;
            }
            ws.ids.clear();
            ws.ids.extend(ws.frontier_f.iter().map(|&(_, id)| id));
            let i_ant = m - 1 - depth;
            ws.ybar_lanes.clear();
            for sc in 0..b_count {
                ws.ybar_lanes.push(block.ybar_at(i_ant, sc));
            }
            let level_flops = eval_children_batch_fused(
                prep,
                &ws.arena,
                &ws.ids,
                &ws.ybar_lanes,
                fl,
                self.batch_algo,
                &mut ws.scratch,
            );
            // The fused flop charge is linear in nodes: attribute each
            // subcarrier exactly its per-subcarrier share.
            let per_sc_flops = level_flops / b_count as u64;
            debug_assert_eq!(per_sc_flops * b_count as u64, level_flops);
            for d in out.iter_mut() {
                d.stats.flops += per_sc_flops;
                d.stats.nodes_expanded += fl as u64;
                d.stats.nodes_generated += (fl * p) as u64;
                d.stats.per_level_generated[depth] += (fl * p) as u64;
            }

            ws.next_f.clear();
            for (bi, &(pd, id)) in ws.frontier_f.iter().enumerate() {
                for c in 0..p {
                    let child_pd = pd + ws.scratch.batch_increments[bi * p + c];
                    let child = ws.arena.alloc(id, c);
                    ws.next_f.push((child_pd, child));
                }
            }
            let gen = fl * p;
            if gen > self.k {
                for (sc, d) in out.iter_mut().enumerate() {
                    let seg = &mut ws.next_f[sc * gen..(sc + 1) * gen];
                    keep_best_slice(seg, self.k, |a, b| a.0.to_f64().total_cmp(&b.0.to_f64()));
                    d.stats.nodes_pruned += (gen - self.k) as u64;
                }
                ws.frontier_f.clear();
                for sc in 0..b_count {
                    let start = sc * gen;
                    ws.frontier_f
                        .extend_from_slice(&ws.next_f[start..start + self.k]);
                }
                fl = self.k;
            } else {
                std::mem::swap(&mut ws.frontier_f, &mut ws.next_f);
                fl = gen;
            }
        }

        for (sc, d) in out.iter_mut().enumerate() {
            let seg = &ws.frontier_f[sc * fl..(sc + 1) * fl];
            let &(best_pd, best_id) = seg
                .iter()
                .min_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()))
                .expect("frontier is never empty");
            if tripped {
                let spent = d.stats.nodes_generated;
                // Rare path: reload this subcarrier's ȳ for the greedy
                // scalar completion.
                block.fill_prepared(sc, &frames[sc], &self.constellation, prep);
                ws.arena.path_into(best_id, &mut ws.path_buf);
                let final_pd = greedy_tail(
                    prep,
                    &mut ws.path_buf,
                    best_pd,
                    &mut d.stats,
                    &mut ws.scratch,
                );
                d.stats.leaves_reached += 1;
                d.stats.radius_updates = 1;
                d.stats.final_radius_sqr = final_pd.to_f64();
                d.stats.flops += prep.prep_flops;
                d.stats.quality = SearchQuality::BudgetTruncated { nodes_spent: spent };
                prep.indices_from_path_into(&ws.path_buf, &mut d.indices);
            } else {
                d.stats.leaves_reached = fl as u64;
                d.stats.radius_updates = 1;
                d.stats.final_radius_sqr = best_pd.to_f64();
                d.stats.flops += prep.prep_flops;
                ws.arena.path_into(best_id, &mut ws.path_buf);
                prep.indices_from_path_into(&ws.path_buf, &mut d.indices);
            }
        }
        true
    }
}

impl_detector_via_prepared!(KBestSd<F>, "SD K-best");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::ml::MlDetector;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn frames(n: usize, snr_db: f64, count: usize, seed: u64) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn full_width_k_is_ml_exact() {
        // K ≥ P^M keeps everything: exhaustive ML.
        let (c, frames) = frames(4, 6.0, 20, 120);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 4usize.pow(4));
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(kb.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn workload_is_snr_independent() {
        let (c, lo) = frames(8, 4.0, 5, 121);
        let (_, hi) = frames(8, 20.0, 5, 121);
        let kb: KBestSd<f64> = KBestSd::new(c, 8);
        let n_lo: u64 = lo.iter().map(|f| kb.detect(f).stats.nodes_generated).sum();
        let n_hi: u64 = hi.iter().map(|f| kb.detect(f).stats.nodes_generated).sum();
        assert_eq!(n_lo, n_hi, "fixed complexity by construction");
    }

    #[test]
    fn larger_k_is_more_accurate() {
        let (c, frames) = frames(8, 8.0, 150, 122);
        let k2: KBestSd<f64> = KBestSd::new(c.clone(), 2);
        let k16: KBestSd<f64> = KBestSd::new(c.clone(), 16);
        let mut e2 = 0u64;
        let mut e16 = 0u64;
        for f in &frames {
            e2 += f.bit_errors(&k2.detect(f).indices, &c);
            e16 += f.bit_errors(&k16.detect(f).indices, &c);
        }
        assert!(e16 <= e2, "K=16 ({e16}) must not lose to K=2 ({e2})");
    }

    #[test]
    fn k_best_close_to_ml_at_moderate_k() {
        let (c, frames) = frames(6, 8.0, 100, 123);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 16);
        let ml = MlDetector::new(c.clone());
        let mut e_kb = 0u64;
        let mut e_ml = 0u64;
        for f in &frames {
            e_kb += f.bit_errors(&kb.detect(f).indices, &c);
            e_ml += f.bit_errors(&ml.detect(f).indices, &c);
        }
        assert!(e_ml <= e_kb);
        assert!(
            e_kb <= e_ml * 3 + 20,
            "K=16 should be near-ML (kb={e_kb}, ml={e_ml})"
        );
    }

    #[test]
    fn batch_kernels_agree_exactly() {
        let (c, frames) = frames(7, 8.0, 10, 124);
        let blocked: KBestSd<f32> = KBestSd::new(c.clone(), 12);
        let parallel: KBestSd<f32> = KBestSd::new(c, 12).with_batch_algo(GemmAlgo::Parallel);
        for f in &frames {
            let a = blocked.detect(f);
            let b = parallel.detect(f);
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let (c, frames) = frames(6, 10.0, 10, 125);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 8);
        let mut ws = SearchWorkspace::new();
        for f in &frames {
            let prep: Prepared<f64> = preprocess(f, &c);
            let fresh = kb.detect_prepared(&prep, f64::INFINITY);
            let reused = kb.detect_prepared_in(&prep, f64::INFINITY, &mut ws);
            assert_eq!(fresh.indices, reused.indices);
            assert_eq!(fresh.stats, reused.stats);
        }
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_rejected() {
        let _ = KBestSd::<f64>::new(Constellation::new(Modulation::Qam4), 0);
    }
}
