//! K-best (M-algorithm) sphere decoding.
//!
//! The classic fixed-throughput compromise between the exact SD and the
//! linear detectors: a level-synchronous sweep that keeps only the `K`
//! lowest-PD nodes per level. Like FSD it is massively parallel and
//! SNR-independent in workload (attractive for hardware), but unlike the
//! radius-based decoders it is *not* ML-exact unless `K` covers the
//! whole level. Included as the related-work baseline family the paper
//! contrasts against (Sec. II-C) and as an accuracy/throughput ablation
//! axis.
//!
//! Being level-synchronous, K-best gets the same batched treatment as the
//! BFS decoder: the surviving frontier lives in the [`crate::arena`] slab
//! and each level's children are evaluated with one
//! [`crate::pd::eval_children_batch`] GEMM call. Partial distances
//! accumulate in the working precision `F` (not `f64`), preserving the
//! original fixed-precision semantics bit for bit.

use crate::arena::{SearchWorkspace, NIL};
use crate::detector::Detection;
use crate::engine::{impl_detector_via_prepared, PreparedDetector};
use crate::pd::eval_children_batch;
use crate::preprocess::Prepared;
use crate::trace::{span_clock, span_ns, Phase};
use sd_math::{Float, GemmAlgo};
use sd_wireless::Constellation;

/// K-best breadth-limited decoder.
#[derive(Clone, Debug)]
pub struct KBestSd<F: Float = f64> {
    constellation: Constellation,
    /// Survivors kept per level.
    pub k: usize,
    /// Kernel driving the per-level batched GEMM.
    pub batch_algo: GemmAlgo,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> KBestSd<F> {
    /// K-best decoder with the given per-level list size.
    pub fn new(constellation: Constellation, k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        KBestSd {
            constellation,
            k,
            batch_algo: GemmAlgo::Blocked,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: batched-GEMM kernel (bit-identical across kernels).
    pub fn with_batch_algo(mut self, algo: GemmAlgo) -> Self {
        self.batch_algo = algo;
        self
    }
}

impl<F: Float> PreparedDetector<F> for KBestSd<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn channel_cacheable(&self) -> bool {
        true
    }

    /// Level-synchronous K-best sweep into a caller-owned [`Detection`]:
    /// a warm workspace + output pair decodes without heap allocation.
    /// The sweep is breadth-limited rather than radius-bounded, so
    /// `radius_sqr` is ignored.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        _radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        ws.prepare(p, m);
        out.stats.reset(m);
        let mut trace = ws.trace.take();
        if let Some(t) = trace.as_deref_mut() {
            t.on_decode_start(m);
        }
        let stats = &mut out.stats;

        // Frontier of (pd, arena id), capped at K after each level.
        ws.frontier_f.clear();
        ws.frontier_f.push((F::ZERO, NIL));
        for depth in 0..m {
            ws.ids.clear();
            ws.ids.extend(ws.frontier_f.iter().map(|&(_, id)| id));
            let t0 = span_clock(trace.is_some());
            stats.flops +=
                eval_children_batch(prep, &ws.arena, &ws.ids, self.batch_algo, &mut ws.scratch);
            if let Some(t) = trace.as_deref_mut() {
                t.on_phase(Phase::Expand, span_ns(t0));
                t.on_expand(
                    depth,
                    ws.frontier_f.len() as u64,
                    (ws.frontier_f.len() * p) as u64,
                );
            }
            stats.nodes_expanded += ws.frontier_f.len() as u64;
            stats.nodes_generated += (ws.frontier_f.len() * p) as u64;
            stats.per_level_generated[depth] += (ws.frontier_f.len() * p) as u64;

            ws.next_f.clear();
            for (bi, &(pd, id)) in ws.frontier_f.iter().enumerate() {
                for c in 0..p {
                    let child_pd = pd + ws.scratch.batch_increments[bi * p + c];
                    let child = ws.arena.alloc(id, c);
                    ws.next_f.push((child_pd, child));
                }
            }
            if ws.next_f.len() > self.k {
                let sorted = ws.next_f.len();
                let t0 = span_clock(trace.is_some());
                ws.next_f
                    .sort_unstable_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()));
                stats.nodes_pruned += (ws.next_f.len() - self.k) as u64;
                ws.next_f.truncate(self.k);
                if let Some(t) = trace.as_deref_mut() {
                    t.on_phase(Phase::Sort, span_ns(t0));
                    t.on_sort(depth, sorted as u64);
                    t.on_prune(depth, (sorted - self.k) as u64);
                }
            }
            if let Some(t) = trace.as_deref_mut() {
                t.on_accept(depth, ws.next_f.len() as u64);
            }
            std::mem::swap(&mut ws.frontier_f, &mut ws.next_f);
        }

        stats.leaves_reached = ws.frontier_f.len() as u64;
        let t0 = span_clock(trace.is_some());
        let &(best_pd, best_id) = ws
            .frontier_f
            .iter()
            .min_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()))
            .expect("frontier is never empty");
        stats.radius_updates = 1;
        stats.final_radius_sqr = best_pd.to_f64();
        stats.flops += prep.prep_flops;
        ws.arena.path_into(best_id, &mut ws.path_buf);
        if let Some(t) = trace.as_deref_mut() {
            t.on_phase(Phase::Leaf, span_ns(t0));
            t.on_radius_update(m - 1, best_pd.to_f64());
        }
        ws.trace = trace;
        prep.indices_from_path_into(&ws.path_buf, &mut out.indices);
    }
}

impl_detector_via_prepared!(KBestSd<F>, "SD K-best");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::ml::MlDetector;
    use crate::preprocess::preprocess;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn frames(n: usize, snr_db: f64, count: usize, seed: u64) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn full_width_k_is_ml_exact() {
        // K ≥ P^M keeps everything: exhaustive ML.
        let (c, frames) = frames(4, 6.0, 20, 120);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 4usize.pow(4));
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(kb.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn workload_is_snr_independent() {
        let (c, lo) = frames(8, 4.0, 5, 121);
        let (_, hi) = frames(8, 20.0, 5, 121);
        let kb: KBestSd<f64> = KBestSd::new(c, 8);
        let n_lo: u64 = lo.iter().map(|f| kb.detect(f).stats.nodes_generated).sum();
        let n_hi: u64 = hi.iter().map(|f| kb.detect(f).stats.nodes_generated).sum();
        assert_eq!(n_lo, n_hi, "fixed complexity by construction");
    }

    #[test]
    fn larger_k_is_more_accurate() {
        let (c, frames) = frames(8, 8.0, 150, 122);
        let k2: KBestSd<f64> = KBestSd::new(c.clone(), 2);
        let k16: KBestSd<f64> = KBestSd::new(c.clone(), 16);
        let mut e2 = 0u64;
        let mut e16 = 0u64;
        for f in &frames {
            e2 += f.bit_errors(&k2.detect(f).indices, &c);
            e16 += f.bit_errors(&k16.detect(f).indices, &c);
        }
        assert!(e16 <= e2, "K=16 ({e16}) must not lose to K=2 ({e2})");
    }

    #[test]
    fn k_best_close_to_ml_at_moderate_k() {
        let (c, frames) = frames(6, 8.0, 100, 123);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 16);
        let ml = MlDetector::new(c.clone());
        let mut e_kb = 0u64;
        let mut e_ml = 0u64;
        for f in &frames {
            e_kb += f.bit_errors(&kb.detect(f).indices, &c);
            e_ml += f.bit_errors(&ml.detect(f).indices, &c);
        }
        assert!(e_ml <= e_kb);
        assert!(
            e_kb <= e_ml * 3 + 20,
            "K=16 should be near-ML (kb={e_kb}, ml={e_ml})"
        );
    }

    #[test]
    fn batch_kernels_agree_exactly() {
        let (c, frames) = frames(7, 8.0, 10, 124);
        let blocked: KBestSd<f32> = KBestSd::new(c.clone(), 12);
        let parallel: KBestSd<f32> = KBestSd::new(c, 12).with_batch_algo(GemmAlgo::Parallel);
        for f in &frames {
            let a = blocked.detect(f);
            let b = parallel.detect(f);
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let (c, frames) = frames(6, 10.0, 10, 125);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 8);
        let mut ws = SearchWorkspace::new();
        for f in &frames {
            let prep: Prepared<f64> = preprocess(f, &c);
            let fresh = kb.detect_prepared(&prep, f64::INFINITY);
            let reused = kb.detect_prepared_in(&prep, f64::INFINITY, &mut ws);
            assert_eq!(fresh.indices, reused.indices);
            assert_eq!(fresh.stats, reused.stats);
        }
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_rejected() {
        let _ = KBestSd::<f64>::new(Constellation::new(Modulation::Qam4), 0);
    }
}
