//! K-best (M-algorithm) sphere decoding.
//!
//! The classic fixed-throughput compromise between the exact SD and the
//! linear detectors: a level-synchronous sweep that keeps only the `K`
//! lowest-PD nodes per level. Like FSD it is massively parallel and
//! SNR-independent in workload (attractive for hardware), but unlike the
//! radius-based decoders it is *not* ML-exact unless `K` covers the
//! whole level. Included as the related-work baseline family the paper
//! contrasts against (Sec. II-C) and as an accuracy/throughput ablation
//! axis.

use crate::detector::{Detection, DetectionStats, Detector};
use crate::pd::{eval_children, EvalStrategy, PdScratch};
use crate::preprocess::{preprocess, Prepared};
use sd_math::Float;
use sd_wireless::{Constellation, FrameData};

/// K-best breadth-limited decoder.
#[derive(Clone, Debug)]
pub struct KBestSd<F: Float = f64> {
    constellation: Constellation,
    /// Survivors kept per level.
    pub k: usize,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> KBestSd<F> {
    /// K-best decoder with the given per-level list size.
    pub fn new(constellation: Constellation, k: usize) -> Self {
        assert!(k > 0, "K must be positive");
        KBestSd {
            constellation,
            k,
            _precision: std::marker::PhantomData,
        }
    }

    /// Decode an already-preprocessed problem.
    pub fn detect_prepared(&self, prep: &Prepared<F>) -> Detection {
        let m = prep.n_tx;
        let p = prep.order;
        let mut scratch = PdScratch::new(p, m);
        let mut stats = DetectionStats {
            per_level_generated: vec![0; m],
            ..Default::default()
        };

        // Frontier of (pd, depth-order path), capped at K after each level.
        let mut frontier: Vec<(F, Vec<usize>)> = vec![(F::ZERO, Vec::new())];
        for depth in 0..m {
            let mut next: Vec<(F, Vec<usize>)> = Vec::with_capacity(frontier.len() * p);
            for (pd, path) in &frontier {
                stats.nodes_expanded += 1;
                stats.flops += eval_children(prep, path, EvalStrategy::Gemm, &mut scratch);
                stats.nodes_generated += p as u64;
                stats.per_level_generated[depth] += p as u64;
                for (c, &inc) in scratch.increments.iter().enumerate() {
                    let mut child = path.clone();
                    child.push(c);
                    next.push((*pd + inc, child));
                }
            }
            if next.len() > self.k {
                next.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("non-NaN PD"));
                stats.nodes_pruned += (next.len() - self.k) as u64;
                next.truncate(self.k);
            }
            frontier = next;
        }

        stats.leaves_reached = frontier.len() as u64;
        let (best_pd, best_path) = frontier
            .into_iter()
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("non-NaN PD"))
            .expect("frontier is never empty");
        stats.radius_updates = 1;
        stats.final_radius_sqr = best_pd.to_f64();
        stats.flops += prep.prep_flops;
        let indices = prep.indices_from_path(&best_path);
        Detection { indices, stats }
    }
}

impl<F: Float> Detector for KBestSd<F> {
    fn name(&self) -> &'static str {
        "SD K-best"
    }

    fn detect(&self, frame: &FrameData) -> Detection {
        let prep: Prepared<F> = preprocess(frame, &self.constellation);
        self.detect_prepared(&prep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(n: usize, snr_db: f64, count: usize, seed: u64) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn full_width_k_is_ml_exact() {
        // K ≥ P^M keeps everything: exhaustive ML.
        let (c, frames) = frames(4, 6.0, 20, 120);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 4usize.pow(4));
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(kb.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn workload_is_snr_independent() {
        let (c, lo) = frames(8, 4.0, 5, 121);
        let (_, hi) = frames(8, 20.0, 5, 121);
        let kb: KBestSd<f64> = KBestSd::new(c, 8);
        let n_lo: u64 = lo.iter().map(|f| kb.detect(f).stats.nodes_generated).sum();
        let n_hi: u64 = hi.iter().map(|f| kb.detect(f).stats.nodes_generated).sum();
        assert_eq!(n_lo, n_hi, "fixed complexity by construction");
    }

    #[test]
    fn larger_k_is_more_accurate() {
        let (c, frames) = frames(8, 8.0, 150, 122);
        let k2: KBestSd<f64> = KBestSd::new(c.clone(), 2);
        let k16: KBestSd<f64> = KBestSd::new(c.clone(), 16);
        let mut e2 = 0u64;
        let mut e16 = 0u64;
        for f in &frames {
            e2 += f.bit_errors(&k2.detect(f).indices, &c);
            e16 += f.bit_errors(&k16.detect(f).indices, &c);
        }
        assert!(e16 <= e2, "K=16 ({e16}) must not lose to K=2 ({e2})");
    }

    #[test]
    fn k_best_close_to_ml_at_moderate_k() {
        let (c, frames) = frames(6, 8.0, 100, 123);
        let kb: KBestSd<f64> = KBestSd::new(c.clone(), 16);
        let ml = MlDetector::new(c.clone());
        let mut e_kb = 0u64;
        let mut e_ml = 0u64;
        for f in &frames {
            e_kb += f.bit_errors(&kb.detect(f).indices, &c);
            e_ml += f.bit_errors(&ml.detect(f).indices, &c);
        }
        assert!(e_ml <= e_kb);
        assert!(
            e_kb <= e_ml * 3 + 20,
            "K=16 should be near-ML (kb={e_kb}, ml={e_ml})"
        );
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_rejected() {
        let _ = KBestSd::<f64>::new(Constellation::new(Modulation::Qam4), 0);
    }
}
