//! Real-valued-decomposition (RVD) sphere decoding.
//!
//! Geosphere \[14\] — the traversal strategy the paper adopts — actually
//! operates on the *real-valued decomposition* of the complex system:
//!
//! ```text
//! [Re y]   [Re H  −Im H] [Re s]
//! [Im y] = [Im H   Re H] [Im s]  + ñ
//! ```
//!
//! which doubles the tree depth to `2M` but shrinks the branching factor
//! to `√P` (the per-axis PAM alphabet). The total leaf count is
//! unchanged (`√P^{2M} = P^M`) and the optimum is identical, but the
//! finer-grained levels let the sorted traversal prune *inside* a
//! complex symbol — usually fewer generated nodes per decode at the cost
//! of a deeper pipeline. This variant quantifies that trade against the
//! paper's complex-domain formulation.
//!
//! Only square QAM constellations decompose (their real/imaginary parts
//! are independent PAM alphabets); BPSK is rejected.

use crate::arena::SearchWorkspace;
use crate::detector::Detection;
use crate::dfs::SphereDecoder;
use crate::engine::{impl_detector_via_prepared, PreparedDetector};
use crate::preprocess::{qr_flops, PrepScratch, Prepared};
use sd_math::{qr_with_qty, Complex, Float, Matrix};
use sd_wireless::{Constellation, FrameData, Modulation};

/// Sphere decoder over the real-valued decomposition.
#[derive(Clone, Debug)]
pub struct RvdSphereDecoder<F: Float = f64> {
    constellation: Constellation,
    /// PAM levels of one axis (unit-energy scaled).
    pam_levels: Vec<f64>,
    inner: SphereDecoder<F>,
}

impl<F: Float> RvdSphereDecoder<F> {
    /// Build an RVD decoder for a square-QAM constellation.
    ///
    /// # Panics
    /// For non-separable constellations (BPSK).
    pub fn new(constellation: Constellation) -> Self {
        let modulation = constellation.modulation();
        assert!(
            matches!(
                modulation,
                Modulation::Qam4 | Modulation::Qam16 | Modulation::Qam64
            ),
            "RVD requires a square QAM constellation, got {modulation}"
        );
        // Recover the per-axis PAM levels from the constellation points.
        let mut pam_levels: Vec<f64> = constellation
            .points()
            .iter()
            .map(|p| p.re)
            .collect::<Vec<_>>();
        pam_levels.sort_by(f64::total_cmp);
        pam_levels.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let inner = SphereDecoder::new(constellation.clone());
        RvdSphereDecoder {
            constellation,
            pam_levels,
            inner,
        }
    }

    /// The per-axis PAM alphabet size (`√P`).
    pub fn pam_order(&self) -> usize {
        self.pam_levels.len()
    }

    /// Build the real-valued `Prepared` problem: a `2N × 2M` real system
    /// expressed in the complex machinery (imaginary parts all zero).
    ///
    /// Columns are *interleaved* — `[Re s_0, Im s_0, Re s_1, …]` — so the
    /// tree fixes both components of one complex symbol on consecutive
    /// levels (detecting them `M` levels apart would cripple pruning).
    fn prepare(&self, frame: &FrameData) -> Prepared<F> {
        let (n, m) = frame.h.shape();
        let h_real = Matrix::from_fn(2 * n, 2 * m, |i, j| {
            let hij = frame.h[(i % n, j / 2)];
            let re_col = j % 2 == 0; // column multiplies Re s_{j/2}?
            let v = match (i < n, re_col) {
                (true, true) => hij.re,
                (true, false) => -hij.im,
                (false, true) => hij.im,
                (false, false) => hij.re,
            };
            Complex::from_real(F::from_f64(v))
        });
        let y_real: Vec<Complex<F>> = (0..2 * n)
            .map(|i| {
                let v = if i < n {
                    frame.y[i].re
                } else {
                    frame.y[i - n].im
                };
                Complex::from_real(F::from_f64(v))
            })
            .collect();
        let (r, ybar, tail_energy) = qr_with_qty(&h_real, &y_real);
        let row_blocks = crate::preprocess::row_blocks_from_r(&r);
        Prepared {
            r,
            ybar,
            tail_energy,
            points: self
                .pam_levels
                .iter()
                .map(|&l| Complex::from_real(F::from_f64(l)))
                .collect(),
            n_tx: 2 * m,
            order: self.pam_levels.len(),
            prep_flops: qr_flops(2 * n, 2 * m),
            perm: (0..2 * m).collect(),
            row_blocks,
            h: frame.h.clone(),
            y: frame.y.clone(),
            noise_variance: frame.noise_variance,
        }
    }
}

impl<F: Float> PreparedDetector<F> for RvdSphereDecoder<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn initial_radius_sqr(&self, n_rx: usize, noise_variance: f64) -> f64 {
        // The real system doubles the row count, so the noise-scaled
        // radius policies see `2N` receive dimensions.
        self.inner.initial_radius.resolve(2 * n_rx, noise_variance)
    }

    /// RVD replaces the shared complex-domain QR with its doubled real
    /// system; `scratch` is unused because the decomposition rebuilds the
    /// problem from the raw frame.
    fn prepare_frame_into(
        &self,
        frame: &FrameData,
        _scratch: &mut PrepScratch<F>,
        prep: &mut Prepared<F>,
    ) {
        *prep = self.prepare(frame);
    }

    /// Run the inner sorted-DFS over the `2M`-level real tree, then fold
    /// the interleaved PAM decisions back to `M` complex symbols in
    /// place.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        PreparedDetector::detect_prepared_into(&self.inner, prep, radius_sqr, ws, out);
        // Map the interleaved 2M PAM decisions back to M complex symbols.
        // In-place is safe: iteration `k` writes slot `k` and only reads
        // slots `2k`/`2k+1`, which no later iteration has overwritten.
        let m = prep.n_tx / 2;
        for k in 0..m {
            let re = self.pam_levels[out.indices[2 * k]];
            let im = self.pam_levels[out.indices[2 * k + 1]];
            out.indices[k] = self.constellation.slice(Complex::new(re, im));
        }
        out.indices.truncate(m);
    }
}

impl_detector_via_prepared!(RvdSphereDecoder<F>, "SD real-valued decomposition");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::noise_variance;

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn pam_alphabets() {
        assert_eq!(
            RvdSphereDecoder::<f64>::new(Constellation::new(Modulation::Qam4)).pam_order(),
            2
        );
        assert_eq!(
            RvdSphereDecoder::<f64>::new(Constellation::new(Modulation::Qam16)).pam_order(),
            4
        );
        assert_eq!(
            RvdSphereDecoder::<f64>::new(Constellation::new(Modulation::Qam64)).pam_order(),
            8
        );
    }

    #[test]
    fn matches_complex_domain_ml_qam4() {
        let (c, frames) = frames(5, Modulation::Qam4, 8.0, 30, 140);
        let rvd: RvdSphereDecoder<f64> = RvdSphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(rvd.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn matches_complex_domain_ml_qam16() {
        let (c, frames) = frames(3, Modulation::Qam16, 8.0, 15, 141);
        let rvd: RvdSphereDecoder<f64> = RvdSphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(rvd.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn metric_equals_complex_domain_metric() {
        let (c, frames) = frames(6, Modulation::Qam4, 6.0, 10, 142);
        let rvd: RvdSphereDecoder<f64> = RvdSphereDecoder::new(c.clone());
        let complex: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            let a = rvd.detect(f);
            let b = complex.detect(f);
            // Same optimum metric (the decomposition is isometric).
            assert!(
                (a.stats.final_radius_sqr - b.stats.final_radius_sqr).abs() < 1e-8,
                "{} vs {}",
                a.stats.final_radius_sqr,
                b.stats.final_radius_sqr
            );
        }
    }

    #[test]
    fn tree_is_deeper_but_narrower() {
        let (c, frames) = frames(6, Modulation::Qam16, 10.0, 10, 143);
        let rvd: RvdSphereDecoder<f64> = RvdSphereDecoder::new(c.clone());
        let complex: SphereDecoder<f64> = SphereDecoder::new(c);
        let mut rvd_nodes = 0u64;
        let mut cx_nodes = 0u64;
        for f in &frames {
            let a = rvd.detect(f);
            let b = complex.detect(f);
            assert_eq!(a.stats.per_level_generated.len(), 12, "2M levels");
            assert_eq!(b.stats.per_level_generated.len(), 6, "M levels");
            rvd_nodes += a.stats.nodes_generated;
            cx_nodes += b.stats.nodes_generated;
        }
        // Finer-grained pruning: RVD should not generate more nodes at
        // 16-QAM (each complex expansion costs 16 children vs 2×4).
        assert!(
            rvd_nodes < cx_nodes,
            "RVD {rvd_nodes} should explore fewer generated nodes than complex {cx_nodes}"
        );
    }

    #[test]
    #[should_panic(expected = "square QAM")]
    fn bpsk_rejected() {
        RvdSphereDecoder::<f64>::new(Constellation::new(Modulation::Bpsk));
    }
}
