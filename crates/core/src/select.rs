//! Deterministic partial selection for the breadth-first survivor cut.
//!
//! The level-synchronous engines (K-best, capped BFS, quantized K-best)
//! historically sorted the whole candidate list only to keep its first
//! `k` entries — PR 6's profile showed that full sort, not the GEMM,
//! dominating the float K-best end-to-end. The cut only needs a
//! selection: `select_nth_unstable_by(k−1)` partitions the list around
//! the k-th candidate in O(len), after which the `k` survivors are
//! sorted to restore the exact frontier order the full sort produced.
//!
//! Determinism: `select_nth_unstable_by` and `sort_unstable_by` are
//! deterministic functions of the input sequence and comparator (no
//! randomization in the stdlib implementations), so two runs over the
//! same candidate values make identical comparator decisions and keep a
//! positionally identical survivor prefix. That is the property the
//! fused block decoder leans on: a subcarrier's candidate segment holds
//! the same value sequence whether it was decoded alone or stacked into
//! a fused level, hence the cut keeps the same survivors. Under a *total*
//! order (the quantized engines compare `(metric, node id)` tuples) the
//! survivor set is the unique top-`k` and the order is the full sort's
//! order, so replacing sort+truncate with this cut is bit-identical by
//! construction; the float comparator orders by partial distance alone,
//! where survivor *sets* can differ from the old full sort only on exact
//! f64 metric ties (measure-zero for generic channels — see DESIGN.md).

use std::cmp::Ordering;

/// Keep the `k` best entries of `v` (by `cmp`, ascending) in sorted
/// order at the front; returns how many survive (`min(len, k)`).
/// Entries past the returned count are unspecified leftovers.
///
/// When `len ≤ k` the slice is left untouched — same contract as the
/// sort-only-when-over-capacity loops this replaces.
pub(crate) fn keep_best_slice<T>(
    v: &mut [T],
    k: usize,
    mut cmp: impl FnMut(&T, &T) -> Ordering,
) -> usize {
    if v.len() <= k {
        return v.len();
    }
    debug_assert!(k > 0, "cannot keep zero survivors");
    v.select_nth_unstable_by(k - 1, &mut cmp);
    v[..k].sort_unstable_by(&mut cmp);
    k
}

/// [`keep_best_slice`] for an owned candidate list: the survivors stay,
/// the rest is truncated away.
pub(crate) fn keep_best<T>(v: &mut Vec<T>, k: usize, cmp: impl FnMut(&T, &T) -> Ordering) {
    let kept = keep_best_slice(&mut v[..], k, cmp);
    v.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_full_sort_under_a_total_order() {
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..200 {
            let len = 1 + trial % 97;
            let k = 1 + trial % 23;
            let v: Vec<(i64, u32)> = (0..len)
                .map(|i| (rng.gen_range(-50i64..50), i as u32))
                .collect();
            // Reference: the sort+truncate the engines used to run —
            // which, like the cut, only fires when over capacity.
            let mut full = v.clone();
            if full.len() > k {
                full.sort_unstable();
                full.truncate(k);
            }
            let mut cut = v.clone();
            keep_best(&mut cut, k, |a, b| a.cmp(b));
            assert_eq!(cut, full, "trial {trial} len {len} k {k}");
        }
    }

    #[test]
    fn slice_and_vec_forms_agree_positionally() {
        let mut rng = StdRng::seed_from_u64(4);
        for trial in 0..100 {
            let len = 1 + trial % 64;
            let k = 1 + trial % 17;
            // Duplicate-heavy floats: ties must resolve identically in
            // both forms because they run the same algorithm over the
            // same sequence.
            let v: Vec<(f64, u32)> = (0..len)
                .map(|i| (rng.gen_range(0..8) as f64, i as u32))
                .collect();
            let mut as_vec = v.clone();
            keep_best(&mut as_vec, k, |a, b| a.0.total_cmp(&b.0));
            let mut as_slice = v.clone();
            let kept = keep_best_slice(&mut as_slice, k, |a, b| a.0.total_cmp(&b.0));
            assert_eq!(as_vec.len(), kept);
            assert_eq!(&as_slice[..kept], &as_vec[..], "trial {trial}");
        }
    }

    #[test]
    fn under_capacity_is_untouched() {
        let mut v = vec![5, 1, 4];
        keep_best(&mut v, 3, |a, b| a.cmp(b));
        assert_eq!(v, vec![5, 1, 4], "no sort below the cap");
        let mut s = [9, 2];
        assert_eq!(keep_best_slice(&mut s, 7, |a, b| a.cmp(b)), 2);
        assert_eq!(s, [9, 2]);
    }
}
