//! Statistical tree pruning (Gowaikar & Hassibi) — related-work ref \[16\].
//!
//! Instead of (or on top of) the sphere radius, prune a depth-`k` node
//! whenever its PD exceeds a *statistical* threshold: under the correct
//! hypothesis the PD is a sum of `k` squared noise terms, so
//! `E[PD_k] = k·σ²` and a node with `PD_k > α·k·σ²` is overwhelmingly
//! unlikely to lead to the transmitted vector. The paper's related work
//! notes this "shows good BER performance" but without the real-time
//! guarantee — here both sides of the trade are measurable. `α → ∞`
//! recovers the exact decoder; the fallback doubles `α` when everything
//! was pruned, so a decision is always produced.

use crate::arena::SearchWorkspace;
use crate::detector::Detection;
use crate::engine::{impl_detector_via_prepared, PreparedDetector};
use crate::pd::{eval_children, sorted_children, EvalStrategy};
use crate::preprocess::Prepared;
use sd_math::Float;
use sd_wireless::Constellation;

/// Sphere decoder with per-level statistical pruning thresholds.
#[derive(Clone, Debug)]
pub struct StatPruningSd<F: Float = f64> {
    constellation: Constellation,
    /// Threshold multiplier: prune when `PD_k > α·k·σ²`.
    pub alpha: f64,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> StatPruningSd<F> {
    /// Statistically-pruned decoder with threshold multiplier `alpha`.
    pub fn new(constellation: Constellation, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        StatPruningSd {
            constellation,
            alpha,
            _precision: std::marker::PhantomData,
        }
    }
}

impl<F: Float> PreparedDetector<F> for StatPruningSd<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Dual-prune sorted DFS into a caller-owned [`Detection`]. The
    /// statistical threshold replaces the sphere radius, so `radius_sqr`
    /// is ignored; the noise variance is read from the prepared problem.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        _radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;
        let sigma2 = prep.noise_variance.max(1e-30);
        ws.prepare(p, m);
        out.stats.reset(m);
        let stats = &mut out.stats;

        let mut alpha = self.alpha;
        let (best_metric, best_path) = loop {
            let mut best_metric = f64::INFINITY;
            let mut best_path: Vec<usize> = Vec::new();
            // Sorted DFS with the dual prune: radius AND statistical
            // threshold per level.
            let mut stack: Vec<(F, Vec<usize>)> = vec![(F::ZERO, Vec::new())];
            while let Some((pd, path)) = stack.pop() {
                if pd.to_f64() >= best_metric {
                    stats.nodes_pruned += 1;
                    continue;
                }
                let depth = path.len();
                stats.nodes_expanded += 1;
                stats.flops += eval_children(prep, &path, EvalStrategy::Gemm, &mut ws.scratch);
                stats.nodes_generated += p as u64;
                stats.per_level_generated[depth] += p as u64;
                let threshold = alpha * (depth as f64 + 1.0) * sigma2;
                let children = sorted_children(&ws.scratch.increments);
                if depth + 1 == m {
                    for (inc, c) in children {
                        let metric = pd.to_f64() + inc.to_f64();
                        if metric < best_metric && metric <= threshold {
                            stats.leaves_reached += 1;
                            stats.radius_updates += 1;
                            best_metric = metric;
                            best_path = path.clone();
                            best_path.push(c);
                        } else {
                            stats.nodes_pruned += 1;
                        }
                    }
                } else {
                    for (inc, c) in children.into_iter().rev() {
                        let child_pd = pd + inc;
                        if child_pd.to_f64() <= threshold && child_pd.to_f64() < best_metric {
                            let mut child = path.clone();
                            child.push(c);
                            stack.push((child_pd, child));
                        } else {
                            stats.nodes_pruned += 1;
                        }
                    }
                }
            }
            if !best_path.is_empty() {
                break (best_metric, best_path);
            }
            // Everything pruned: the threshold was too aggressive for
            // this noise draw; relax and retry.
            alpha *= 2.0;
            stats.restarts += 1;
            assert!(stats.restarts < 64, "statistical threshold failed to relax");
        };

        stats.final_radius_sqr = best_metric;
        stats.flops += prep.prep_flops;
        prep.indices_from_path_into(&best_path, &mut out.indices);
    }
}

impl_detector_via_prepared!(StatPruningSd<F>, "SD statistical pruning [16]");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::dfs::SphereDecoder;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn frames(n: usize, snr_db: f64, count: usize, seed: u64) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn huge_alpha_recovers_exact_ml() {
        let (c, frames) = frames(5, 8.0, 25, 150);
        let sp: StatPruningSd<f64> = StatPruningSd::new(c.clone(), 1e9);
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(sp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn tight_alpha_prunes_more_nodes() {
        let (c, frames) = frames(8, 8.0, 20, 151);
        let exact: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let tight: StatPruningSd<f64> = StatPruningSd::new(c, 3.0);
        let n_exact: u64 = frames
            .iter()
            .map(|f| exact.detect(f).stats.nodes_generated)
            .sum();
        let n_tight: u64 = frames
            .iter()
            .map(|f| tight.detect(f).stats.nodes_generated)
            .sum();
        assert!(
            n_tight < n_exact,
            "α=3 ({n_tight}) must prune below exact ({n_exact})"
        );
    }

    #[test]
    fn ber_degrades_gracefully_not_catastrophically() {
        let (c, frames) = frames(8, 10.0, 250, 152);
        let ml: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let sp: StatPruningSd<f64> = StatPruningSd::new(c.clone(), 4.0);
        let mut e_ml = 0u64;
        let mut e_sp = 0u64;
        for f in &frames {
            e_ml += f.bit_errors(&ml.detect(f).indices, &c);
            e_sp += f.bit_errors(&sp.detect(f).indices, &c);
        }
        assert!(e_ml <= e_sp, "exact must not lose");
        assert!(
            e_sp <= e_ml * 4 + 30,
            "related-work claim: BER stays good (ml={e_ml}, sp={e_sp})"
        );
    }

    #[test]
    fn over_pruning_triggers_relaxation() {
        let (c, frames) = frames(4, 4.0, 30, 153);
        // α = 0.01 prunes virtually every branch on the first pass.
        let sp: StatPruningSd<f64> = StatPruningSd::new(c, 0.01);
        let mut restarted = false;
        for f in &frames {
            let d = sp.detect(f);
            restarted |= d.stats.restarts > 0;
            assert_eq!(d.indices.len(), 4, "must always produce a decision");
        }
        assert!(restarted, "tiny alpha must trip the relaxation path");
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn non_positive_alpha_rejected() {
        let _ = StatPruningSd::<f64>::new(Constellation::new(Modulation::Qam4), 0.0);
    }
}
