//! # sd-core
//!
//! The paper's primary contribution and all of its comparison baselines:
//! sphere-decoding MIMO signal detection with a GEMM-based partial-distance
//! evaluation and leaf-biased tree traversal.
//!
//! ## Decoders
//!
//! * [`SphereDecoder`] — **the paper's algorithm**: QR preprocessing
//!   (Eq. 4), sorted-children depth-first traversal with LIFO popping
//!   (Fig. 3, the Geosphere-style Best-First-per-level strategy), runtime
//!   sphere-radius updates at leaves, and GEMM-batched child evaluation
//!   (the compute-bound refactoring of \[1\]). Exact ML accuracy.
//! * [`BestFirstSd`] — globally best-first (priority queue) variant.
//! * [`BfsGemmSd`] — the level-synchronous breadth-first GEMM decoder of
//!   reference \[1\], the paper's GPU baseline.
//! * [`MlDetector`] — exhaustive maximum likelihood (ground truth).
//! * [`FixedComplexitySd`] — FSD baseline from the related work.
//! * [`ZfDetector`] / [`MmseDetector`] / [`MrcDetector`] — the linear
//!   baselines of Fig. 12.
//!
//! ## Engine trait
//!
//! Every decoder implements [`PreparedDetector`] ([`engine`]): one
//! scratch-reusing decode entry point (`detect_prepared_into`) plus small
//! policy hooks, from which the allocating conveniences and the
//! [`Detector`] / [`WorkspaceDetector`] bridges are derived. Higher
//! layers (the serve tier registry, batch drivers, benches) treat the
//! whole zoo interchangeably through it.
//!
//! ## Parallel layer
//!
//! * [`batch`] — rayon frame-level parallel decoding,
//! * [`parallel`] — the paper's future-work direction: the top tree
//!   levels are partitioned into sub-trees fanned over a persistent
//!   worker pool that shares the shrinking sphere radius through a
//!   lock-free atomic fetch-min, preserving exactness.
//!
//! All tree decoders are generic over the scalar precision
//! ([`sd_math::Float`]), enabling the paper's FP16 future-work study via
//! [`sd_math::F16`].

#![warn(missing_docs)]
#![warn(clippy::all)]
// `!(a < b)` is used deliberately as the NaN-robust form of `a >= b` in
// the pruning hot paths.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod analysis;
pub mod arena;
pub mod batch;
pub mod best_first;
pub mod bfs;
pub mod block;
pub mod detector;
pub mod dfs;
pub mod engine;
pub mod fsd;
pub mod kbest;
pub mod linear;
pub mod ml;
pub mod parallel;
pub mod pd;
pub mod preprocess;
pub mod quantized;
pub mod radius;
pub mod reference;
pub mod rvd;
pub(crate) mod select;
pub mod soft;
pub mod stat_pruning;
pub mod trace;

pub use analysis::{profile_detector, ComplexityProfile, ComplexitySample};
pub use arena::{NodeArena, SearchWorkspace};
pub use batch::{batch_stats, decode_batch, decode_batch_reused, WorkspaceDetector};
pub use best_first::BestFirstSd;
pub use bfs::{BfsGemmSd, BfsLevelTrace};
pub use block::{decode_block_budgeted_into, decode_block_fused_into, decode_block_into};
pub use detector::{Detection, DetectionStats, Detector, SearchQuality};
pub use dfs::SphereDecoder;
pub use engine::{DecodeBudget, PreparedDetector};
pub use fsd::FixedComplexitySd;
pub use kbest::KBestSd;
pub use linear::{MmseDetector, MrcDetector, ZfDetector};
pub use ml::MlDetector;
pub use parallel::{ParallelSphereDecoder, SubtreeParallelSd, WorkerBudget};
pub use pd::EvalStrategy;
pub use preprocess::{
    prepare_channel_into, prepare_frame_block_into, prepare_with_channel_into, preprocess,
    preprocess_ordered, preprocess_ordered_into, BlockPrep, ChannelObservables, ChannelPrep,
    ColumnOrdering, PrepScratch, Prepared,
};
pub use quantized::{
    FxPrepared, QuantizedFsd, QuantizedKBestSd, QuantizedSphereDecoder, MAX_QUANT_DEGRADATION_DB,
};
pub use radius::InitialRadius;
pub use rvd::RvdSphereDecoder;
pub use sd_math::fixed::MetricKind;
pub use soft::{SoftDetection, SoftSphereDecoder};
pub use stat_pruning::StatPruningSd;
pub use trace::{LevelTelemetry, Phase, PhaseProfile, PhaseUnit, SearchTelemetry, TraceSink};
