//! Initial sphere-radius strategies.
//!
//! Algorithm 1 takes a user-chosen radius `r` that is tightened at run
//! time whenever a leaf is reached. The initial choice trades search
//! effort against the risk of an empty sphere: the decoders in this crate
//! restart with an enlarged radius when no leaf survives, so every
//! strategy remains exact.

use serde::{Deserialize, Serialize};

/// How the first sphere radius is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum InitialRadius {
    /// `r² = ∞`: the first depth-first descent (a Babai/SIC solution)
    /// establishes the radius. Never restarts; the robust default.
    #[default]
    Infinite,
    /// `r² = α · N · σ²`: scaled to the expected noise energy
    /// `E[‖n‖²] = N σ²`. The paper's "set initially by the user" choice;
    /// `α ≈ 2` admits the true solution with high probability.
    ScaledNoise(f64),
    /// Fixed squared radius (worked examples, e.g. the paper's Fig. 2 tree
    /// with `r = 10`).
    Fixed(f64),
}

impl InitialRadius {
    /// Resolve to a concrete squared radius for a frame with `n_rx`
    /// receive antennas and noise variance `sigma2`.
    pub fn resolve(self, n_rx: usize, sigma2: f64) -> f64 {
        match self {
            InitialRadius::Infinite => f64::INFINITY,
            InitialRadius::ScaledNoise(alpha) => {
                assert!(alpha > 0.0, "alpha must be positive");
                alpha * n_rx as f64 * sigma2
            }
            InitialRadius::Fixed(r2) => {
                assert!(r2 > 0.0, "fixed radius must be positive");
                r2
            }
        }
    }

    /// The growth factor applied on an empty-sphere restart.
    pub const RESTART_GROWTH: f64 = 4.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_resolves_to_infinity() {
        assert!(InitialRadius::Infinite.resolve(10, 0.5).is_infinite());
    }

    #[test]
    fn scaled_noise_formula() {
        let r2 = InitialRadius::ScaledNoise(2.0).resolve(10, 0.25);
        assert!((r2 - 2.0 * 10.0 * 0.25).abs() < 1e-15);
    }

    #[test]
    fn fixed_passes_through() {
        assert_eq!(InitialRadius::Fixed(100.0).resolve(3, 1.0), 100.0);
    }

    #[test]
    fn default_is_infinite() {
        assert_eq!(InitialRadius::default(), InitialRadius::Infinite);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn non_positive_alpha_rejected() {
        InitialRadius::ScaledNoise(0.0).resolve(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "fixed radius must be positive")]
    fn non_positive_fixed_rejected() {
        InitialRadius::Fixed(-1.0).resolve(1, 1.0);
    }
}
