//! Seed (path-cloning) search implementations, kept verbatim as baselines.
//!
//! The production searches in [`crate::best_first`], [`crate::bfs`],
//! [`crate::dfs`] and [`crate::kbest`] run on the slab arena of
//! [`crate::arena`] with batched GEMM expansion. These functions preserve
//! the original formulation — every open node owns its `Vec<usize>` path,
//! cloned per surviving child, with scalar per-node child evaluation — for
//! two purposes:
//!
//! * **differential testing**: property tests drive both implementations
//!   over random frames and require identical decoded indices and
//!   identical node counts (`tests/arena_vs_reference.rs`);
//! * **before/after benchmarking**: the expansion benches measure the
//!   arena + batched-GEMM speedup against these baselines
//!   (`crates/bench/benches/expansion.rs`).
//!
//! They are *not* part of the decoding API; nothing here is tuned.

use crate::detector::{Detection, DetectionStats};
use crate::pd::{eval_children, sorted_children, EvalStrategy, PdScratch};
use crate::preprocess::Prepared;
use crate::radius::InitialRadius;
use sd_math::Float;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry of the reference best-first search (path-carrying).
struct RefOpenNode {
    pd: f64,
    path: Vec<usize>,
}

impl PartialEq for RefOpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.pd == other.pd
    }
}
impl Eq for RefOpenNode {}
impl PartialOrd for RefOpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefOpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .pd
            .total_cmp(&self.pd)
            .then_with(|| self.path.len().cmp(&other.path.len()))
    }
}

/// Seed globally best-first search (per-child `path.clone()`).
pub fn best_first_reference<F: Float>(
    prep: &Prepared<F>,
    radius_sqr: f64,
    eval: EvalStrategy,
) -> Detection {
    let m = prep.n_tx;
    let p = prep.order;
    let mut scratch = PdScratch::new(p, m);
    let mut stats = DetectionStats {
        per_level_generated: vec![0; m],
        ..Default::default()
    };
    let mut r2 = radius_sqr;
    let mut best: Option<(f64, Vec<usize>)> = None;

    loop {
        let mut heap = BinaryHeap::new();
        heap.push(RefOpenNode {
            pd: 0.0,
            path: Vec::new(),
        });
        while let Some(node) = heap.pop() {
            if let Some((best_pd, _)) = &best {
                if node.pd >= *best_pd {
                    break;
                }
            }
            let depth = node.path.len();
            stats.nodes_expanded += 1;
            stats.flops += eval_children(prep, &node.path, eval, &mut scratch);
            stats.nodes_generated += p as u64;
            stats.per_level_generated[depth] += p as u64;

            for c in 0..p {
                let child_pd = node.pd + scratch.increments[c].to_f64();
                let bound = best.as_ref().map_or(r2, |(b, _)| b.min(r2));
                if child_pd < bound {
                    if depth + 1 == m {
                        stats.leaves_reached += 1;
                        stats.radius_updates += 1;
                        let mut leaf = node.path.clone();
                        leaf.push(c);
                        best = Some((child_pd, leaf));
                    } else {
                        let mut path = node.path.clone();
                        path.push(c);
                        heap.push(RefOpenNode { pd: child_pd, path });
                    }
                } else {
                    stats.nodes_pruned += 1;
                }
            }
        }
        if best.is_some() {
            break;
        }
        r2 *= InitialRadius::RESTART_GROWTH;
        stats.restarts += 1;
        assert!(stats.restarts < 64, "radius failed to capture any leaf");
    }

    let (best_pd, best_path) = best.expect("loop exits only with a solution");
    stats.final_radius_sqr = best_pd;
    stats.flops += prep.prep_flops;
    let indices = prep.indices_from_path(&best_path);
    Detection { indices, stats }
}

/// Seed level-synchronous BFS (per-child `path.clone()`, scalar eval).
pub fn bfs_reference<F: Float>(
    prep: &Prepared<F>,
    radius_sqr: f64,
    max_frontier: usize,
) -> Detection {
    let m = prep.n_tx;
    let p = prep.order;
    let mut scratch = PdScratch::new(p, m);
    let mut stats = DetectionStats {
        per_level_generated: vec![0; m],
        ..Default::default()
    };
    let mut r2 = radius_sqr;

    'restart: loop {
        let mut frontier: Vec<(f64, Vec<usize>)> = vec![(0.0, Vec::new())];
        for depth in 0..m {
            let mut next: Vec<(f64, Vec<usize>)> =
                Vec::with_capacity(frontier.len().min(max_frontier) * p);
            for (pd, path) in &frontier {
                stats.nodes_expanded += 1;
                stats.flops += eval_children(prep, path, EvalStrategy::Gemm, &mut scratch);
                stats.nodes_generated += p as u64;
                stats.per_level_generated[depth] += p as u64;
                for c in 0..p {
                    let child_pd = pd + scratch.increments[c].to_f64();
                    if child_pd < r2 {
                        let mut child_path = path.clone();
                        child_path.push(c);
                        next.push((child_pd, child_path));
                    } else {
                        stats.nodes_pruned += 1;
                    }
                }
            }
            if next.is_empty() {
                r2 *= InitialRadius::RESTART_GROWTH;
                stats.restarts += 1;
                assert!(stats.restarts < 64, "radius failed to capture any leaf");
                continue 'restart;
            }
            if next.len() > max_frontier {
                next.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                stats.nodes_pruned += (next.len() - max_frontier) as u64;
                next.truncate(max_frontier);
            }
            frontier = next;
        }

        stats.leaves_reached += frontier.len() as u64;
        let (best_pd, best_path) = frontier
            .into_iter()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("non-empty by construction");
        stats.radius_updates += 1;
        stats.final_radius_sqr = best_pd;
        stats.flops += prep.prep_flops;
        let indices = prep.indices_from_path(&best_path);
        return Detection { indices, stats };
    }
}

/// Seed K-best sweep (per-child `path.clone()`, scalar eval).
pub fn kbest_reference<F: Float>(prep: &Prepared<F>, k: usize) -> Detection {
    let m = prep.n_tx;
    let p = prep.order;
    let mut scratch = PdScratch::new(p, m);
    let mut stats = DetectionStats {
        per_level_generated: vec![0; m],
        ..Default::default()
    };

    let mut frontier: Vec<(F, Vec<usize>)> = vec![(F::ZERO, Vec::new())];
    for depth in 0..m {
        let mut next: Vec<(F, Vec<usize>)> = Vec::with_capacity(frontier.len() * p);
        for (pd, path) in &frontier {
            stats.nodes_expanded += 1;
            stats.flops += eval_children(prep, path, EvalStrategy::Gemm, &mut scratch);
            stats.nodes_generated += p as u64;
            stats.per_level_generated[depth] += p as u64;
            for (c, &inc) in scratch.increments.iter().enumerate() {
                let mut child = path.clone();
                child.push(c);
                next.push((*pd + inc, child));
            }
        }
        if next.len() > k {
            next.sort_unstable_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()));
            stats.nodes_pruned += (next.len() - k) as u64;
            next.truncate(k);
        }
        frontier = next;
    }

    stats.leaves_reached = frontier.len() as u64;
    let (best_pd, best_path) = frontier
        .into_iter()
        .min_by(|a, b| a.0.to_f64().total_cmp(&b.0.to_f64()))
        .expect("frontier is never empty");
    stats.radius_updates = 1;
    stats.final_radius_sqr = best_pd.to_f64();
    stats.flops += prep.prep_flops;
    let indices = prep.indices_from_path(&best_path);
    Detection { indices, stats }
}

/// Seed sorted/plain DFS (per-expansion `sorted_children` allocation and
/// increment clone).
pub fn dfs_reference<F: Float>(
    prep: &Prepared<F>,
    radius_sqr: f64,
    eval: EvalStrategy,
    sort: bool,
) -> Detection {
    struct RefSearch<'a, F: Float> {
        prep: &'a Prepared<F>,
        scratch: PdScratch<F>,
        stats: DetectionStats,
        path: Vec<usize>,
        best_path: Vec<usize>,
        best_metric: F,
        sort: bool,
        eval: EvalStrategy,
    }

    impl<F: Float> RefSearch<'_, F> {
        fn descend(&mut self, pd: F) {
            let depth = self.path.len();
            let m = self.prep.n_tx;
            let p = self.prep.order;
            self.stats.nodes_expanded += 1;
            self.stats.flops += eval_children(self.prep, &self.path, self.eval, &mut self.scratch);
            self.stats.nodes_generated += p as u64;
            self.stats.per_level_generated[depth] += p as u64;

            if self.sort {
                let children = sorted_children(&self.scratch.increments);
                for (rank, (inc, child)) in children.into_iter().enumerate() {
                    let child_pd = pd + inc;
                    if !(child_pd < self.best_metric) {
                        self.stats.nodes_pruned += (p - rank) as u64;
                        return;
                    }
                    self.visit(child, child_pd, depth, m);
                }
            } else {
                let increments = self.scratch.increments.clone();
                for (child, &inc) in increments.iter().enumerate() {
                    let child_pd = pd + inc;
                    if child_pd < self.best_metric {
                        self.visit(child, child_pd, depth, m);
                    } else {
                        self.stats.nodes_pruned += 1;
                    }
                }
            }
        }

        #[inline]
        fn visit(&mut self, child: usize, child_pd: F, depth: usize, m: usize) {
            if depth + 1 == m {
                self.stats.leaves_reached += 1;
                self.stats.radius_updates += 1;
                self.best_metric = child_pd;
                self.best_path.clear();
                self.best_path.extend_from_slice(&self.path);
                self.best_path.push(child);
            } else {
                self.path.push(child);
                self.descend(child_pd);
                self.path.pop();
            }
        }
    }

    let mut search = RefSearch {
        prep,
        scratch: PdScratch::new(prep.order, prep.n_tx),
        stats: DetectionStats {
            per_level_generated: vec![0; prep.n_tx],
            ..Default::default()
        },
        path: Vec::with_capacity(prep.n_tx),
        best_path: Vec::new(),
        best_metric: F::from_f64(radius_sqr),
        sort,
        eval,
    };
    let mut r2 = radius_sqr;
    loop {
        search.descend(F::ZERO);
        if !search.best_path.is_empty() {
            break;
        }
        r2 *= InitialRadius::RESTART_GROWTH;
        search.stats.restarts += 1;
        search.best_metric = F::from_f64(r2);
        assert!(
            search.stats.restarts < 64,
            "sphere radius failed to capture any leaf"
        );
    }
    let indices = prep.indices_from_path(&search.best_path);
    let mut stats = search.stats;
    stats.final_radius_sqr = search.best_metric.to_f64();
    stats.flops += prep.prep_flops;
    Detection { indices, stats }
}
