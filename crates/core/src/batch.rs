//! Frame-level parallel decoding.
//!
//! The paper's CPU baseline is a multi-core implementation; at the link
//! level the natural parallelism is across independent channel uses. This
//! module fans a batch of frames over rayon and aggregates statistics.
//!
//! [`decode_batch`] spins a fresh set of search buffers per frame;
//! [`decode_batch_reused`] instead gives each worker one
//! [`SearchWorkspace`] for its whole chunk of frames, so the steady-state
//! throughput path performs no per-frame heap allocation (the software
//! analogue of the paper's statically-provisioned FPGA buffers).

use crate::arena::SearchWorkspace;
use crate::detector::{Detection, DetectionStats, Detector};
use rayon::prelude::*;
use sd_math::Float;
use sd_wireless::FrameData;

/// Detectors that can decode into a caller-owned [`SearchWorkspace`],
/// letting batch drivers amortize buffer allocation across frames.
pub trait WorkspaceDetector<F: Float>: Detector {
    /// Decode one frame, drawing every internal search buffer from `ws`.
    ///
    /// Must return exactly what [`Detector::detect`] returns — workspace
    /// reuse is an allocation optimization, never a semantic one.
    fn detect_in(&self, frame: &FrameData, ws: &mut SearchWorkspace<F>) -> Detection;
}

/// Decode a batch of frames in parallel; results keep the input order.
pub fn decode_batch<D: Detector + ?Sized>(detector: &D, frames: &[FrameData]) -> Vec<Detection> {
    frames.par_iter().map(|f| detector.detect(f)).collect()
}

/// Decode a batch in parallel with one [`SearchWorkspace`] per worker
/// chunk of `frames_per_worker` frames; results keep the input order.
///
/// Identical output to [`decode_batch`]; after each worker's first frame
/// warms its workspace up to steady-state capacity, the remaining frames
/// of the chunk decode without heap allocation.
pub fn decode_batch_reused<F: Float, D: WorkspaceDetector<F>>(
    detector: &D,
    frames: &[FrameData],
    frames_per_worker: usize,
) -> Vec<Detection> {
    let chunks: Vec<&[FrameData]> = frames.chunks(frames_per_worker.max(1)).collect();
    let per_chunk: Vec<Vec<Detection>> = chunks
        .par_iter()
        .map(|chunk| {
            let mut ws = SearchWorkspace::new();
            chunk
                .iter()
                .map(|f| detector.detect_in(f, &mut ws))
                .collect()
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// Decode a batch and return only the aggregated statistics.
pub fn batch_stats<D: Detector + ?Sized>(detector: &D, frames: &[FrameData]) -> DetectionStats {
    frames.par_iter().map(|f| detector.detect(f).stats).reduce(
        DetectionStats::default,
        |mut a, b| {
            a.merge(&b);
            a
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::SphereDecoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Constellation, Modulation};

    fn frames(count: usize) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(8.0, 6);
        let mut rng = StdRng::seed_from_u64(90);
        let f = (0..count)
            .map(|_| FrameData::generate(6, 6, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn parallel_matches_serial() {
        let (c, frames) = frames(32);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let par = decode_batch(&sd, &frames);
        for (f, d) in frames.iter().zip(par.iter()) {
            let serial = sd.detect(f);
            assert_eq!(serial.indices, d.indices);
            assert_eq!(serial.stats, d.stats);
        }
    }

    #[test]
    fn batch_stats_equal_sum_of_individual_stats() {
        let (c, frames) = frames(16);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let agg = batch_stats(&sd, &frames);
        let mut manual = DetectionStats::default();
        for f in &frames {
            manual.merge(&sd.detect(f).stats);
        }
        assert_eq!(agg.nodes_generated, manual.nodes_generated);
        assert_eq!(agg.flops, manual.flops);
        assert_eq!(agg.leaves_reached, manual.leaves_reached);
    }

    #[test]
    fn empty_batch() {
        let (c, _) = frames(0);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        assert!(decode_batch(&sd, &[]).is_empty());
        assert_eq!(batch_stats(&sd, &[]), DetectionStats::default());
        assert!(decode_batch_reused(&sd, &[], 8).is_empty());
    }

    #[test]
    fn reused_workspaces_match_fresh_ones() {
        let (c, frames) = frames(33);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c.clone());
        let bf: crate::BestFirstSd<f64> = crate::BestFirstSd::new(c.clone());
        let bfs: crate::BfsGemmSd<f64> = crate::BfsGemmSd::new(c.clone());
        let kb: crate::KBestSd<f64> = crate::KBestSd::new(c, 8);
        // Chunk size deliberately not dividing the batch, so the last
        // worker gets a short chunk.
        for per_worker in [1, 8, 64] {
            let fresh = decode_batch(&sd, &frames);
            let reused = decode_batch_reused(&sd, &frames, per_worker);
            assert_eq!(fresh, reused, "DFS, chunk={per_worker}");
            assert_eq!(
                decode_batch(&bf, &frames),
                decode_batch_reused(&bf, &frames, per_worker)
            );
            assert_eq!(
                decode_batch(&bfs, &frames),
                decode_batch_reused(&bfs, &frames, per_worker)
            );
            assert_eq!(
                decode_batch(&kb, &frames),
                decode_batch_reused(&kb, &frames, per_worker)
            );
        }
    }
}
