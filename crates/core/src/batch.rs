//! Frame-level parallel decoding.
//!
//! The paper's CPU baseline is a multi-core implementation; at the link
//! level the natural parallelism is across independent channel uses. This
//! module fans a batch of frames over rayon and aggregates statistics.

use crate::detector::{Detection, DetectionStats, Detector};
use rayon::prelude::*;
use sd_wireless::FrameData;

/// Decode a batch of frames in parallel; results keep the input order.
pub fn decode_batch<D: Detector + ?Sized>(detector: &D, frames: &[FrameData]) -> Vec<Detection> {
    frames.par_iter().map(|f| detector.detect(f)).collect()
}

/// Decode a batch and return only the aggregated statistics.
pub fn batch_stats<D: Detector + ?Sized>(detector: &D, frames: &[FrameData]) -> DetectionStats {
    frames
        .par_iter()
        .map(|f| detector.detect(f).stats)
        .reduce(DetectionStats::default, |mut a, b| {
            a.merge(&b);
            a
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::SphereDecoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Constellation, Modulation};

    fn frames(count: usize) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(8.0, 6);
        let mut rng = StdRng::seed_from_u64(90);
        let f = (0..count)
            .map(|_| FrameData::generate(6, 6, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn parallel_matches_serial() {
        let (c, frames) = frames(32);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let par = decode_batch(&sd, &frames);
        for (f, d) in frames.iter().zip(par.iter()) {
            let serial = sd.detect(f);
            assert_eq!(serial.indices, d.indices);
            assert_eq!(serial.stats, d.stats);
        }
    }

    #[test]
    fn batch_stats_equal_sum_of_individual_stats() {
        let (c, frames) = frames(16);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let agg = batch_stats(&sd, &frames);
        let mut manual = DetectionStats::default();
        for f in &frames {
            manual.merge(&sd.detect(f).stats);
        }
        assert_eq!(agg.nodes_generated, manual.nodes_generated);
        assert_eq!(agg.flops, manual.flops);
        assert_eq!(agg.leaves_reached, manual.leaves_reached);
    }

    #[test]
    fn empty_batch() {
        let (c, _) = frames(0);
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        assert!(decode_batch(&sd, &[]).is_empty());
        assert_eq!(batch_stats(&sd, &[]), DetectionStats::default());
    }
}
