//! Shared-prep block decoding: serve a whole coherence block through one
//! engine.
//!
//! An OFDM frame hands the detector many receive vectors that share one
//! channel matrix. [`decode_block_into`] decodes such a block through any
//! [`PreparedDetector`]: engines whose preparation is channel-splittable
//! ([`PreparedDetector::channel_cacheable`]) get the fast path — one
//! [`prepare_frame_block_into`] factorization plus one batched `ȳ = QᴴY`
//! apply for the whole block, then a per-subcarrier tree search reusing a
//! single workspace — while engines with bespoke preparation (the linear
//! family, the real-valued decomposition) fall back to per-vector
//! preparation. Either way every subcarrier's detection is bit-identical
//! to a standalone `prepare_frame_into` + `detect_prepared_into` of that
//! subcarrier, which is the contract the serve layer's frame exactness
//! tests pin down.

use crate::arena::SearchWorkspace;
use crate::detector::Detection;
use crate::engine::{DecodeBudget, PreparedDetector};
use crate::preprocess::{prepare_frame_block_into, BlockPrep, PrepScratch, Prepared};
use sd_math::Float;
use sd_wireless::FrameData;

/// Decode a coherence block — `frames` all sharing one `H` — through
/// `det`, writing subcarrier `k`'s detection into `out[k]`. All state
/// (`scratch`, `block`, `prep`, `ws`) is caller-owned and reused, so the
/// steady-state path allocates nothing.
///
/// Returns the number of channel preparations performed: `1` on the
/// shared-prep path, `frames.len()` on the per-vector fallback — the
/// numerator of the serve layer's prep-amortization ratio.
///
/// # Panics
/// If `out.len() != frames.len()`, or (on the shared-prep path) if the
/// frames do not share one channel matrix.
pub fn decode_block_into<F: Float>(
    det: &dyn PreparedDetector<F>,
    frames: &[FrameData],
    scratch: &mut PrepScratch<F>,
    block: &mut BlockPrep<F>,
    prep: &mut Prepared<F>,
    ws: &mut SearchWorkspace<F>,
    out: &mut [Detection],
) -> usize {
    decode_block_budgeted_into(
        det,
        frames,
        &DecodeBudget::UNLIMITED,
        scratch,
        block,
        prep,
        ws,
        out,
    )
}

/// [`decode_block_into`] under a per-subcarrier [`DecodeBudget`]: every
/// subcarrier's search runs with the same budget, so an anytime engine
/// caps each tree walk independently rather than racing the whole block
/// against one pool. With [`DecodeBudget::UNLIMITED`] this *is*
/// `decode_block_into`, bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn decode_block_budgeted_into<F: Float>(
    det: &dyn PreparedDetector<F>,
    frames: &[FrameData],
    budget: &DecodeBudget,
    scratch: &mut PrepScratch<F>,
    block: &mut BlockPrep<F>,
    prep: &mut Prepared<F>,
    ws: &mut SearchWorkspace<F>,
    out: &mut [Detection],
) -> usize {
    assert_eq!(
        frames.len(),
        out.len(),
        "need one Detection slot per subcarrier"
    );
    if frames.is_empty() {
        return 0;
    }
    let n_rx = frames[0].h.rows();
    if det.channel_cacheable() {
        prepare_frame_block_into(frames, det.ordering(), scratch, block);
        for (k, (f, d)) in frames.iter().zip(out.iter_mut()).enumerate() {
            block.fill_prepared(k, f, det.constellation(), prep);
            let r2 = det.initial_radius_sqr(n_rx, f.noise_variance);
            det.detect_prepared_budgeted_into(prep, r2, budget, ws, d);
        }
        1
    } else {
        for (f, d) in frames.iter().zip(out.iter_mut()) {
            det.prepare_frame_into(f, scratch, prep);
            let r2 = det.initial_radius_sqr(n_rx, f.noise_variance);
            det.detect_prepared_budgeted_into(prep, r2, budget, ws, d);
        }
        frames.len()
    }
}

/// Cross-subcarrier *fused* block decode: one tree search — one GEMM
/// batch per tree level — for the whole coherence block, instead of
/// `frames.len()` independent searches.
///
/// Engines that implement
/// [`PreparedDetector::detect_block_prepared_budgeted_into`] (the
/// level-synchronous, data-independent ones: K-best and the quantized
/// K-best/FSD) fuse the block after the shared preparation; everything
/// else — and any decode with a trace sink installed — takes the exact
/// per-subcarrier loop of [`decode_block_budgeted_into`]. Per-subcarrier
/// results are bit-identical either way; fusion is purely a scheduling
/// change.
///
/// Returns `(prep_factors, fused)`: the channel-preparation count (as
/// [`decode_block_budgeted_into`]) and whether the fused path ran.
#[allow(clippy::too_many_arguments)]
pub fn decode_block_fused_into<F: Float>(
    det: &dyn PreparedDetector<F>,
    frames: &[FrameData],
    budget: &DecodeBudget,
    scratch: &mut PrepScratch<F>,
    block: &mut BlockPrep<F>,
    prep: &mut Prepared<F>,
    ws: &mut SearchWorkspace<F>,
    out: &mut [Detection],
) -> (usize, bool) {
    assert_eq!(
        frames.len(),
        out.len(),
        "need one Detection slot per subcarrier"
    );
    if frames.is_empty() {
        return (0, false);
    }
    if det.channel_cacheable() {
        prepare_frame_block_into(frames, det.ordering(), scratch, block);
        if det.detect_block_prepared_budgeted_into(block, frames, budget, prep, ws, out) {
            return (1, true);
        }
        // Loop fallback over the already-prepared block.
        let n_rx = frames[0].h.rows();
        for (k, (f, d)) in frames.iter().zip(out.iter_mut()).enumerate() {
            block.fill_prepared(k, f, det.constellation(), prep);
            let r2 = det.initial_radius_sqr(n_rx, f.noise_variance);
            det.detect_prepared_budgeted_into(prep, r2, budget, ws, d);
        }
        (1, false)
    } else {
        let n_rx = frames[0].h.rows();
        for (f, d) in frames.iter().zip(out.iter_mut()) {
            det.prepare_frame_into(f, scratch, prep);
            let r2 = det.initial_radius_sqr(n_rx, f.noise_variance);
            det.detect_prepared_budgeted_into(prep, r2, budget, ws, d);
        }
        (frames.len(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KBestSd, MetricKind, MmseDetector, QuantizedFsd, QuantizedKBestSd, SphereDecoder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Constellation, Modulation};

    /// One coherence block: a single channel draw, fresh y per subcarrier.
    fn coherence_block(
        c: &Constellation,
        n: usize,
        len: usize,
        snr_db: f64,
        seed: u64,
    ) -> Vec<FrameData> {
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = FrameData::generate(n, n, c, sigma2, &mut rng);
        (0..len)
            .map(|_| {
                let mut f = base.clone();
                let fresh = FrameData::generate(n, n, c, sigma2, &mut rng);
                f.y = fresh.y;
                f.tx = fresh.tx;
                f
            })
            .collect()
    }

    /// The block driver must reproduce the standalone per-frame decode
    /// bit-for-bit on both the shared-prep path and the fallback.
    #[test]
    fn block_decode_is_bit_identical_to_per_frame() {
        let c = Constellation::new(Modulation::Qam4);
        let dets: Vec<(&str, Box<dyn PreparedDetector<f64>>)> = vec![
            ("dfs", Box::new(SphereDecoder::new(c.clone()))),
            ("kbest", Box::new(KBestSd::new(c.clone(), 8))),
            ("kbest-fx", Box::new(QuantizedKBestSd::new(c.clone(), 8))),
            (
                "fsd-fx-linf",
                Box::new(QuantizedFsd::new(c.clone()).with_metric(MetricKind::LInf)),
            ),
            ("mmse", Box::new(MmseDetector::new(c.clone()))),
        ];
        let frames = coherence_block(&c, 6, 7, 12.0, 0xB10C_DEC0);
        let mut scratch = PrepScratch::new();
        let mut block = BlockPrep::new();
        let mut prep = Prepared::empty();
        let mut ws = SearchWorkspace::new();
        let mut out: Vec<Detection> = (0..frames.len()).map(|_| Detection::default()).collect();
        for (name, det) in &dets {
            let preps = decode_block_into(
                &**det,
                &frames,
                &mut scratch,
                &mut block,
                &mut prep,
                &mut ws,
                &mut out,
            );
            if det.channel_cacheable() {
                assert_eq!(preps, 1, "{name}: shared-prep path");
            } else {
                assert_eq!(preps, frames.len(), "{name}: per-vector fallback");
            }
            for (k, f) in frames.iter().enumerate() {
                let solo = det.detect_frame(f);
                assert_eq!(out[k], solo, "{name}: subcarrier {k} differs");
            }
        }
    }

    /// The budgeted block driver with an unlimited (or unexhausted)
    /// budget is the plain driver, bit for bit; a zero budget still
    /// yields complete, flagged detections on every subcarrier.
    #[test]
    fn budgeted_block_decode_matches_unbudgeted_until_the_budget_trips() {
        let c = Constellation::new(Modulation::Qam4);
        let det = SphereDecoder::<f64>::new(c.clone());
        let frames = coherence_block(&c, 6, 5, 10.0, 0xB10C_B0D9);
        let mut scratch = PrepScratch::new();
        let mut block = BlockPrep::new();
        let mut prep = Prepared::empty();
        let mut ws = SearchWorkspace::new();
        let mut plain: Vec<Detection> = vec![Detection::default(); frames.len()];
        let mut budgeted: Vec<Detection> = vec![Detection::default(); frames.len()];
        decode_block_into(
            &det,
            &frames,
            &mut scratch,
            &mut block,
            &mut prep,
            &mut ws,
            &mut plain,
        );
        decode_block_budgeted_into(
            &det,
            &frames,
            &DecodeBudget::UNLIMITED,
            &mut scratch,
            &mut block,
            &mut prep,
            &mut ws,
            &mut budgeted,
        );
        assert_eq!(budgeted, plain, "unlimited budget must change nothing");
        decode_block_budgeted_into(
            &det,
            &frames,
            &DecodeBudget::nodes(0),
            &mut scratch,
            &mut block,
            &mut prep,
            &mut ws,
            &mut budgeted,
        );
        for d in &budgeted {
            assert_eq!(d.indices.len(), 6, "complete vector per subcarrier");
            assert!(d.stats.quality.is_truncated());
        }
    }

    #[test]
    fn empty_block_is_a_noop() {
        let c = Constellation::new(Modulation::Qam4);
        let det = SphereDecoder::<f64>::new(c);
        let mut scratch = PrepScratch::new();
        let mut block = BlockPrep::new();
        let mut prep = Prepared::empty();
        let mut ws = SearchWorkspace::new();
        let preps = decode_block_into(
            &det,
            &[],
            &mut scratch,
            &mut block,
            &mut prep,
            &mut ws,
            &mut [],
        );
        assert_eq!(preps, 0);
    }

    #[test]
    #[should_panic(expected = "one Detection slot per subcarrier")]
    fn mismatched_output_slots_panic() {
        let c = Constellation::new(Modulation::Qam4);
        let det = SphereDecoder::<f64>::new(c.clone());
        let frames = coherence_block(&c, 4, 3, 10.0, 1);
        let mut out = vec![Detection::default(); 2];
        decode_block_into(
            &det,
            &frames,
            &mut PrepScratch::new(),
            &mut BlockPrep::new(),
            &mut Prepared::empty(),
            &mut SearchWorkspace::new(),
            &mut out,
        );
    }
}
