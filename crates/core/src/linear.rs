//! Linear detectors — the low-complexity / poor-BER baselines (Fig. 12).
//!
//! * **ZF** (zero forcing): `x̂ = H⁺ y`, then per-antenna slicing.
//! * **MMSE**: `x̂ = (H^H H + σ² I)⁻¹ H^H y`, balancing noise against
//!   interference.
//! * **MRC** (maximum ratio combining): per-antenna matched filter that
//!   ignores inter-stream interference entirely — cheapest, worst BER.

use crate::arena::SearchWorkspace;
use crate::detector::Detection;
use crate::engine::{impl_detector_via_prepared, PreparedDetector};
use crate::preprocess::{PrepScratch, Prepared};
use sd_math::{solve_hermitian, Complex, C64};
use sd_wireless::{Constellation, FrameData};

/// Zero-forcing detector.
#[derive(Clone, Debug)]
pub struct ZfDetector {
    constellation: Constellation,
}

impl ZfDetector {
    /// Build a ZF detector.
    pub fn new(constellation: Constellation) -> Self {
        ZfDetector { constellation }
    }
}

impl PreparedDetector<f64> for ZfDetector {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Linear detectors skip the QR tree preprocessing: preparation is
    /// just the raw frame view (`H`, `y`, `σ²`).
    fn prepare_frame_into(
        &self,
        frame: &FrameData,
        _scratch: &mut PrepScratch<f64>,
        prep: &mut Prepared<f64>,
    ) {
        prep.load_frame(frame);
    }

    fn detect_prepared_into(
        &self,
        prep: &Prepared<f64>,
        _radius_sqr: f64,
        _ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        let x = sd_math::solve::least_squares(&prep.h, &prep.y);
        let (n, m) = prep.h.shape();
        out.stats.reset(0);
        out.stats.flops = crate::preprocess::qr_flops(n, m) + 4 * (m * m) as u64;
        out.indices.clear();
        out.indices
            .extend(x.iter().map(|&v| self.constellation.slice(v)));
    }
}

impl_detector_via_prepared!(ZfDetector, "ZF");

/// Minimum mean-square-error detector.
#[derive(Clone, Debug)]
pub struct MmseDetector {
    constellation: Constellation,
}

impl MmseDetector {
    /// Build an MMSE detector.
    pub fn new(constellation: Constellation) -> Self {
        MmseDetector { constellation }
    }
}

impl PreparedDetector<f64> for MmseDetector {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// See [`ZfDetector::prepare_frame_into`]: no QR, just the frame view.
    fn prepare_frame_into(
        &self,
        frame: &FrameData,
        _scratch: &mut PrepScratch<f64>,
        prep: &mut Prepared<f64>,
    ) {
        prep.load_frame(frame);
    }

    fn detect_prepared_into(
        &self,
        prep: &Prepared<f64>,
        _radius_sqr: f64,
        _ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        let h = &prep.h;
        let (n, m) = h.shape();
        let hh = h.hermitian();
        // Gram matrix + regularization: A = H^H H + σ² I.
        let mut a = sd_math::gemm(&hh, h, sd_math::GemmAlgo::Blocked);
        for i in 0..m {
            a[(i, i)] += Complex::new(prep.noise_variance, 0.0);
        }
        let rhs = hh.mul_vec(&prep.y);
        let x = solve_hermitian(&a, &rhs)
            .expect("H^H H + σ² I is positive definite for σ² > 0 or full-rank H");
        out.stats.reset(0);
        out.stats.flops = sd_math::gemm::gemm_flops(m, n, m) + (m * m * m) as u64 * 8 / 3;
        out.indices.clear();
        out.indices
            .extend(x.iter().map(|&v| self.constellation.slice(v)));
    }
}

impl_detector_via_prepared!(MmseDetector, "MMSE");

/// Maximum-ratio-combining detector.
#[derive(Clone, Debug)]
pub struct MrcDetector {
    constellation: Constellation,
}

impl MrcDetector {
    /// Build an MRC detector.
    pub fn new(constellation: Constellation) -> Self {
        MrcDetector { constellation }
    }
}

impl PreparedDetector<f64> for MrcDetector {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// See [`ZfDetector::prepare_frame_into`]: no QR, just the frame view.
    fn prepare_frame_into(
        &self,
        frame: &FrameData,
        _scratch: &mut PrepScratch<f64>,
        prep: &mut Prepared<f64>,
    ) {
        prep.load_frame(frame);
    }

    fn detect_prepared_into(
        &self,
        prep: &Prepared<f64>,
        _radius_sqr: f64,
        _ws: &mut SearchWorkspace<f64>,
        out: &mut Detection,
    ) {
        let h = &prep.h;
        let (n, m) = h.shape();
        out.stats.reset(0);
        out.stats.flops = 12 * (n * m) as u64;
        out.indices.clear();
        for j in 0..m {
            // x̂_j = h_j^H y / ‖h_j‖².
            let mut num = C64::zero();
            let mut den = 0.0f64;
            for i in 0..n {
                let hij = h[(i, j)];
                Complex::mul_acc(&mut num, hij.conj(), prep.y[i]);
                den += hij.norm_sqr();
            }
            let est = num.scale(1.0 / den);
            out.indices.push(self.constellation.slice(est));
        }
    }
}

impl_detector_via_prepared!(MrcDetector, "MRC");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_math::Matrix;
    use sd_wireless::{noise_variance, Modulation, TxFrame};

    fn noiseless_frame(c: &Constellation, seed: u64, n: usize) -> FrameData {
        let mut rng = StdRng::seed_from_u64(seed);
        FrameData::generate(n, n, c, 1e-9, &mut rng)
    }

    #[test]
    fn zf_exact_on_noiseless_channel() {
        let c = Constellation::new(Modulation::Qam16);
        let zf = ZfDetector::new(c.clone());
        for seed in 0..10 {
            let f = noiseless_frame(&c, seed, 6);
            assert_eq!(zf.detect(&f).indices, f.tx.indices);
        }
    }

    #[test]
    fn mmse_exact_on_noiseless_channel() {
        let c = Constellation::new(Modulation::Qam16);
        let mmse = MmseDetector::new(c.clone());
        for seed in 10..20 {
            let f = noiseless_frame(&c, seed, 6);
            assert_eq!(mmse.detect(&f).indices, f.tx.indices);
        }
    }

    #[test]
    fn mrc_exact_without_interference() {
        // Single transmit stream: MRC is optimal.
        let c = Constellation::new(Modulation::Qam4);
        let mrc = MrcDetector::new(c.clone());
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let f = FrameData::generate(8, 1, &c, 1e-6, &mut rng);
            assert_eq!(mrc.detect(&f).indices, f.tx.indices);
        }
    }

    #[test]
    fn mrc_suffers_from_interference() {
        // With many streams MRC must be clearly worse than ZF at high SNR.
        let c = Constellation::new(Modulation::Qam4);
        let mrc = MrcDetector::new(c.clone());
        let zf = ZfDetector::new(c.clone());
        let mut rng = StdRng::seed_from_u64(34);
        let sigma2 = noise_variance(30.0, 8);
        let mut mrc_err = 0u64;
        let mut zf_err = 0u64;
        for _ in 0..100 {
            let f = FrameData::generate(8, 8, &c, sigma2, &mut rng);
            mrc_err += f.symbol_errors(&mrc.detect(&f).indices);
            zf_err += f.symbol_errors(&zf.detect(&f).indices);
        }
        assert!(
            mrc_err > zf_err + 20,
            "MRC ({mrc_err}) should be much worse than ZF ({zf_err})"
        );
    }

    #[test]
    fn mmse_at_least_as_good_as_zf_at_low_snr() {
        let c = Constellation::new(Modulation::Qam4);
        let mmse = MmseDetector::new(c.clone());
        let zf = ZfDetector::new(c.clone());
        let mut rng = StdRng::seed_from_u64(35);
        let sigma2 = noise_variance(8.0, 10);
        let mut e_mmse = 0u64;
        let mut e_zf = 0u64;
        for _ in 0..300 {
            let f = FrameData::generate(10, 10, &c, sigma2, &mut rng);
            e_mmse += f.bit_errors(&mmse.detect(&f).indices, &c);
            e_zf += f.bit_errors(&zf.detect(&f).indices, &c);
        }
        assert!(
            e_mmse <= e_zf,
            "MMSE ({e_mmse}) must not lose to ZF ({e_zf}) at low SNR"
        );
    }

    #[test]
    fn linear_detectors_worse_than_ml_at_moderate_snr() {
        let c = Constellation::new(Modulation::Qam4);
        let ml = MlDetector::new(c.clone());
        let zf = ZfDetector::new(c.clone());
        let mut rng = StdRng::seed_from_u64(36);
        let sigma2 = noise_variance(8.0, 5);
        let mut e_ml = 0u64;
        let mut e_zf = 0u64;
        for _ in 0..200 {
            let f = FrameData::generate(5, 5, &c, sigma2, &mut rng);
            e_ml += f.bit_errors(&ml.detect(&f).indices, &c);
            e_zf += f.bit_errors(&zf.detect(&f).indices, &c);
        }
        assert!(
            e_ml < e_zf,
            "ML ({e_ml}) must beat ZF ({e_zf}) — the paper's core premise"
        );
    }

    #[test]
    fn identity_channel_all_detectors_agree() {
        let c = Constellation::new(Modulation::Qam4);
        let tx = TxFrame::from_indices(&[1, 2, 3, 0], &c);
        let f = FrameData {
            h: Matrix::identity(4),
            y: tx.symbols.clone(),
            noise_variance: 0.01,
            tx,
        };
        for det in [
            Box::new(ZfDetector::new(c.clone())) as Box<dyn Detector>,
            Box::new(MmseDetector::new(c.clone())),
            Box::new(MrcDetector::new(c.clone())),
        ] {
            assert_eq!(det.detect(&f).indices, vec![1, 2, 3, 0], "{}", det.name());
        }
    }
}
