//! The detector abstraction shared by every decoding scheme.
//!
//! All decoders — linear (ZF/MMSE/MRC), exhaustive ML, and every sphere-
//! decoder variant — implement [`Detector`], so the Monte-Carlo harness,
//! the FPGA pipeline simulator, and the benchmark suite drive them
//! uniformly and can compare accuracy, node counts and arithmetic cost on
//! identical frames.

use sd_wireless::FrameData;
use serde::{Deserialize, Serialize};

/// Whether a decode ran the search to completion or was cut short by a
/// [`DecodeBudget`](crate::engine::DecodeBudget).
///
/// `Exact` is the normal case and means the returned decision is whatever
/// the engine's unbudgeted contract promises (ML-exact for the sphere
/// decoders). `BudgetTruncated` means the search stopped early and
/// returned the best-so-far leaf: still a complete symbol vector, but
/// possibly not the minimum-metric one. Downstream consumers (the serve
/// ladder, BER accounting) treat a truncated decision exactly like a
/// served decision from an approximate tier — usable, counted, and
/// flagged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchQuality {
    /// The search ran to its natural completion.
    #[default]
    Exact,
    /// The search hit its [`DecodeBudget`](crate::engine::DecodeBudget)
    /// and returned the best leaf found so far.
    BudgetTruncated {
        /// Nodes generated when the budget tripped (the spend the serve
        /// layer charges against its prediction).
        nodes_spent: u64,
    },
}

impl SearchQuality {
    /// `true` when the decode was cut short by a budget.
    pub fn is_truncated(&self) -> bool {
        matches!(self, SearchQuality::BudgetTruncated { .. })
    }

    /// Combine qualities when merging per-worker or per-batch stats:
    /// truncation anywhere taints the aggregate, spends add up.
    pub fn merge(self, other: SearchQuality) -> SearchQuality {
        match (self, other) {
            (SearchQuality::Exact, q) | (q, SearchQuality::Exact) => q,
            (
                SearchQuality::BudgetTruncated { nodes_spent: a },
                SearchQuality::BudgetTruncated { nodes_spent: b },
            ) => SearchQuality::BudgetTruncated { nodes_spent: a + b },
        }
    }
}

/// Per-decode instrumentation.
///
/// Sphere-decoder variants fill the tree-search fields; linear detectors
/// only report flops. The counters are the quantities the paper argues
/// with: explored-node counts (the "<1 % of the search space" claim of
/// Sec. IV-F) and GEMM volume (the compute-bound refactoring).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionStats {
    /// Nodes popped from the active list and branched (Algorithm 1 line 3).
    pub nodes_expanded: u64,
    /// Children generated and evaluated (line 4–6).
    pub nodes_generated: u64,
    /// Children discarded because their PD exceeded the radius (line 14).
    pub nodes_pruned: u64,
    /// Leaf nodes reached (line 7).
    pub leaves_reached: u64,
    /// Sphere-radius updates performed at leaves (line 8).
    pub radius_updates: u64,
    /// Real floating-point operations spent in GEMM/PD evaluation.
    pub flops: u64,
    /// Children generated per tree level (index 0 = first branching level,
    /// i.e. the last transmit antenna).
    pub per_level_generated: Vec<u64>,
    /// Final squared sphere radius (the returned solution's metric).
    pub final_radius_sqr: f64,
    /// Number of search restarts after an empty sphere (finite initial
    /// radius only).
    pub restarts: u64,
    /// Whether the search completed or was cut short by a
    /// [`DecodeBudget`](crate::engine::DecodeBudget).
    #[serde(default)]
    pub quality: SearchQuality,
}

impl DetectionStats {
    /// Merge counters (used when aggregating batches or parallel PEs).
    pub fn merge(&mut self, other: &DetectionStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.nodes_generated += other.nodes_generated;
        self.nodes_pruned += other.nodes_pruned;
        self.leaves_reached += other.leaves_reached;
        self.radius_updates += other.radius_updates;
        self.flops += other.flops;
        self.restarts += other.restarts;
        if self.per_level_generated.len() < other.per_level_generated.len() {
            self.per_level_generated
                .resize(other.per_level_generated.len(), 0);
        }
        for (a, b) in self
            .per_level_generated
            .iter_mut()
            .zip(other.per_level_generated.iter())
        {
            *a += b;
        }
        self.final_radius_sqr = self.final_radius_sqr.max(other.final_radius_sqr);
        self.quality = self.quality.merge(other.quality);
    }

    /// Merge an iterator of stats into one aggregate — the cheap way to
    /// fold a whole batch (`detections.iter().map(|d| &d.stats)`) without
    /// hand-summing individual counters.
    pub fn accumulate<'a, I: IntoIterator<Item = &'a DetectionStats>>(stats: I) -> DetectionStats {
        let mut acc = DetectionStats::default();
        for s in stats {
            acc.merge(s);
        }
        acc
    }

    /// Zero every counter and (re)size the per-level histogram to
    /// `n_levels` without giving up its capacity. Decoders use this to
    /// write stats into a caller-owned struct allocation-free.
    pub fn reset(&mut self, n_levels: usize) {
        self.nodes_expanded = 0;
        self.nodes_generated = 0;
        self.nodes_pruned = 0;
        self.leaves_reached = 0;
        self.radius_updates = 0;
        self.flops = 0;
        self.per_level_generated.clear();
        self.per_level_generated.resize(n_levels, 0);
        self.final_radius_sqr = 0.0;
        self.restarts = 0;
        self.quality = SearchQuality::Exact;
    }

    /// Fraction of a full `P^M` enumeration this search visited.
    pub fn explored_fraction(&self, order: usize, n_tx: usize) -> f64 {
        let total = (order as f64).powi(n_tx as i32);
        self.nodes_generated as f64 / total
    }
}

impl<'a> std::iter::Sum<&'a DetectionStats> for DetectionStats {
    fn sum<I: Iterator<Item = &'a DetectionStats>>(iter: I) -> Self {
        DetectionStats::accumulate(iter)
    }
}

impl std::iter::Sum for DetectionStats {
    fn sum<I: Iterator<Item = DetectionStats>>(iter: I) -> Self {
        let mut acc = DetectionStats::default();
        for s in iter {
            acc.merge(&s);
        }
        acc
    }
}

/// Result of one decode.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Detection {
    /// Constellation point index per transmit antenna (the decoded `ŝ`).
    pub indices: Vec<usize>,
    /// Search / arithmetic instrumentation.
    pub stats: DetectionStats,
}

/// A MIMO detector: maps one received frame to symbol decisions.
pub trait Detector: Send + Sync {
    /// Human-readable name used in reports and figures.
    fn name(&self) -> &'static str;

    /// Decode one frame. Implementations must not read
    /// [`FrameData::tx`] (the ground truth).
    fn detect(&self, frame: &FrameData) -> Detection;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_counters() {
        let mut a = DetectionStats {
            nodes_expanded: 10,
            nodes_generated: 40,
            nodes_pruned: 5,
            leaves_reached: 2,
            radius_updates: 1,
            flops: 1000,
            per_level_generated: vec![4, 16],
            final_radius_sqr: 1.5,
            restarts: 0,
            quality: SearchQuality::Exact,
        };
        let b = DetectionStats {
            nodes_expanded: 1,
            nodes_generated: 4,
            nodes_pruned: 0,
            leaves_reached: 1,
            radius_updates: 1,
            flops: 100,
            per_level_generated: vec![4, 0, 8],
            final_radius_sqr: 0.5,
            restarts: 2,
            quality: SearchQuality::Exact,
        };
        a.merge(&b);
        assert_eq!(a.nodes_expanded, 11);
        assert_eq!(a.nodes_generated, 44);
        assert_eq!(a.per_level_generated, vec![8, 16, 8]);
        assert_eq!(a.final_radius_sqr, 1.5);
        assert_eq!(a.restarts, 2);
    }

    #[test]
    fn accumulate_and_sum_match_pairwise_merge() {
        let a = DetectionStats {
            nodes_expanded: 3,
            nodes_generated: 12,
            flops: 7,
            per_level_generated: vec![4, 8],
            final_radius_sqr: 2.0,
            ..Default::default()
        };
        let b = DetectionStats {
            nodes_expanded: 2,
            nodes_generated: 8,
            flops: 5,
            per_level_generated: vec![8],
            restarts: 1,
            ..Default::default()
        };
        let mut manual = DetectionStats::default();
        manual.merge(&a);
        manual.merge(&b);
        let acc = DetectionStats::accumulate([&a, &b]);
        assert_eq!(acc, manual);
        let summed: DetectionStats = [&a, &b].into_iter().sum();
        assert_eq!(summed, manual);
        let owned: DetectionStats = vec![a.clone(), b].into_iter().sum();
        assert_eq!(owned, manual);
    }

    #[test]
    fn reset_keeps_histogram_capacity() {
        let mut s = DetectionStats {
            nodes_expanded: 9,
            per_level_generated: vec![1, 2, 3, 4],
            final_radius_sqr: 5.0,
            ..Default::default()
        };
        let cap = s.per_level_generated.capacity();
        s.reset(3);
        assert_eq!(s.nodes_expanded, 0);
        assert_eq!(s.final_radius_sqr, 0.0);
        assert_eq!(s.per_level_generated, vec![0; 3]);
        assert_eq!(
            s.per_level_generated.capacity(),
            cap,
            "reset must not shrink"
        );
    }

    #[test]
    fn quality_merge_is_truncation_dominant() {
        let e = SearchQuality::Exact;
        let t3 = SearchQuality::BudgetTruncated { nodes_spent: 3 };
        let t5 = SearchQuality::BudgetTruncated { nodes_spent: 5 };
        assert_eq!(e.merge(e), SearchQuality::Exact);
        assert_eq!(e.merge(t3), t3);
        assert_eq!(t3.merge(e), t3);
        assert_eq!(
            t3.merge(t5),
            SearchQuality::BudgetTruncated { nodes_spent: 8 }
        );
        assert!(!e.is_truncated());
        assert!(t3.is_truncated());
    }

    #[test]
    fn merge_and_reset_carry_quality() {
        let mut a = DetectionStats::default();
        let b = DetectionStats {
            quality: SearchQuality::BudgetTruncated { nodes_spent: 7 },
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.quality, SearchQuality::BudgetTruncated { nodes_spent: 7 });
        a.reset(2);
        assert_eq!(a.quality, SearchQuality::Exact);
    }

    #[test]
    fn explored_fraction() {
        let stats = DetectionStats {
            nodes_generated: 100,
            ..Default::default()
        };
        // 4-QAM, 10 antennas: 4^10 ≈ 1.05e6.
        let f = stats.explored_fraction(4, 10);
        assert!((f - 100.0 / 4f64.powi(10)).abs() < 1e-15);
        assert!(f < 0.01, "100 nodes must be <1% of the space");
    }
}
