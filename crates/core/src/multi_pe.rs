//! Multi-PE sub-tree parallel sphere decoding — the paper's future work.
//!
//! The conclusion proposes "partitioning the search tree over multiple
//! Processing Entities (PEs)". This module implements that design in
//! software, following the multi-sphere idea of Nikitopoulos et al. \[4\]:
//! the root's `P` level-1 sub-trees are searched concurrently, and workers
//! share the current best squared radius through a lock-free atomic
//! (monotone fetch-min over the IEEE-754 bit pattern, which is
//! order-preserving for non-negative floats). Radius sharing only ever
//! *shrinks* the sphere toward valid leaf metrics, so the combined search
//! remains exactly ML while each PE prunes with everyone's discoveries —
//! the synchronization step \[4\] identifies as essential.

use crate::arena::SearchWorkspace;
use crate::detector::{Detection, DetectionStats};
use crate::engine::{impl_detector_via_prepared, PreparedDetector};
use crate::pd::{eval_children, sorted_children, sorted_children_into, EvalStrategy, PdScratch};
use crate::preprocess::Prepared;
use rayon::prelude::*;
use sd_math::Float;
use sd_wireless::Constellation;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-tree parallel sphere decoder.
#[derive(Clone, Debug)]
pub struct SubtreeParallelSd<F: Float = f64> {
    constellation: Constellation,
    /// Child-evaluation strategy.
    pub eval: EvalStrategy,
    _precision: std::marker::PhantomData<F>,
}

/// Shared monotone-decreasing best metric.
struct SharedRadius(AtomicU64);

impl SharedRadius {
    fn new() -> Self {
        SharedRadius(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    #[inline]
    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lower the shared radius to `value` if it improves it; returns
    /// whether this call won the update.
    fn try_lower(&self, value: f64) -> bool {
        debug_assert!(value >= 0.0);
        let bits = value.to_bits();
        self.0
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                // Non-negative IEEE-754 doubles order like their bit
                // patterns, so integer comparison is float comparison.
                (bits < cur).then_some(bits)
            })
            .is_ok()
    }
}

impl<F: Float> SubtreeParallelSd<F> {
    /// Parallel decoder with GEMM evaluation.
    pub fn new(constellation: Constellation) -> Self {
        SubtreeParallelSd {
            constellation,
            eval: EvalStrategy::Gemm,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: evaluation strategy.
    pub fn with_eval(mut self, eval: EvalStrategy) -> Self {
        self.eval = eval;
        self
    }
}

impl<F: Float> PreparedDetector<F> for SubtreeParallelSd<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Decode a prepared problem with one PE per level-1 sub-tree. The
    /// shared radius always starts infinite (each PE tightens it through
    /// the atomic), so `radius_sqr` is ignored; `ws` supplies the root
    /// expansion scratch while each PE owns a private workspace.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        _radius_sqr: f64,
        ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        let m = prep.n_tx;
        let p = prep.order;

        // Root expansion (common to all PEs).
        ws.prepare(p, m);
        let root_flops = eval_children(prep, &[], self.eval, &mut ws.scratch);
        let root_children = sorted_children(&ws.scratch.increments);

        let shared = SharedRadius::new();

        // One PE per level-1 child; processed best-first so the shared
        // radius tightens as early as possible.
        type PeResult = (Option<(f64, Vec<usize>)>, DetectionStats);
        let results: Vec<PeResult> = root_children
            .par_iter()
            .map(|&(inc, child)| {
                // One workspace per PE: the descent below allocates only
                // during buffer warm-up, like the serial decoder.
                let mut ws: SearchWorkspace<F> = SearchWorkspace::new();
                ws.prepare(p, m);
                let ws = &mut ws;
                let mut pe = PeSearch {
                    prep,
                    scratch: &mut ws.scratch,
                    stats: DetectionStats {
                        per_level_generated: vec![0; m],
                        ..Default::default()
                    },
                    path: &mut ws.path,
                    best_path: &mut ws.best_path,
                    sort_bufs: &mut ws.sort_bufs,
                    best_pd: None,
                    shared: &shared,
                    eval: self.eval,
                };
                pe.path.push(child);
                if m == 1 {
                    // Degenerate single-antenna tree: the root child is a leaf.
                    let pd = inc.to_f64();
                    if shared.try_lower(pd) {
                        pe.best_pd = Some(pd);
                        pe.best_path.push(child);
                        pe.stats.leaves_reached += 1;
                        pe.stats.radius_updates += 1;
                    }
                } else if inc.to_f64() < shared.load() {
                    pe.descend(inc);
                }
                let best = pe.best_pd.map(|pd| (pd, pe.best_path.clone()));
                (best, pe.stats)
            })
            .collect();

        out.stats.reset(m);
        let stats = &mut out.stats;
        stats.nodes_expanded = 1;
        stats.nodes_generated = p as u64;
        stats.flops = root_flops;
        stats.per_level_generated[0] = p as u64;
        let mut best: Option<(f64, Vec<usize>)> = None;
        for (pe_best, pe_stats) in results {
            stats.merge(&pe_stats);
            if let Some((pd, path)) = pe_best {
                if best.as_ref().is_none_or(|(b, _)| pd < *b) {
                    best = Some((pd, path));
                }
            }
        }
        let (best_pd, best_path) = best.expect("infinite initial radius always finds a leaf");
        stats.final_radius_sqr = best_pd;
        stats.flops += prep.prep_flops;
        prep.indices_from_path_into(&best_path, &mut out.indices);
    }
}

impl_detector_via_prepared!(SubtreeParallelSd<F>, "SD multi-PE");

/// One PE's depth-first search over its sub-tree, borrowing its buffers
/// from a per-PE [`SearchWorkspace`].
struct PeSearch<'a, F: Float> {
    prep: &'a Prepared<F>,
    scratch: &'a mut PdScratch<F>,
    stats: DetectionStats,
    path: &'a mut Vec<usize>,
    best_path: &'a mut Vec<usize>,
    sort_bufs: &'a mut [Vec<(F, usize)>],
    best_pd: Option<f64>,
    shared: &'a SharedRadius,
    eval: EvalStrategy,
}

impl<F: Float> PeSearch<'_, F> {
    fn descend(&mut self, pd: F) {
        let depth = self.path.len();
        let m = self.prep.n_tx;
        let p = self.prep.order;
        self.stats.nodes_expanded += 1;
        self.stats.flops += eval_children(self.prep, self.path, self.eval, self.scratch);
        self.stats.nodes_generated += p as u64;
        self.stats.per_level_generated[depth] += p as u64;

        let mut children = std::mem::take(&mut self.sort_bufs[depth]);
        sorted_children_into(&self.scratch.increments, &mut children);
        for (rank, &(inc, child)) in children.iter().enumerate() {
            let child_pd = pd + inc;
            // Prune against everyone's best, not just our own.
            if !(child_pd.to_f64() < self.shared.load()) {
                self.stats.nodes_pruned += (p - rank) as u64;
                break;
            }
            if depth + 1 == m {
                let leaf_pd = child_pd.to_f64();
                self.stats.leaves_reached += 1;
                if self.shared.try_lower(leaf_pd) {
                    self.stats.radius_updates += 1;
                    self.best_pd = Some(leaf_pd);
                    self.best_path.clear();
                    self.best_path.extend_from_slice(self.path);
                    self.best_path.push(child);
                }
            } else {
                self.path.push(child);
                self.descend(child_pd);
                self.path.pop();
            }
        }
        self.sort_bufs[depth] = children;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::dfs::SphereDecoder;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, FrameData, Modulation};

    fn frames(
        n: usize,
        m: Modulation,
        snr_db: f64,
        count: usize,
        seed: u64,
    ) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(m);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn matches_ml() {
        let (c, frames) = frames(5, Modulation::Qam4, 6.0, 25, 100);
        let mp: SubtreeParallelSd<f64> = SubtreeParallelSd::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn matches_serial_dfs_metric() {
        let (c, frames) = frames(8, Modulation::Qam4, 8.0, 15, 101);
        let mp: SubtreeParallelSd<f64> = SubtreeParallelSd::new(c.clone());
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        for f in &frames {
            let a = mp.detect(f);
            let b = sd.detect(f);
            // Same optimum (tie-breaking may differ, metric must not).
            assert!((a.stats.final_radius_sqr - b.stats.final_radius_sqr).abs() < 1e-9);
        }
    }

    #[test]
    fn sixteen_qam_exactness() {
        let (c, frames) = frames(3, Modulation::Qam16, 8.0, 10, 102);
        let mp: SubtreeParallelSd<f64> = SubtreeParallelSd::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn single_antenna_degenerate_case() {
        let (c, frames) = frames(1, Modulation::Qam4, 15.0, 10, 103);
        let mp: SubtreeParallelSd<f64> = SubtreeParallelSd::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            assert_eq!(mp.detect(f).indices, ml.detect(f).indices);
        }
    }

    #[test]
    fn shared_radius_fetch_min_semantics() {
        let r = SharedRadius::new();
        assert!(r.load().is_infinite());
        assert!(r.try_lower(5.0));
        assert!(!r.try_lower(7.0), "raising must fail");
        assert!(r.try_lower(1.5));
        assert_eq!(r.load(), 1.5);
        assert!(!r.try_lower(1.5), "equal must fail");
    }

    #[test]
    fn work_does_not_explode_vs_serial() {
        // Parallel PEs start without the serial search's early radius, so
        // some extra work is expected — but sharing must keep it bounded
        // (well under the P× blowup of fully independent sub-trees).
        let (c, frames) = frames(8, Modulation::Qam4, 8.0, 10, 104);
        let mp: SubtreeParallelSd<f64> = SubtreeParallelSd::new(c.clone());
        let sd: SphereDecoder<f64> = SphereDecoder::new(c);
        let np: u64 = frames
            .iter()
            .map(|f| mp.detect(f).stats.nodes_generated)
            .sum();
        let ns: u64 = frames
            .iter()
            .map(|f| sd.detect(f).stats.nodes_generated)
            .sum();
        assert!(
            np < ns * 3,
            "multi-PE explored {np} vs serial {ns}: sharing is broken"
        );
    }
}
