//! Soft-output (list) sphere decoding.
//!
//! Coded systems want per-bit log-likelihood ratios, not hard decisions.
//! The list sphere decoder (Hochwald & ten Brink style) reuses the exact
//! search: the traversal prunes against an *inflated* bound
//! `γ · d²_best` instead of `d²_best`, so it keeps visiting leaves that
//! are slightly worse than the optimum and collects them into a
//! candidate list. Max-log LLRs follow per bit:
//!
//! ```text
//! L_j = ( min_{s ∈ list, b_j(s)=1} ‖y−Hs‖² − min_{s ∈ list, b_j(s)=0} ‖y−Hs‖² ) / σ²
//! ```
//!
//! (positive ⇒ bit 0 more likely). Bits with no counter-hypothesis in
//! the list are clamped to ±[`SoftSphereDecoder::llr_clamp`]. The hard
//! decision (sign of the LLRs) is exactly the ML decision because the
//! ML leaf is always in the list.

use crate::arena::SearchWorkspace;
use crate::detector::{Detection, DetectionStats};
use crate::engine::{impl_detector_via_prepared, PreparedDetector};
use crate::pd::{eval_children, sorted_children, EvalStrategy, PdScratch};
use crate::preprocess::{preprocess, Prepared};
use sd_math::Float;
use sd_wireless::{Constellation, FrameData};

/// One collected leaf candidate.
#[derive(Clone, Debug)]
struct Candidate {
    metric: f64,
    /// Physical-antenna-order constellation indices.
    indices: Vec<usize>,
}

/// Soft detection result.
#[derive(Clone, Debug)]
pub struct SoftDetection {
    /// Hard (ML) symbol decisions.
    pub detection: Detection,
    /// Max-log LLR per information bit, MSB-first per antenna
    /// (`n_tx · bits_per_symbol` values). Positive favours bit 0.
    pub llrs: Vec<f64>,
    /// Number of leaf candidates that contributed.
    pub list_len: usize,
}

impl SoftDetection {
    /// Hard bit decisions implied by the LLR signs.
    pub fn hard_bits(&self) -> Vec<u8> {
        self.llrs.iter().map(|&l| u8::from(l < 0.0)).collect()
    }
}

/// List sphere decoder producing max-log LLRs.
#[derive(Clone, Debug)]
pub struct SoftSphereDecoder<F: Float = f64> {
    constellation: Constellation,
    /// Bound inflation: leaves with metric < γ·d²_best stay in the list.
    pub gamma: f64,
    /// Maximum candidates retained (worst evicted first).
    pub max_list: usize,
    /// Clamp for bits lacking a counter-hypothesis.
    pub llr_clamp: f64,
    _precision: std::marker::PhantomData<F>,
}

impl<F: Float> SoftSphereDecoder<F> {
    /// List decoder with γ = 2.5, list of 64, clamp ±25.
    pub fn new(constellation: Constellation) -> Self {
        SoftSphereDecoder {
            constellation,
            gamma: 2.5,
            max_list: 64,
            llr_clamp: 25.0,
            _precision: std::marker::PhantomData,
        }
    }

    /// Builder: bound inflation factor (≥ 1).
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma >= 1.0, "gamma must be >= 1");
        self.gamma = gamma;
        self
    }

    /// Builder: list capacity.
    pub fn with_max_list(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "list needs at least two entries");
        self.max_list = cap;
        self
    }

    /// Soft decode one frame.
    pub fn detect_soft(&self, frame: &FrameData) -> SoftDetection {
        let prep: Prepared<F> = preprocess(frame, &self.constellation);
        self.detect_soft_prepared(&prep)
    }

    /// Soft decode a prepared problem; the LLR noise variance is read
    /// from the prepared frame view.
    pub fn detect_soft_prepared(&self, prep: &Prepared<F>) -> SoftDetection {
        let m = prep.n_tx;
        let p = prep.order;
        let mut scratch = PdScratch::new(p, m);
        let mut stats = DetectionStats {
            per_level_generated: vec![0; m],
            ..Default::default()
        };
        let mut list: Vec<Candidate> = Vec::new();
        let mut best_metric = f64::INFINITY;

        // Iterative sorted DFS with the inflated bound.
        let mut stack: Vec<(F, Vec<usize>)> = vec![(F::ZERO, Vec::new())];
        while let Some((pd, path)) = stack.pop() {
            let bound = if best_metric.is_finite() {
                self.gamma * best_metric
            } else {
                f64::INFINITY
            };
            if pd.to_f64() >= bound {
                stats.nodes_pruned += 1;
                continue;
            }
            let depth = path.len();
            stats.nodes_expanded += 1;
            stats.flops += eval_children(prep, &path, EvalStrategy::Gemm, &mut scratch);
            stats.nodes_generated += p as u64;
            stats.per_level_generated[depth] += p as u64;
            let children = sorted_children(&scratch.increments);
            if depth + 1 == m {
                for (inc, c) in children {
                    let metric = pd.to_f64() + inc.to_f64();
                    let bound = if best_metric.is_finite() {
                        self.gamma * best_metric
                    } else {
                        f64::INFINITY
                    };
                    if metric >= bound {
                        stats.nodes_pruned += 1;
                        continue;
                    }
                    stats.leaves_reached += 1;
                    let mut leaf = path.clone();
                    leaf.push(c);
                    if metric < best_metric {
                        best_metric = metric;
                        stats.radius_updates += 1;
                    }
                    list.push(Candidate {
                        metric,
                        indices: prep.indices_from_path(&leaf),
                    });
                    if list.len() > self.max_list {
                        // Evict the worst candidate.
                        let worst = list
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.metric.total_cmp(&b.1.metric))
                            .map(|(i, _)| i)
                            .expect("non-empty list");
                        list.swap_remove(worst);
                    }
                }
            } else {
                // Push worst-first (LIFO explores best child first).
                for (inc, c) in children.into_iter().rev() {
                    let child_pd = pd + inc;
                    let mut child = path.clone();
                    child.push(c);
                    stack.push((child_pd, child));
                }
            }
        }
        // Drop list entries that ended above the final inflated bound.
        let final_bound = self.gamma * best_metric;
        list.retain(|cand| cand.metric < final_bound);
        stats.final_radius_sqr = best_metric;
        stats.flops += prep.prep_flops;

        // Hard decision = best candidate.
        let best = list
            .iter()
            .min_by(|a, b| a.metric.total_cmp(&b.metric))
            .expect("at least the ML leaf is listed")
            .clone();

        // Max-log LLRs.
        let bps = self.constellation.bits_per_symbol();
        let sigma2 = prep.noise_variance.max(1e-30);
        let mut llrs = vec![0.0f64; m * bps];
        for (ant, llr_chunk) in llrs.chunks_mut(bps).enumerate() {
            for (bit, llr) in llr_chunk.iter_mut().enumerate() {
                let mut min0 = f64::INFINITY;
                let mut min1 = f64::INFINITY;
                for cand in &list {
                    let bits = self.constellation.index_to_bits(cand.indices[ant]);
                    if bits[bit] == 0 {
                        min0 = min0.min(cand.metric);
                    } else {
                        min1 = min1.min(cand.metric);
                    }
                }
                *llr = match (min0.is_finite(), min1.is_finite()) {
                    (true, true) => ((min1 - min0) / sigma2).clamp(-self.llr_clamp, self.llr_clamp),
                    (true, false) => self.llr_clamp,
                    (false, true) => -self.llr_clamp,
                    (false, false) => 0.0,
                };
            }
        }

        SoftDetection {
            detection: Detection {
                indices: best.indices,
                stats,
            },
            llrs,
            list_len: list.len(),
        }
    }
}

impl<F: Float> PreparedDetector<F> for SoftSphereDecoder<F> {
    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// Hard-decision entry point: runs the list search (the inflated
    /// bound replaces the sphere radius, so `radius_sqr` is ignored) and
    /// keeps only the best candidate. Use
    /// [`SoftSphereDecoder::detect_soft_prepared`] when the LLRs are
    /// wanted.
    fn detect_prepared_into(
        &self,
        prep: &Prepared<F>,
        _radius_sqr: f64,
        _ws: &mut SearchWorkspace<F>,
        out: &mut Detection,
    ) {
        *out = self.detect_soft_prepared(prep).detection;
    }
}

impl_detector_via_prepared!(SoftSphereDecoder<F>, "SD soft-output (list)");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::ml::MlDetector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{noise_variance, Modulation};

    fn frames(n: usize, snr_db: f64, count: usize, seed: u64) -> (Constellation, Vec<FrameData>) {
        let c = Constellation::new(Modulation::Qam4);
        let sigma2 = noise_variance(snr_db, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (0..count)
            .map(|_| FrameData::generate(n, n, &c, sigma2, &mut rng))
            .collect();
        (c, f)
    }

    #[test]
    fn hard_decisions_are_ml() {
        let (c, frames) = frames(5, 8.0, 25, 130);
        let soft: SoftSphereDecoder<f64> = SoftSphereDecoder::new(c.clone());
        let ml = MlDetector::new(c);
        for f in &frames {
            let s = soft.detect_soft(f);
            assert_eq!(s.detection.indices, ml.detect(f).indices);
            assert!(s.list_len >= 1);
        }
    }

    #[test]
    fn llr_signs_match_hard_bits() {
        let (c, frames) = frames(6, 10.0, 20, 131);
        let soft: SoftSphereDecoder<f64> = SoftSphereDecoder::new(c.clone());
        for f in &frames {
            let s = soft.detect_soft(f);
            let decided_bits: Vec<u8> = s
                .detection
                .indices
                .iter()
                .flat_map(|&i| c.index_to_bits(i))
                .collect();
            assert_eq!(s.hard_bits(), decided_bits, "LLR signs must match ML bits");
        }
    }

    #[test]
    fn llr_magnitudes_grow_with_snr() {
        let (c, lo) = frames(6, 4.0, 30, 132);
        let (_, hi) = frames(6, 16.0, 30, 132);
        let soft: SoftSphereDecoder<f64> = SoftSphereDecoder::new(c);
        let mean_abs = |fs: &[FrameData]| -> f64 {
            let mut acc = 0.0;
            let mut n = 0usize;
            for f in fs {
                for l in soft.detect_soft(f).llrs {
                    acc += l.abs();
                    n += 1;
                }
            }
            acc / n as f64
        };
        let lo_mag = mean_abs(&lo);
        let hi_mag = mean_abs(&hi);
        assert!(
            hi_mag > 2.0 * lo_mag,
            "confidence must grow with SNR: {lo_mag:.2} vs {hi_mag:.2}"
        );
    }

    #[test]
    fn wider_gamma_grows_the_list() {
        let (c, frames) = frames(6, 8.0, 15, 133);
        let narrow: SoftSphereDecoder<f64> = SoftSphereDecoder::new(c.clone())
            .with_gamma(1.2)
            .with_max_list(256);
        let wide: SoftSphereDecoder<f64> =
            SoftSphereDecoder::new(c).with_gamma(4.0).with_max_list(256);
        let ln: usize = frames.iter().map(|f| narrow.detect_soft(f).list_len).sum();
        let lw: usize = frames.iter().map(|f| wide.detect_soft(f).list_len).sum();
        assert!(
            lw > ln,
            "gamma 4 ({lw}) must list more than gamma 1.2 ({ln})"
        );
    }

    #[test]
    fn llrs_are_clamped() {
        let (c, frames) = frames(4, 20.0, 10, 134);
        let soft: SoftSphereDecoder<f64> = SoftSphereDecoder::new(c);
        for f in &frames {
            for l in soft.detect_soft(f).llrs {
                assert!(l.abs() <= soft.llr_clamp + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "gamma must be >= 1")]
    fn sub_unit_gamma_rejected() {
        let _ = SoftSphereDecoder::<f64>::new(Constellation::new(Modulation::Qam4)).with_gamma(0.5);
    }
}
