//! Search observability: the [`TraceSink`] event interface, the
//! [`SearchTelemetry`] per-level recorder, and the [`PhaseProfile`]
//! scoped-span accumulator.
//!
//! The paper's whole argument rests on *observed* search behaviour —
//! SNR-dependent node counts (Fig. 6–10), the "<1 % explored" claim of
//! Sec. IV-F, per-stage pipeline occupancy — so every engine behind
//! [`PreparedDetector`](crate::engine::PreparedDetector) emits a uniform
//! event stream describing its search: expansions, per-level child
//! generation, pruning, sorting, radius shrinks, restarts. A sink is
//! installed into the [`SearchWorkspace`](crate::arena::SearchWorkspace)
//! (`install_trace` / `install_telemetry`); when none is installed the
//! engines skip every emission (a single `Option` check per site), so the
//! disabled path stays allocation-free and within the alloc-free gate's
//! budget (`tests/alloc_free.rs`).
//!
//! Two recorders ship with the crate:
//!
//! * [`SearchTelemetry`] — per-level [`LevelTelemetry`] counters plus a
//!   [`PhaseProfile`]. Its accounting reconciles *exactly* with
//!   [`DetectionStats`](crate::detector::DetectionStats): for every level
//!   `generated == accepted + pruned`, and the generated totals match
//!   `nodes_generated` (asserted by `tests/telemetry.rs`).
//! * The BFS adapter in [`crate::bfs`] — rebuilds the historical
//!   [`BfsLevelTrace`](crate::bfs::BfsLevelTrace) (consumed by the
//!   `sd-gpu` cost model) from the same event stream, replacing the
//!   one-off tracing plumbing that used to live inside the decoder.
//!
//! [`PhaseProfile`] also serves as the common schema for phase-level cost
//! views: wall-clock spans here (unit [`PhaseUnit::Nanoseconds`]) and the
//! fpga-sim cycle breakdown (unit [`PhaseUnit::Cycles`]) render through
//! the same type, making simulated-cycle and measured-time views directly
//! comparable in bench reports.

use std::any::Any;
use std::time::Instant;

/// A prepared-decode phase a scoped span can be charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// QR / ordering preprocessing (frame → prepared problem).
    Prepare,
    /// Child evaluation (the GEMM formulation, Phases 1–2 of Fig. 4).
    Expand,
    /// Child sorting / frontier truncation (Phase 3).
    Sort,
    /// Leaf handling: incumbent update, path materialization.
    Leaf,
}

/// Unit of the amounts accumulated in a [`PhaseProfile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseUnit {
    /// Wall-clock nanoseconds (software spans).
    Nanoseconds,
    /// Simulated hardware cycles (the fpga-sim accounting).
    Cycles,
}

impl PhaseUnit {
    /// Short suffix for rendered amounts (`"ns"` / `"cyc"`).
    pub fn suffix(&self) -> &'static str {
        match self {
            PhaseUnit::Nanoseconds => "ns",
            PhaseUnit::Cycles => "cyc",
        }
    }
}

/// Per-decode accumulation of cost per [`Phase`], in one [`PhaseUnit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Cost charged to [`Phase::Prepare`].
    pub prepare: u64,
    /// Cost charged to [`Phase::Expand`].
    pub expand: u64,
    /// Cost charged to [`Phase::Sort`].
    pub sort: u64,
    /// Cost charged to [`Phase::Leaf`].
    pub leaf: u64,
    /// What the amounts measure.
    pub unit: PhaseUnit,
}

impl PhaseProfile {
    /// Zeroed profile in the given unit.
    pub fn new(unit: PhaseUnit) -> Self {
        PhaseProfile {
            prepare: 0,
            expand: 0,
            sort: 0,
            leaf: 0,
            unit,
        }
    }

    /// Add `amount` to `phase`.
    pub fn record(&mut self, phase: Phase, amount: u64) {
        match phase {
            Phase::Prepare => self.prepare += amount,
            Phase::Expand => self.expand += amount,
            Phase::Sort => self.sort += amount,
            Phase::Leaf => self.leaf += amount,
        }
    }

    /// Accumulated amount of one phase.
    pub fn get(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Prepare => self.prepare,
            Phase::Expand => self.expand,
            Phase::Sort => self.sort,
            Phase::Leaf => self.leaf,
        }
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.prepare + self.expand + self.sort + self.leaf
    }

    /// Fraction of the total charged to `phase` (0 when empty).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }

    /// Zero every phase, keeping the unit.
    pub fn clear(&mut self) {
        *self = PhaseProfile::new(self.unit);
    }

    /// One-line human rendering, e.g.
    /// `prepare=120 expand=3400 sort=200 leaf=40 total=3760 ns`.
    pub fn render(&self) -> String {
        format!(
            "prepare={} expand={} sort={} leaf={} total={} {}",
            self.prepare,
            self.expand,
            self.sort,
            self.leaf,
            self.total(),
            self.unit.suffix()
        )
    }
}

impl Default for PhaseProfile {
    fn default() -> Self {
        PhaseProfile::new(PhaseUnit::Nanoseconds)
    }
}

/// Receiver of search events from a decode.
///
/// Every method has a no-op default, so a sink implements only what it
/// consumes. Engines hold the sink behind an `Option` and skip emission
/// entirely when none is installed — the disabled path costs one branch
/// per site and performs no allocation.
///
/// Level indices refer to the tree depth of the *generated children*
/// (index into `DetectionStats::per_level_generated`), and counters
/// accumulate across radius restarts within one decode, matching how
/// [`DetectionStats`](crate::detector::DetectionStats) accumulates. The
/// per-level contract engines uphold: between `on_decode_start` calls,
/// `children` summed over `on_expand` equals the sum of `on_accept` and
/// `on_prune` counts at the same level.
pub trait TraceSink: Send {
    /// A decode over `n_levels` tree levels is starting; recorders reset
    /// per-decode state here (keeping capacity).
    fn on_decode_start(&mut self, _n_levels: usize) {}

    /// `parents` nodes at `level` were expanded, generating `children`.
    fn on_expand(&mut self, _level: usize, _parents: u64, _children: u64) {}

    /// `n` generated children at `level` were accepted into the search
    /// (visited, pushed to a frontier/heap, or registered as leaves).
    fn on_accept(&mut self, _level: usize, _n: u64) {}

    /// `n` generated children at `level` were discarded (radius bound,
    /// K-best truncation, frontier clip, dominated prefix).
    fn on_prune(&mut self, _level: usize, _n: u64) {}

    /// A sort over `elements` entries ran at `level`.
    fn on_sort(&mut self, _level: usize, _elements: u64) {}

    /// A frontier cap at `level` dropped `dropped` nodes that had passed
    /// the radius test (the drop is also reported via [`Self::on_prune`]).
    fn on_clip(&mut self, _level: usize, _dropped: u64) {}

    /// A leaf at `level` shrank the sphere to `radius_sqr`.
    fn on_radius_update(&mut self, _level: usize, _radius_sqr: f64) {}

    /// The sphere was empty; the decode restarts with a grown radius.
    fn on_restart(&mut self) {}

    /// A scoped span over `phase` measured `amount`
    /// ([`PhaseUnit::Nanoseconds`] on the software engines).
    fn on_phase(&mut self, _phase: Phase, _amount: u64) {}

    /// Downcasting hook so a concrete recorder can be recovered from the
    /// workspace's type-erased slot (see
    /// [`SearchWorkspace::telemetry`](crate::arena::SearchWorkspace::telemetry)).
    fn as_any(&self) -> &dyn Any;
}

/// Start a span clock only when a sink is listening; `None` otherwise, so
/// the disabled path never calls [`Instant::now`].
#[inline]
pub(crate) fn span_clock(active: bool) -> Option<Instant> {
    if active {
        Some(Instant::now())
    } else {
        None
    }
}

/// Elapsed nanoseconds of a [`span_clock`] (0 when tracing is disabled).
#[inline]
pub(crate) fn span_ns(t0: Option<Instant>) -> u64 {
    t0.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

/// Counters for one tree level of a decode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelTelemetry {
    /// Parent nodes expanded to generate this level's children.
    pub expanded: u64,
    /// Children generated at this level.
    pub generated: u64,
    /// Children accepted into the search.
    pub accepted: u64,
    /// Children pruned (radius, truncation, clip, domination).
    pub pruned: u64,
    /// Sort invocations at this level.
    pub sorts: u64,
    /// Total elements passed through those sorts.
    pub sorted_elements: u64,
    /// Radius shrinks triggered by leaves at this level.
    pub radius_updates: u64,
}

/// The stock [`TraceSink`]: per-level counters + a phase profile,
/// resetting (capacity-preserving) at every `on_decode_start` so the view
/// after a decode describes exactly that decode.
#[derive(Debug, Default)]
pub struct SearchTelemetry {
    levels: Vec<LevelTelemetry>,
    /// Radius restarts observed.
    pub restarts: u64,
    /// Frontier-cap clip events observed.
    pub clips: u64,
    /// Scoped-span accumulation over the decode phases.
    pub phases: PhaseProfile,
}

impl SearchTelemetry {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-level counters, index = tree depth of the generated children.
    pub fn levels(&self) -> &[LevelTelemetry] {
        &self.levels
    }

    /// Total children generated across levels; reconciles exactly with
    /// [`DetectionStats::nodes_generated`](crate::detector::DetectionStats)
    /// of the traced decode.
    pub fn nodes_generated(&self) -> u64 {
        self.levels.iter().map(|l| l.generated).sum()
    }

    /// Total children accepted across levels.
    pub fn nodes_accepted(&self) -> u64 {
        self.levels.iter().map(|l| l.accepted).sum()
    }

    /// Total children pruned across levels.
    pub fn nodes_pruned(&self) -> u64 {
        self.levels.iter().map(|l| l.pruned).sum()
    }

    /// `true` when every level satisfies the conservation identity
    /// `generated == accepted + pruned`.
    pub fn per_level_identity_holds(&self) -> bool {
        self.levels
            .iter()
            .all(|l| l.generated == l.accepted + l.pruned)
    }

    #[inline]
    fn level_mut(&mut self, level: usize) -> &mut LevelTelemetry {
        if level >= self.levels.len() {
            self.levels.resize(level + 1, LevelTelemetry::default());
        }
        &mut self.levels[level]
    }
}

impl TraceSink for SearchTelemetry {
    fn on_decode_start(&mut self, n_levels: usize) {
        self.levels.clear();
        self.levels.resize(n_levels, LevelTelemetry::default());
        self.restarts = 0;
        self.clips = 0;
        self.phases.clear();
    }

    fn on_expand(&mut self, level: usize, parents: u64, children: u64) {
        let l = self.level_mut(level);
        l.expanded += parents;
        l.generated += children;
    }

    fn on_accept(&mut self, level: usize, n: u64) {
        self.level_mut(level).accepted += n;
    }

    fn on_prune(&mut self, level: usize, n: u64) {
        self.level_mut(level).pruned += n;
    }

    fn on_sort(&mut self, level: usize, elements: u64) {
        let l = self.level_mut(level);
        l.sorts += 1;
        l.sorted_elements += elements;
    }

    fn on_clip(&mut self, _level: usize, _dropped: u64) {
        self.clips += 1;
    }

    fn on_radius_update(&mut self, level: usize, _radius_sqr: f64) {
        self.level_mut(level).radius_updates += 1;
    }

    fn on_restart(&mut self) {
        self.restarts += 1;
    }

    fn on_phase(&mut self, phase: Phase, amount: u64) {
        self.phases.record(phase, amount);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_profile_accumulates_and_renders() {
        let mut p = PhaseProfile::new(PhaseUnit::Nanoseconds);
        p.record(Phase::Expand, 100);
        p.record(Phase::Expand, 50);
        p.record(Phase::Sort, 30);
        p.record(Phase::Prepare, 10);
        p.record(Phase::Leaf, 10);
        assert_eq!(p.total(), 200);
        assert_eq!(p.get(Phase::Expand), 150);
        assert!((p.fraction(Phase::Expand) - 0.75).abs() < 1e-12);
        let line = p.render();
        assert!(line.contains("expand=150"), "{line}");
        assert!(line.ends_with("ns"), "{line}");
        p.clear();
        assert_eq!(p.total(), 0);
        assert_eq!(p.unit, PhaseUnit::Nanoseconds);
    }

    #[test]
    fn cycles_profile_renders_its_unit() {
        let mut p = PhaseProfile::new(PhaseUnit::Cycles);
        p.record(Phase::Sort, 7);
        assert!(p.render().ends_with("cyc"));
        assert_eq!(p.fraction(Phase::Sort), 1.0);
    }

    #[test]
    fn empty_profile_fraction_is_zero() {
        let p = PhaseProfile::default();
        assert_eq!(p.fraction(Phase::Expand), 0.0);
    }

    #[test]
    fn telemetry_tracks_per_level_identity() {
        let mut t = SearchTelemetry::new();
        t.on_decode_start(2);
        t.on_expand(0, 1, 4);
        t.on_accept(0, 3);
        t.on_prune(0, 1);
        t.on_expand(1, 3, 12);
        t.on_accept(1, 2);
        t.on_prune(1, 10);
        assert!(t.per_level_identity_holds());
        assert_eq!(t.nodes_generated(), 16);
        assert_eq!(t.nodes_accepted(), 5);
        assert_eq!(t.nodes_pruned(), 11);
        t.on_prune(1, 1); // break the identity
        assert!(!t.per_level_identity_holds());
    }

    #[test]
    fn decode_start_resets_per_decode_state() {
        let mut t = SearchTelemetry::new();
        t.on_decode_start(3);
        t.on_expand(2, 1, 4);
        t.on_restart();
        t.on_clip(1, 2);
        t.on_phase(Phase::Expand, 99);
        t.on_decode_start(3);
        assert_eq!(t.nodes_generated(), 0);
        assert_eq!(t.restarts, 0);
        assert_eq!(t.clips, 0);
        assert_eq!(t.phases.total(), 0);
        assert_eq!(t.levels().len(), 3);
    }

    #[test]
    fn out_of_range_level_grows_the_table() {
        // Sinks must tolerate events beyond the announced depth (engines
        // with restarts or adapters may emit before decode_start).
        let mut t = SearchTelemetry::new();
        t.on_decode_start(1);
        t.on_expand(5, 1, 2);
        assert_eq!(t.levels().len(), 6);
        assert_eq!(t.levels()[5].generated, 2);
    }

    #[test]
    fn telemetry_downcasts_through_as_any() {
        let mut t = SearchTelemetry::new();
        t.on_decode_start(1);
        let sink: &dyn TraceSink = &t;
        assert!(sink.as_any().downcast_ref::<SearchTelemetry>().is_some());
    }
}
