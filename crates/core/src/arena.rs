//! Slab-backed search-tree arena.
//!
//! The tree searches historically carried a `Vec<usize>` path inside every
//! open node, cloning it for each surviving child — one heap allocation
//! per generated node, right in the hot loop. The arena replaces those
//! paths with parent links: a node is 12 bytes in three parallel slabs
//! (`parent`, `symbol`, `depth`), a frontier/heap entry is a plain
//! `(f64, u32)` pair, and a full path is materialized only when a leaf is
//! actually accepted. This is the software analogue of the paper's
//! memory-subsystem tree table (Sec. IV-C), where nodes reference their
//! parent row instead of storing the symbol prefix.
//!
//! Walking the parent chain from a node upward yields its fixed symbols
//! deepest-first — exactly the suffix order `s_{i+1}, s_{i+2}, …` that
//! partial-distance evaluation consumes (see [`crate::pd`]), so expansion
//! never needs the materialized path at all.
//!
//! [`SearchWorkspace`] bundles the arena with every other buffer a search
//! needs (PD scratch, frontier vectors, the best-first heap, sort
//! buffers). Holding one workspace across `detect_prepared_in` calls makes
//! the steady-state search loop allocation-free: after capacity warm-up,
//! decoding touches the allocator only to build the returned `Detection`.

use crate::best_first::OpenNode;
use crate::pd::PdScratch;
use crate::trace::{SearchTelemetry, TraceSink};
use sd_math::Float;
use std::collections::BinaryHeap;

/// Sentinel parent id of the (virtual) root — the empty path.
pub const NIL: u32 = u32::MAX;

/// Append-only pool of search-tree nodes with parent links.
#[derive(Clone, Debug, Default)]
pub struct NodeArena {
    parent: Vec<u32>,
    symbol: Vec<u32>,
    depth: Vec<u32>,
}

impl NodeArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty arena with room for `nodes` nodes before reallocating.
    pub fn with_capacity(nodes: usize) -> Self {
        NodeArena {
            parent: Vec::with_capacity(nodes),
            symbol: Vec::with_capacity(nodes),
            depth: Vec::with_capacity(nodes),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if no node has been allocated.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Drop every node, keeping the slabs' capacity.
    pub fn clear(&mut self) {
        self.parent.clear();
        self.symbol.clear();
        self.depth.clear();
    }

    /// Allocate a child of `parent` (or of the root, with [`NIL`]) fixing
    /// constellation index `symbol`; returns its id.
    pub fn alloc(&mut self, parent: u32, symbol: usize) -> u32 {
        let id = self.parent.len() as u32;
        assert!(id != NIL, "arena exhausted u32 ids");
        let depth = if parent == NIL {
            1
        } else {
            self.depth[parent as usize] + 1
        };
        self.parent.push(parent);
        self.symbol.push(symbol as u32);
        self.depth.push(depth);
        id
    }

    /// Parent id of `id` ([`NIL`] for level-1 nodes).
    #[inline]
    pub fn parent(&self, id: u32) -> u32 {
        self.parent[id as usize]
    }

    /// Constellation index fixed by node `id`.
    #[inline]
    pub fn symbol(&self, id: u32) -> usize {
        self.symbol[id as usize] as usize
    }

    /// Path length of node `id`; [`NIL`] (the empty path) has depth 0.
    #[inline]
    pub fn depth(&self, id: u32) -> usize {
        if id == NIL {
            0
        } else {
            self.depth[id as usize] as usize
        }
    }

    /// Symbols fixed along the path of `id`, deepest-first (the node's own
    /// symbol, then its parent's, …) — the PD suffix order.
    #[inline]
    pub fn ancestry(&self, id: u32) -> Ancestry<'_> {
        Ancestry { arena: self, id }
    }

    /// Materialize the depth-order path of node `id` into `buf`
    /// (`buf[d]` = symbol fixed at tree depth `d`), replacing its
    /// contents. `NIL` yields the empty path.
    pub fn path_into(&self, id: u32, buf: &mut Vec<usize>) {
        buf.clear();
        buf.extend(self.ancestry(id));
        buf.reverse();
    }
}

/// Iterator over a node's fixed symbols, deepest-first.
pub struct Ancestry<'a> {
    arena: &'a NodeArena,
    id: u32,
}

impl Iterator for Ancestry<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.id == NIL {
            return None;
        }
        let sym = self.arena.symbol(self.id);
        self.id = self.arena.parent(self.id);
        Some(sym)
    }
}

/// Every reusable buffer one tree search needs. Create once, pass to
/// `detect_prepared_in` repeatedly; all capacity survives between decodes.
pub struct SearchWorkspace<F: Float> {
    /// Node pool shared by the arena-based searches.
    pub(crate) arena: NodeArena,
    /// Partial-distance evaluation scratch (increments, suffix, GEMM
    /// operands).
    pub(crate) scratch: PdScratch<F>,
    /// Best-first open list.
    pub(crate) heap: BinaryHeap<OpenNode>,
    /// Level-synchronous frontier (BFS), `(pd, node id)`.
    pub(crate) frontier: Vec<(f64, u32)>,
    /// Next-level frontier (BFS).
    pub(crate) next: Vec<(f64, u32)>,
    /// K-best frontier in the working precision.
    pub(crate) frontier_f: Vec<(F, u32)>,
    /// K-best next-level frontier.
    pub(crate) next_f: Vec<(F, u32)>,
    /// Node-id staging buffer handed to `eval_children_batch`.
    pub(crate) ids: Vec<u32>,
    /// Per-subcarrier `ȳ_i` lanes of the current level — fed to
    /// `eval_children_batch_fused` by the fused block decoders.
    pub(crate) ybar_lanes: Vec<sd_math::Complex<F>>,
    /// Path materialization buffer.
    pub(crate) path_buf: Vec<usize>,
    /// DFS current path.
    pub(crate) path: Vec<usize>,
    /// DFS best leaf path.
    pub(crate) best_path: Vec<usize>,
    /// Per-depth `(increment, child)` sort buffers for sorted descent.
    pub(crate) sort_bufs: Vec<Vec<(F, usize)>>,
    /// Optional observability sink; engines emit search events into it
    /// when present and skip every emission when `None`.
    pub(crate) trace: Option<Box<dyn TraceSink>>,
}

impl<F: Float> SearchWorkspace<F> {
    /// Fresh workspace; buffers grow to steady state on first use.
    pub fn new() -> Self {
        SearchWorkspace {
            arena: NodeArena::new(),
            scratch: PdScratch::empty(),
            heap: BinaryHeap::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            frontier_f: Vec::new(),
            next_f: Vec::new(),
            ids: Vec::new(),
            ybar_lanes: Vec::new(),
            path_buf: Vec::new(),
            path: Vec::new(),
            best_path: Vec::new(),
            sort_bufs: Vec::new(),
            trace: None,
        }
    }

    /// Install a [`TraceSink`]; every subsequent decode through this
    /// workspace emits its search events into it. Returns the previously
    /// installed sink, if any.
    pub fn install_trace(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.trace.replace(sink)
    }

    /// Convenience: install a fresh [`SearchTelemetry`] recorder
    /// (retrievable through [`SearchWorkspace::telemetry`]).
    pub fn install_telemetry(&mut self) {
        self.install_trace(Box::new(SearchTelemetry::new()));
    }

    /// Remove and return the installed sink (tracing is disabled again).
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Whether a sink is installed (decodes will emit events).
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The installed sink, when it is a [`SearchTelemetry`] recorder —
    /// the post-decode read path for per-level counters and the phase
    /// profile.
    pub fn telemetry(&self) -> Option<&SearchTelemetry> {
        self.trace
            .as_ref()
            .and_then(|t| t.as_any().downcast_ref::<SearchTelemetry>())
    }

    /// Size the per-problem buffers for branching factor `order` and tree
    /// depth `n_tx`, allocating only on growth.
    pub(crate) fn prepare(&mut self, order: usize, n_tx: usize) {
        self.scratch.ensure(order, n_tx);
        if self.sort_bufs.len() < n_tx {
            self.sort_bufs.resize_with(n_tx, Vec::new);
        }
        self.arena.clear();
        self.heap.clear();
        self.frontier.clear();
        self.next.clear();
        self.frontier_f.clear();
        self.next_f.clear();
        self.ids.clear();
        self.ybar_lanes.clear();
        self.path_buf.clear();
        self.path.clear();
        self.best_path.clear();
    }
}

impl<F: Float> Default for SearchWorkspace<F> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_links_and_depths() {
        let mut a = NodeArena::new();
        let n1 = a.alloc(NIL, 3);
        let n2 = a.alloc(n1, 1);
        let n3 = a.alloc(n2, 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.depth(NIL), 0);
        assert_eq!(a.depth(n1), 1);
        assert_eq!(a.depth(n3), 3);
        assert_eq!(a.parent(n3), n2);
        assert_eq!(a.symbol(n1), 3);
    }

    #[test]
    fn ancestry_is_deepest_first() {
        let mut a = NodeArena::new();
        let n1 = a.alloc(NIL, 7);
        let n2 = a.alloc(n1, 5);
        let n3 = a.alloc(n2, 9);
        let suffix: Vec<usize> = a.ancestry(n3).collect();
        assert_eq!(suffix, vec![9, 5, 7]);
        assert_eq!(a.ancestry(NIL).count(), 0);
    }

    #[test]
    fn path_into_is_depth_order() {
        let mut a = NodeArena::new();
        let n1 = a.alloc(NIL, 7);
        let n2 = a.alloc(n1, 5);
        let n3 = a.alloc(n2, 9);
        let mut buf = vec![99; 8];
        a.path_into(n3, &mut buf);
        assert_eq!(buf, vec![7, 5, 9]);
        a.path_into(NIL, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut a = NodeArena::with_capacity(64);
        for _ in 0..50 {
            a.alloc(NIL, 0);
        }
        let cap = a.parent.capacity();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.parent.capacity(), cap);
    }

    #[test]
    fn siblings_can_fan_out_from_one_parent() {
        // The slab never moves earlier nodes: ids allocated before a
        // fan-out stay valid afterwards.
        let mut a = NodeArena::new();
        let p = a.alloc(NIL, 2);
        let kids: Vec<u32> = (0..16).map(|c| a.alloc(p, c)).collect();
        for (c, &k) in kids.iter().enumerate() {
            assert_eq!(a.parent(k), p);
            assert_eq!(a.symbol(k), c);
            assert_eq!(a.depth(k), 2);
        }
    }
}
