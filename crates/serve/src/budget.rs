//! Running cost model feeding the degradation ladder.
//!
//! Exact sphere decoding has SNR-dependent cost (the paper's Fig. 6–10:
//! low SNR explores orders of magnitude more nodes), so a deadline
//! decision needs a *per-SNR* estimate. The model keeps, per registered
//! tier, an EWMA of nodes-generated per SNR bucket (4 dB wide) plus a
//! tier-level EWMA of service nanoseconds, and a single shared EWMA of
//! nanoseconds-per-node fed by every tree-search decode. How a tier's
//! cost is predicted is declared by its [`TierCostClass`]:
//!
//! * [`TierCostClass::Adaptive`] — `nodes[bucket] × ns_per_node`
//!   (SNR-dependent tree searches, e.g. the exact decoder);
//! * [`TierCostClass::Fixed`] — `analytic_nodes(m, p) × ns_per_node`
//!   (workloads fixed by construction, e.g. a K-best sweep);
//! * [`TierCostClass::Linear`] — the tier's flat service-time EWMA
//!   (the linear detectors, whose cost has no tree at all).
//!
//! Unsampled cells predict zero — the model is optimistic until it has
//! evidence, so a cold runtime starts at the most accurate tier and only
//! degrades once observations justify it. All cells are `f64`
//! bit-patterns in atomics: readers never lock, writers CAS.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

pub use sd_core::WorkerBudget;

/// Policy of the adaptive core-budget controller (see
/// [`crate::runtime::ServeConfig::with_core_budget`]).
///
/// The controller watches the summed shard backlog (an EWMA, smoothed by
/// `alpha`) normalized by the worker count — "queued items per worker" —
/// and splits the physical `cores` allowance between the two parallelism
/// levels:
///
/// * load ≤ `low_watermark` → **latency plan**: the request-level workers
///   are mostly idle, so the subtree-parallel exact decoder gets the whole
///   allowance (`budget = cores`) and each decode finishes sooner;
/// * load ≥ `high_watermark` → **throughput plan**: the backlog needs many
///   independent decodes in flight, so the broadcast pool is narrowed to
///   `max(1, cores / n_workers)` lanes and the cores go to the workers;
/// * in between → hold the current plan (hysteresis — the gap between the
///   watermarks is the dead band that stops the budget from flapping on a
///   load level that hovers near one threshold).
#[derive(Clone, Debug)]
pub struct CoreBudgetPolicy {
    /// Physical core allowance being split (defaults to
    /// [`crate::runtime::default_core_allowance`]).
    pub cores: usize,
    /// Re-planning cadence — deliberately slow next to the decode rate, so
    /// plans settle between changes.
    pub period: Duration,
    /// EWMA load (queued items per worker) at or below which the
    /// controller plans for latency.
    pub low_watermark: f64,
    /// EWMA load at or above which the controller plans for throughput.
    pub high_watermark: f64,
    /// EWMA smoothing factor for the observed backlog.
    pub alpha: f64,
}

impl Default for CoreBudgetPolicy {
    fn default() -> Self {
        CoreBudgetPolicy {
            cores: crate::runtime::default_core_allowance(),
            period: Duration::from_millis(100),
            low_watermark: 0.5,
            high_watermark: 2.0,
            alpha: 0.3,
        }
    }
}

/// 4 dB-wide SNR buckets covering 0–28 dB (clamped outside).
const N_SNR_BUCKETS: usize = 8;
const BUCKET_WIDTH_DB: f64 = 4.0;
/// Channel-conditioning buckets over the [`sd_core::ChannelObservables`]
/// condition proxy (`log2` of the per-stream gain spread): near-unitary,
/// mild, skewed, near-singular. Coarse on purpose — each (SNR, condition)
/// cell must still see enough traffic to train.
const N_COND_BUCKETS: usize = 4;
/// Upper edges of the first `N_COND_BUCKETS − 1` condition buckets; the
/// last bucket is open-ended.
const COND_EDGES_LOG2: [f64; N_COND_BUCKETS - 1] = [1.0, 2.5, 5.0];
/// EWMA smoothing factor.
const ALPHA: f64 = 0.2;
/// Bit pattern marking an EWMA cell that has never been written (a quiet
/// NaN). A *value* sentinel like `0.0` is wrong here: a legitimate 0-ns
/// observation (coarse clocks, sub-tick decodes) would leave the cell
/// looking unsampled and re-adopt every next sample forever.
const UNSAMPLED: u64 = 0x7FF8_0000_0000_0000;

/// SNR bucket index. Total: every `f64` maps somewhere. Non-finite SNR
/// maps to bucket 0 like any very low SNR — but it can only be *read*
/// there: request construction rejects non-finite SNR and
/// [`CostModel::observe_with`] refuses to train on it, so the low-SNR
/// curve cannot be poisoned through this path.
fn bucket(snr_db: f64) -> usize {
    if snr_db.is_nan() {
        return 0;
    }
    ((snr_db / BUCKET_WIDTH_DB)
        .floor()
        .clamp(0.0, (N_SNR_BUCKETS - 1) as f64)) as usize
}

/// Condition bucket index from the `log2` condition proxy (see
/// [`sd_core::ChannelObservables::condition_log2`]). Total: non-finite
/// maps to the worst (near-singular) bucket.
fn cond_bucket(condition_log2: f64) -> usize {
    if !condition_log2.is_finite() {
        return N_COND_BUCKETS - 1;
    }
    COND_EDGES_LOG2
        .iter()
        .position(|&edge| condition_log2 < edge)
        .unwrap_or(N_COND_BUCKETS - 1)
}

/// Read an EWMA cell as a prediction input: unsampled (NaN sentinel)
/// reads as 0 so the model stays optimistic until it has evidence.
fn load_sample(cell: &AtomicU64) -> f64 {
    let v = f64::from_bits(cell.load(Ordering::Relaxed));
    if v.is_nan() {
        0.0
    } else {
        v
    }
}

/// `true` when the cell has at least one sample.
fn is_sampled(cell: &AtomicU64) -> bool {
    !f64::from_bits(cell.load(Ordering::Relaxed)).is_nan()
}

/// EWMA update via CAS; an unsampled cell (NaN sentinel, *not* `0.0` —
/// zero is a legitimate observation) adopts the first sample. Non-finite
/// samples are discarded so no observation stream can poison a cell.
fn ewma_update(cell: &AtomicU64, x: f64) {
    if !x.is_finite() {
        return;
    }
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let old = f64::from_bits(cur);
        let new = if old.is_nan() {
            x
        } else {
            old + ALPHA * (x - old)
        };
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// How a registered tier's decode cost is modeled and predicted.
pub enum TierCostClass {
    /// SNR-dependent tree search: a per-SNR-bucket EWMA node curve times
    /// the shared ns-per-node rate. Observations feed both.
    Adaptive,
    /// Workload fixed by construction: an analytic node count (a function
    /// of antennas `m` and constellation order `p`) times the shared
    /// ns-per-node rate. Observations feed only the node rate — a fixed
    /// workload would bias the adaptive curves.
    Fixed(Box<dyn Fn(usize, usize) -> u64 + Send + Sync>),
    /// No tree: predicted cost is the tier's own flat service-time EWMA.
    Linear,
}

impl TierCostClass {
    /// The [`TierCostClass::Fixed`] class of a width-`k` K-best sweep.
    pub fn fixed_kbest(k: usize) -> Self {
        TierCostClass::Fixed(Box::new(move |m, p| kbest_nodes(m, p, k)))
    }

    /// The [`TierCostClass::Fixed`] class of an FSD sweep with `n_fe`
    /// full-expansion levels.
    pub fn fixed_fsd(n_fe: usize) -> Self {
        TierCostClass::Fixed(Box::new(move |m, p| fsd_nodes(m, p, n_fe)))
    }
}

impl std::fmt::Debug for TierCostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TierCostClass::Adaptive => "Adaptive",
            TierCostClass::Fixed(_) => "Fixed(..)",
            TierCostClass::Linear => "Linear",
        })
    }
}

/// Per-tier model cells.
struct TierCost {
    /// EWMA of nodes generated, per SNR bucket (f64 bits); only fed by
    /// [`TierCostClass::Adaptive`] tiers. The marginal curve — trained by
    /// every adaptive observation regardless of channel conditioning.
    nodes: [AtomicU64; N_SNR_BUCKETS],
    /// Condition-resolved node curve: `N_SNR_BUCKETS × N_COND_BUCKETS`
    /// cells (SNR-major), fed only by observations that carried a channel
    /// condition observable. Predictions prefer a sampled conditioned
    /// cell and fall back to the SNR marginal — the Dabah trade-off: an
    /// ill-conditioned channel at a given SNR costs orders of magnitude
    /// more nodes than a well-conditioned one.
    cond_nodes: [AtomicU64; N_SNR_BUCKETS * N_COND_BUCKETS],
    /// EWMA of this tier's service nanoseconds (f64 bits); prediction
    /// input for [`TierCostClass::Linear`], informational otherwise.
    service_ns: AtomicU64,
}

/// Shared, lock-free cost model over the registered tiers.
pub struct CostModel {
    tiers: Vec<TierCost>,
    /// EWMA of decode nanoseconds per generated node (f64 bits), fed by
    /// every tree-search decode regardless of tier.
    ns_per_node: AtomicU64,
    /// Tier-blind EWMA of per-vector service nanoseconds (f64 bits), fed
    /// by every observation regardless of class. This is the runtime's
    /// drain-rate estimate: under a degradation ladder the served mix is
    /// bimodal (exact decodes vs floor-tier microseconds), and the EWMA
    /// of the *mix* — not any one tier's curve — is what predicts how
    /// fast a backlog in front of a new request will clear.
    mean_service_ns: AtomicU64,
}

impl CostModel {
    /// Fresh (fully optimistic) model for `n_tiers` registered tiers.
    pub fn new(n_tiers: usize) -> Self {
        CostModel {
            tiers: (0..n_tiers)
                .map(|_| TierCost {
                    nodes: std::array::from_fn(|_| AtomicU64::new(UNSAMPLED)),
                    cond_nodes: std::array::from_fn(|_| AtomicU64::new(UNSAMPLED)),
                    service_ns: AtomicU64::new(UNSAMPLED),
                })
                .collect(),
            ns_per_node: AtomicU64::new(UNSAMPLED),
            mean_service_ns: AtomicU64::new(UNSAMPLED),
        }
    }

    /// Record one served decode at tier `tier` with cost class `class`.
    /// Tree tiers (`nodes_generated > 0` required) feed the shared node
    /// rate, adaptive tiers additionally feed their per-SNR node curve,
    /// and every tier feeds its own service-time EWMA. Equivalent to
    /// [`CostModel::observe_with`] with no condition observable.
    pub fn observe(
        &self,
        tier: usize,
        class: &TierCostClass,
        snr_db: f64,
        nodes_generated: u64,
        elapsed_ns: u64,
    ) {
        self.observe_with(tier, class, snr_db, None, nodes_generated, elapsed_ns);
    }

    /// [`CostModel::observe`] carrying the channel-conditioning observable
    /// (`condition_log2`, see [`sd_core::ChannelObservables`]): adaptive
    /// observations additionally train the (SNR, condition) cell so later
    /// predictions can separate benign from near-singular channels at the
    /// same SNR. A non-finite `snr_db` trains nothing SNR-keyed — it would
    /// land in bucket 0 and poison the lowest-SNR curve.
    pub fn observe_with(
        &self,
        tier: usize,
        class: &TierCostClass,
        snr_db: f64,
        condition_log2: Option<f64>,
        nodes_generated: u64,
        elapsed_ns: u64,
    ) {
        let cells = &self.tiers[tier];
        ewma_update(&cells.service_ns, elapsed_ns as f64);
        ewma_update(&self.mean_service_ns, elapsed_ns as f64);
        match class {
            TierCostClass::Adaptive | TierCostClass::Fixed(_) => {
                if nodes_generated == 0 {
                    return;
                }
                if matches!(class, TierCostClass::Adaptive) && snr_db.is_finite() {
                    let b = bucket(snr_db);
                    ewma_update(&cells.nodes[b], nodes_generated as f64);
                    if let Some(c) = condition_log2 {
                        ewma_update(
                            &cells.cond_nodes[b * N_COND_BUCKETS + cond_bucket(c)],
                            nodes_generated as f64,
                        );
                    }
                }
                ewma_update(
                    &self.ns_per_node,
                    elapsed_ns as f64 / nodes_generated as f64,
                );
            }
            TierCostClass::Linear => {}
        }
    }

    /// Predicted decode nanoseconds for tier `tier` under `class` at this
    /// operating point; 0 (optimistic) until the relevant cells have
    /// samples. Equivalent to [`CostModel::predict_ns_with`] with no
    /// condition observable.
    pub fn predict_ns(
        &self,
        tier: usize,
        class: &TierCostClass,
        snr_db: f64,
        m: usize,
        p: usize,
    ) -> f64 {
        self.predict_ns_with(tier, class, snr_db, None, m, p)
    }

    /// [`CostModel::predict_ns`] carrying the channel-conditioning
    /// observable: an adaptive tier reads the (SNR, condition) cell when
    /// it has samples, falling back to the SNR marginal otherwise.
    pub fn predict_ns_with(
        &self,
        tier: usize,
        class: &TierCostClass,
        snr_db: f64,
        condition_log2: Option<f64>,
        m: usize,
        p: usize,
    ) -> f64 {
        match class {
            TierCostClass::Adaptive => {
                self.predicted_nodes_with(tier, snr_db, condition_log2) * self.ns_per_node()
            }
            TierCostClass::Fixed(nodes) => nodes(m, p) as f64 * self.ns_per_node(),
            TierCostClass::Linear => self.tier_service_ns(tier),
        }
    }

    /// Expected nodes for an adaptive tier at this SNR (0 when unsampled).
    pub fn predicted_nodes(&self, tier: usize, snr_db: f64) -> f64 {
        load_sample(&self.tiers[tier].nodes[bucket(snr_db)])
    }

    /// Expected nodes for an adaptive tier at this (SNR, condition)
    /// operating point, falling back to the SNR marginal when the
    /// conditioned cell is unsampled or no condition was supplied.
    pub fn predicted_nodes_with(
        &self,
        tier: usize,
        snr_db: f64,
        condition_log2: Option<f64>,
    ) -> f64 {
        let cells = &self.tiers[tier];
        let b = bucket(snr_db);
        if let Some(c) = condition_log2 {
            let cell = &cells.cond_nodes[b * N_COND_BUCKETS + cond_bucket(c)];
            if is_sampled(cell) {
                return load_sample(cell);
            }
        }
        load_sample(&cells.nodes[b])
    }

    /// Current shared ns-per-node estimate (0 when unsampled).
    pub fn ns_per_node(&self) -> f64 {
        load_sample(&self.ns_per_node)
    }

    /// Observed mean service time of tier `tier` in ns (0 when unsampled).
    pub fn tier_service_ns(&self, tier: usize) -> f64 {
        load_sample(&self.tiers[tier].service_ns)
    }

    /// Tier-blind mean per-vector service time in ns (0 when unsampled) —
    /// the drain rate of whatever tier mix this model's shard is serving.
    pub fn mean_service_ns(&self) -> f64 {
        load_sample(&self.mean_service_ns)
    }

    /// Predicted queue wait in front of a newly offered request:
    /// `backlog` already-queued vectors (frames weighted by block size)
    /// drained by `workers` at the observed [`CostModel::mean_service_ns`]
    /// rate. Cold model → 0 (optimistic: admit until there is evidence).
    ///
    /// This is the *coarse*, tier-blind estimate. The runtime's admission
    /// path no longer uses it: each queued item is stamped at submit with
    /// the per-tier prediction for the rung the ladder would run it on,
    /// and the shard sums those stamps — so a backlog of floor-tier
    /// microseconds is no longer priced at the mean of a mix dominated by
    /// exact-tier milliseconds. Kept as the model-level primitive for
    /// callers without per-item stamps.
    pub fn predicted_wait_ns(&self, backlog: u64, workers: usize) -> f64 {
        backlog as f64 * self.mean_service_ns() / workers.max(1) as f64
    }

    /// Number of registered tiers.
    pub fn n_tiers(&self) -> usize {
        self.tiers.len()
    }
}

/// Exact node count of a K-best sweep: the frontier starts at the root,
/// multiplies by `p` each level, and is truncated at `k` survivors.
pub fn kbest_nodes(m: usize, p: usize, k: usize) -> u64 {
    let mut frontier = 1u64;
    let mut total = 0u64;
    for _ in 0..m {
        total += frontier * p as u64;
        frontier = (frontier * p as u64).min(k as u64);
    }
    total
}

/// Exact node count of an FSD sweep with `n_fe` full-expansion levels:
/// the frontier multiplies by `p` across the first `n_fe` levels, then
/// stays flat while each survivor extends by its single best (SIC)
/// child. Every level still *evaluates* `frontier × p` children.
pub fn fsd_nodes(m: usize, p: usize, n_fe: usize) -> u64 {
    let mut frontier = 1u64;
    let mut total = 0u64;
    for d in 0..m {
        total += frontier * p as u64;
        if d < n_fe {
            frontier *= p as u64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_grid() {
        assert_eq!(bucket(-3.0), 0);
        assert_eq!(bucket(0.0), 0);
        assert_eq!(bucket(4.0), 1);
        assert_eq!(bucket(13.9), 3);
        assert_eq!(bucket(40.0), 7);
    }

    #[test]
    fn kbest_node_count_matches_hand_calc() {
        // m=3, p=4, k=8: 4 + 16 + 32 (frontier 1 → 4 → 8 capped).
        assert_eq!(kbest_nodes(3, 4, 8), 52);
        // Uncapped (k huge) is the full tree P + P² + P³.
        assert_eq!(kbest_nodes(3, 4, 1_000_000), 4 + 16 + 64);
    }

    #[test]
    fn fsd_node_count_matches_hand_calc() {
        // m=3, p=4, n_fe=1: level 0 expands 1·4, then the frontier is
        // flat at 4 survivors → 4 + 16 + 16.
        assert_eq!(fsd_nodes(3, 4, 1), 36);
        // n_fe = m degenerates to the full tree.
        assert_eq!(fsd_nodes(3, 4, 3), 4 + 16 + 64);
        // n_fe = 0 is pure SIC: p evaluated per level.
        assert_eq!(fsd_nodes(3, 4, 0), 12);
    }

    #[test]
    fn cold_model_is_optimistic() {
        let m = CostModel::new(3);
        let kb = TierCostClass::fixed_kbest(16);
        assert_eq!(m.predict_ns(0, &TierCostClass::Adaptive, 8.0, 8, 4), 0.0);
        assert_eq!(m.predict_ns(1, &kb, 8.0, 8, 4), 0.0);
        assert_eq!(m.predict_ns(2, &TierCostClass::Linear, 8.0, 8, 4), 0.0);
    }

    #[test]
    fn observations_separate_snr_buckets() {
        let m = CostModel::new(1);
        let exact = TierCostClass::Adaptive;
        // Low SNR: big trees. High SNR: small trees. Same node rate.
        m.observe(0, &exact, 4.0, 10_000, 1_000_000);
        m.observe(0, &exact, 20.0, 100, 10_000);
        assert!(m.predict_ns(0, &exact, 4.0, 8, 4) > 50.0 * m.predict_ns(0, &exact, 20.0, 8, 4));
        assert!((m.ns_per_node() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_converges_toward_new_regime() {
        let m = CostModel::new(1);
        m.observe(0, &TierCostClass::Adaptive, 8.0, 1_000, 100_000);
        for _ in 0..50 {
            m.observe(0, &TierCostClass::Adaptive, 8.0, 3_000, 300_000);
        }
        let nodes = m.predicted_nodes(0, 8.0);
        assert!(nodes > 2_900.0 && nodes <= 3_000.0, "nodes = {nodes}");
    }

    #[test]
    fn fixed_observation_does_not_bias_adaptive_curve() {
        let m = CostModel::new(2);
        let kb = TierCostClass::fixed_kbest(8);
        m.observe(1, &kb, 8.0, 500, 50_000);
        assert_eq!(m.predicted_nodes(0, 8.0), 0.0, "exact curve untouched");
        assert_eq!(m.predicted_nodes(1, 8.0), 0.0, "only node rate learned");
        assert!(m.ns_per_node() > 0.0);
    }

    #[test]
    fn predicted_wait_is_cold_optimistic_and_scales_with_backlog() {
        let m = CostModel::new(2);
        // Cold: no drain-rate evidence, admit everything.
        assert_eq!(m.mean_service_ns(), 0.0);
        assert_eq!(m.predicted_wait_ns(1_000, 1), 0.0);
        // Every observation feeds the tier-blind mean, whatever the class.
        m.observe(0, &TierCostClass::Adaptive, 8.0, 100, 10_000);
        m.observe(1, &TierCostClass::Linear, 8.0, 0, 10_000);
        assert_eq!(m.mean_service_ns(), 10_000.0);
        assert_eq!(m.predicted_wait_ns(10, 1), 100_000.0);
        // More workers drain the same backlog proportionally faster; a
        // zero worker count must not divide by zero.
        assert_eq!(m.predicted_wait_ns(10, 2), 50_000.0);
        assert_eq!(m.predicted_wait_ns(10, 0), 100_000.0);
        assert_eq!(m.predicted_wait_ns(0, 1), 0.0);
    }

    #[test]
    fn linear_tier_predicts_its_own_service_time() {
        let m = CostModel::new(1);
        let lin = TierCostClass::Linear;
        m.observe(0, &lin, 8.0, 0, 40_000);
        assert_eq!(m.tier_service_ns(0), 40_000.0);
        assert_eq!(m.predict_ns(0, &lin, 8.0, 8, 4), 40_000.0);
        assert_eq!(m.ns_per_node(), 0.0, "no tree, no node rate");
    }

    /// Regression: a legitimate 0-ns observation (coarse clock, sub-tick
    /// decode) is a *sample*, not "unsampled". With the old `old == 0.0`
    /// sentinel the second observation re-adopted wholesale (predicting
    /// 50 000 here) instead of blending through the EWMA.
    #[test]
    fn zero_valued_observation_is_a_real_sample() {
        let m = CostModel::new(1);
        let lin = TierCostClass::Linear;
        m.observe(0, &lin, 8.0, 0, 0);
        m.observe(0, &lin, 8.0, 0, 50_000);
        let got = m.tier_service_ns(0);
        let want = ALPHA * 50_000.0;
        assert!(
            (got - want).abs() < 1e-9,
            "0-ns sample must seed the EWMA (want {want}, got {got})"
        );
    }

    /// Non-finite samples must bounce off a cell without corrupting it.
    #[test]
    fn non_finite_samples_are_discarded() {
        let cell = AtomicU64::new(UNSAMPLED);
        ewma_update(&cell, f64::NAN);
        ewma_update(&cell, f64::INFINITY);
        assert!(!is_sampled(&cell), "garbage must not count as a sample");
        ewma_update(&cell, 7.0);
        ewma_update(&cell, f64::NEG_INFINITY);
        assert_eq!(load_sample(&cell), 7.0, "garbage must not move a sample");
    }

    /// Regression: `bucket` is total (NaN → 0 without UB-adjacent casts),
    /// and a NaN-SNR observation must not train the lowest-SNR curve —
    /// before the guard it landed in bucket 0 and poisoned it.
    #[test]
    fn nan_snr_cannot_poison_the_low_snr_curve() {
        assert_eq!(bucket(f64::NAN), 0);
        assert_eq!(bucket(f64::INFINITY), N_SNR_BUCKETS - 1);
        assert_eq!(bucket(f64::NEG_INFINITY), 0);
        let m = CostModel::new(1);
        m.observe(0, &TierCostClass::Adaptive, f64::NAN, 1_000_000, 1_000);
        assert_eq!(
            m.predicted_nodes(0, 0.0),
            0.0,
            "NaN-SNR observation must not write any SNR bucket"
        );
        assert!(m.ns_per_node() > 0.0, "the node rate is still SNR-free");
    }

    #[test]
    fn condition_buckets_cover_the_proxy_range() {
        assert_eq!(cond_bucket(0.0), 0);
        assert_eq!(cond_bucket(0.99), 0);
        assert_eq!(cond_bucket(1.0), 1);
        assert_eq!(cond_bucket(3.0), 2);
        assert_eq!(cond_bucket(60.0), N_COND_BUCKETS - 1);
        assert_eq!(cond_bucket(f64::NAN), N_COND_BUCKETS - 1);
        assert_eq!(cond_bucket(f64::INFINITY), N_COND_BUCKETS - 1);
    }

    /// The conditioned curve separates channel quality at one SNR, and
    /// prediction falls back to the SNR marginal when the (SNR, condition)
    /// cell is cold.
    #[test]
    fn conditioned_cells_separate_channel_quality() {
        let m = CostModel::new(1);
        let exact = TierCostClass::Adaptive;
        // Same SNR, two channel regimes: benign vs near-singular.
        m.observe_with(0, &exact, 8.0, Some(0.5), 200, 20_000);
        m.observe_with(0, &exact, 8.0, Some(6.0), 20_000, 2_000_000);
        let benign = m.predicted_nodes_with(0, 8.0, Some(0.5));
        let skewed = m.predicted_nodes_with(0, 8.0, Some(6.0));
        assert!(
            skewed > 50.0 * benign,
            "conditioning must separate: benign {benign}, skewed {skewed}"
        );
        // A cold conditioned cell falls back to the SNR marginal, which
        // blends both regimes.
        let marginal = m.predicted_nodes(0, 8.0);
        assert_eq!(m.predicted_nodes_with(0, 8.0, Some(2.0)), marginal);
        assert_eq!(m.predicted_nodes_with(0, 8.0, None), marginal);
    }
}
