//! Running cost model feeding the degradation ladder.
//!
//! Exact sphere decoding has SNR-dependent cost (the paper's Fig. 6–10:
//! low SNR explores orders of magnitude more nodes), so a deadline
//! decision needs a *per-SNR* estimate. The model keeps an EWMA of
//! nodes-generated per SNR bucket (4 dB wide) plus a global EWMA of
//! nanoseconds-per-node, both fed by every served request's
//! [`sd_core::DetectionStats`]. Predicted exact cost is
//! `nodes[bucket] × ns_per_node`; K-best cost uses the *analytic* node
//! count of a width-`K` sweep (its workload is SNR-independent by
//! construction) times the same ns-per-node.
//!
//! Unsampled buckets predict zero — the model is optimistic until it has
//! evidence, so a cold runtime starts at the exact tier and only degrades
//! once observations justify it. All cells are `f64` bit-patterns in
//! atomics: readers never lock, writers CAS.

use std::sync::atomic::{AtomicU64, Ordering};

/// 4 dB-wide SNR buckets covering 0–28 dB (clamped outside).
const N_SNR_BUCKETS: usize = 8;
const BUCKET_WIDTH_DB: f64 = 4.0;
/// EWMA smoothing factor.
const ALPHA: f64 = 0.2;

fn bucket(snr_db: f64) -> usize {
    ((snr_db / BUCKET_WIDTH_DB)
        .floor()
        .clamp(0.0, (N_SNR_BUCKETS - 1) as f64)) as usize
}

fn load_f64(cell: &AtomicU64) -> f64 {
    f64::from_bits(cell.load(Ordering::Relaxed))
}

/// EWMA update via CAS; a zero cell (unsampled) adopts the first sample.
fn ewma_update(cell: &AtomicU64, x: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let old = f64::from_bits(cur);
        let new = if old == 0.0 {
            x
        } else {
            old + ALPHA * (x - old)
        };
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Shared, lock-free cost model.
pub struct CostModel {
    /// EWMA of exact-SD nodes generated, per SNR bucket (f64 bits).
    nodes: [AtomicU64; N_SNR_BUCKETS],
    /// EWMA of decode nanoseconds per generated node (f64 bits), fed by
    /// every tree-search decode regardless of tier.
    ns_per_node: AtomicU64,
    /// EWMA of MMSE service nanoseconds (f64 bits, informational).
    mmse_ns: AtomicU64,
}

impl CostModel {
    /// Fresh (fully optimistic) model.
    pub fn new() -> Self {
        CostModel {
            nodes: std::array::from_fn(|_| AtomicU64::new(0)),
            ns_per_node: AtomicU64::new(0),
            mmse_ns: AtomicU64::new(0),
        }
    }

    /// Record one tree-search decode. `exact` selects whether the node
    /// count also updates the per-SNR exact-cost curve (K-best workloads
    /// are fixed by construction and would bias it).
    pub fn observe_tree(&self, snr_db: f64, nodes_generated: u64, elapsed_ns: u64, exact: bool) {
        if nodes_generated == 0 {
            return;
        }
        if exact {
            ewma_update(&self.nodes[bucket(snr_db)], nodes_generated as f64);
        }
        ewma_update(
            &self.ns_per_node,
            elapsed_ns as f64 / nodes_generated as f64,
        );
    }

    /// Record one MMSE decode.
    pub fn observe_mmse(&self, elapsed_ns: u64) {
        ewma_update(&self.mmse_ns, elapsed_ns as f64);
    }

    /// Expected exact-SD nodes at this SNR (0 when unsampled).
    pub fn predicted_nodes(&self, snr_db: f64) -> f64 {
        load_f64(&self.nodes[bucket(snr_db)])
    }

    /// Current ns-per-node estimate (0 when unsampled).
    pub fn ns_per_node(&self) -> f64 {
        load_f64(&self.ns_per_node)
    }

    /// Observed mean MMSE service time in ns (0 when unsampled).
    pub fn mmse_ns(&self) -> f64 {
        load_f64(&self.mmse_ns)
    }

    /// Predicted exact-SD decode nanoseconds at this SNR; 0 (optimistic)
    /// until both the node curve and the node rate have samples.
    pub fn predict_exact_ns(&self, snr_db: f64) -> f64 {
        self.predicted_nodes(snr_db) * self.ns_per_node()
    }

    /// Predicted K-best decode nanoseconds for an `m`-antenna, order-`p`,
    /// width-`k` sweep (analytic node count, observed node rate).
    pub fn predict_kbest_ns(&self, m: usize, p: usize, k: usize) -> f64 {
        kbest_nodes(m, p, k) as f64 * self.ns_per_node()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Exact node count of a K-best sweep: the frontier starts at the root,
/// multiplies by `p` each level, and is truncated at `k` survivors.
pub fn kbest_nodes(m: usize, p: usize, k: usize) -> u64 {
    let mut frontier = 1u64;
    let mut total = 0u64;
    for _ in 0..m {
        total += frontier * p as u64;
        frontier = (frontier * p as u64).min(k as u64);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_grid() {
        assert_eq!(bucket(-3.0), 0);
        assert_eq!(bucket(0.0), 0);
        assert_eq!(bucket(4.0), 1);
        assert_eq!(bucket(13.9), 3);
        assert_eq!(bucket(40.0), 7);
    }

    #[test]
    fn kbest_node_count_matches_hand_calc() {
        // m=3, p=4, k=8: 4 + 16 + 32 (frontier 1 → 4 → 8 capped).
        assert_eq!(kbest_nodes(3, 4, 8), 52);
        // Uncapped (k huge) is the full tree P + P² + P³.
        assert_eq!(kbest_nodes(3, 4, 1_000_000), 4 + 16 + 64);
    }

    #[test]
    fn cold_model_is_optimistic() {
        let m = CostModel::new();
        assert_eq!(m.predict_exact_ns(8.0), 0.0);
        assert_eq!(m.predict_kbest_ns(8, 4, 16), 0.0);
    }

    #[test]
    fn observations_separate_snr_buckets() {
        let m = CostModel::new();
        // Low SNR: big trees. High SNR: small trees. Same node rate.
        m.observe_tree(4.0, 10_000, 1_000_000, true);
        m.observe_tree(20.0, 100, 10_000, true);
        assert!(m.predict_exact_ns(4.0) > 50.0 * m.predict_exact_ns(20.0));
        assert!((m.ns_per_node() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_converges_toward_new_regime() {
        let m = CostModel::new();
        m.observe_tree(8.0, 1_000, 100_000, true);
        for _ in 0..50 {
            m.observe_tree(8.0, 3_000, 300_000, true);
        }
        let nodes = m.predicted_nodes(8.0);
        assert!(nodes > 2_900.0 && nodes <= 3_000.0, "nodes = {nodes}");
    }

    #[test]
    fn kbest_observation_does_not_bias_exact_curve() {
        let m = CostModel::new();
        m.observe_tree(8.0, 500, 50_000, false);
        assert_eq!(m.predicted_nodes(8.0), 0.0, "only node rate learned");
        assert!(m.ns_per_node() > 0.0);
    }
}
