//! Channel-coherent prepared-state cache.
//!
//! In a coherence block the channel matrix `H` is estimated once and then
//! shared by every symbol vector until the next estimate — so consecutive
//! detection requests overwhelmingly repeat the same `H` with fresh `y`.
//! The QR factorization is the expensive, `y`-independent half of the
//! preprocessing ([`sd_core::prepare_channel_into`]); this cache keys that
//! half by `(tier, H-bits)` so a worker factors each channel once per
//! coherence block and replays `ȳ = Qᴴy` per request — the paper's
//! amortize-preprocessing-across-shared-`H` argument applied to serving.
//!
//! The cache is **per shard** (one short-lived lock per lookup, shared
//! only by that shard's workers — channel-affinity routing sends every
//! repeat of an `H` to one shard, so the coherent hits it exists for all
//! land in one cache) and **bounded**: eviction replaces the
//! least-recently-used entry in place, reusing its buffers, so a warm
//! cache serves hits *and* misses without heap allocation. Lookups
//! compare the full `H` bit pattern after the hash, so a hash collision
//! can never decode against the wrong channel, and a hit is bit-identical
//! to an uncached preparation by the factor/apply split contract of
//! [`sd_core::ChannelPrep`].

use sd_core::{
    prepare_channel_into, prepare_with_channel_into, ChannelPrep, ColumnOrdering, PrepScratch,
    Prepared,
};
use sd_math::Matrix;
use sd_wireless::{Constellation, FrameData};

/// One cached channel factorization.
struct Entry {
    tier: usize,
    hash: u64,
    /// Exact-bits copy of the keyed channel matrix (collision guard).
    h: Matrix<f64>,
    chan: ChannelPrep<f64>,
    /// Last-use stamp for LRU eviction.
    stamp: u64,
}

/// Per-worker bounded LRU cache of channel factorizations.
pub struct PrepCache {
    capacity: usize,
    entries: Vec<Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// FNV-1a-style xor-multiply over the bit patterns of `H` plus the tier
/// index, mixing one 64-bit word per step (a byte-at-a-time FNV costs 8
/// serial multiplies per element — more than the QR a hit saves at small
/// `M`). Any decent 64-bit mix works here — the full `H` comparison
/// catches collisions.
fn channel_hash(tier: usize, h: &Matrix<f64>) -> u64 {
    mix_channel(0xcbf29ce484222325u64.wrapping_add(tier as u64), h)
}

/// Channel-affinity routing hash: the same wordwise mix over `H` alone
/// (no tier term), so the sharded runtime sends *every* tier's requests
/// for one channel — per-vector and frame alike — to one shard via
/// `route_hash(h) % n_shards`, concentrating that channel's cache hits.
pub fn route_hash(h: &Matrix<f64>) -> u64 {
    mix_channel(0xcbf29ce484222325, h)
}

fn mix_channel(offset: u64, h: &Matrix<f64>) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut acc = offset;
    let mut mix = |v: u64| {
        acc ^= v;
        acc = acc.wrapping_mul(PRIME);
    };
    let (n, m) = h.shape();
    mix(n as u64);
    mix(m as u64);
    for c in h.as_slice() {
        mix(c.re.to_bits());
        mix(c.im.to_bits());
    }
    acc
}

fn same_h(a: &Matrix<f64>, b: &Matrix<f64>) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

impl PrepCache {
    /// Cache holding up to `capacity` channel factorizations
    /// (0 disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        PrepCache {
            capacity,
            entries: Vec::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of cached factorizations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of factorizations currently cached (≤ capacity, always).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses (entries factored) since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Prepare `frame` for decoding at `tier`, through the cache: reuse
    /// the tier's factorization of this exact `H` when present, factor
    /// (and cache, evicting the LRU entry in place if full) when not.
    /// Returns `true` on a hit. The written `prep` is bit-identical to
    /// `preprocess_ordered_into(frame, …, ordering, …)` either way.
    ///
    /// Panics if the cache was built with capacity 0 — callers gate on
    /// [`PrepCache::capacity`] and take the uncached path instead.
    pub fn prepare(
        &mut self,
        tier: usize,
        frame: &FrameData,
        ordering: ColumnOrdering,
        constellation: &Constellation,
        scratch: &mut PrepScratch<f64>,
        prep: &mut Prepared<f64>,
    ) -> bool {
        assert!(self.capacity > 0, "capacity-0 cache cannot prepare");
        self.clock += 1;
        let hash = channel_hash(tier, &frame.h);
        let slot = self
            .entries
            .iter()
            .position(|e| e.tier == tier && e.hash == hash && same_h(&e.h, &frame.h));
        let hit = slot.is_some();
        let slot = match slot {
            Some(i) => i,
            None => {
                self.misses += 1;
                let i = if self.entries.len() < self.capacity {
                    self.entries.push(Entry {
                        tier,
                        hash,
                        h: Matrix::zeros(0, 0),
                        chan: ChannelPrep::new(),
                        stamp: 0,
                    });
                    self.entries.len() - 1
                } else {
                    // Evict the least recently used entry in place; its
                    // Matrix / ChannelPrep buffers are reused below.
                    self.entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.stamp)
                        .map(|(i, _)| i)
                        .unwrap()
                };
                let e = &mut self.entries[i];
                e.tier = tier;
                e.hash = hash;
                let (n, m) = frame.h.shape();
                e.h.resize_for_overwrite(n, m);
                e.h.as_mut_slice().copy_from_slice(frame.h.as_slice());
                prepare_channel_into(frame, ordering, scratch, &mut e.chan);
                i
            }
        };
        if hit {
            self.hits += 1;
        }
        let e = &mut self.entries[slot];
        e.stamp = self.clock;
        prepare_with_channel_into(frame, constellation, scratch, &mut e.chan, prep);
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_core::preprocess_ordered_into;
    use sd_wireless::Modulation;

    fn setup(seed: u64) -> (Constellation, FrameData) {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = FrameData::generate(4, 4, &c, 0.1, &mut rng);
        (c, f)
    }

    #[test]
    fn cached_preparation_is_bit_identical_to_uncached() {
        let (c, f) = setup(1);
        let mut cache = PrepCache::new(4);
        let mut scratch = PrepScratch::new();
        let mut cached = Prepared::empty();
        let mut fresh = Prepared::empty();
        let mut rng = StdRng::seed_from_u64(2);
        for round in 0..3 {
            // Same H, new y each round: miss then hits.
            let mut fy = f.clone();
            fy.y = FrameData::generate(4, 4, &c, 0.1, &mut rng).y;
            let hit = cache.prepare(
                0,
                &fy,
                ColumnOrdering::Natural,
                &c,
                &mut scratch,
                &mut cached,
            );
            assert_eq!(hit, round > 0);
            preprocess_ordered_into(&fy, &c, ColumnOrdering::Natural, &mut scratch, &mut fresh);
            assert_eq!(fresh.r, cached.r);
            assert_eq!(fresh.ybar, cached.ybar);
            assert_eq!(fresh.tail_energy.to_bits(), cached.tail_energy.to_bits());
            assert_eq!(fresh.perm, cached.perm);
            assert_eq!(fresh.row_blocks, cached.row_blocks);
            assert_eq!(fresh.prep_flops, cached.prep_flops, "hits charge QR flops");
        }
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
    }

    #[test]
    fn distinct_tiers_do_not_share_entries() {
        let (c, f) = setup(3);
        let mut cache = PrepCache::new(4);
        let mut scratch = PrepScratch::new();
        let mut prep = Prepared::empty();
        assert!(!cache.prepare(0, &f, ColumnOrdering::Natural, &c, &mut scratch, &mut prep));
        assert!(!cache.prepare(1, &f, ColumnOrdering::Natural, &c, &mut scratch, &mut prep));
        assert!(cache.prepare(0, &f, ColumnOrdering::Natural, &c, &mut scratch, &mut prep));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_is_bounded_and_lru() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(4);
        let frames: Vec<FrameData> = (0..5)
            .map(|_| FrameData::generate(4, 4, &c, 0.1, &mut rng))
            .collect();
        let mut cache = PrepCache::new(2);
        let mut scratch = PrepScratch::new();
        let mut prep = Prepared::empty();
        let mut go = |cache: &mut PrepCache, i: usize| {
            cache.prepare(
                0,
                &frames[i],
                ColumnOrdering::Natural,
                &c,
                &mut scratch,
                &mut prep,
            )
        };
        assert!(!go(&mut cache, 0)); // miss, cache {0}
        assert!(!go(&mut cache, 1)); // miss, cache {0,1}
        assert_eq!(cache.len(), 2);
        assert!(go(&mut cache, 0)); // hit, 1 becomes LRU
        assert!(!go(&mut cache, 2)); // miss, evicts 1 -> {0,2}
        assert_eq!(cache.len(), 2, "bounded at capacity");
        assert!(go(&mut cache, 0), "0 survived eviction");
        assert!(!go(&mut cache, 1), "1 was evicted");
    }

    #[test]
    fn random_channel_stream_stays_bounded() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut cache = PrepCache::new(3);
        let mut scratch = PrepScratch::new();
        let mut prep = Prepared::empty();
        for _ in 0..50 {
            let f = FrameData::generate(4, 4, &c, 0.1, &mut rng);
            cache.prepare(0, &f, ColumnOrdering::Natural, &c, &mut scratch, &mut prep);
            assert!(cache.len() <= 3);
        }
        assert_eq!(cache.misses(), 50, "i.i.d. channels never repeat");
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn hash_differs_across_tiers_and_channels() {
        let (_, f) = setup(6);
        let (_, g) = setup(7);
        assert_ne!(channel_hash(0, &f.h), channel_hash(1, &f.h));
        assert_ne!(channel_hash(0, &f.h), channel_hash(0, &g.h));
        assert_eq!(channel_hash(0, &f.h), channel_hash(0, &f.h));
    }

    #[test]
    fn route_hash_is_stable_and_channel_sensitive() {
        let (_, f) = setup(9);
        let (_, g) = setup(10);
        assert_eq!(route_hash(&f.h), route_hash(&f.h), "routing is stable");
        assert_ne!(route_hash(&f.h), route_hash(&g.h));
    }

    #[test]
    #[should_panic(expected = "capacity-0")]
    fn zero_capacity_prepare_panics() {
        let (c, f) = setup(8);
        let mut cache = PrepCache::new(0);
        let mut scratch = PrepScratch::new();
        let mut prep = Prepared::empty();
        cache.prepare(0, &f, ColumnOrdering::Natural, &c, &mut scratch, &mut prep);
    }
}
