//! Adaptive batching policy: flush on size **or** age.
//!
//! Workers drain the ingress queue in batches so the per-item
//! synchronization cost (queue lock, response push, metrics merge) is paid
//! once per batch instead of once per request — the same amortization the
//! paper's GEMM formulation applies to partial-distance evaluation. Under
//! load the queue is never empty and batches fill to [`BatchPolicy::max_batch`]
//! instantly; when traffic is sparse, a batch closes after
//! [`BatchPolicy::max_wait`] so batching never adds more than that to
//! latency. `max_wait = 0` degenerates to take-what's-there, which keeps a
//! lock-step single-client loop latency-optimal.

use std::time::Duration;

/// When a worker stops accumulating a batch.
#[derive(Copy, Clone, Debug)]
pub struct BatchPolicy {
    /// Flush once this many requests are in hand.
    pub max_batch: usize,
    /// Flush once the oldest request in the batch has waited this long
    /// after being picked up.
    pub max_wait: Duration,
}

impl BatchPolicy {
    /// Batch-of-one: every request is its own batch (the baseline the
    /// serve benchmark compares against).
    pub fn unbatched() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_wait: Duration::ZERO,
        }
    }

    /// Validate the policy.
    pub(crate) fn check(&self) {
        assert!(self.max_batch >= 1, "max_batch must be positive");
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_micros(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::BoundedQueue;

    #[test]
    fn default_policy_is_sane() {
        let p = BatchPolicy::default();
        p.check();
        assert!(p.max_batch > 1);
        assert!(p.max_wait < Duration::from_millis(1));
    }

    #[test]
    fn policy_drives_queue_batches() {
        let q = BoundedQueue::new(32);
        for i in 0..9 {
            q.try_push(i).unwrap();
        }
        let p = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::ZERO,
        };
        let mut batch = Vec::new();
        let mut sizes = Vec::new();
        q.close();
        while q.pop_batch(&mut batch, p.max_batch, p.max_wait) {
            sizes.push(batch.len());
            batch.clear();
        }
        assert_eq!(sizes, vec![4, 4, 1], "size flush, then the remainder");
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_batch_rejected() {
        BatchPolicy {
            max_batch: 0,
            max_wait: Duration::ZERO,
        }
        .check();
    }
}
