//! The degradation ladder over the tier registry.
//!
//! Sphere decoding is exact but has heavy-tailed, SNR-dependent latency;
//! a deadline-bound service cannot always afford it. Instead of missing
//! deadlines or shedding admitted work, the runtime *degrades*: each
//! request is decoded at the first registry tier (ordered most → least
//! accurate) whose predicted cost (from the [`crate::budget::CostModel`])
//! fits the time remaining until its deadline. Accuracy falls gracefully
//! down the registry while latency stays bounded — admitted work is
//! always answered, in the worst case by the registry's floor tier.
//!
//! Under a sharded runtime each shard owns its own `CostModel`, so the
//! ladder's predictions are trained by the traffic that shard actually
//! serves — affinity routing keeps a channel population's cost history
//! with its shard. A worker serving stolen work consults its *own*
//! shard's model (the ladder decision is advisory; correctness never
//! depends on which model predicted).

use crate::budget::CostModel;
use crate::registry::Tier;
use sd_core::DecodeBudget;
use std::time::{Duration, Instant};

/// Node-budget floor handed to anytime decodes. Below this the truncated
/// search degenerates to pure greedy completion with no tree context at
/// all — at that point the floor tier is the honest answer, so the ladder
/// never issues a tighter cap.
pub const MIN_ANYTIME_NODES: u64 = 64;

/// Fraction of the remaining time an anytime budget actually spends
/// searching. Budgeting 100% of the remaining time is a latent miss: a
/// decode truncated *at* the deadline still has egress, accounting, and
/// the deadline-sampling granularity (the engine checks the clock every
/// 64 expansions) on top, so it lands a hair past the deadline and is
/// counted missed anyway — truncation then saves nothing. The margin
/// leaves that headroom inside the deadline, which is what converts a
/// mispredicted decode from a miss into an on-time truncated answer.
pub const ANYTIME_MARGIN: f64 = 0.85;

/// Ladder configuration.
#[derive(Copy, Clone, Debug)]
pub struct LadderConfig {
    /// Master switch; disabled means every request decodes at tier 0
    /// (deadlines can then be missed — the benchmark's control arm).
    pub enabled: bool,
    /// Survivors per level at the default registry's K-best rung.
    pub kbest_k: usize,
    /// Anytime mode: when set, tier decisions also carry an explicit
    /// [`DecodeBudget`] (node cap from the cost model's ns-per-node rate
    /// plus a wall-clock deadline) so a mispredicted decode truncates at
    /// its deadline with a best-so-far answer instead of blowing it.
    /// Off by default — the reactive ladder, the benchmark's control arm.
    pub anytime: bool,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            enabled: true,
            kbest_k: 16,
            anytime: false,
        }
    }
}

/// An admission decision: which tier serves the request, and under what
/// decode budget. The budget is [`DecodeBudget::UNLIMITED`] unless the
/// ladder runs in anytime mode ([`LadderConfig::anytime`]).
#[derive(Clone, Debug)]
pub struct TierDecision {
    /// Index into the tier registry.
    pub tier: usize,
    /// Per-vector decode budget to pass to the engine.
    pub budget: DecodeBudget,
}

/// Pick the first tier (index into `tiers`) whose predicted cost fits the
/// remaining budget; the last tier is the unconditional floor and its
/// prediction is never consulted.
///
/// An exhausted budget (`remaining == 0`) goes straight to the floor: the
/// deadline is already lost, so the cheapest answer minimizes the damage
/// to everything still queued behind. A cold model predicts zero cost and
/// therefore chooses tier 0 — optimistic until evidence accumulates.
pub fn choose_tier(
    cfg: &LadderConfig,
    model: &CostModel,
    tiers: &[Tier],
    snr_db: f64,
    m: usize,
    p: usize,
    remaining: Duration,
) -> usize {
    choose_tier_block(cfg, model, tiers, snr_db, m, p, remaining, 1)
}

/// Frame-aware variant of [`choose_tier`]: one ladder decision for a
/// whole coherence block of `block` receive vectors. The per-vector
/// prediction is scaled by the block size before being compared against
/// the frame's remaining budget, so a 64-subcarrier frame degrades when
/// 64× the per-vector cost would blow its deadline — not when one vector
/// would.
#[allow(clippy::too_many_arguments)]
pub fn choose_tier_block(
    cfg: &LadderConfig,
    model: &CostModel,
    tiers: &[Tier],
    snr_db: f64,
    m: usize,
    p: usize,
    remaining: Duration,
    block: usize,
) -> usize {
    choose_tier_block_budgeted(cfg, model, tiers, snr_db, None, m, p, remaining, block).tier
}

/// [`choose_tier`] returning the full [`TierDecision`] (tier + decode
/// budget), with the channel-conditioning observable threaded into the
/// cost prediction.
#[allow(clippy::too_many_arguments)]
pub fn choose_tier_budgeted(
    cfg: &LadderConfig,
    model: &CostModel,
    tiers: &[Tier],
    snr_db: f64,
    condition_log2: Option<f64>,
    m: usize,
    p: usize,
    remaining: Duration,
) -> TierDecision {
    choose_tier_block_budgeted(
        cfg,
        model,
        tiers,
        snr_db,
        condition_log2,
        m,
        p,
        remaining,
        1,
    )
}

/// The full admission decision: the first tier (most → least accurate)
/// whose predicted cost fits the remaining budget, plus — in anytime mode
/// — an explicit per-vector [`DecodeBudget`] derived up front from the
/// same model, so the decode *cannot* overrun the deadline even when the
/// prediction was wrong.
///
/// The budget's node cap is the remaining time (split across the `block`
/// vectors) divided by the model's ns-per-node rate, floored at
/// [`MIN_ANYTIME_NODES`]; a cold model (no node rate yet) caps nothing.
/// The wall-clock deadline backstops the node cap against rate drift.
///
/// Tier selection is monotone in `remaining`: a larger budget admits a
/// superset of tiers at every rung, so the chosen index never increases
/// (never *less* accurate) as the budget grows.
#[allow(clippy::too_many_arguments)]
pub fn choose_tier_block_budgeted(
    cfg: &LadderConfig,
    model: &CostModel,
    tiers: &[Tier],
    snr_db: f64,
    condition_log2: Option<f64>,
    m: usize,
    p: usize,
    remaining: Duration,
    block: usize,
) -> TierDecision {
    // Guards must precede any index arithmetic: `tiers.len() - 1` on an
    // empty registry underflows (panics in debug) even on the disabled
    // path that never indexes.
    if !cfg.enabled || tiers.is_empty() {
        return TierDecision {
            tier: 0,
            budget: DecodeBudget::UNLIMITED,
        };
    }
    let last = tiers.len() - 1;
    let tier = if remaining.is_zero() {
        last
    } else {
        let budget_ns = remaining.as_nanos() as f64;
        tiers[..last]
            .iter()
            .enumerate()
            .position(|(i, tier)| {
                model.predict_ns_with(i, &tier.cost, snr_db, condition_log2, m, p) * block as f64
                    <= budget_ns
            })
            .unwrap_or(last)
    };
    let budget = if cfg.anytime {
        anytime_budget(model, remaining, block)
    } else {
        DecodeBudget::UNLIMITED
    };
    TierDecision { tier, budget }
}

/// Derive the anytime per-vector [`DecodeBudget`] from the model's node
/// rate and the time left, spending only [`ANYTIME_MARGIN`] of it so a
/// truncated decode returns *inside* the deadline (not at it). Shared by
/// the block and single-vector paths.
fn anytime_budget(model: &CostModel, remaining: Duration, block: usize) -> DecodeBudget {
    let spendable = remaining.mul_f64(ANYTIME_MARGIN);
    let deadline = Instant::now() + spendable;
    let rate = model.ns_per_node();
    let max_nodes = if rate > 0.0 {
        let per_vector_ns = spendable.as_nanos() as f64 / block.max(1) as f64;
        ((per_vector_ns / rate).floor() as u64).max(MIN_ANYTIME_NODES)
    } else {
        u64::MAX
    };
    DecodeBudget {
        max_nodes,
        deadline: Some(deadline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;
    use sd_wireless::{Constellation, Modulation};

    fn registry() -> Vec<Tier> {
        default_registry(
            &Constellation::new(Modulation::Qam4),
            &LadderConfig::default(),
        )
    }

    fn trained_model() -> CostModel {
        let m = CostModel::new(3);
        // 100 ns/node; exact cost at 8 dB ≈ 10_000 nodes = 1 ms.
        m.observe(
            0,
            &crate::budget::TierCostClass::Adaptive,
            8.0,
            10_000,
            1_000_000,
        );
        m
    }

    #[test]
    fn disabled_ladder_always_tier_zero() {
        let cfg = LadderConfig {
            enabled: false,
            ..LadderConfig::default()
        };
        let model = trained_model();
        let t = choose_tier(&cfg, &model, &registry(), 8.0, 8, 4, Duration::ZERO);
        assert_eq!(t, 0);
    }

    #[test]
    fn zero_budget_goes_to_floor() {
        let cfg = LadderConfig::default();
        let model = CostModel::new(3); // even a cold model
        let t = choose_tier(&cfg, &model, &registry(), 8.0, 8, 4, Duration::ZERO);
        assert_eq!(t, 2);
    }

    #[test]
    fn cold_model_is_optimistic() {
        let cfg = LadderConfig::default();
        let model = CostModel::new(3);
        let t = choose_tier(
            &cfg,
            &model,
            &registry(),
            8.0,
            8,
            4,
            Duration::from_nanos(1),
        );
        assert_eq!(t, 0);
    }

    #[test]
    fn ladder_descends_with_budget() {
        let cfg = LadderConfig::default();
        let model = trained_model();
        let tiers = registry();
        // Plenty of budget: exact (predicted 1 ms).
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::from_millis(10)),
            0
        );
        // K-best at 8 antennas, order 4, K=16: analytic nodes × 100 ns
        // ≈ 44 µs ≪ 500 µs < 1 ms → middle rung.
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::from_micros(500)),
            1
        );
        // Too tight even for K-best → the MMSE floor.
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::from_micros(10)),
            2
        );
    }

    #[test]
    fn block_scaling_degrades_frames_earlier() {
        // At 500 µs a single vector rides K-best (~44 µs predicted; exact
        // is 1 ms). A 16-vector block multiplies every rung's cost:
        // 16 × 44 µs ≈ 700 µs > 500 µs pushes the whole block to the MMSE
        // floor.
        let cfg = LadderConfig::default();
        let model = trained_model();
        let tiers = registry();
        let budget = Duration::from_micros(500);
        assert_eq!(
            choose_tier_block(&cfg, &model, &tiers, 8.0, 8, 4, budget, 1),
            1
        );
        assert_eq!(
            choose_tier_block(&cfg, &model, &tiers, 8.0, 8, 4, budget, 16),
            2
        );
        // A big-enough budget restores the exact rung even at block 16.
        assert_eq!(
            choose_tier_block(
                &cfg,
                &model,
                &tiers,
                8.0,
                8,
                4,
                Duration::from_millis(100),
                16
            ),
            0
        );
    }

    #[test]
    fn single_tier_registry_never_degrades() {
        let cfg = LadderConfig::default();
        let model = CostModel::new(1);
        let mut tiers = registry();
        tiers.truncate(1);
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::ZERO),
            0
        );
    }

    /// Regression: `tiers.len() - 1` ran *before* the enabled/empty
    /// guards, so an empty registry underflowed (debug panic) even on
    /// paths that never index. Both variants must return tier 0 instead.
    #[test]
    fn empty_registry_does_not_underflow() {
        let model = CostModel::new(0);
        let none: Vec<Tier> = Vec::new();
        let disabled = LadderConfig {
            enabled: false,
            ..LadderConfig::default()
        };
        assert_eq!(
            choose_tier(&disabled, &model, &none, 8.0, 8, 4, Duration::ZERO),
            0
        );
        let enabled = LadderConfig::default();
        assert_eq!(
            choose_tier_block(
                &enabled,
                &model,
                &none,
                8.0,
                8,
                4,
                Duration::from_millis(1),
                4
            ),
            0
        );
    }

    /// The reactive ladder (anytime off) always hands out an unlimited
    /// budget — decisions are bit-identical to the pre-anytime code.
    #[test]
    fn reactive_ladder_budget_is_unlimited() {
        let cfg = LadderConfig::default();
        let model = trained_model();
        let d = choose_tier_budgeted(
            &cfg,
            &model,
            &registry(),
            8.0,
            None,
            8,
            4,
            Duration::from_millis(10),
        );
        assert_eq!(d.tier, 0);
        assert!(d.budget.is_unlimited());
    }

    /// Anytime decisions carry a node cap sized by the model's node rate
    /// and split across the block, floored at [`MIN_ANYTIME_NODES`], with
    /// a wall-clock deadline backstop. A cold model caps nothing.
    #[test]
    fn anytime_budget_tracks_the_node_rate() {
        let cfg = LadderConfig {
            anytime: true,
            ..LadderConfig::default()
        };
        let model = trained_model(); // 100 ns/node
        let tiers = registry();
        // 10 ms at 100 ns/node, spending the 0.85 margin → 85_000 nodes
        // per vector.
        let d = choose_tier_budgeted(
            &cfg,
            &model,
            &tiers,
            8.0,
            None,
            8,
            4,
            Duration::from_millis(10),
        );
        assert_eq!(d.budget.max_nodes, 85_000);
        assert!(d.budget.deadline.is_some());
        // A 10-vector block splits the same time budget ten ways.
        let d10 = choose_tier_block_budgeted(
            &cfg,
            &model,
            &tiers,
            8.0,
            None,
            8,
            4,
            Duration::from_millis(10),
            10,
        );
        assert_eq!(d10.budget.max_nodes, 8_500);
        // A microscopic budget still leaves the greedy floor.
        let tight = choose_tier_budgeted(
            &cfg,
            &model,
            &tiers,
            8.0,
            None,
            8,
            4,
            Duration::from_nanos(1),
        );
        assert_eq!(tight.budget.max_nodes, MIN_ANYTIME_NODES);
        // Cold model: no node rate, so no node cap (deadline still set).
        let cold = CostModel::new(3);
        let dc = choose_tier_budgeted(
            &cfg,
            &cold,
            &tiers,
            8.0,
            None,
            8,
            4,
            Duration::from_millis(1),
        );
        assert_eq!(dc.budget.max_nodes, u64::MAX);
        assert!(dc.budget.deadline.is_some());
    }

    /// Tier choice is monotone in the remaining budget: growing the
    /// budget never selects a *less* accurate (higher-index) tier.
    #[test]
    fn tier_choice_is_monotone_in_budget() {
        let cfg = LadderConfig::default();
        let model = trained_model();
        let tiers = registry();
        let mut prev = usize::MAX;
        for us in [0u64, 1, 10, 50, 100, 500, 1_000, 5_000, 10_000] {
            let t = choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::from_micros(us));
            assert!(
                t <= prev || prev == usize::MAX,
                "budget {us} µs picked tier {t} after {prev}"
            );
            prev = t;
        }
        assert_eq!(prev, 0, "the largest budget restores the exact tier");
    }
}
