//! The degradation ladder: exact SD → K-best → MMSE.
//!
//! Sphere decoding is exact but has heavy-tailed, SNR-dependent latency;
//! a deadline-bound service cannot always afford it. Instead of missing
//! deadlines or shedding admitted work, the runtime *degrades*: each
//! request is decoded at the best rung whose predicted cost (from the
//! [`crate::budget::CostModel`]) fits the time remaining until its
//! deadline. Accuracy falls gracefully (exact → near-ML → linear) while
//! latency stays bounded — admitted work is always answered.

use crate::budget::CostModel;
use crate::request::DecodeTier;
use std::time::Duration;

/// Ladder configuration.
#[derive(Copy, Clone, Debug)]
pub struct LadderConfig {
    /// Master switch; disabled means every request decodes exactly
    /// (deadlines can then be missed — the benchmark's control arm).
    pub enabled: bool,
    /// Survivors per level at the K-best rung.
    pub kbest_k: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            enabled: true,
            kbest_k: 16,
        }
    }
}

/// Pick the best rung whose predicted cost fits the remaining budget.
///
/// An exhausted budget (`remaining == 0`) goes straight to MMSE: the
/// deadline is already lost, so the cheapest answer minimizes the damage
/// to everything still queued behind. A cold model predicts zero cost and
/// therefore chooses `Exact` — optimistic until evidence accumulates.
pub fn choose_tier(
    cfg: &LadderConfig,
    model: &CostModel,
    snr_db: f64,
    m: usize,
    p: usize,
    remaining: Duration,
) -> DecodeTier {
    if !cfg.enabled {
        return DecodeTier::Exact;
    }
    if remaining.is_zero() {
        return DecodeTier::Mmse;
    }
    let budget_ns = remaining.as_nanos() as f64;
    if model.predict_exact_ns(snr_db) <= budget_ns {
        DecodeTier::Exact
    } else if model.predict_kbest_ns(m, p, cfg.kbest_k) <= budget_ns {
        DecodeTier::KBest
    } else {
        DecodeTier::Mmse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_model() -> CostModel {
        let m = CostModel::new();
        // 100 ns/node; exact cost at 8 dB ≈ 10_000 nodes = 1 ms.
        m.observe_tree(8.0, 10_000, 1_000_000, true);
        m
    }

    #[test]
    fn disabled_ladder_always_exact() {
        let cfg = LadderConfig {
            enabled: false,
            kbest_k: 16,
        };
        let model = trained_model();
        let t = choose_tier(&cfg, &model, 8.0, 8, 4, Duration::ZERO);
        assert_eq!(t, DecodeTier::Exact);
    }

    #[test]
    fn zero_budget_goes_to_mmse() {
        let cfg = LadderConfig::default();
        let model = CostModel::new(); // even a cold model
        let t = choose_tier(&cfg, &model, 8.0, 8, 4, Duration::ZERO);
        assert_eq!(t, DecodeTier::Mmse);
    }

    #[test]
    fn cold_model_is_optimistic() {
        let cfg = LadderConfig::default();
        let model = CostModel::new();
        let t = choose_tier(&cfg, &model, 8.0, 8, 4, Duration::from_nanos(1));
        assert_eq!(t, DecodeTier::Exact);
    }

    #[test]
    fn ladder_descends_with_budget() {
        let cfg = LadderConfig::default();
        let model = trained_model();
        // Plenty of budget: exact (predicted 1 ms).
        assert_eq!(
            choose_tier(&cfg, &model, 8.0, 8, 4, Duration::from_millis(10)),
            DecodeTier::Exact
        );
        // K-best at 8 antennas, order 4, K=16: analytic nodes × 100 ns
        // ≈ 44 µs ≪ 500 µs < 1 ms → middle rung.
        assert_eq!(
            choose_tier(&cfg, &model, 8.0, 8, 4, Duration::from_micros(500)),
            DecodeTier::KBest
        );
        // Too tight even for K-best → MMSE.
        assert_eq!(
            choose_tier(&cfg, &model, 8.0, 8, 4, Duration::from_micros(10)),
            DecodeTier::Mmse
        );
    }
}
