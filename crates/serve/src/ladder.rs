//! The degradation ladder over the tier registry.
//!
//! Sphere decoding is exact but has heavy-tailed, SNR-dependent latency;
//! a deadline-bound service cannot always afford it. Instead of missing
//! deadlines or shedding admitted work, the runtime *degrades*: each
//! request is decoded at the first registry tier (ordered most → least
//! accurate) whose predicted cost (from the [`crate::budget::CostModel`])
//! fits the time remaining until its deadline. Accuracy falls gracefully
//! down the registry while latency stays bounded — admitted work is
//! always answered, in the worst case by the registry's floor tier.
//!
//! Under a sharded runtime each shard owns its own `CostModel`, so the
//! ladder's predictions are trained by the traffic that shard actually
//! serves — affinity routing keeps a channel population's cost history
//! with its shard. A worker serving stolen work consults its *own*
//! shard's model (the ladder decision is advisory; correctness never
//! depends on which model predicted).

use crate::budget::CostModel;
use crate::registry::Tier;
use std::time::Duration;

/// Ladder configuration.
#[derive(Copy, Clone, Debug)]
pub struct LadderConfig {
    /// Master switch; disabled means every request decodes at tier 0
    /// (deadlines can then be missed — the benchmark's control arm).
    pub enabled: bool,
    /// Survivors per level at the default registry's K-best rung.
    pub kbest_k: usize,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            enabled: true,
            kbest_k: 16,
        }
    }
}

/// Pick the first tier (index into `tiers`) whose predicted cost fits the
/// remaining budget; the last tier is the unconditional floor and its
/// prediction is never consulted.
///
/// An exhausted budget (`remaining == 0`) goes straight to the floor: the
/// deadline is already lost, so the cheapest answer minimizes the damage
/// to everything still queued behind. A cold model predicts zero cost and
/// therefore chooses tier 0 — optimistic until evidence accumulates.
pub fn choose_tier(
    cfg: &LadderConfig,
    model: &CostModel,
    tiers: &[Tier],
    snr_db: f64,
    m: usize,
    p: usize,
    remaining: Duration,
) -> usize {
    choose_tier_block(cfg, model, tiers, snr_db, m, p, remaining, 1)
}

/// Frame-aware variant of [`choose_tier`]: one ladder decision for a
/// whole coherence block of `block` receive vectors. The per-vector
/// prediction is scaled by the block size before being compared against
/// the frame's remaining budget, so a 64-subcarrier frame degrades when
/// 64× the per-vector cost would blow its deadline — not when one vector
/// would.
#[allow(clippy::too_many_arguments)]
pub fn choose_tier_block(
    cfg: &LadderConfig,
    model: &CostModel,
    tiers: &[Tier],
    snr_db: f64,
    m: usize,
    p: usize,
    remaining: Duration,
    block: usize,
) -> usize {
    let last = tiers.len() - 1;
    if !cfg.enabled {
        return 0;
    }
    if remaining.is_zero() {
        return last;
    }
    let budget_ns = remaining.as_nanos() as f64;
    for (i, tier) in tiers[..last].iter().enumerate() {
        if model.predict_ns(i, &tier.cost, snr_db, m, p) * block as f64 <= budget_ns {
            return i;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::default_registry;
    use sd_wireless::{Constellation, Modulation};

    fn registry() -> Vec<Tier> {
        default_registry(
            &Constellation::new(Modulation::Qam4),
            &LadderConfig::default(),
        )
    }

    fn trained_model() -> CostModel {
        let m = CostModel::new(3);
        // 100 ns/node; exact cost at 8 dB ≈ 10_000 nodes = 1 ms.
        m.observe(
            0,
            &crate::budget::TierCostClass::Adaptive,
            8.0,
            10_000,
            1_000_000,
        );
        m
    }

    #[test]
    fn disabled_ladder_always_tier_zero() {
        let cfg = LadderConfig {
            enabled: false,
            kbest_k: 16,
        };
        let model = trained_model();
        let t = choose_tier(&cfg, &model, &registry(), 8.0, 8, 4, Duration::ZERO);
        assert_eq!(t, 0);
    }

    #[test]
    fn zero_budget_goes_to_floor() {
        let cfg = LadderConfig::default();
        let model = CostModel::new(3); // even a cold model
        let t = choose_tier(&cfg, &model, &registry(), 8.0, 8, 4, Duration::ZERO);
        assert_eq!(t, 2);
    }

    #[test]
    fn cold_model_is_optimistic() {
        let cfg = LadderConfig::default();
        let model = CostModel::new(3);
        let t = choose_tier(
            &cfg,
            &model,
            &registry(),
            8.0,
            8,
            4,
            Duration::from_nanos(1),
        );
        assert_eq!(t, 0);
    }

    #[test]
    fn ladder_descends_with_budget() {
        let cfg = LadderConfig::default();
        let model = trained_model();
        let tiers = registry();
        // Plenty of budget: exact (predicted 1 ms).
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::from_millis(10)),
            0
        );
        // K-best at 8 antennas, order 4, K=16: analytic nodes × 100 ns
        // ≈ 44 µs ≪ 500 µs < 1 ms → middle rung.
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::from_micros(500)),
            1
        );
        // Too tight even for K-best → the MMSE floor.
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::from_micros(10)),
            2
        );
    }

    #[test]
    fn block_scaling_degrades_frames_earlier() {
        // At 500 µs a single vector rides K-best (~44 µs predicted; exact
        // is 1 ms). A 16-vector block multiplies every rung's cost:
        // 16 × 44 µs ≈ 700 µs > 500 µs pushes the whole block to the MMSE
        // floor.
        let cfg = LadderConfig::default();
        let model = trained_model();
        let tiers = registry();
        let budget = Duration::from_micros(500);
        assert_eq!(
            choose_tier_block(&cfg, &model, &tiers, 8.0, 8, 4, budget, 1),
            1
        );
        assert_eq!(
            choose_tier_block(&cfg, &model, &tiers, 8.0, 8, 4, budget, 16),
            2
        );
        // A big-enough budget restores the exact rung even at block 16.
        assert_eq!(
            choose_tier_block(
                &cfg,
                &model,
                &tiers,
                8.0,
                8,
                4,
                Duration::from_millis(100),
                16
            ),
            0
        );
    }

    #[test]
    fn single_tier_registry_never_degrades() {
        let cfg = LadderConfig::default();
        let model = CostModel::new(1);
        let mut tiers = registry();
        tiers.truncate(1);
        assert_eq!(
            choose_tier(&cfg, &model, &tiers, 8.0, 8, 4, Duration::ZERO),
            0
        );
    }
}
