//! The worker loop: drain a batch from the worker's shard, decode each
//! request at its ladder rung, push the batch of responses.
//!
//! Each worker owns every scratch buffer the decode path needs
//! ([`PrepScratch`], [`SearchWorkspace`], a reusable [`Prepared`], a
//! [`BlockPrep`] for the frame path, the batch and response vectors, a
//! batch-level stats accumulator), so the steady-state path performs
//! **zero heap allocations per request**: the registry tiers are driven
//! entirely through [`sd_core::PreparedDetector`]'s `_into` entry points,
//! which write into recycled [`Detection`] slots from the runtime's
//! response pools, and all synchronization costs (ingress lock, response
//! push, metrics merge) are paid once per batch. Because every tier
//! speaks the same engine trait, the worker has no per-detector code at
//! all — serving a new tier is purely a registry entry.
//!
//! A worker is pinned to one shard: its ladder decisions consult that
//! shard's [`crate::budget::CostModel`] and its cacheable preparations go
//! through that shard's [`crate::prep_cache::PrepCache`], which affinity
//! routing keeps hot for the channels hashed there. When the shard's
//! queue runs dry (a bounded [`BatchPop::Empty`] wait), the worker
//! **steals** whole queue items from the other shards — at most half a
//! victim's backlog per raid, round-robin from its right-hand neighbor —
//! so an imbalanced hash never idles a core. Stolen work is decoded with
//! the thief's scratch and the thief shard's cache/model; results are
//! bit-identical because every tier's decode depends only on the request,
//! never on which worker ran it.
//!
//! A batch item is either one vector ([`DetectionRequest`]) or one whole
//! coherence block ([`crate::FrameRequest`]); frames are never split —
//! not by the batcher and not by a steal — so one worker decodes the
//! block with **one** shared channel preparation
//! ([`sd_core::decode_block_fused_into`]) and one ladder decision scaled
//! by the block size. Level-synchronous tiers additionally take the
//! cross-subcarrier **fused** decode (one GEMM batch per tree level for
//! the whole block, counted in `frames_fused`); the rest run the shared-
//! prep per-subcarrier loop. Either way the per-subcarrier results are
//! bit-identical to a per-vector submission of the same traffic.

use crate::budget::CostModel;
use crate::ladder::{choose_tier_block_budgeted, choose_tier_budgeted};
use crate::queue::BatchPop;
use crate::request::{DetectionRequest, DetectionResponse, FrameRequest, FrameResponse};
use crate::runtime::{Ingress, Shared};
use sd_core::{
    decode_block_fused_into, BlockPrep, ChannelObservables, Detection, DetectionStats, PrepScratch,
    Prepared, SearchWorkspace,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long an idle worker blocks on its own shard before scanning the
/// other shards for stealable backlog. Short enough that a core never
/// idles behind a loaded neighbor, long enough that a busy runtime pays
/// no scan overhead at all.
const STEAL_POLL: Duration = Duration::from_micros(500);

pub(crate) struct Worker {
    shared: Arc<Shared>,
    /// The shard this worker drains and attributes its serving to.
    shard_idx: usize,
    /// Constellation order `P`, an input to the analytic cost curves.
    order: usize,
    prep_scratch: PrepScratch<f64>,
    prep: Prepared<f64>,
    /// Shared-prep block state for the frame path.
    block: BlockPrep<f64>,
    ws: SearchWorkspace<f64>,
    batch: Vec<Ingress>,
    done: Vec<DetectionResponse>,
    done_frames: Vec<FrameResponse>,
    batch_stats: DetectionStats,
}

impl Worker {
    pub(crate) fn new(shared: Arc<Shared>, shard_idx: usize) -> Self {
        Worker {
            shard_idx,
            order: shared.tiers[0].detector.constellation().order(),
            prep_scratch: PrepScratch::new(),
            prep: Prepared::empty(),
            block: BlockPrep::new(),
            ws: SearchWorkspace::new(),
            batch: Vec::new(),
            done: Vec::new(),
            done_frames: Vec::new(),
            batch_stats: DetectionStats::default(),
            shared,
        }
    }

    /// This worker's shard-local cost model.
    fn model(&self) -> &CostModel {
        &self.shared.shards[self.shard_idx].model
    }

    pub(crate) fn run(mut self) {
        use std::sync::atomic::Ordering::Relaxed;
        let policy = self.shared.config.batch;
        let n_shards = self.shared.shards.len();
        let stealing = self.shared.config.steal && n_shards > 1;
        loop {
            let mut batch = std::mem::take(&mut self.batch);
            batch.clear();
            // `true` when this batch was looted from another shard.
            let mut stolen = false;
            if stealing {
                let own = &self.shared.shards[self.shard_idx].queue;
                match own.pop_batch_timeout(
                    &mut batch,
                    policy.max_batch,
                    policy.max_wait,
                    STEAL_POLL,
                ) {
                    BatchPop::Closed => {
                        self.batch = batch;
                        return; // closed and drained: shutdown
                    }
                    BatchPop::Batch => {
                        let cost: u64 = batch.iter().map(Ingress::cost_ns).sum();
                        self.shared.shards[self.shard_idx]
                            .queued_cost_ns
                            .fetch_sub(cost, Relaxed);
                    }
                    BatchPop::Empty => {
                        // Own queue is dry: raid the neighbors, starting to
                        // the right so thieves spread across victims.
                        for k in 1..n_shards {
                            let victim = (self.shard_idx + k) % n_shards;
                            let got = self.shared.shards[victim]
                                .queue
                                .steal_into(&mut batch, policy.max_batch);
                            if got > 0 {
                                let weight: u64 = batch.iter().map(Ingress::weight).sum();
                                let cost: u64 = batch.iter().map(Ingress::cost_ns).sum();
                                // Stolen work leaves the victim's backlog:
                                // its admission gauge must shrink with it.
                                self.shared.shards[victim]
                                    .queued_cost_ns
                                    .fetch_sub(cost, Relaxed);
                                let m = &self.shared.metrics;
                                m.shards[self.shard_idx]
                                    .stolen_in
                                    .fetch_add(weight, Relaxed);
                                m.shards[victim].stolen_out.fetch_add(weight, Relaxed);
                                stolen = true;
                                break;
                            }
                        }
                        if !stolen {
                            self.batch = batch;
                            continue; // nothing anywhere: block on our shard again
                        }
                    }
                }
            } else if !self.shared.shards[self.shard_idx].queue.pop_batch(
                &mut batch,
                policy.max_batch,
                policy.max_wait,
            ) {
                self.batch = batch;
                return; // closed and drained: shutdown
            } else {
                let cost: u64 = batch.iter().map(Ingress::cost_ns).sum();
                self.shared.shards[self.shard_idx]
                    .queued_cost_ns
                    .fetch_sub(cost, Relaxed);
            }
            let size = batch.len();
            self.batch_stats.reset(0);
            for item in batch.drain(..) {
                match item {
                    Ingress::Vector(req) => {
                        let resp = self.serve_one(req, stolen);
                        self.batch_stats.merge(&resp.detection.stats);
                        self.done.push(resp);
                    }
                    Ingress::Frame(req) => {
                        let resp = self.serve_frame(req, stolen);
                        for d in &resp.detections {
                            self.batch_stats.merge(&d.stats);
                        }
                        self.done_frames.push(resp);
                    }
                }
            }
            self.batch = batch;
            let m = &self.shared.metrics;
            m.batches.fetch_add(1, Relaxed);
            m.batch_items.fetch_add(size as u64, Relaxed);
            m.batch_size.record(size as u64);
            m.merge_stats(&self.batch_stats);
            self.shared.out.push_all(&mut self.done);
            self.shared.out_frames.push_all(&mut self.done_frames);
        }
    }

    fn serve_one(&mut self, req: DetectionRequest, stolen: bool) -> DetectionResponse {
        use std::sync::atomic::Ordering::Relaxed;
        let started = Instant::now();
        let enqueued = req.enqueued_at.unwrap_or(started);
        let queue_wait = started.saturating_duration_since(enqueued);
        let remaining = req.deadline.saturating_sub(queue_wait);
        let m = req.frame.h.cols();
        // The pre-decode complexity observable: the channel's conditioning
        // proxy, computed from column norms in O(NM) — far cheaper than
        // the QR it predicts for.
        let cond = ChannelObservables::from_channel(&req.frame.h).condition_log2();
        let decision = choose_tier_budgeted(
            &self.shared.config.ladder,
            self.model(),
            &self.shared.tiers,
            req.snr_db,
            Some(cond),
            m,
            self.order,
            remaining,
        );
        let tier_idx = decision.tier;
        let tier = &self.shared.tiers[tier_idx];
        // Sample the prediction the ladder acted on, so the validation
        // histogram measures exactly the model the decision saw.
        let predicted_ns = self.model().predict_ns_with(
            tier_idx,
            &tier.cost,
            req.snr_db,
            Some(cond),
            m,
            self.order,
        );

        let mut det: Detection = self.shared.pool.lock().unwrap().pop().unwrap_or_default();
        // Channel-coherent preparation: tiers whose preprocessing is the
        // shared QR split go through the shard's factorization cache, so
        // requests repeating one H — which affinity routing lands on this
        // shard — skip the QR. Bit-identical either way; `prep_flops` is
        // charged in full on hits so complexity accounting stays
        // comparable.
        let metrics = &self.shared.metrics;
        let sm = &metrics.shards[self.shard_idx];
        if self.shared.config.prep_cache > 0 && tier.detector.channel_cacheable() {
            let hit = self.shared.shards[self.shard_idx]
                .prep_cache
                .lock()
                .unwrap()
                .prepare(
                    tier_idx,
                    &req.frame,
                    tier.detector.ordering(),
                    tier.detector.constellation(),
                    &mut self.prep_scratch,
                    &mut self.prep,
                );
            if hit {
                metrics.prep_cache_hits.fetch_add(1, Relaxed);
                sm.prep_hits.fetch_add(1, Relaxed);
            } else {
                metrics.prep_cache_misses.fetch_add(1, Relaxed);
                sm.prep_misses.fetch_add(1, Relaxed);
            }
        } else {
            tier.detector
                .prepare_frame_into(&req.frame, &mut self.prep_scratch, &mut self.prep);
            metrics.prep_cache_bypass.fetch_add(1, Relaxed);
            sm.prep_bypass.fetch_add(1, Relaxed);
        }
        let r2 = tier
            .detector
            .initial_radius_sqr(req.frame.h.rows(), req.frame.noise_variance);
        tier.detector.detect_prepared_budgeted_into(
            &self.prep,
            r2,
            &decision.budget,
            &mut self.ws,
            &mut det,
        );

        let service_time = started.elapsed();
        let latency = queue_wait + service_time;
        let deadline_missed = latency > req.deadline;

        let tm = &metrics.tiers[tier_idx];
        tm.served.fetch_add(1, Relaxed);
        let service_ns = service_time.as_nanos() as u64;
        tm.predict_err_ns
            .record((predicted_ns as i64 - service_ns as i64).unsigned_abs());
        // `served` is bumped per request, *before* any miss increment, so
        // a concurrent snapshot never observes missed > served (the old
        // per-batch bump could report miss rates above 1 mid-batch).
        metrics.served.fetch_add(1, Relaxed);
        sm.served.fetch_add(1, Relaxed);
        if !stolen {
            sm.affinity_served.fetch_add(1, Relaxed);
        }
        if deadline_missed {
            metrics.deadline_missed.fetch_add(1, Relaxed);
        }
        // Every response is exactly one of the two: quality_exact +
        // budget_exhausted == served.
        if det.stats.quality.is_truncated() {
            metrics.budget_exhausted.fetch_add(1, Relaxed);
        } else {
            metrics.quality_exact.fetch_add(1, Relaxed);
        }
        metrics.latency_ns.record(latency.as_nanos() as u64);
        metrics.queue_wait_ns.record(queue_wait.as_nanos() as u64);

        self.model().observe_with(
            tier_idx,
            &tier.cost,
            req.snr_db,
            Some(cond),
            det.stats.nodes_generated,
            service_ns,
        );

        DetectionResponse {
            request: req,
            detection: det,
            tier: tier_idx,
            tier_label: Arc::clone(&tier.label),
            queue_wait,
            service_time,
            latency,
            deadline_missed,
        }
    }

    /// Decode one whole coherence block: one ladder decision (per-vector
    /// cost scaled by the block size), one shared channel preparation on
    /// cacheable tiers ([`decode_block_fused_into`]), per-subcarrier
    /// detections into a pooled block buffer. Level-synchronous tiers run
    /// the cross-subcarrier fused sweep (one GEMM batch per tree level);
    /// the fall-back loop serves every other tier — results are
    /// bit-identical either way. Frames bypass the prep cache — every
    /// subcarrier counts as a `prep_cache_bypass` so
    /// `hits + misses + bypass == served` stays an invariant over mixed
    /// traffic.
    fn serve_frame(&mut self, req: FrameRequest, stolen: bool) -> FrameResponse {
        use std::sync::atomic::Ordering::Relaxed;
        let started = Instant::now();
        let enqueued = req.enqueued_at.unwrap_or(started);
        let queue_wait = started.saturating_duration_since(enqueued);
        let remaining = req.deadline.saturating_sub(queue_wait);
        let b = req.block_len();
        let m = req.subcarriers[0].h.cols();
        // One conditioning observable for the whole block — the frame is
        // defined by its shared channel.
        let cond = ChannelObservables::from_channel(&req.subcarriers[0].h).condition_log2();
        let decision = choose_tier_block_budgeted(
            &self.shared.config.ladder,
            self.model(),
            &self.shared.tiers,
            req.snr_db,
            Some(cond),
            m,
            self.order,
            remaining,
            b,
        );
        let tier_idx = decision.tier;
        let tier = &self.shared.tiers[tier_idx];
        // The prediction the ladder compared against the budget: the
        // per-vector model scaled to the block.
        let predicted_ns = self.model().predict_ns_with(
            tier_idx,
            &tier.cost,
            req.snr_db,
            Some(cond),
            m,
            self.order,
        ) * b as f64;

        let mut dets: Vec<Detection> = self
            .shared
            .frame_pool
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_default();
        dets.resize_with(b, Detection::default);
        // Fused block dispatch: level-synchronous tiers decode the whole
        // block one GEMM batch per tree level (bit-identical per
        // subcarrier); everything else falls back to the shared-prep loop
        // inside the same call.
        let (prep_factors, fused) = decode_block_fused_into(
            &*tier.detector,
            &req.subcarriers,
            &decision.budget,
            &mut self.prep_scratch,
            &mut self.block,
            &mut self.prep,
            &mut self.ws,
            &mut dets,
        );

        let service_time = started.elapsed();
        let latency = queue_wait + service_time;
        let deadline_missed = latency > req.deadline;

        let metrics = &self.shared.metrics;
        let sm = &metrics.shards[self.shard_idx];
        let tm = &metrics.tiers[tier_idx];
        tm.served.fetch_add(b as u64, Relaxed);
        let service_ns = service_time.as_nanos() as u64;
        tm.predict_err_ns
            .record((predicted_ns as i64 - service_ns as i64).unsigned_abs());
        // Subcarriers count into the vector-level counters (served before
        // missed, factors before subcarriers — both orders keep concurrent
        // snapshots conservative), frame-level counters track blocks.
        metrics.served.fetch_add(b as u64, Relaxed);
        sm.served.fetch_add(b as u64, Relaxed);
        if !stolen {
            sm.affinity_served.fetch_add(b as u64, Relaxed);
        }
        metrics.frames_served.fetch_add(1, Relaxed);
        if fused {
            metrics.frames_fused.fetch_add(1, Relaxed);
        }
        if deadline_missed {
            metrics.deadline_missed.fetch_add(b as u64, Relaxed);
            metrics.frames_deadline_missed.fetch_add(1, Relaxed);
        }
        // Per-subcarrier quality accounting keeps the invariant over
        // mixed traffic: quality_exact + budget_exhausted == served.
        let truncated = dets
            .iter()
            .filter(|d| d.stats.quality.is_truncated())
            .count() as u64;
        metrics.budget_exhausted.fetch_add(truncated, Relaxed);
        metrics
            .quality_exact
            .fetch_add(b as u64 - truncated, Relaxed);
        metrics.prep_cache_bypass.fetch_add(b as u64, Relaxed);
        sm.prep_bypass.fetch_add(b as u64, Relaxed);
        metrics
            .frame_prep_factors
            .fetch_add(prep_factors as u64, Relaxed);
        metrics.frame_subcarriers.fetch_add(b as u64, Relaxed);
        metrics.frame_size.record(b as u64);
        metrics.frame_latency_ns.record(latency.as_nanos() as u64);
        metrics.queue_wait_ns.record(queue_wait.as_nanos() as u64);

        // One observation per frame at per-vector granularity, so the
        // cost model keeps predicting single-vector service time and the
        // ladder's block scaling stays dimensionally consistent.
        let nodes: u64 = dets.iter().map(|d| d.stats.nodes_generated).sum();
        self.model().observe_with(
            tier_idx,
            &tier.cost,
            req.snr_db,
            Some(cond),
            nodes / b as u64,
            service_ns / b as u64,
        );

        FrameResponse {
            request: req,
            detections: dets,
            tier: tier_idx,
            tier_label: Arc::clone(&tier.label),
            prep_factors,
            queue_wait,
            service_time,
            latency,
            deadline_missed,
        }
    }
}
