//! The worker loop: drain a batch, decode each request at its ladder
//! rung, push the batch of responses.
//!
//! Each worker owns every scratch buffer the decode path needs
//! ([`PrepScratch`], [`SearchWorkspace`], a reusable [`Prepared`], the
//! batch and response vectors, a batch-level stats accumulator), so the
//! steady-state path performs **zero heap allocations per request**: the
//! `_into` preprocessing/decoding entry points write into recycled
//! [`Detection`] slots from the runtime's response pool, and all
//! synchronization costs (ingress lock, response push, metrics merge) are
//! paid once per batch.

use crate::ladder::choose_tier;
use crate::request::{DecodeTier, DetectionRequest, DetectionResponse};
use crate::runtime::Shared;
use sd_core::{
    preprocess_ordered_into, DetectionStats, Detector, KBestSd, MmseDetector, PrepScratch,
    Prepared, SearchWorkspace, SphereDecoder,
};
use std::sync::Arc;
use std::time::Instant;

pub(crate) struct Worker {
    shared: Arc<Shared>,
    sd: SphereDecoder<f64>,
    kb: KBestSd<f64>,
    mmse: MmseDetector,
    order: usize,
    prep_scratch: PrepScratch<f64>,
    prep: Prepared<f64>,
    ws: SearchWorkspace<f64>,
    batch: Vec<DetectionRequest>,
    done: Vec<DetectionResponse>,
    batch_stats: DetectionStats,
}

impl Worker {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        let c = shared.constellation.clone();
        Worker {
            sd: SphereDecoder::new(c.clone()),
            kb: KBestSd::new(c.clone(), shared.config.ladder.kbest_k),
            mmse: MmseDetector::new(c.clone()),
            order: c.order(),
            prep_scratch: PrepScratch::new(),
            prep: Prepared::empty(),
            ws: SearchWorkspace::new(),
            batch: Vec::new(),
            done: Vec::new(),
            batch_stats: DetectionStats::default(),
            shared,
        }
    }

    pub(crate) fn run(mut self) {
        use std::sync::atomic::Ordering::Relaxed;
        let policy = self.shared.config.batch;
        loop {
            let mut batch = std::mem::take(&mut self.batch);
            batch.clear();
            if !self
                .shared
                .queue
                .pop_batch(&mut batch, policy.max_batch, policy.max_wait)
            {
                return; // closed and drained: shutdown
            }
            let size = batch.len();
            self.batch_stats.reset(0);
            for req in batch.drain(..) {
                let resp = self.serve_one(req);
                self.batch_stats.merge(&resp.detection.stats);
                self.done.push(resp);
            }
            self.batch = batch;
            let m = &self.shared.metrics;
            m.served.fetch_add(size as u64, Relaxed);
            m.batches.fetch_add(1, Relaxed);
            m.batch_items.fetch_add(size as u64, Relaxed);
            m.batch_size.record(size as u64);
            m.merge_stats(&self.batch_stats);
            self.shared.out.push_all(&mut self.done);
        }
    }

    fn serve_one(&mut self, req: DetectionRequest) -> DetectionResponse {
        use std::sync::atomic::Ordering::Relaxed;
        let started = Instant::now();
        let enqueued = req.enqueued_at.unwrap_or(started);
        let queue_wait = started.saturating_duration_since(enqueued);
        let remaining = req.deadline.saturating_sub(queue_wait);
        let m = req.frame.h.cols();
        let tier = choose_tier(
            &self.shared.config.ladder,
            &self.shared.model,
            req.snr_db,
            m,
            self.order,
            remaining,
        );
        let mut det = self.shared.pool.lock().unwrap().pop().unwrap_or_default();
        match tier {
            DecodeTier::Exact => {
                preprocess_ordered_into(
                    &req.frame,
                    self.sd.constellation(),
                    self.sd.ordering,
                    &mut self.prep_scratch,
                    &mut self.prep,
                );
                let r2 = self
                    .sd
                    .initial_radius
                    .resolve(req.frame.h.rows(), req.frame.noise_variance);
                self.sd
                    .detect_prepared_into(&self.prep, r2, &mut self.ws, &mut det);
            }
            DecodeTier::KBest => {
                preprocess_ordered_into(
                    &req.frame,
                    self.sd.constellation(),
                    self.sd.ordering,
                    &mut self.prep_scratch,
                    &mut self.prep,
                );
                self.kb
                    .detect_prepared_into(&self.prep, &mut self.ws, &mut det);
            }
            DecodeTier::Mmse => {
                // The last-resort rung tolerates the linear solver's
                // allocations: it only runs when budgets are blown.
                let d = self.mmse.detect(&req.frame);
                det.indices.clear();
                det.indices.extend_from_slice(&d.indices);
                det.stats.reset(0);
                det.stats.flops = d.stats.flops;
            }
        }
        let service_time = started.elapsed();
        let latency = queue_wait + service_time;
        let deadline_missed = latency > req.deadline;

        let metrics = &self.shared.metrics;
        let tier_counter = match tier {
            DecodeTier::Exact => &metrics.tier_exact,
            DecodeTier::KBest => &metrics.tier_kbest,
            DecodeTier::Mmse => &metrics.tier_mmse,
        };
        tier_counter.fetch_add(1, Relaxed);
        if deadline_missed {
            metrics.deadline_missed.fetch_add(1, Relaxed);
        }
        metrics.latency_ns.record(latency.as_nanos() as u64);
        metrics.queue_wait_ns.record(queue_wait.as_nanos() as u64);

        let service_ns = service_time.as_nanos() as u64;
        match tier {
            DecodeTier::Exact => self.shared.model.observe_tree(
                req.snr_db,
                det.stats.nodes_generated,
                service_ns,
                true,
            ),
            DecodeTier::KBest => self.shared.model.observe_tree(
                req.snr_db,
                det.stats.nodes_generated,
                service_ns,
                false,
            ),
            DecodeTier::Mmse => self.shared.model.observe_mmse(service_ns),
        }

        DetectionResponse {
            request: req,
            detection: det,
            tier,
            queue_wait,
            service_time,
            latency,
            deadline_missed,
        }
    }
}
