//! Request/response types: the runtime's external contract.
//!
//! A [`DetectionRequest`] is one channel use to decode plus its service
//! constraints (the claimed SNR operating point and a per-request
//! deadline). The runtime answers every accepted request with a
//! [`DetectionResponse`] that carries the request back to the caller —
//! ownership round-trips, so a closed-loop client can resubmit the same
//! buffers forever without touching the allocator. Requests the runtime
//! cannot accept are returned immediately as a typed [`Rejected`]; nothing
//! is ever dropped silently.
//!
//! A [`FrameRequest`] is the block-scale variant: one coherence block of
//! an OFDM resource grid — many receive vectors sharing one channel
//! matrix — submitted as a single unit with one deadline. The runtime
//! keeps the block intact through the worker pool, factors the shared
//! channel once, and answers with a [`FrameResponse`] carrying one
//! [`Detection`] per subcarrier. The same ownership round-trip applies
//! ([`RejectedFrame`] on refusal, [`crate::ServeRuntime::recycle_frame`]
//! on collection).

use sd_core::Detection;
use sd_wireless::FrameData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One frame to decode, with its service constraints.
#[derive(Debug)]
pub struct DetectionRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: u64,
    /// The received frame (channel estimate, receive vector, σ²).
    pub frame: FrameData,
    /// Operating SNR in dB — the key into the runtime's cost model.
    pub snr_db: f64,
    /// Response-time budget measured from admission. The paper's
    /// real-time line is [`sd_wireless::REAL_TIME_BUDGET`] (10 ms).
    pub deadline: Duration,
    /// Stamped by [`crate::ServeRuntime::submit`].
    pub(crate) enqueued_at: Option<Instant>,
    /// Predicted service cost (ns) stamped at admission from the target
    /// shard's *per-tier* cost model: the amount this item adds to the
    /// shard's queued-cost gauge, removed by whichever worker drains it.
    /// 0 while predictive admission is off (the gauge has no reader).
    pub(crate) admitted_cost_ns: u64,
}

impl DetectionRequest {
    /// Build a request.
    ///
    /// # Panics
    /// If `snr_db` is not finite — the SNR keys the runtime's cost model,
    /// and a NaN operating point would silently train the lowest-SNR
    /// curve with this request's cost. Rejecting it at the boundary keeps
    /// every downstream consumer total.
    pub fn new(id: u64, frame: FrameData, snr_db: f64, deadline: Duration) -> Self {
        assert!(
            snr_db.is_finite(),
            "request SNR must be finite, got {snr_db}"
        );
        DetectionRequest {
            id,
            frame,
            snr_db,
            deadline,
            enqueued_at: None,
            admitted_cost_ns: 0,
        }
    }
}

/// A served request: the decision plus where and how fast it was made.
#[derive(Debug)]
pub struct DetectionResponse {
    /// The original request, returned to the caller (frame ownership
    /// round-trips so buffers can be reused).
    pub request: DetectionRequest,
    /// Decoded indices and search instrumentation. The buffer comes from
    /// the runtime's response pool; hand it back with
    /// [`crate::ServeRuntime::recycle`].
    pub detection: Detection,
    /// Index into the runtime's tier registry of the rung that produced
    /// the decision (0 = most accurate).
    pub tier: usize,
    /// Registry label of that rung (e.g. `"exact"`); sharing the
    /// registry's `Arc<str>` keeps the response path allocation-free.
    pub tier_label: Arc<str>,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time the worker spent decoding.
    pub service_time: Duration,
    /// End-to-end admission-to-decision time.
    pub latency: Duration,
    /// Whether `latency` exceeded the request's deadline.
    pub deadline_missed: bool,
}

/// One coherence block to decode: a block of receive vectors sharing a
/// single channel matrix, served as one unit.
#[derive(Debug)]
pub struct FrameRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: u64,
    /// Per-subcarrier detection problems. Every `h` must be bit-identical
    /// to `subcarriers[0].h` — that shared channel is what the frame path
    /// factors once for the whole block.
    pub subcarriers: Vec<FrameData>,
    /// Operating SNR in dB for the whole block (a grid generator uses the
    /// block mean) — the key into the runtime's cost model.
    pub snr_db: f64,
    /// Response-time budget for the *whole block*, measured from
    /// admission.
    pub deadline: Duration,
    /// Stamped by [`crate::ServeRuntime::submit_frame`].
    pub(crate) enqueued_at: Option<Instant>,
    /// Predicted service cost of the whole block (ns), stamped at
    /// admission (see [`DetectionRequest::admitted_cost_ns`]).
    pub(crate) admitted_cost_ns: u64,
}

impl FrameRequest {
    /// Build a frame request.
    ///
    /// # Panics
    /// If `subcarriers` is empty, any subcarrier's channel is not
    /// bit-identical to the first's — a frame is *defined* by its shared
    /// channel; mixed channels must be submitted as separate frames — or
    /// `snr_db` is not finite (it keys the cost model; see
    /// [`DetectionRequest::new`]).
    pub fn new(id: u64, subcarriers: Vec<FrameData>, snr_db: f64, deadline: Duration) -> Self {
        assert!(snr_db.is_finite(), "frame SNR must be finite, got {snr_db}");
        assert!(
            !subcarriers.is_empty(),
            "a frame needs at least one subcarrier"
        );
        let h0 = &subcarriers[0].h;
        for (k, f) in subcarriers.iter().enumerate().skip(1) {
            assert!(
                f.h == *h0,
                "subcarrier {k} does not share the frame channel"
            );
        }
        FrameRequest {
            id,
            subcarriers,
            snr_db,
            deadline,
            enqueued_at: None,
            admitted_cost_ns: 0,
        }
    }

    /// Subcarriers (receive vectors) in the block.
    pub fn block_len(&self) -> usize {
        self.subcarriers.len()
    }
}

/// A served frame: one decision per subcarrier plus where and how fast
/// the block was decoded.
#[derive(Debug)]
pub struct FrameResponse {
    /// The original request, returned to the caller.
    pub request: FrameRequest,
    /// Per-subcarrier detections, in `request.subcarriers` order. The
    /// buffer comes from the runtime's frame pool; hand it back with
    /// [`crate::ServeRuntime::recycle_frame`].
    pub detections: Vec<Detection>,
    /// Registry index of the rung that decoded the whole block (one
    /// ladder decision per frame).
    pub tier: usize,
    /// Registry label of that rung.
    pub tier_label: Arc<str>,
    /// Channel preparations the block cost: 1 on the shared-prep path,
    /// `block_len()` on the per-vector fallback — the numerator of the
    /// prep-amortization ratio.
    pub prep_factors: usize,
    /// Time spent queued before a worker picked the frame up.
    pub queue_wait: Duration,
    /// Time the worker spent decoding the whole block.
    pub service_time: Duration,
    /// End-to-end admission-to-last-decision time.
    pub latency: Duration,
    /// Whether `latency` exceeded the frame's deadline.
    pub deadline_missed: bool,
}

/// Why a frame submission was refused; the block always comes back.
#[derive(Debug)]
pub struct RejectedFrame {
    /// The frame, returned unprocessed.
    pub request: FrameRequest,
    /// The reason for refusal.
    pub reason: RejectReason,
}

/// Why a submission was refused. The request always comes back to the
/// caller — admission control sheds load explicitly instead of queuing
/// without bound.
#[derive(Debug)]
pub struct Rejected {
    /// The request, returned unprocessed.
    pub request: DetectionRequest,
    /// The reason for refusal.
    pub reason: RejectReason,
}

/// Reason a request was refused at admission.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded ingress queue was at capacity. Under a sharded
    /// topology this is the *target shard's* queue — the one the
    /// request's channel hashed to — so `depth` reports that shard's
    /// backlog (== its share of the total capacity), not a global sum.
    QueueFull {
        /// Queue depth observed at rejection time (== capacity).
        depth: usize,
    },
    /// Predictive admission control refused the request: the target
    /// shard's queued cost — each queued item stamped at admission with
    /// the shard model's per-tier service-time prediction — is already
    /// predicted to outlast the request's *whole* deadline — even a
    /// zero-cost decode would miss, so admitting it would only burn
    /// service time the requests queued behind it still need. Only issued
    /// when [`crate::ServeConfig::with_predictive_admission`] is on and
    /// the shard's cost model has drain-rate evidence.
    PredictedLate {
        /// The predicted queue wait that exceeded the deadline.
        predicted_wait: Duration,
    },
    /// The runtime is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth } => write!(f, "ingress queue full ({depth} queued)"),
            RejectReason::PredictedLate { predicted_wait } => write!(
                f,
                "predicted queue wait {predicted_wait:?} exceeds the deadline"
            ),
            RejectReason::ShuttingDown => write!(f, "runtime shutting down"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_wireless::{Constellation, Modulation};

    #[test]
    fn reject_reason_display() {
        let s = format!("{}", RejectReason::QueueFull { depth: 7 });
        assert!(s.contains('7'));
        assert!(format!("{}", RejectReason::ShuttingDown).contains("shutting"));
        let late = RejectReason::PredictedLate {
            predicted_wait: Duration::from_millis(12),
        };
        assert!(format!("{late}").contains("predicted queue wait"));
    }

    fn coherent_frames(len: usize) -> Vec<FrameData> {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(3);
        let base = FrameData::generate(4, 4, &c, 0.1, &mut rng);
        (0..len)
            .map(|_| {
                let mut f = base.clone();
                let fresh = FrameData::generate(4, 4, &c, 0.1, &mut rng);
                f.y = fresh.y;
                f.tx = fresh.tx;
                f
            })
            .collect()
    }

    #[test]
    fn frame_request_validates_the_shared_channel() {
        let req = FrameRequest::new(1, coherent_frames(5), 10.0, Duration::from_millis(10));
        assert_eq!(req.block_len(), 5);
    }

    #[test]
    #[should_panic(expected = "does not share the frame channel")]
    fn mixed_channel_frame_rejected() {
        let c = Constellation::new(Modulation::Qam4);
        let mut rng = StdRng::seed_from_u64(4);
        let mut frames = coherent_frames(3);
        frames.push(FrameData::generate(4, 4, &c, 0.1, &mut rng));
        FrameRequest::new(2, frames, 10.0, Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "at least one subcarrier")]
    fn empty_frame_rejected() {
        FrameRequest::new(3, Vec::new(), 10.0, Duration::from_millis(10));
    }

    /// Regression: a NaN SNR used to sail through construction and poison
    /// the cost model's lowest-SNR bucket; it must be refused at the
    /// boundary instead.
    #[test]
    #[should_panic(expected = "SNR must be finite")]
    fn non_finite_snr_request_rejected() {
        let frame = coherent_frames(1).pop().unwrap();
        DetectionRequest::new(4, frame, f64::NAN, Duration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "SNR must be finite")]
    fn non_finite_snr_frame_rejected() {
        FrameRequest::new(
            5,
            coherent_frames(2),
            f64::INFINITY,
            Duration::from_millis(10),
        );
    }
}
