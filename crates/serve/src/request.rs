//! Request/response types: the runtime's external contract.
//!
//! A [`DetectionRequest`] is one channel use to decode plus its service
//! constraints (the claimed SNR operating point and a per-request
//! deadline). The runtime answers every accepted request with a
//! [`DetectionResponse`] that carries the request back to the caller —
//! ownership round-trips, so a closed-loop client can resubmit the same
//! buffers forever without touching the allocator. Requests the runtime
//! cannot accept are returned immediately as a typed [`Rejected`]; nothing
//! is ever dropped silently.

use sd_core::Detection;
use sd_wireless::FrameData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One frame to decode, with its service constraints.
#[derive(Debug)]
pub struct DetectionRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: u64,
    /// The received frame (channel estimate, receive vector, σ²).
    pub frame: FrameData,
    /// Operating SNR in dB — the key into the runtime's cost model.
    pub snr_db: f64,
    /// Response-time budget measured from admission. The paper's
    /// real-time line is [`sd_wireless::REAL_TIME_BUDGET`] (10 ms).
    pub deadline: Duration,
    /// Stamped by [`crate::ServeRuntime::submit`].
    pub(crate) enqueued_at: Option<Instant>,
}

impl DetectionRequest {
    /// Build a request.
    pub fn new(id: u64, frame: FrameData, snr_db: f64, deadline: Duration) -> Self {
        DetectionRequest {
            id,
            frame,
            snr_db,
            deadline,
            enqueued_at: None,
        }
    }
}

/// A served request: the decision plus where and how fast it was made.
#[derive(Debug)]
pub struct DetectionResponse {
    /// The original request, returned to the caller (frame ownership
    /// round-trips so buffers can be reused).
    pub request: DetectionRequest,
    /// Decoded indices and search instrumentation. The buffer comes from
    /// the runtime's response pool; hand it back with
    /// [`crate::ServeRuntime::recycle`].
    pub detection: Detection,
    /// Index into the runtime's tier registry of the rung that produced
    /// the decision (0 = most accurate).
    pub tier: usize,
    /// Registry label of that rung (e.g. `"exact"`); sharing the
    /// registry's `Arc<str>` keeps the response path allocation-free.
    pub tier_label: Arc<str>,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time the worker spent decoding.
    pub service_time: Duration,
    /// End-to-end admission-to-decision time.
    pub latency: Duration,
    /// Whether `latency` exceeded the request's deadline.
    pub deadline_missed: bool,
}

/// Why a submission was refused. The request always comes back to the
/// caller — admission control sheds load explicitly instead of queuing
/// without bound.
#[derive(Debug)]
pub struct Rejected {
    /// The request, returned unprocessed.
    pub request: DetectionRequest,
    /// The reason for refusal.
    pub reason: RejectReason,
}

/// Reason a request was refused at admission.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded ingress queue was at capacity.
    QueueFull {
        /// Queue depth observed at rejection time (== capacity).
        depth: usize,
    },
    /// The runtime is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth } => write!(f, "ingress queue full ({depth} queued)"),
            RejectReason::ShuttingDown => write!(f, "runtime shutting down"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reason_display() {
        let s = format!("{}", RejectReason::QueueFull { depth: 7 });
        assert!(s.contains('7'));
        assert!(format!("{}", RejectReason::ShuttingDown).contains("shutting"));
    }
}
