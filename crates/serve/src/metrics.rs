//! Lock-light runtime metrics: atomic counters, log2 latency histograms,
//! per-tier serve counters with cost-model validation, and one aggregated
//! [`DetectionStats`] merged per batch.
//!
//! Everything on the per-request path is a relaxed atomic increment; the
//! only lock is the per-*batch* [`DetectionStats`] merge, amortized by the
//! batcher. Tier-indexed metrics are sized from the runtime's tier
//! registry at construction, so custom registries get first-class
//! accounting with no code changes. [`Metrics::snapshot`] materializes a
//! plain-data [`MetricsSnapshot`] for reports and the load harness.

use sd_core::DetectionStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const N_BUCKETS: usize = 64;

/// Histogram over power-of-two buckets: bucket `i` counts values with
/// `floor(log2(v)) == i` (value 0 lands in bucket 0). Records are one
/// relaxed atomic increment; quantiles are computed from a snapshot and
/// are upper bounds (bucket upper edge), so p50/p99 never understate.
pub struct Log2Histogram {
    buckets: [AtomicU64; N_BUCKETS],
}

impl Log2Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        let idx = 63 - (v | 1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the current bucket counts.
    pub fn counts(&self) -> [u64; N_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total records in a snapshot.
    pub fn total(counts: &[u64; N_BUCKETS]) -> u64 {
        counts.iter().sum()
    }

    /// Quantile `q` in `[0, 1]` from snapshotted counts, as the upper edge
    /// of the containing bucket; 0 when empty. The top bucket has no finite
    /// upper edge, so it saturates to its lower edge (`2^63`) — still an
    /// honest "at least this much" figure, without the `u64::MAX` sentinel
    /// poisoning every downstream µs conversion.
    pub fn quantile(counts: &[u64; N_BUCKETS], q: f64) -> u64 {
        let total = Self::total(counts);
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if i >= N_BUCKETS - 1 {
                    1u64 << (N_BUCKETS - 1)
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        1u64 << (N_BUCKETS - 1)
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-tier hot-path counters, one slot per registry tier.
pub struct TierMetrics {
    /// The tier's registry label.
    pub label: Arc<str>,
    /// Responses served at this tier.
    pub served: AtomicU64,
    /// Cost-model validation: distribution of `|predicted − actual|`
    /// decode nanoseconds for requests served at this tier.
    pub predict_err_ns: Log2Histogram,
}

/// Per-shard hot-path counters, one slot per runtime shard. Summed over
/// shards these close the global invariants (`Σ routed == accepted`,
/// `Σ served == served`, per-shard `hits + misses + bypass == served`);
/// individually they show where affinity routing sent the traffic and how
/// much of it was stolen away.
pub struct ShardMetrics {
    /// Items admission routed to this shard (subcarriers for frames).
    pub routed: AtomicU64,
    /// Items served by this shard's workers (from its own queue or loot).
    pub served: AtomicU64,
    /// Items served from the shard's *own* queue — the affinity-routed
    /// path. `served − affinity_served` arrived by stealing.
    pub affinity_served: AtomicU64,
    /// Items this shard's workers stole from other shards.
    pub stolen_in: AtomicU64,
    /// Items other shards' workers stole from this queue.
    pub stolen_out: AtomicU64,
    /// This shard's prep-cache hits (see the global counters).
    pub prep_hits: AtomicU64,
    /// This shard's prep-cache misses.
    pub prep_misses: AtomicU64,
    /// This shard's cache bypasses (disabled, non-cacheable tier, frames).
    pub prep_bypass: AtomicU64,
}

/// Shared runtime counters. All fields are written on the hot path with
/// relaxed atomics except `stats`, merged once per batch.
pub struct Metrics {
    /// Logical cores the host reported at startup (the default worker and
    /// core-budget allowance derive from it).
    pub host_cores: usize,
    /// Current subtree-decoder lane allowance planned by the adaptive
    /// core-budget controller (0 until a controller is attached).
    pub core_budget: AtomicU64,
    /// Times the controller changed the plan.
    pub budget_replans: AtomicU64,
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardMetrics>,
    /// Requests admitted into the ingress queue.
    pub accepted: AtomicU64,
    /// Requests refused because the queue was full.
    pub rejected_full: AtomicU64,
    /// Requests refused because the runtime was shutting down.
    pub rejected_shutdown: AtomicU64,
    /// Requests refused by predictive admission control: the target
    /// shard's predicted queue wait already exceeded the whole deadline
    /// (see [`crate::RejectReason::PredictedLate`]). Always 0 with the
    /// gate off.
    pub rejected_predicted: AtomicU64,
    /// Responses produced.
    pub served: AtomicU64,
    /// Per-tier serve counters and cost-model error, indexed by tier.
    pub tiers: Vec<TierMetrics>,
    /// Responses whose end-to-end latency exceeded their deadline.
    pub deadline_missed: AtomicU64,
    /// Responses whose search ran to completion ([`sd_core::SearchQuality::Exact`]).
    /// `quality_exact + budget_exhausted == served` once the runtime is
    /// quiescent — every response is one or the other.
    pub quality_exact: AtomicU64,
    /// Responses truncated by their decode budget
    /// ([`sd_core::SearchQuality::BudgetTruncated`]): the anytime engine
    /// returned its best-so-far answer at the node cap or deadline.
    pub budget_exhausted: AtomicU64,
    /// Requests whose preparation reused a cached channel factorization.
    pub prep_cache_hits: AtomicU64,
    /// Requests whose preparation factored (and cached) their channel.
    pub prep_cache_misses: AtomicU64,
    /// Requests prepared outside the cache (cache disabled, or the tier's
    /// preprocessing is not channel-cacheable). Every served request is
    /// exactly one of hit / miss / bypass.
    pub prep_cache_bypass: AtomicU64,
    /// Batches drained from the ingress queue.
    pub batches: AtomicU64,
    /// Total requests across all batches (mean batch = items / batches).
    pub batch_items: AtomicU64,
    /// Frame requests admitted (their subcarriers also count in
    /// `accepted`, so vector-level accounting stays closed over mixed
    /// traffic).
    pub frames_accepted: AtomicU64,
    /// Frame requests shed at admission (queue full).
    pub frames_rejected_full: AtomicU64,
    /// Frame requests refused during shutdown.
    pub frames_rejected_shutdown: AtomicU64,
    /// Frame requests refused by predictive admission control (their
    /// subcarriers also count in `rejected_predicted`).
    pub frames_rejected_predicted: AtomicU64,
    /// Frame responses produced (their subcarriers also count in
    /// `served`).
    pub frames_served: AtomicU64,
    /// Frames decoded by the cross-subcarrier **fused** block path (one
    /// GEMM batch per tree level for the whole block); the remainder
    /// (`frames_served − frames_fused`) ran the per-subcarrier loop.
    pub frames_fused: AtomicU64,
    /// Frames whose end-to-end latency exceeded their deadline (their
    /// subcarriers also count in `deadline_missed`).
    pub frames_deadline_missed: AtomicU64,
    /// Subcarriers decoded through the frame path.
    pub frame_subcarriers: AtomicU64,
    /// Channel preparations the frame path performed — 1 per frame on the
    /// shared-prep path, `block_len` on the per-vector fallback. The
    /// prep-amortization ratio is `frame_subcarriers / frame_prep_factors`
    /// (block size when every frame shares its prep).
    pub frame_prep_factors: AtomicU64,
    /// Subcarriers-per-frame distribution.
    pub frame_size: Log2Histogram,
    /// Frame end-to-end latency distribution (nanoseconds).
    pub frame_latency_ns: Log2Histogram,
    /// End-to-end latency distribution (nanoseconds).
    pub latency_ns: Log2Histogram,
    /// Queue-wait distribution (nanoseconds).
    pub queue_wait_ns: Log2Histogram,
    /// Batch-size distribution.
    pub batch_size: Log2Histogram,
    /// Aggregated decoder instrumentation, merged per batch.
    stats: Mutex<DetectionStats>,
}

impl Metrics {
    /// Zeroed metrics with one tier slot per registry label and one shard
    /// slot per runtime shard. `host_cores` is recorded verbatim for the
    /// exports.
    pub fn new(tier_labels: Vec<Arc<str>>, n_shards: usize, host_cores: usize) -> Self {
        Metrics {
            host_cores,
            core_budget: AtomicU64::new(0),
            budget_replans: AtomicU64::new(0),
            shards: (0..n_shards)
                .map(|_| ShardMetrics {
                    routed: AtomicU64::new(0),
                    served: AtomicU64::new(0),
                    affinity_served: AtomicU64::new(0),
                    stolen_in: AtomicU64::new(0),
                    stolen_out: AtomicU64::new(0),
                    prep_hits: AtomicU64::new(0),
                    prep_misses: AtomicU64::new(0),
                    prep_bypass: AtomicU64::new(0),
                })
                .collect(),
            accepted: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            rejected_predicted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            tiers: tier_labels
                .into_iter()
                .map(|label| TierMetrics {
                    label,
                    served: AtomicU64::new(0),
                    predict_err_ns: Log2Histogram::new(),
                })
                .collect(),
            deadline_missed: AtomicU64::new(0),
            quality_exact: AtomicU64::new(0),
            budget_exhausted: AtomicU64::new(0),
            prep_cache_hits: AtomicU64::new(0),
            prep_cache_misses: AtomicU64::new(0),
            prep_cache_bypass: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_items: AtomicU64::new(0),
            frames_accepted: AtomicU64::new(0),
            frames_rejected_full: AtomicU64::new(0),
            frames_rejected_shutdown: AtomicU64::new(0),
            frames_rejected_predicted: AtomicU64::new(0),
            frames_served: AtomicU64::new(0),
            frames_fused: AtomicU64::new(0),
            frames_deadline_missed: AtomicU64::new(0),
            frame_subcarriers: AtomicU64::new(0),
            frame_prep_factors: AtomicU64::new(0),
            frame_size: Log2Histogram::new(),
            frame_latency_ns: Log2Histogram::new(),
            latency_ns: Log2Histogram::new(),
            queue_wait_ns: Log2Histogram::new(),
            batch_size: Log2Histogram::new(),
            stats: Mutex::new(DetectionStats::default()),
        }
    }

    /// Merge one batch's aggregated decoder stats.
    pub fn merge_stats(&self, batch: &DetectionStats) {
        self.stats.lock().unwrap().merge(batch);
    }

    /// Materialize a plain-data snapshot. `shard_depths` holds each shard
    /// queue's depth, sampled by the caller (the runtime knows the queues;
    /// the metrics do not) — the aggregate `queue_depth` is their sum, and
    /// an empty slice reads as all-empty (shutdown snapshots).
    pub fn snapshot(&self, shard_depths: &[usize]) -> MetricsSnapshot {
        let queue_depth = shard_depths.iter().sum();
        let lat = self.latency_ns.counts();
        let wait = self.queue_wait_ns.counts();
        let flat = self.frame_latency_ns.counts();
        // Load `missed` before `served`: workers bump `served` first, so
        // this order can only under-report the miss rate mid-update, never
        // push it above 1. Same order for the frame-level pair.
        let missed = self.deadline_missed.load(Ordering::Relaxed);
        let served = self.served.load(Ordering::Relaxed);
        let frames_missed = self.frames_deadline_missed.load(Ordering::Relaxed);
        let frames_served = self.frames_served.load(Ordering::Relaxed);
        // Amortization ratio = subcarriers / factors. Workers bump factors
        // before subcarriers and this load order is the reverse, so a
        // mid-update read can only under-report the ratio.
        let frame_subcarriers = self.frame_subcarriers.load(Ordering::Relaxed);
        let frame_prep_factors = self.frame_prep_factors.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let items = self.batch_items.load(Ordering::Relaxed);
        MetricsSnapshot {
            host_cores: self.host_cores,
            n_shards: self.shards.len(),
            core_budget: self.core_budget.load(Ordering::Relaxed),
            budget_replans: self.budget_replans.load(Ordering::Relaxed),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardSnapshot {
                    routed: s.routed.load(Ordering::Relaxed),
                    served: s.served.load(Ordering::Relaxed),
                    affinity_served: s.affinity_served.load(Ordering::Relaxed),
                    stolen_in: s.stolen_in.load(Ordering::Relaxed),
                    stolen_out: s.stolen_out.load(Ordering::Relaxed),
                    prep_hits: s.prep_hits.load(Ordering::Relaxed),
                    prep_misses: s.prep_misses.load(Ordering::Relaxed),
                    prep_bypass: s.prep_bypass.load(Ordering::Relaxed),
                    queue_depth: shard_depths.get(i).copied().unwrap_or(0),
                })
                .collect(),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            rejected_predicted: self.rejected_predicted.load(Ordering::Relaxed),
            served,
            tiers: self
                .tiers
                .iter()
                .map(|t| {
                    let err = t.predict_err_ns.counts();
                    TierSnapshot {
                        label: Arc::clone(&t.label),
                        served: t.served.load(Ordering::Relaxed),
                        p50_predict_err_us: Log2Histogram::quantile(&err, 0.50) as f64 / 1e3,
                        p99_predict_err_us: Log2Histogram::quantile(&err, 0.99) as f64 / 1e3,
                    }
                })
                .collect(),
            deadline_missed: missed,
            quality_exact: self.quality_exact.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            prep_cache_hits: self.prep_cache_hits.load(Ordering::Relaxed),
            prep_cache_misses: self.prep_cache_misses.load(Ordering::Relaxed),
            prep_cache_bypass: self.prep_cache_bypass.load(Ordering::Relaxed),
            deadline_miss_rate: if served == 0 {
                0.0
            } else {
                missed as f64 / served as f64
            },
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                items as f64 / batches as f64
            },
            frames_accepted: self.frames_accepted.load(Ordering::Relaxed),
            frames_rejected_full: self.frames_rejected_full.load(Ordering::Relaxed),
            frames_rejected_shutdown: self.frames_rejected_shutdown.load(Ordering::Relaxed),
            frames_rejected_predicted: self.frames_rejected_predicted.load(Ordering::Relaxed),
            frames_served,
            frames_fused: self.frames_fused.load(Ordering::Relaxed),
            frames_deadline_missed: frames_missed,
            frame_subcarriers,
            frame_prep_factors,
            mean_frame_size: if frames_served == 0 {
                0.0
            } else {
                frame_subcarriers as f64 / frames_served as f64
            },
            prep_amortization: if frame_prep_factors == 0 {
                0.0
            } else {
                frame_subcarriers as f64 / frame_prep_factors as f64
            },
            p99_frame_latency_us: Log2Histogram::quantile(&flat, 0.99) as f64 / 1e3,
            queue_depth,
            p50_latency_us: Log2Histogram::quantile(&lat, 0.50) as f64 / 1e3,
            p99_latency_us: Log2Histogram::quantile(&lat, 0.99) as f64 / 1e3,
            p99_queue_wait_us: Log2Histogram::quantile(&wait, 0.99) as f64 / 1e3,
            stats: self.stats.lock().unwrap().clone(),
        }
    }
}

/// One tier's plain-data view at snapshot time.
#[derive(Clone, Debug)]
pub struct TierSnapshot {
    /// The tier's registry label.
    pub label: Arc<str>,
    /// Responses served at this tier.
    pub served: u64,
    /// Median `|predicted − actual|` decode time (µs, bucket upper bound)
    /// — how well the cost model knows this tier.
    pub p50_predict_err_us: f64,
    /// 99th-percentile cost-model error (µs, bucket upper bound).
    pub p99_predict_err_us: f64,
}

/// One shard's plain-data view at snapshot time (see [`ShardMetrics`]).
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// Items admission routed here (subcarriers for frames).
    pub routed: u64,
    /// Items served by this shard's workers.
    pub served: u64,
    /// Items served from the shard's own (affinity-routed) queue.
    pub affinity_served: u64,
    /// Items this shard's workers stole from other shards.
    pub stolen_in: u64,
    /// Items other shards stole from this queue.
    pub stolen_out: u64,
    /// This shard's prep-cache hits.
    pub prep_hits: u64,
    /// This shard's prep-cache misses.
    pub prep_misses: u64,
    /// This shard's cache bypasses.
    pub prep_bypass: u64,
    /// This shard queue's depth when the snapshot was taken.
    pub queue_depth: usize,
}

/// Plain-data view of [`Metrics`] at one instant.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Logical cores the host reported at startup.
    pub host_cores: usize,
    /// Number of runtime shards.
    pub n_shards: usize,
    /// Current subtree-decoder lane allowance (0 without a controller).
    pub core_budget: u64,
    /// Times the core-budget controller changed the plan.
    pub budget_replans: u64,
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardSnapshot>,
    /// Requests admitted.
    pub accepted: u64,
    /// Requests shed at admission (queue full).
    pub rejected_full: u64,
    /// Requests refused during shutdown.
    pub rejected_shutdown: u64,
    /// Requests shed by predictive admission control (predicted queue
    /// wait exceeded the whole deadline; 0 with the gate off).
    pub rejected_predicted: u64,
    /// Responses produced.
    pub served: u64,
    /// Per-tier serve counts and cost-model error, indexed by tier.
    pub tiers: Vec<TierSnapshot>,
    /// Deadline misses among served responses.
    pub deadline_missed: u64,
    /// Responses whose search ran to completion (exact quality).
    pub quality_exact: u64,
    /// Responses truncated by their decode budget (anytime best-so-far).
    pub budget_exhausted: u64,
    /// Requests whose preparation reused a cached channel factorization.
    pub prep_cache_hits: u64,
    /// Requests whose preparation factored (and cached) their channel.
    pub prep_cache_misses: u64,
    /// Requests prepared outside the cache (disabled or non-cacheable
    /// tier). `hits + misses + bypass` counts every prepared request.
    pub prep_cache_bypass: u64,
    /// `deadline_missed / served`.
    pub deadline_miss_rate: f64,
    /// Batches drained.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch_size: f64,
    /// Frame requests admitted (subcarriers also count in `accepted`).
    pub frames_accepted: u64,
    /// Frame requests shed at admission.
    pub frames_rejected_full: u64,
    /// Frame requests refused during shutdown.
    pub frames_rejected_shutdown: u64,
    /// Frame requests shed by predictive admission control.
    pub frames_rejected_predicted: u64,
    /// Frame responses produced (subcarriers also count in `served`).
    pub frames_served: u64,
    /// Frames decoded by the cross-subcarrier fused block path.
    pub frames_fused: u64,
    /// Frames that exceeded their deadline.
    pub frames_deadline_missed: u64,
    /// Subcarriers decoded through the frame path.
    pub frame_subcarriers: u64,
    /// Channel preparations the frame path performed.
    pub frame_prep_factors: u64,
    /// Mean subcarriers per served frame.
    pub mean_frame_size: f64,
    /// `frame_subcarriers / frame_prep_factors` — how many subcarriers
    /// each channel factorization served (block size when every frame
    /// rode the shared-prep path; 1.0 means no amortization).
    pub prep_amortization: f64,
    /// 99th-percentile frame end-to-end latency (µs, bucket upper bound).
    pub p99_frame_latency_us: f64,
    /// Ingress depth when the snapshot was taken.
    pub queue_depth: usize,
    /// Median end-to-end latency (µs, bucket upper bound).
    pub p50_latency_us: f64,
    /// 99th-percentile end-to-end latency (µs, bucket upper bound).
    pub p99_latency_us: f64,
    /// 99th-percentile queue wait (µs, bucket upper bound).
    pub p99_queue_wait_us: f64,
    /// Aggregated decoder instrumentation across all served requests.
    pub stats: DetectionStats,
}

impl MetricsSnapshot {
    /// Serve count of the tier labelled `label` (0 if absent).
    pub fn tier_served(&self, label: &str) -> u64 {
        self.tiers
            .iter()
            .find(|t| &*t.label == label)
            .map_or(0, |t| t.served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(names: &[&str]) -> Vec<Arc<str>> {
        names.iter().map(|&n| Arc::from(n)).collect()
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Log2Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        let c = h.counts();
        assert_eq!(c[0], 2);
        assert_eq!(c[1], 2);
        assert_eq!(c[10], 1);
        assert_eq!(Log2Histogram::total(&c), 5);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6, upper edge 127
        }
        h.record(1 << 20); // one outlier
        let c = h.counts();
        assert_eq!(Log2Histogram::quantile(&c, 0.50), 127);
        assert_eq!(Log2Histogram::quantile(&c, 0.99), 127);
        assert_eq!(Log2Histogram::quantile(&c, 1.0), (1 << 21) - 1);
        assert_eq!(Log2Histogram::quantile(&[0; N_BUCKETS], 0.5), 0);
    }

    #[test]
    fn top_bucket_quantile_saturates() {
        // The top bucket's upper edge would overflow u64; the quantile
        // saturates to the bucket's lower edge instead of the old
        // `u64::MAX` sentinel (which rendered as ~1.8e16 µs).
        let h = Log2Histogram::new();
        h.record(u64::MAX);
        let c = h.counts();
        assert_eq!(c[N_BUCKETS - 1], 1);
        let top = Log2Histogram::quantile(&c, 1.0);
        assert_eq!(top, 1u64 << (N_BUCKETS - 1));
        assert!(top < u64::MAX);
        assert_eq!(Log2Histogram::quantile(&c, 0.5), top);
    }

    #[test]
    fn snapshot_records_shards_and_host() {
        let m = Metrics::new(labels(&["exact"]), 2, 8);
        m.shards[0].routed.store(5, Ordering::Relaxed);
        m.shards[0].served.store(4, Ordering::Relaxed);
        m.shards[0].affinity_served.store(3, Ordering::Relaxed);
        m.shards[0].stolen_out.store(1, Ordering::Relaxed);
        m.shards[1].stolen_in.store(1, Ordering::Relaxed);
        m.core_budget.store(6, Ordering::Relaxed);
        m.budget_replans.store(2, Ordering::Relaxed);
        let s = m.snapshot(&[3, 1]);
        assert_eq!(s.host_cores, 8);
        assert_eq!(s.n_shards, 2);
        assert_eq!(s.core_budget, 6);
        assert_eq!(s.budget_replans, 2);
        assert_eq!(s.queue_depth, 4, "aggregate depth sums the shards");
        assert_eq!(s.shards[0].queue_depth, 3);
        assert_eq!(s.shards[1].queue_depth, 1);
        assert_eq!(s.shards[0].routed, 5);
        assert_eq!(s.shards[0].affinity_served, 3);
        assert_eq!(s.shards[0].stolen_out, 1);
        assert_eq!(s.shards[1].stolen_in, 1);
        // A shutdown snapshot may pass an empty depth slice.
        let s = m.snapshot(&[]);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.shards[0].queue_depth, 0);
    }

    #[test]
    fn snapshot_computes_rates() {
        let m = Metrics::new(labels(&["exact", "mmse"]), 1, 1);
        m.served.store(8, Ordering::Relaxed);
        m.deadline_missed.store(2, Ordering::Relaxed);
        m.batches.store(4, Ordering::Relaxed);
        m.batch_items.store(8, Ordering::Relaxed);
        let batch = DetectionStats {
            nodes_generated: 40,
            ..Default::default()
        };
        m.merge_stats(&batch);
        m.merge_stats(&batch);
        let s = m.snapshot(&[3]);
        assert_eq!(s.queue_depth, 3);
        assert!((s.deadline_miss_rate - 0.25).abs() < 1e-12);
        assert!((s.mean_batch_size - 2.0).abs() < 1e-12);
        assert_eq!(s.stats.nodes_generated, 80);
    }

    /// Every served response is either exact or budget-truncated; the
    /// snapshot carries both counters so exports can close the invariant
    /// `quality_exact + budget_exhausted == served`.
    #[test]
    fn snapshot_carries_search_quality_counters() {
        let m = Metrics::new(labels(&["exact"]), 1, 1);
        m.served.store(10, Ordering::Relaxed);
        m.quality_exact.store(7, Ordering::Relaxed);
        m.budget_exhausted.store(3, Ordering::Relaxed);
        let s = m.snapshot(&[0]);
        assert_eq!(s.quality_exact, 7);
        assert_eq!(s.budget_exhausted, 3);
        assert_eq!(s.quality_exact + s.budget_exhausted, s.served);
    }

    #[test]
    fn snapshot_computes_frame_rates() {
        let m = Metrics::new(labels(&["exact"]), 1, 1);
        m.frames_accepted.store(5, Ordering::Relaxed);
        m.frames_served.store(4, Ordering::Relaxed);
        m.frames_fused.store(3, Ordering::Relaxed);
        m.frames_deadline_missed.store(1, Ordering::Relaxed);
        m.frame_subcarriers.store(64, Ordering::Relaxed);
        m.frame_prep_factors.store(4, Ordering::Relaxed);
        m.frame_size.record(16);
        m.frame_latency_ns.record(2_000_000);
        let s = m.snapshot(&[0]);
        assert_eq!(s.frames_accepted, 5);
        assert_eq!(s.frames_served, 4);
        assert_eq!(s.frames_fused, 3);
        assert_eq!(s.frames_deadline_missed, 1);
        assert_eq!(s.frame_subcarriers, 64);
        assert_eq!(s.frame_prep_factors, 4);
        assert!((s.mean_frame_size - 16.0).abs() < 1e-12);
        assert!((s.prep_amortization - 16.0).abs() < 1e-12);
        assert!(s.p99_frame_latency_us >= 2_000.0);
        // Empty frame path: ratios degrade to 0, not NaN.
        let empty = Metrics::new(labels(&["exact"]), 1, 1).snapshot(&[0]);
        assert_eq!(empty.mean_frame_size, 0.0);
        assert_eq!(empty.prep_amortization, 0.0);
    }

    #[test]
    fn tier_slots_track_serves_and_predict_error() {
        let m = Metrics::new(labels(&["exact", "k-best", "mmse"]), 1, 1);
        m.tiers[0].served.fetch_add(5, Ordering::Relaxed);
        m.tiers[0].predict_err_ns.record(100_000); // 100 µs off
        m.tiers[2].served.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot(&[0]);
        assert_eq!(s.tier_served("exact"), 5);
        assert_eq!(s.tier_served("k-best"), 0);
        assert_eq!(s.tier_served("mmse"), 1);
        assert_eq!(s.tier_served("nonexistent"), 0);
        assert!(s.tiers[0].p50_predict_err_us >= 100.0);
        assert_eq!(s.tiers[1].p50_predict_err_us, 0.0);
    }
}
