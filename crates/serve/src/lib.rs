//! # sd-serve
//!
//! A deadline-aware batching detection runtime over the sphere-decoder
//! core, with graceful degradation and a closed-loop load harness.
//!
//! The paper frames signal detection as a *real-time service*: decisions
//! are worthless after the ~10 ms response line
//! ([`sd_wireless::REAL_TIME_BUDGET`]). Exact sphere decoding, however,
//! has heavy-tailed SNR-dependent latency — exactly the wrong shape for a
//! deadline. This crate is the systems layer that closes that gap:
//!
//! * **Admission control** — a bounded MPMC ingress [queue];
//!   overload is shed *at the door* with a typed [`Rejected`], never
//!   queued without bound, and every admitted request is answered
//!   (drain-then-join shutdown).
//! * **Adaptive batching** — workers drain requests in flush-on-size-or-
//!   age [batches](batcher), amortizing every per-request lock and
//!   metrics update; the same trick the paper's GEMM formulation plays on
//!   partial distances.
//! * **Graceful degradation** — a [ladder] over a configurable
//!   [tier registry](registry) (stock: exact SD → K-best → MMSE), driven
//!   by a running per-SNR [cost model](budget), picks the first tier
//!   whose predicted cost fits each request's remaining deadline budget.
//!   Tiers are [`sd_core::PreparedDetector`] trait objects, so any engine
//!   in the detector zoo can be stacked into a custom descent via
//!   [`ServeRuntime::start_with_registry`].
//! * **Predictive admission + anytime decoding** — the cost model keys
//!   its node curves on a pre-decode channel-conditioning observable
//!   ([`sd_core::ChannelObservables`]) as well as SNR, and in anytime
//!   mode ([`LadderConfig::anytime`]) every ladder decision also fixes an
//!   explicit [`sd_core::DecodeBudget`] up front: a mispredicted decode
//!   truncates at its node cap or deadline with a best-so-far answer
//!   (flagged [`sd_core::SearchQuality::BudgetTruncated`]) instead of
//!   blowing the deadline for everything queued behind it.
//! * **Zero-allocation steady state** — the decode path writes into
//!   recycled buffers through the `_into` entry points of `sd-core`;
//!   after warm-up a request is served without touching the allocator.
//! * **Sharded channel-affinity runtime** — the pool is split into
//!   shards, each owning a bounded ingress queue, its workers, a
//!   channel-coherent prep cache and a cost model; admission routes by a
//!   hash of the channel matrix ([`prep_cache::route_hash`]), so one
//!   channel's traffic stays on one shard and its cache. Idle shard
//!   workers **steal** whole queue items (never splitting a frame) from
//!   loaded neighbors, bounded to half the victim's backlog — load
//!   imbalance costs latency, not idle cores. One shard (the default) is
//!   exactly the classic single-queue runtime.
//! * **Channel-coherent preparation caching** — requests sharing one
//!   channel matrix (a coherence block) reuse a cached QR factorization
//!   per shard ([`prep_cache`]); only the cheap `ȳ = Qᴴy` half runs per
//!   request, bit-identically to the uncached path.
//! * **Adaptive core budget** — an optional controller
//!   ([`ServeConfig::with_core_budget`]) splits the physical core
//!   allowance between request-level workers and the subtree-parallel
//!   exact decoder's lanes via a shared [`sd_core::WorkerBudget`]: low
//!   load widens the decoder (latency), sustained backlog narrows it so
//!   cores serve independent requests (throughput), with EWMA smoothing
//!   and watermark hysteresis so the plan never flaps.
//! * **Frame-scale serving** — a whole coherence block submitted as one
//!   [`FrameRequest`] travels intact to one worker, gets one ladder
//!   decision (cost scaled by block size), one shared channel
//!   factorization and one batched `ȳ = QᴴY` apply
//!   ([`sd_core::decode_block_into`]), and comes back as a
//!   [`FrameResponse`] with per-subcarrier detections — bit-identical to
//!   per-vector submission, at a fraction of the per-request overhead.
//! * **Observability** — lock-light [metrics] (latency/wait
//!   histograms, batch-size distribution, tier and shed counters,
//!   aggregated [`sd_core::DetectionStats`]).
//! * **A load harness** — a seeded [load generator](loadgen) that paces a
//!   reproducible request mixture at an offered rate and reduces the run
//!   to throughput / percentile-latency / miss-rate / degradation-mix.
//!
//! With one worker and degradation disabled, served decisions are
//! bit-identical to calling [`sd_core::SphereDecoder`] directly — the
//! runtime adds scheduling, not numerics (`tests/serve_exactness.rs`).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batcher;
pub mod budget;
pub mod export;
pub mod ladder;
pub mod loadgen;
pub mod metrics;
pub mod prep_cache;
pub mod queue;
pub mod registry;
pub mod request;
pub mod runtime;
mod worker;

pub use batcher::BatchPolicy;
pub use budget::{
    fsd_nodes, kbest_nodes, CoreBudgetPolicy, CostModel, TierCostClass, WorkerBudget,
};
pub use export::{json_line, prometheus_text, render, validate_json, ExportFormat};
pub use ladder::{
    choose_tier, choose_tier_block, choose_tier_block_budgeted, choose_tier_budgeted, LadderConfig,
    TierDecision, MIN_ANYTIME_NODES,
};
pub use loadgen::{
    build_coherent_requests, build_frame_requests, build_requests, explode_frames, run_frame_load,
    run_load, run_request_stream, FrameLoadConfig, FrameLoadReport, LoadConfig, LoadReport,
};
pub use metrics::{Log2Histogram, Metrics, MetricsSnapshot, ShardSnapshot, TierSnapshot};
pub use prep_cache::{route_hash, PrepCache};
pub use queue::{BatchPop, BoundedQueue, PushError};
pub use registry::{default_registry, quantized_registry, Tier};
pub use request::{
    DetectionRequest, DetectionResponse, FrameRequest, FrameResponse, RejectReason, Rejected,
    RejectedFrame,
};
pub use runtime::{
    default_core_allowance, host_cores, CoreBudgetConfig, ReporterConfig, ServeConfig, ServeRuntime,
};
